file(REMOVE_RECURSE
  "CMakeFiles/traffic_study.dir/traffic_study.cpp.o"
  "CMakeFiles/traffic_study.dir/traffic_study.cpp.o.d"
  "traffic_study"
  "traffic_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
