# Empty compiler generated dependencies file for traffic_study.
# This may be replaced when dependencies are built.
