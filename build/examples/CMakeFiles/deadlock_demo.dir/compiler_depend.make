# Empty compiler generated dependencies file for deadlock_demo.
# This may be replaced when dependencies are built.
