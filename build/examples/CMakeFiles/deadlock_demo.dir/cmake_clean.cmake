file(REMOVE_RECURSE
  "CMakeFiles/deadlock_demo.dir/deadlock_demo.cpp.o"
  "CMakeFiles/deadlock_demo.dir/deadlock_demo.cpp.o.d"
  "deadlock_demo"
  "deadlock_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
