file(REMOVE_RECURSE
  "CMakeFiles/fault_study.dir/fault_study.cpp.o"
  "CMakeFiles/fault_study.dir/fault_study.cpp.o.d"
  "fault_study"
  "fault_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
