# Empty dependencies file for fault_study.
# This may be replaced when dependencies are built.
