file(REMOVE_RECURSE
  "CMakeFiles/adaptiveness_report.dir/adaptiveness_report.cpp.o"
  "CMakeFiles/adaptiveness_report.dir/adaptiveness_report.cpp.o.d"
  "adaptiveness_report"
  "adaptiveness_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptiveness_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
