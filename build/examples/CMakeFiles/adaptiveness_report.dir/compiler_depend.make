# Empty compiler generated dependencies file for adaptiveness_report.
# This may be replaced when dependencies are built.
