# Empty compiler generated dependencies file for table_pathlength.
# This may be replaced when dependencies are built.
