file(REMOVE_RECURSE
  "CMakeFiles/table_pathlength.dir/table_pathlength.cpp.o"
  "CMakeFiles/table_pathlength.dir/table_pathlength.cpp.o.d"
  "table_pathlength"
  "table_pathlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_pathlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
