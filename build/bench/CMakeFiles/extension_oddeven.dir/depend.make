# Empty dependencies file for extension_oddeven.
# This may be replaced when dependencies are built.
