file(REMOVE_RECURSE
  "CMakeFiles/extension_oddeven.dir/extension_oddeven.cpp.o"
  "CMakeFiles/extension_oddeven.dir/extension_oddeven.cpp.o.d"
  "extension_oddeven"
  "extension_oddeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_oddeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
