file(REMOVE_RECURSE
  "CMakeFiles/table_deadlock_demo.dir/table_deadlock_demo.cpp.o"
  "CMakeFiles/table_deadlock_demo.dir/table_deadlock_demo.cpp.o.d"
  "table_deadlock_demo"
  "table_deadlock_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_deadlock_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
