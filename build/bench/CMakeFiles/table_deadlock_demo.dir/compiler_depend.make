# Empty compiler generated dependencies file for table_deadlock_demo.
# This may be replaced when dependencies are built.
