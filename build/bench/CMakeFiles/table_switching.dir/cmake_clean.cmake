file(REMOVE_RECURSE
  "CMakeFiles/table_switching.dir/table_switching.cpp.o"
  "CMakeFiles/table_switching.dir/table_switching.cpp.o.d"
  "table_switching"
  "table_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
