# Empty compiler generated dependencies file for table_switching.
# This may be replaced when dependencies are built.
