file(REMOVE_RECURSE
  "CMakeFiles/table_pcube_choices.dir/table_pcube_choices.cpp.o"
  "CMakeFiles/table_pcube_choices.dir/table_pcube_choices.cpp.o.d"
  "table_pcube_choices"
  "table_pcube_choices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_pcube_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
