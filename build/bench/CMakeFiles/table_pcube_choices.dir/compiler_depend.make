# Empty compiler generated dependencies file for table_pcube_choices.
# This may be replaced when dependencies are built.
