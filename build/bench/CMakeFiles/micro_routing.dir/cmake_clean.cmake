file(REMOVE_RECURSE
  "CMakeFiles/micro_routing.dir/micro_routing.cpp.o"
  "CMakeFiles/micro_routing.dir/micro_routing.cpp.o.d"
  "micro_routing"
  "micro_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
