# Empty dependencies file for micro_routing.
# This may be replaced when dependencies are built.
