# Empty dependencies file for extension_oct.
# This may be replaced when dependencies are built.
