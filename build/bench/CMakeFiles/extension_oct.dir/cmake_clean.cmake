file(REMOVE_RECURSE
  "CMakeFiles/extension_oct.dir/extension_oct.cpp.o"
  "CMakeFiles/extension_oct.dir/extension_oct.cpp.o.d"
  "extension_oct"
  "extension_oct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_oct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
