# Empty dependencies file for fig15_cube_transpose.
# This may be replaced when dependencies are built.
