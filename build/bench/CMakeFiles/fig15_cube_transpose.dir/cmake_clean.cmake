file(REMOVE_RECURSE
  "CMakeFiles/fig15_cube_transpose.dir/fig15_cube_transpose.cpp.o"
  "CMakeFiles/fig15_cube_transpose.dir/fig15_cube_transpose.cpp.o.d"
  "fig15_cube_transpose"
  "fig15_cube_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cube_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
