# Empty compiler generated dependencies file for fig13_mesh_uniform.
# This may be replaced when dependencies are built.
