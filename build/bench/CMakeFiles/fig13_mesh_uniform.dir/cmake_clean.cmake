file(REMOVE_RECURSE
  "CMakeFiles/fig13_mesh_uniform.dir/fig13_mesh_uniform.cpp.o"
  "CMakeFiles/fig13_mesh_uniform.dir/fig13_mesh_uniform.cpp.o.d"
  "fig13_mesh_uniform"
  "fig13_mesh_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mesh_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
