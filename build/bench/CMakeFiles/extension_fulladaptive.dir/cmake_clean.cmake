file(REMOVE_RECURSE
  "CMakeFiles/extension_fulladaptive.dir/extension_fulladaptive.cpp.o"
  "CMakeFiles/extension_fulladaptive.dir/extension_fulladaptive.cpp.o.d"
  "extension_fulladaptive"
  "extension_fulladaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_fulladaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
