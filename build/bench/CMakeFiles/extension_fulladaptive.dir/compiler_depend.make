# Empty compiler generated dependencies file for extension_fulladaptive.
# This may be replaced when dependencies are built.
