file(REMOVE_RECURSE
  "CMakeFiles/fig14_mesh_transpose.dir/fig14_mesh_transpose.cpp.o"
  "CMakeFiles/fig14_mesh_transpose.dir/fig14_mesh_transpose.cpp.o.d"
  "fig14_mesh_transpose"
  "fig14_mesh_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mesh_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
