# Empty dependencies file for fig14_mesh_transpose.
# This may be replaced when dependencies are built.
