file(REMOVE_RECURSE
  "CMakeFiles/table_turnsets.dir/table_turnsets.cpp.o"
  "CMakeFiles/table_turnsets.dir/table_turnsets.cpp.o.d"
  "table_turnsets"
  "table_turnsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_turnsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
