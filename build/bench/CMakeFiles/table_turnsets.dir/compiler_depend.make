# Empty compiler generated dependencies file for table_turnsets.
# This may be replaced when dependencies are built.
