file(REMOVE_RECURSE
  "CMakeFiles/table_adaptiveness.dir/table_adaptiveness.cpp.o"
  "CMakeFiles/table_adaptiveness.dir/table_adaptiveness.cpp.o.d"
  "table_adaptiveness"
  "table_adaptiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_adaptiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
