# Empty compiler generated dependencies file for table_adaptiveness.
# This may be replaced when dependencies are built.
