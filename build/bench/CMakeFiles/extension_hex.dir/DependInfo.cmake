
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/extension_hex.cpp" "bench/CMakeFiles/extension_hex.dir/extension_hex.cpp.o" "gcc" "bench/CMakeFiles/extension_hex.dir/extension_hex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/turnmodel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/turnmodel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/turnmodel_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/turnmodel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turnmodel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
