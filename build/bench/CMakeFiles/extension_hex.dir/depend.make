# Empty dependencies file for extension_hex.
# This may be replaced when dependencies are built.
