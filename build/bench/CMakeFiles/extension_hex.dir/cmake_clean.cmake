file(REMOVE_RECURSE
  "CMakeFiles/extension_hex.dir/extension_hex.cpp.o"
  "CMakeFiles/extension_hex.dir/extension_hex.cpp.o.d"
  "extension_hex"
  "extension_hex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_hex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
