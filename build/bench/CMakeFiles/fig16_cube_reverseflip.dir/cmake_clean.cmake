file(REMOVE_RECURSE
  "CMakeFiles/fig16_cube_reverseflip.dir/fig16_cube_reverseflip.cpp.o"
  "CMakeFiles/fig16_cube_reverseflip.dir/fig16_cube_reverseflip.cpp.o.d"
  "fig16_cube_reverseflip"
  "fig16_cube_reverseflip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cube_reverseflip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
