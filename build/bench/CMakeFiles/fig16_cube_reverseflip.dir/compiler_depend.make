# Empty compiler generated dependencies file for fig16_cube_reverseflip.
# This may be replaced when dependencies are built.
