file(REMOVE_RECURSE
  "libturnmodel_sim.a"
)
