# Empty compiler generated dependencies file for turnmodel_sim.
# This may be replaced when dependencies are built.
