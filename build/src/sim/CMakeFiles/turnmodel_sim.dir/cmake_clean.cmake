file(REMOVE_RECURSE
  "CMakeFiles/turnmodel_sim.dir/config.cpp.o"
  "CMakeFiles/turnmodel_sim.dir/config.cpp.o.d"
  "CMakeFiles/turnmodel_sim.dir/network.cpp.o"
  "CMakeFiles/turnmodel_sim.dir/network.cpp.o.d"
  "CMakeFiles/turnmodel_sim.dir/selection.cpp.o"
  "CMakeFiles/turnmodel_sim.dir/selection.cpp.o.d"
  "CMakeFiles/turnmodel_sim.dir/simulator.cpp.o"
  "CMakeFiles/turnmodel_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/turnmodel_sim.dir/sweep.cpp.o"
  "CMakeFiles/turnmodel_sim.dir/sweep.cpp.o.d"
  "libturnmodel_sim.a"
  "libturnmodel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnmodel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
