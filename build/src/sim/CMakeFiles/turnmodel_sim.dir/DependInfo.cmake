
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/turnmodel_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/turnmodel_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/turnmodel_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/turnmodel_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/selection.cpp" "src/sim/CMakeFiles/turnmodel_sim.dir/selection.cpp.o" "gcc" "src/sim/CMakeFiles/turnmodel_sim.dir/selection.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/turnmodel_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/turnmodel_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/sim/CMakeFiles/turnmodel_sim.dir/sweep.cpp.o" "gcc" "src/sim/CMakeFiles/turnmodel_sim.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/turnmodel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/turnmodel_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/turnmodel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turnmodel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
