file(REMOVE_RECURSE
  "libturnmodel_traffic.a"
)
