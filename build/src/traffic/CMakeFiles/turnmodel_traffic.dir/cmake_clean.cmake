file(REMOVE_RECURSE
  "CMakeFiles/turnmodel_traffic.dir/hotspot.cpp.o"
  "CMakeFiles/turnmodel_traffic.dir/hotspot.cpp.o.d"
  "CMakeFiles/turnmodel_traffic.dir/pattern.cpp.o"
  "CMakeFiles/turnmodel_traffic.dir/pattern.cpp.o.d"
  "CMakeFiles/turnmodel_traffic.dir/permutation.cpp.o"
  "CMakeFiles/turnmodel_traffic.dir/permutation.cpp.o.d"
  "CMakeFiles/turnmodel_traffic.dir/uniform.cpp.o"
  "CMakeFiles/turnmodel_traffic.dir/uniform.cpp.o.d"
  "CMakeFiles/turnmodel_traffic.dir/workload.cpp.o"
  "CMakeFiles/turnmodel_traffic.dir/workload.cpp.o.d"
  "libturnmodel_traffic.a"
  "libturnmodel_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnmodel_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
