# Empty dependencies file for turnmodel_traffic.
# This may be replaced when dependencies are built.
