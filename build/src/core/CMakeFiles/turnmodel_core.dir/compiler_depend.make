# Empty compiler generated dependencies file for turnmodel_core.
# This may be replaced when dependencies are built.
