
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptiveness.cpp" "src/core/CMakeFiles/turnmodel_core.dir/adaptiveness.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/adaptiveness.cpp.o.d"
  "/root/repo/src/core/channel_dependency.cpp" "src/core/CMakeFiles/turnmodel_core.dir/channel_dependency.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/channel_dependency.cpp.o.d"
  "/root/repo/src/core/cycle_analysis.cpp" "src/core/CMakeFiles/turnmodel_core.dir/cycle_analysis.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/cycle_analysis.cpp.o.d"
  "/root/repo/src/core/numbering.cpp" "src/core/CMakeFiles/turnmodel_core.dir/numbering.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/numbering.cpp.o.d"
  "/root/repo/src/core/routing.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing.cpp.o.d"
  "/root/repo/src/core/routing/all_but_one.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/all_but_one.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/all_but_one.cpp.o.d"
  "/root/repo/src/core/routing/dimension_order.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/dimension_order.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/dimension_order.cpp.o.d"
  "/root/repo/src/core/routing/factory.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/factory.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/factory.cpp.o.d"
  "/root/repo/src/core/routing/mad_y.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/mad_y.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/mad_y.cpp.o.d"
  "/root/repo/src/core/routing/negative_first.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/negative_first.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/negative_first.cpp.o.d"
  "/root/repo/src/core/routing/north_last.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/north_last.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/north_last.cpp.o.d"
  "/root/repo/src/core/routing/odd_even.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/odd_even.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/odd_even.cpp.o.d"
  "/root/repo/src/core/routing/pcube.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/pcube.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/pcube.cpp.o.d"
  "/root/repo/src/core/routing/torus_adapters.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/torus_adapters.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/torus_adapters.cpp.o.d"
  "/root/repo/src/core/routing/turn_table.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/turn_table.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/turn_table.cpp.o.d"
  "/root/repo/src/core/routing/west_first.cpp" "src/core/CMakeFiles/turnmodel_core.dir/routing/west_first.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/routing/west_first.cpp.o.d"
  "/root/repo/src/core/turn.cpp" "src/core/CMakeFiles/turnmodel_core.dir/turn.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/turn.cpp.o.d"
  "/root/repo/src/core/turn_set.cpp" "src/core/CMakeFiles/turnmodel_core.dir/turn_set.cpp.o" "gcc" "src/core/CMakeFiles/turnmodel_core.dir/turn_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/turnmodel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turnmodel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
