file(REMOVE_RECURSE
  "libturnmodel_core.a"
)
