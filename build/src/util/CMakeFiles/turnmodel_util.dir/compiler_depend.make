# Empty compiler generated dependencies file for turnmodel_util.
# This may be replaced when dependencies are built.
