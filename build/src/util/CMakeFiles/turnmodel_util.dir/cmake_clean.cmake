file(REMOVE_RECURSE
  "CMakeFiles/turnmodel_util.dir/bitops.cpp.o"
  "CMakeFiles/turnmodel_util.dir/bitops.cpp.o.d"
  "CMakeFiles/turnmodel_util.dir/csv.cpp.o"
  "CMakeFiles/turnmodel_util.dir/csv.cpp.o.d"
  "CMakeFiles/turnmodel_util.dir/logging.cpp.o"
  "CMakeFiles/turnmodel_util.dir/logging.cpp.o.d"
  "CMakeFiles/turnmodel_util.dir/rng.cpp.o"
  "CMakeFiles/turnmodel_util.dir/rng.cpp.o.d"
  "CMakeFiles/turnmodel_util.dir/stats.cpp.o"
  "CMakeFiles/turnmodel_util.dir/stats.cpp.o.d"
  "libturnmodel_util.a"
  "libturnmodel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnmodel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
