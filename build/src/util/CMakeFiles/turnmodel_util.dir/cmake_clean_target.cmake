file(REMOVE_RECURSE
  "libturnmodel_util.a"
)
