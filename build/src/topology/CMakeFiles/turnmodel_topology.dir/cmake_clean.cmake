file(REMOVE_RECURSE
  "CMakeFiles/turnmodel_topology.dir/channel.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/channel.cpp.o.d"
  "CMakeFiles/turnmodel_topology.dir/coordinates.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/coordinates.cpp.o.d"
  "CMakeFiles/turnmodel_topology.dir/direction.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/direction.cpp.o.d"
  "CMakeFiles/turnmodel_topology.dir/faults.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/faults.cpp.o.d"
  "CMakeFiles/turnmodel_topology.dir/hex.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/hex.cpp.o.d"
  "CMakeFiles/turnmodel_topology.dir/hypercube.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/hypercube.cpp.o.d"
  "CMakeFiles/turnmodel_topology.dir/mesh.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/mesh.cpp.o.d"
  "CMakeFiles/turnmodel_topology.dir/oct.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/oct.cpp.o.d"
  "CMakeFiles/turnmodel_topology.dir/topology.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/topology.cpp.o.d"
  "CMakeFiles/turnmodel_topology.dir/torus.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/torus.cpp.o.d"
  "CMakeFiles/turnmodel_topology.dir/virtual_channels.cpp.o"
  "CMakeFiles/turnmodel_topology.dir/virtual_channels.cpp.o.d"
  "libturnmodel_topology.a"
  "libturnmodel_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnmodel_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
