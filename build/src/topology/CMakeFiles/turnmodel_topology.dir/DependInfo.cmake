
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/channel.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/channel.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/channel.cpp.o.d"
  "/root/repo/src/topology/coordinates.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/coordinates.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/coordinates.cpp.o.d"
  "/root/repo/src/topology/direction.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/direction.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/direction.cpp.o.d"
  "/root/repo/src/topology/faults.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/faults.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/faults.cpp.o.d"
  "/root/repo/src/topology/hex.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/hex.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/hex.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/hypercube.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/hypercube.cpp.o.d"
  "/root/repo/src/topology/mesh.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/mesh.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/mesh.cpp.o.d"
  "/root/repo/src/topology/oct.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/oct.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/oct.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/topology.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/topology.cpp.o.d"
  "/root/repo/src/topology/torus.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/torus.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/torus.cpp.o.d"
  "/root/repo/src/topology/virtual_channels.cpp" "src/topology/CMakeFiles/turnmodel_topology.dir/virtual_channels.cpp.o" "gcc" "src/topology/CMakeFiles/turnmodel_topology.dir/virtual_channels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/turnmodel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
