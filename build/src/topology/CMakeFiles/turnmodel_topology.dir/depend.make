# Empty dependencies file for turnmodel_topology.
# This may be replaced when dependencies are built.
