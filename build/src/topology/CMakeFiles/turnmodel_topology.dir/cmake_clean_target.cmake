file(REMOVE_RECURSE
  "libturnmodel_topology.a"
)
