
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topology/test_channel.cpp" "tests/CMakeFiles/test_topology.dir/topology/test_channel.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology/test_channel.cpp.o.d"
  "/root/repo/tests/topology/test_coordinates.cpp" "tests/CMakeFiles/test_topology.dir/topology/test_coordinates.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology/test_coordinates.cpp.o.d"
  "/root/repo/tests/topology/test_direction.cpp" "tests/CMakeFiles/test_topology.dir/topology/test_direction.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology/test_direction.cpp.o.d"
  "/root/repo/tests/topology/test_faults.cpp" "tests/CMakeFiles/test_topology.dir/topology/test_faults.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology/test_faults.cpp.o.d"
  "/root/repo/tests/topology/test_hex.cpp" "tests/CMakeFiles/test_topology.dir/topology/test_hex.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology/test_hex.cpp.o.d"
  "/root/repo/tests/topology/test_hypercube.cpp" "tests/CMakeFiles/test_topology.dir/topology/test_hypercube.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology/test_hypercube.cpp.o.d"
  "/root/repo/tests/topology/test_mesh.cpp" "tests/CMakeFiles/test_topology.dir/topology/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology/test_mesh.cpp.o.d"
  "/root/repo/tests/topology/test_oct.cpp" "tests/CMakeFiles/test_topology.dir/topology/test_oct.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology/test_oct.cpp.o.d"
  "/root/repo/tests/topology/test_torus.cpp" "tests/CMakeFiles/test_topology.dir/topology/test_torus.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology/test_torus.cpp.o.d"
  "/root/repo/tests/topology/test_virtual_channels.cpp" "tests/CMakeFiles/test_topology.dir/topology/test_virtual_channels.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology/test_virtual_channels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/turnmodel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/turnmodel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/turnmodel_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/turnmodel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turnmodel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
