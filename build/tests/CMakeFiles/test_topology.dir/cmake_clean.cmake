file(REMOVE_RECURSE
  "CMakeFiles/test_topology.dir/topology/test_channel.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_channel.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_coordinates.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_coordinates.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_direction.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_direction.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_faults.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_faults.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_hex.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_hex.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_hypercube.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_hypercube.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_mesh.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_mesh.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_oct.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_oct.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_torus.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_torus.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_virtual_channels.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_virtual_channels.cpp.o.d"
  "test_topology"
  "test_topology.pdb"
  "test_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
