file(REMOVE_RECURSE
  "CMakeFiles/test_routing.dir/routing/test_all_but_one.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_all_but_one.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_dimension_order.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_dimension_order.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_equivalences.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_equivalences.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_factory.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_factory.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_mad_y.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_mad_y.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_negative_first.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_negative_first.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_north_last.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_north_last.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_odd_even.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_odd_even.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_pcube.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_pcube.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_routing_common.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_routing_common.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_torus_routing.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_torus_routing.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_turn_table.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_turn_table.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_west_first.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_west_first.cpp.o.d"
  "test_routing"
  "test_routing.pdb"
  "test_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
