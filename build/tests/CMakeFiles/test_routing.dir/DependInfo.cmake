
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/routing/test_all_but_one.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_all_but_one.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_all_but_one.cpp.o.d"
  "/root/repo/tests/routing/test_dimension_order.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_dimension_order.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_dimension_order.cpp.o.d"
  "/root/repo/tests/routing/test_equivalences.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_equivalences.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_equivalences.cpp.o.d"
  "/root/repo/tests/routing/test_factory.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_factory.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_factory.cpp.o.d"
  "/root/repo/tests/routing/test_mad_y.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_mad_y.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_mad_y.cpp.o.d"
  "/root/repo/tests/routing/test_negative_first.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_negative_first.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_negative_first.cpp.o.d"
  "/root/repo/tests/routing/test_north_last.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_north_last.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_north_last.cpp.o.d"
  "/root/repo/tests/routing/test_odd_even.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_odd_even.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_odd_even.cpp.o.d"
  "/root/repo/tests/routing/test_pcube.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_pcube.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_pcube.cpp.o.d"
  "/root/repo/tests/routing/test_routing_common.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_routing_common.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_routing_common.cpp.o.d"
  "/root/repo/tests/routing/test_torus_routing.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_torus_routing.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_torus_routing.cpp.o.d"
  "/root/repo/tests/routing/test_turn_table.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_turn_table.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_turn_table.cpp.o.d"
  "/root/repo/tests/routing/test_west_first.cpp" "tests/CMakeFiles/test_routing.dir/routing/test_west_first.cpp.o" "gcc" "tests/CMakeFiles/test_routing.dir/routing/test_west_first.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/turnmodel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/turnmodel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/turnmodel_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/turnmodel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turnmodel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
