file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_adaptiveness.cpp.o"
  "CMakeFiles/test_core.dir/core/test_adaptiveness.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cdg.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cdg.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cycle_analysis.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cycle_analysis.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_numbering.cpp.o"
  "CMakeFiles/test_core.dir/core/test_numbering.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_turn.cpp.o"
  "CMakeFiles/test_core.dir/core/test_turn.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_turn_set.cpp.o"
  "CMakeFiles/test_core.dir/core/test_turn_set.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
