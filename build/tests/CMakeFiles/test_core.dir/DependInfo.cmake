
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_adaptiveness.cpp" "tests/CMakeFiles/test_core.dir/core/test_adaptiveness.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_adaptiveness.cpp.o.d"
  "/root/repo/tests/core/test_cdg.cpp" "tests/CMakeFiles/test_core.dir/core/test_cdg.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cdg.cpp.o.d"
  "/root/repo/tests/core/test_cycle_analysis.cpp" "tests/CMakeFiles/test_core.dir/core/test_cycle_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cycle_analysis.cpp.o.d"
  "/root/repo/tests/core/test_numbering.cpp" "tests/CMakeFiles/test_core.dir/core/test_numbering.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_numbering.cpp.o.d"
  "/root/repo/tests/core/test_turn.cpp" "tests/CMakeFiles/test_core.dir/core/test_turn.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_turn.cpp.o.d"
  "/root/repo/tests/core/test_turn_set.cpp" "tests/CMakeFiles/test_core.dir/core/test_turn_set.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_turn_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/turnmodel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/turnmodel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/turnmodel_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/turnmodel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turnmodel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
