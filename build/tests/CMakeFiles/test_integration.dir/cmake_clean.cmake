file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_delivery.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_delivery.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_fault_tolerance.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_fault_tolerance.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_paper_numbers.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_paper_numbers.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_theorems.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_theorems.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
