
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_deadlock.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_deadlock.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_deadlock.cpp.o.d"
  "/root/repo/tests/sim/test_network.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_network.cpp.o.d"
  "/root/repo/tests/sim/test_properties.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_properties.cpp.o.d"
  "/root/repo/tests/sim/test_selection.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_selection.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_selection.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_sweep.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_sweep.cpp.o.d"
  "/root/repo/tests/sim/test_switching.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_switching.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_switching.cpp.o.d"
  "/root/repo/tests/sim/test_virtual_channel_sim.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_virtual_channel_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_virtual_channel_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/turnmodel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/turnmodel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/turnmodel_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/turnmodel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turnmodel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
