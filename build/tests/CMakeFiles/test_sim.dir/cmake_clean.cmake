file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_deadlock.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_deadlock.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_network.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_network.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_properties.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_properties.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_selection.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_selection.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_sweep.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_sweep.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_switching.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_switching.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_virtual_channel_sim.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_virtual_channel_sim.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
