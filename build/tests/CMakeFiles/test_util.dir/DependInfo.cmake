
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_bitops.cpp" "tests/CMakeFiles/test_util.dir/util/test_bitops.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_bitops.cpp.o.d"
  "/root/repo/tests/util/test_csv.cpp" "tests/CMakeFiles/test_util.dir/util/test_csv.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_csv.cpp.o.d"
  "/root/repo/tests/util/test_logging.cpp" "tests/CMakeFiles/test_util.dir/util/test_logging.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_logging.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/turnmodel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/turnmodel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/turnmodel_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/turnmodel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turnmodel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
