#!/usr/bin/env python3
"""Validate a turnmodel observability JSON document against its schema.

Checks a "turnmodel-obs-study-v1"/"-v2"/"-v3" document
(ResultSink::writeObsJson) or a bare "turnmodel-obs-v1"/"-v2" report
(ObsReport::writeJson): required keys and types, channel-row
coordinate bounds, utilization ranges, monotonic non-overlapping
sample windows, and chronological traces. Version 2 channel rows (the
VC-credit router) additionally carry a "vc" index and a
"credit_stall_cycles" counter; rows stay keyed by physical direction,
one row per (channel, VC). Study v3 additionally requires a run-level
"trace_dropped" count (events the bounded trace ring overwrote).
With --mesh WxH it additionally checks the
channel-row count: for v1 every interior edge in both directions plus
one eject row per node; for v2 one eject row per node and a positive
multiple (the VC count) of the directed physical edge count.

Usage: validate_obs_schema.py FILE [--mesh WxH]
Exit status 0 on success; 1 with a message on the first violation.
"""

import argparse
import json
import sys

DIRS = {"east", "west", "north", "south", "eject"}


class Invalid(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Invalid(msg)


def check_keys(obj, spec, where):
    require(isinstance(obj, dict), f"{where}: expected object")
    for key, types in spec.items():
        require(key in obj, f"{where}: missing key '{key}'")
        require(
            isinstance(obj[key], types),
            f"{where}: '{key}' has type {type(obj[key]).__name__}",
        )


def check_channel(row, i, mesh, version):
    where = f"channels[{i}]"
    keys = {
        "node": int,
        "coords": list,
        "dir": str,
        "flits_forwarded": int,
        "busy_cycles": int,
        "blocked_cycles": int,
        "peak_occupancy": int,
        "utilization": (int, float),
    }
    if version >= 2:
        keys["vc"] = int
        keys["credit_stall_cycles"] = int
    check_keys(row, keys, where)
    if version >= 2:
        require(row["vc"] >= -1, f"{where}: vc {row['vc']} < -1")
        require(
            (row["dir"] == "eject") == (row["vc"] == -1),
            f"{where}: vc -1 is reserved for eject rows",
        )
        require(row["credit_stall_cycles"] >= 0,
                f"{where}: negative credit_stall_cycles")
    require(row["dir"] in DIRS or row["dir"] == "local",
            f"{where}: unknown dir '{row['dir']}'")
    require(row["utilization"] >= 0.0,
            f"{where}: negative utilization")
    require(row["utilization"] <= 1.0 + 1e-9,
            f"{where}: utilization {row['utilization']} > 1 "
            "(more than one flit per cycle on one channel)")
    for c in row["coords"]:
        require(isinstance(c, int) and c >= 0,
                f"{where}: bad coordinate {c}")
    if mesh:
        w, h = mesh
        require(len(row["coords"]) == 2, f"{where}: expected 2D coords")
        x, y = row["coords"]
        require(x < w and y < h,
                f"{where}: coords ({x},{y}) outside {w}x{h} mesh")


def check_samples(samples):
    prev_end = None
    for i, s in enumerate(samples):
        where = f"samples[{i}]"
        check_keys(
            s,
            {
                "start_cycle": int,
                "end_cycle": int,
                "flits_delivered": int,
                "packets_completed": int,
                "latency_mean_cycles": (int, float),
                "latency_max_cycles": (int, float),
                "latency_p99_cycles": (int, float),
                "latency_p99_clamped": bool,
                "source_queue_packets": int,
            },
            where,
        )
        require(s["start_cycle"] < s["end_cycle"],
                f"{where}: empty or inverted window")
        if prev_end is not None:
            require(s["start_cycle"] == prev_end,
                    f"{where}: window not contiguous with previous")
        prev_end = s["end_cycle"]


def check_trace(trace):
    check_keys(trace, {"dropped": int, "events": list}, "trace")
    prev_cycle = -1
    for i, e in enumerate(trace["events"]):
        where = f"trace.events[{i}]"
        check_keys(
            e,
            {"cycle": int, "packet": int, "kind": str, "node": int,
             "dir": str},
            where,
        )
        require(e["kind"] in {"inject", "route", "deliver"},
                f"{where}: unknown kind '{e['kind']}'")
        require(e["cycle"] >= prev_cycle,
                f"{where}: trace not chronological")
        prev_cycle = e["cycle"]


def check_report(report, mesh, where="report"):
    check_keys(
        report,
        {
            "schema": str,
            "topology": str,
            "observed_cycles": int,
            "channels": list,
            "samples": list,
            "trace": dict,
        },
        where,
    )
    require(report["schema"] in ("turnmodel-obs-v1", "turnmodel-obs-v2"),
            f"{where}: schema is '{report['schema']}'")
    version = 2 if report["schema"] == "turnmodel-obs-v2" else 1
    for i, row in enumerate(report["channels"]):
        check_channel(row, i, mesh, version)
    if mesh and report["channels"]:
        w, h = mesh
        edges = 2 * ((w - 1) * h + w * (h - 1))
        ejects = sum(1 for r in report["channels"]
                     if r["dir"] == "eject")
        require(ejects == w * h,
                f"{where}: {ejects} eject rows, expected {w * h}")
        network = len(report["channels"]) - ejects
        if version == 1:
            require(
                network == edges,
                f"{where}: {network} network channel rows, "
                f"expected {edges} for a {w}x{h} mesh",
            )
        else:
            # v2 emits one row per (physical channel, VC): a positive
            # whole multiple of the directed physical edge count.
            require(
                network > 0 and network % edges == 0,
                f"{where}: {network} network channel rows is not a "
                f"positive multiple of {edges} ({w}x{h} mesh edges)",
            )
    check_samples(report["samples"])
    check_trace(report["trace"])


def check_study(study, mesh):
    check_keys(
        study,
        {
            "schema": str,
            "experiment": str,
            "topology": str,
            "pattern": str,
            "injection_rate": (int, float),
            "runs": list,
        },
        "study",
    )
    require(
        study["schema"] in ("turnmodel-obs-study-v1",
                            "turnmodel-obs-study-v2",
                            "turnmodel-obs-study-v3"),
        f"study: schema is '{study['schema']}'",
    )
    study_v3 = study["schema"] == "turnmodel-obs-study-v3"
    require(study["runs"], "study: no runs")
    for i, run in enumerate(study["runs"]):
        where = f"runs[{i}]"
        run_keys = {
            "algorithm": str,
            "injection_rate": (int, float),
            "result": dict,
            "obs": dict,
        }
        if study_v3:
            # v3 surfaces the trace ring's drop count per run: nonzero
            # means the retained trace is only the tail of the run.
            run_keys["trace_dropped"] = int
        check_keys(run, run_keys, where)
        if study_v3:
            require(run["trace_dropped"] >= 0,
                    f"{where}: negative trace_dropped")
        check_keys(
            run["result"],
            {
                "offered_flits_per_us": (int, float),
                "throughput_flits_per_us": (int, float),
                "latency_us": (int, float),
                "p99_latency_us": (int, float),
                "p99_latency_clamped": bool,
                "packets": int,
                "delivered_ratio": (int, float),
                "saturated": bool,
                "deadlocked": bool,
            },
            f"{where}.result",
        )
        check_report(run["obs"], mesh, where=f"{where}.obs")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--mesh", metavar="WxH",
                        help="check channel count for a WxH mesh")
    args = parser.parse_args()

    mesh = None
    if args.mesh:
        w, h = args.mesh.lower().split("x")
        mesh = (int(w), int(h))

    with open(args.file) as fh:
        doc = json.load(fh)

    try:
        schema = doc.get("schema") if isinstance(doc, dict) else None
        if schema in ("turnmodel-obs-study-v1",
                      "turnmodel-obs-study-v2",
                      "turnmodel-obs-study-v3"):
            check_study(doc, mesh)
        elif schema in ("turnmodel-obs-v1", "turnmodel-obs-v2"):
            check_report(doc, mesh)
        else:
            raise Invalid(f"unrecognized schema '{schema}'")
    except Invalid as err:
        print(f"{args.file}: INVALID: {err}", file=sys.stderr)
        return 1

    runs = len(doc["runs"]) if "runs" in doc else 1
    print(f"{args.file}: OK ({runs} run(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
