#!/usr/bin/env python3
"""Validate a turnmodel observability JSON document against its schema.

Checks a "turnmodel-obs-study-v1" document (ResultSink::writeObsJson)
or a bare "turnmodel-obs-v1" report (ObsReport::writeJson): required
keys and types, channel-row coordinate bounds, utilization ranges,
monotonic non-overlapping sample windows, and chronological traces.
With --mesh WxH it additionally checks the exact channel-row count:
every interior edge in both directions plus one eject row per node.

Usage: validate_obs_schema.py FILE [--mesh WxH]
Exit status 0 on success; 1 with a message on the first violation.
"""

import argparse
import json
import sys

DIRS = {"east", "west", "north", "south", "eject"}


class Invalid(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Invalid(msg)


def check_keys(obj, spec, where):
    require(isinstance(obj, dict), f"{where}: expected object")
    for key, types in spec.items():
        require(key in obj, f"{where}: missing key '{key}'")
        require(
            isinstance(obj[key], types),
            f"{where}: '{key}' has type {type(obj[key]).__name__}",
        )


def check_channel(row, i, mesh):
    where = f"channels[{i}]"
    check_keys(
        row,
        {
            "node": int,
            "coords": list,
            "dir": str,
            "flits_forwarded": int,
            "busy_cycles": int,
            "blocked_cycles": int,
            "peak_occupancy": int,
            "utilization": (int, float),
        },
        where,
    )
    require(row["dir"] in DIRS or row["dir"] == "local",
            f"{where}: unknown dir '{row['dir']}'")
    require(row["utilization"] >= 0.0,
            f"{where}: negative utilization")
    require(row["utilization"] <= 1.0 + 1e-9,
            f"{where}: utilization {row['utilization']} > 1 "
            "(more than one flit per cycle on one channel)")
    for c in row["coords"]:
        require(isinstance(c, int) and c >= 0,
                f"{where}: bad coordinate {c}")
    if mesh:
        w, h = mesh
        require(len(row["coords"]) == 2, f"{where}: expected 2D coords")
        x, y = row["coords"]
        require(x < w and y < h,
                f"{where}: coords ({x},{y}) outside {w}x{h} mesh")


def check_samples(samples):
    prev_end = None
    for i, s in enumerate(samples):
        where = f"samples[{i}]"
        check_keys(
            s,
            {
                "start_cycle": int,
                "end_cycle": int,
                "flits_delivered": int,
                "packets_completed": int,
                "latency_mean_cycles": (int, float),
                "latency_max_cycles": (int, float),
                "latency_p99_cycles": (int, float),
                "latency_p99_clamped": bool,
                "source_queue_packets": int,
            },
            where,
        )
        require(s["start_cycle"] < s["end_cycle"],
                f"{where}: empty or inverted window")
        if prev_end is not None:
            require(s["start_cycle"] == prev_end,
                    f"{where}: window not contiguous with previous")
        prev_end = s["end_cycle"]


def check_trace(trace):
    check_keys(trace, {"dropped": int, "events": list}, "trace")
    prev_cycle = -1
    for i, e in enumerate(trace["events"]):
        where = f"trace.events[{i}]"
        check_keys(
            e,
            {"cycle": int, "packet": int, "kind": str, "node": int,
             "dir": str},
            where,
        )
        require(e["kind"] in {"inject", "route", "deliver"},
                f"{where}: unknown kind '{e['kind']}'")
        require(e["cycle"] >= prev_cycle,
                f"{where}: trace not chronological")
        prev_cycle = e["cycle"]


def check_report(report, mesh, where="report"):
    check_keys(
        report,
        {
            "schema": str,
            "topology": str,
            "observed_cycles": int,
            "channels": list,
            "samples": list,
            "trace": dict,
        },
        where,
    )
    require(report["schema"] == "turnmodel-obs-v1",
            f"{where}: schema is '{report['schema']}'")
    for i, row in enumerate(report["channels"]):
        check_channel(row, i, mesh)
    if mesh and report["channels"]:
        w, h = mesh
        expect = 2 * ((w - 1) * h + w * (h - 1)) + w * h
        require(
            len(report["channels"]) == expect,
            f"{where}: {len(report['channels'])} channel rows, "
            f"expected {expect} for a {w}x{h} mesh",
        )
        ejects = sum(1 for r in report["channels"]
                     if r["dir"] == "eject")
        require(ejects == w * h,
                f"{where}: {ejects} eject rows, expected {w * h}")
    check_samples(report["samples"])
    check_trace(report["trace"])


def check_study(study, mesh):
    check_keys(
        study,
        {
            "schema": str,
            "experiment": str,
            "topology": str,
            "pattern": str,
            "injection_rate": (int, float),
            "runs": list,
        },
        "study",
    )
    require(study["schema"] == "turnmodel-obs-study-v1",
            f"study: schema is '{study['schema']}'")
    require(study["runs"], "study: no runs")
    for i, run in enumerate(study["runs"]):
        where = f"runs[{i}]"
        check_keys(
            run,
            {
                "algorithm": str,
                "injection_rate": (int, float),
                "result": dict,
                "obs": dict,
            },
            where,
        )
        check_keys(
            run["result"],
            {
                "offered_flits_per_us": (int, float),
                "throughput_flits_per_us": (int, float),
                "latency_us": (int, float),
                "p99_latency_us": (int, float),
                "p99_latency_clamped": bool,
                "packets": int,
                "delivered_ratio": (int, float),
                "saturated": bool,
                "deadlocked": bool,
            },
            f"{where}.result",
        )
        check_report(run["obs"], mesh, where=f"{where}.obs")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--mesh", metavar="WxH",
                        help="check channel count for a WxH mesh")
    args = parser.parse_args()

    mesh = None
    if args.mesh:
        w, h = args.mesh.lower().split("x")
        mesh = (int(w), int(h))

    with open(args.file) as fh:
        doc = json.load(fh)

    try:
        schema = doc.get("schema") if isinstance(doc, dict) else None
        if schema == "turnmodel-obs-study-v1":
            check_study(doc, mesh)
        elif schema == "turnmodel-obs-v1":
            check_report(doc, mesh)
        else:
            raise Invalid(f"unrecognized schema '{schema}'")
    except Invalid as err:
        print(f"{args.file}: INVALID: {err}", file=sys.stderr)
        return 1

    runs = len(doc["runs"]) if "runs" in doc else 1
    print(f"{args.file}: OK ({runs} run(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
