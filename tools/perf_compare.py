#!/usr/bin/env python3
"""Compare two micro_sim benchmark JSON files.

Prints a per-scenario table of cycles/sec in the baseline and the
candidate with the ratio, and exits non-zero when any scenario's
cycles/sec falls more than the threshold (default 30%) below the
baseline. The generous default absorbs machine-to-machine and
run-to-run noise — the gate exists to catch order-of-magnitude
mistakes (an accidentally quadratic scan, a lost fast path), not
single-digit drift.

Two thread-aware rules refine the plain keep-tolerance gate:

* The keep-tolerance gate applies only to single-thread scenarios.
  Multi-thread numbers depend on how many CPUs the measuring host
  actually has, so comparing them across hosts is noise, not signal.
* Scaling gate: for every scenario family measured at several thread
  counts (names ending in _t1/_t4/_t8), the candidate's 4-thread run
  must reach at least --min-scaling x its own 1-thread run — but only
  when the candidate host has >= 4 CPUs (the JSON's host_cpus field;
  older baselines without it skip the check). A sharded engine that
  stops scaling is as much a regression as a slow serial loop.

Repeatable --require NAME turns a scenario's presence into part of
the gate: the run fails when the named scenario is missing from
either file. The comparison otherwise tolerates asymmetric scenario
sets (a candidate measured with --only, a baseline predating a new
scenario), so without --require a gated scenario could silently
drop out of the measurement.

Usage: perf_compare.py BASELINE CANDIDATE [--threshold FRACTION]
                       [--min-scaling RATIO] [--require NAME]...
Exit status: 0 when no scenario regresses past the threshold,
1 on regression, 2 on malformed input.
"""

import argparse
import json
import re
import sys


def load_doc(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"perf_compare: cannot read {path}: {e}")
    if doc.get("benchmark") != "micro_sim":
        sys.exit(f"perf_compare: {path} is not a micro_sim result")
    cases = {}
    threads = {}
    for case in doc.get("cases", []):
        try:
            cases[case["name"]] = float(case["cycles_per_sec"])
            threads[case["name"]] = int(case.get("threads", 1))
        except (KeyError, TypeError, ValueError):
            sys.exit(f"perf_compare: malformed case in {path}: {case}")
    if not cases:
        sys.exit(f"perf_compare: {path} contains no cases")
    host_cpus = doc.get("host_cpus")
    return cases, threads, host_cpus


def scaling_failures(cand, cand_threads, host_cpus, min_scaling):
    """4-thread runs must beat 1-thread runs by min_scaling, when the
    candidate host can actually run 4 threads in parallel."""
    if host_cpus is None or host_cpus < 4:
        reason = (
            "host_cpus missing" if host_cpus is None
            else f"host has {host_cpus} CPU(s)"
        )
        print(f"scaling gate skipped: {reason}")
        return []
    failures = []
    checked = 0
    for name, speed in sorted(cand.items()):
        m = re.fullmatch(r"(.+)_t1", name)
        if not m or cand_threads.get(name, 1) != 1:
            continue
        sibling = f"{m.group(1)}_t4"
        if sibling not in cand:
            continue
        checked += 1
        ratio = cand[sibling] / speed
        status = "ok" if ratio >= min_scaling else "<< NO SCALING"
        print(
            f"scaling {m.group(1)}: t4/t1 = {ratio:.2f}x "
            f"(need {min_scaling:.1f}x)  {status}"
        )
        if ratio < min_scaling:
            failures.append(
                f"{m.group(1)}: 4 threads only {ratio:.2f}x the "
                f"1-thread rate (need {min_scaling:.1f}x)"
            )
    if checked == 0:
        print("scaling gate: no _t1/_t4 scenario pairs found")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Gate a micro_sim run against a baseline."
    )
    parser.add_argument("baseline", help="baseline micro_sim JSON")
    parser.add_argument("candidate", help="candidate micro_sim JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional slowdown (default 0.30)",
    )
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=2.0,
        help="required 4-thread speedup over 1 thread on hosts with "
        ">= 4 CPUs (default 2.0)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless this scenario is present in both files "
        "(repeatable)",
    )
    args = parser.parse_args()
    if not 0.0 < args.threshold < 1.0:
        parser.error("--threshold must be in (0, 1)")
    if args.min_scaling <= 0.0:
        parser.error("--min-scaling must be positive")

    base, base_threads, _ = load_doc(args.baseline)
    cand, cand_threads, cand_cpus = load_doc(args.candidate)

    required_failures = []
    for name in args.require:
        missing = [
            label
            for label, doc in (("baseline", base), ("candidate", cand))
            if name not in doc
        ]
        if missing:
            required_failures.append(
                f"{name}: required scenario missing from "
                f"{' and '.join(missing)}"
            )

    width = max(len(n) for n in base) + 2
    print(
        f"{'scenario':<{width}}{'baseline c/s':>14}"
        f"{'candidate c/s':>15}{'ratio':>8}"
    )
    failures = []
    for name in sorted(base):
        if name not in cand:
            failures.append(f"{name}: missing from candidate")
            print(f"{name:<{width}}{base[name]:>14.0f}{'absent':>15}")
            continue
        ratio = cand[name] / base[name]
        flag = ""
        if max(base_threads.get(name, 1), cand_threads.get(name, 1)) > 1:
            # Multi-thread rates are a property of the measuring
            # host's CPU count; the scaling gate below judges them
            # against the candidate's own single-thread rate instead.
            flag = "  (threads>1: informational)"
        elif ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: {base[name]:.0f} -> {cand[name]:.0f} "
                f"cycles/sec ({(1.0 - ratio) * 100.0:.1f}% slower)"
            )
            flag = "  << REGRESSION"
        print(
            f"{name:<{width}}{base[name]:>14.0f}"
            f"{cand[name]:>15.0f}{ratio:>8.2f}{flag}"
        )
    for name in sorted(set(cand) - set(base)):
        print(f"{name:<{width}}{'absent':>14}{cand[name]:>15.0f}")

    print()
    failures += scaling_failures(
        cand, cand_threads, cand_cpus, args.min_scaling
    )
    failures += required_failures

    if failures:
        print(f"\nFAIL: {len(failures)} gate violation(s):")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"\nOK: no scenario more than {args.threshold * 100:.0f}% slow")
    return 0


if __name__ == "__main__":
    sys.exit(main())
