#!/usr/bin/env python3
"""Compare two micro_sim benchmark JSON files.

Prints a per-scenario table of cycles/sec in the baseline and the
candidate with the ratio, and exits non-zero when any scenario's
cycles/sec falls more than the threshold (default 30%) below the
baseline. The generous default absorbs machine-to-machine and
run-to-run noise — the gate exists to catch order-of-magnitude
mistakes (an accidentally quadratic scan, a lost fast path), not
single-digit drift.

Usage: perf_compare.py BASELINE CANDIDATE [--threshold FRACTION]
Exit status: 0 when no scenario regresses past the threshold,
1 on regression, 2 on malformed input.
"""

import argparse
import json
import sys


def load_cases(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"perf_compare: cannot read {path}: {e}")
    if doc.get("benchmark") != "micro_sim":
        sys.exit(f"perf_compare: {path} is not a micro_sim result")
    cases = {}
    for case in doc.get("cases", []):
        try:
            cases[case["name"]] = float(case["cycles_per_sec"])
        except (KeyError, TypeError, ValueError):
            sys.exit(f"perf_compare: malformed case in {path}: {case}")
    if not cases:
        sys.exit(f"perf_compare: {path} contains no cases")
    return cases


def main():
    parser = argparse.ArgumentParser(
        description="Gate a micro_sim run against a baseline."
    )
    parser.add_argument("baseline", help="baseline micro_sim JSON")
    parser.add_argument("candidate", help="candidate micro_sim JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional slowdown (default 0.30)",
    )
    args = parser.parse_args()
    if not 0.0 < args.threshold < 1.0:
        parser.error("--threshold must be in (0, 1)")

    base = load_cases(args.baseline)
    cand = load_cases(args.candidate)

    width = max(len(n) for n in base) + 2
    print(
        f"{'scenario':<{width}}{'baseline c/s':>14}"
        f"{'candidate c/s':>15}{'ratio':>8}"
    )
    failures = []
    for name in sorted(base):
        if name not in cand:
            failures.append(f"{name}: missing from candidate")
            print(f"{name:<{width}}{base[name]:>14.0f}{'absent':>15}")
            continue
        ratio = cand[name] / base[name]
        flag = ""
        if ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: {base[name]:.0f} -> {cand[name]:.0f} "
                f"cycles/sec ({(1.0 - ratio) * 100.0:.1f}% slower)"
            )
            flag = "  << REGRESSION"
        print(
            f"{name:<{width}}{base[name]:>14.0f}"
            f"{cand[name]:>15.0f}{ratio:>8.2f}{flag}"
        )
    for name in sorted(set(cand) - set(base)):
        print(f"{name:<{width}}{'absent':>14}{cand[name]:>15.0f}")

    if failures:
        print(
            f"\nFAIL: {len(failures)} scenario(s) regressed past "
            f"{args.threshold * 100:.0f}%:"
        )
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"\nOK: no scenario more than {args.threshold * 100:.0f}% slow")
    return 0


if __name__ == "__main__":
    sys.exit(main())
