#!/usr/bin/env python3
"""Validate a turnmodel binary injection trace (traffic/trace.hpp).

Checks the on-disk format written by InjectionTrace::save:

  offset 0   8 bytes   magic "TMTRACE1"
  offset 8   8 bytes   u64 record count (little-endian)
  offset 16  20 bytes  per record: u64 cycle, u32 src, u32 dest,
                       u32 length (all little-endian)

Verified properties: magic, exact file size (header + count * 20, no
trailing bytes), chronological cycles, positive packet lengths, and —
the round-trip guarantee the replay workload relies on — that
re-encoding the parsed records reproduces the input byte for byte.
With --nodes N, src/dest must also be < N and src != dest.

Usage: validate_trace_format.py FILE [--nodes N]
Exit status 0 on success; 1 with a message on the first violation.
"""

import argparse
import struct
import sys

MAGIC = b"TMTRACE1"
HEADER = struct.Struct("<8sQ")
RECORD = struct.Struct("<QIII")


class Invalid(Exception):
    pass


def parse(data):
    if len(data) < HEADER.size:
        raise Invalid(f"file too short for header ({len(data)} bytes)")
    magic, count = HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise Invalid(f"bad magic {magic!r}")
    expected = HEADER.size + count * RECORD.size
    if len(data) != expected:
        raise Invalid(
            f"size mismatch: {len(data)} bytes for {count} records "
            f"(expected {expected})"
        )
    records = []
    prev_cycle = 0
    for i in range(count):
        cycle, src, dest, length = RECORD.unpack_from(
            data, HEADER.size + i * RECORD.size
        )
        if cycle < prev_cycle:
            raise Invalid(f"record {i}: cycle {cycle} < {prev_cycle} "
                          "(not chronological)")
        if length == 0:
            raise Invalid(f"record {i}: zero-length packet")
        prev_cycle = cycle
        records.append((cycle, src, dest, length))
    return records


def encode(records):
    out = bytearray(HEADER.pack(MAGIC, len(records)))
    for rec in records:
        out += RECORD.pack(*rec)
    return bytes(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--nodes", type=int, metavar="N",
                        help="check endpoints against a node count")
    args = parser.parse_args()

    with open(args.file, "rb") as fh:
        data = fh.read()

    try:
        records = parse(data)
        if args.nodes is not None:
            for i, (cycle, src, dest, length) in enumerate(records):
                if src >= args.nodes or dest >= args.nodes:
                    raise Invalid(
                        f"record {i}: endpoint ({src}, {dest}) outside "
                        f"{args.nodes} nodes"
                    )
                if src == dest:
                    raise Invalid(f"record {i}: self-directed packet")
        if encode(records) != data:
            raise Invalid("re-encoded bytes differ from input "
                          "(round trip not exact)")
    except Invalid as err:
        print(f"{args.file}: INVALID: {err}", file=sys.stderr)
        return 1

    print(f"{args.file}: OK ({len(records)} record(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
