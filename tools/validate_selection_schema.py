#!/usr/bin/env python3
"""Validate a turnmodel selection-ablation JSON document.

Checks a "turnmodel-sel-ablation-v1" document (bench/ablation_selection
--json=PATH): required keys and types, non-empty declared grid axes,
per-row fields and value ranges, every row's (pattern, algorithm,
selection_policy) drawn from the declared axes, and grid completeness —
exactly one row per declared (pattern, algorithm, policy) cell, so a
silently dropped cell fails CI instead of shrinking the grid.

Deterministic-control check: the "xy" algorithm routes with singleton
candidate sets, so (when present in the grid) its rows must be
identical across selection policies within each pattern — a cheap
end-to-end proof that the policy layer only acts on real choices.

Usage: validate_selection_schema.py FILE
Exit status 0 on success; 1 with a message on the first violation.
"""

import argparse
import json
import sys


class Invalid(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Invalid(msg)


def check_keys(obj, spec, where):
    require(isinstance(obj, dict), f"{where}: expected object")
    for key, types in spec.items():
        require(key in obj, f"{where}: missing key '{key}'")
        require(
            isinstance(obj[key], types),
            f"{where}: '{key}' has type {type(obj[key]).__name__}",
        )


def check_axis(doc, key):
    axis = doc[key]
    require(axis, f"{key}: empty axis")
    for name in axis:
        require(isinstance(name, str) and name,
                f"{key}: bad entry {name!r}")
    require(len(set(axis)) == len(axis), f"{key}: duplicate entries")
    return axis


def check_row(row, i, patterns, algorithms, policies):
    where = f"rows[{i}]"
    check_keys(
        row,
        {
            "pattern": str,
            "algorithm": str,
            "selection_policy": str,
            "injection_rate": (int, float),
            "throughput_flits_per_us": (int, float),
            "avg_latency_us": (int, float),
            "delivered_ratio": (int, float),
            "saturated": bool,
        },
        where,
    )
    require(row["pattern"] in patterns,
            f"{where}: undeclared pattern '{row['pattern']}'")
    require(row["algorithm"] in algorithms,
            f"{where}: undeclared algorithm '{row['algorithm']}'")
    require(row["selection_policy"] in policies,
            f"{where}: undeclared policy '{row['selection_policy']}'")
    require(row["injection_rate"] > 0.0,
            f"{where}: non-positive injection_rate")
    require(row["throughput_flits_per_us"] >= 0.0,
            f"{where}: negative throughput")
    require(row["avg_latency_us"] >= 0.0, f"{where}: negative latency")
    require(0.0 <= row["delivered_ratio"] <= 1.0 + 1e-9,
            f"{where}: delivered_ratio {row['delivered_ratio']} "
            "outside [0, 1]")


def check_control_rows(rows, patterns, policies):
    """xy rows must not vary with the selection policy."""
    for pattern in patterns:
        reference = None
        for row in rows:
            if row["algorithm"] != "xy" or row["pattern"] != pattern:
                continue
            signature = (
                row["injection_rate"],
                row["throughput_flits_per_us"],
                row["avg_latency_us"],
                row["delivered_ratio"],
                row["saturated"],
            )
            if reference is None:
                reference = (row["selection_policy"], signature)
            else:
                require(
                    signature == reference[1],
                    f"xy/{pattern}: policy "
                    f"'{row['selection_policy']}' differs from "
                    f"'{reference[0]}' despite singleton candidate "
                    "sets",
                )


def check_doc(doc):
    check_keys(
        doc,
        {
            "schema": str,
            "topology": str,
            "patterns": list,
            "algorithms": list,
            "policies": list,
            "rows": list,
        },
        "doc",
    )
    require(doc["schema"] == "turnmodel-sel-ablation-v1",
            f"doc: schema is '{doc['schema']}'")
    patterns = check_axis(doc, "patterns")
    algorithms = check_axis(doc, "algorithms")
    policies = check_axis(doc, "policies")

    seen = {}
    for i, row in enumerate(doc["rows"]):
        check_row(row, i, patterns, algorithms, policies)
        cell = (row["pattern"], row["algorithm"],
                row["selection_policy"])
        require(cell not in seen,
                f"rows[{i}]: duplicate cell {cell} "
                f"(first at rows[{seen.get(cell)}])")
        seen[cell] = i

    for pattern in patterns:
        for algorithm in algorithms:
            for policy in policies:
                cell = (pattern, algorithm, policy)
                require(cell in seen, f"grid incomplete: no row for "
                        f"{cell}")

    check_control_rows(doc["rows"], patterns, policies)
    return len(doc["rows"])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    args = parser.parse_args()

    with open(args.file) as fh:
        doc = json.load(fh)

    try:
        rows = check_doc(doc)
    except Invalid as err:
        print(f"{args.file}: INVALID: {err}", file=sys.stderr)
        return 1

    print(f"{args.file}: OK ({rows} row(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
