/**
 * @file
 * Tests for the time-series sampler: window bookkeeping in isolation
 * and the sample series a Simulator produces when the stride knob is
 * set — contiguous windows covering the measurement span, per-window
 * deliveries summing to the run total, and the p99 clamp flag
 * propagating from the histogram.
 */

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "obs/sampler.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {
namespace {

TEST(TimeSeriesSampler, ClosesContiguousWindowsOnStride)
{
    TimeSeriesSampler sampler(100, 50, 1000.0);
    sampler.onCompletion(10.0);
    sampler.onCompletion(20.0);
    for (std::uint64_t now = 101; now <= 160; ++now)
        sampler.onCycle(now, /*flits=*/now - 100, /*queue=*/3);

    ASSERT_EQ(sampler.samples().size(), 1u);
    const WindowSample &w = sampler.samples()[0];
    EXPECT_EQ(w.start_cycle, 100u);
    EXPECT_EQ(w.end_cycle, 150u);
    EXPECT_EQ(w.packets_completed, 2u);
    EXPECT_EQ(w.flits_delivered, 50u);
    EXPECT_DOUBLE_EQ(w.latency_mean_cycles, 15.0);
    EXPECT_DOUBLE_EQ(w.latency_max_cycles, 20.0);
    EXPECT_FALSE(w.latency_p99_clamped);
    EXPECT_EQ(w.source_queue_packets, 3u);
}

TEST(TimeSeriesSampler, FinishClosesPartialWindow)
{
    TimeSeriesSampler sampler(0, 100, 1000.0);
    sampler.onCompletion(5.0);
    sampler.onCycle(60, 7, 0);
    ASSERT_TRUE(sampler.samples().empty());
    sampler.finish(60, 7, 0);
    ASSERT_EQ(sampler.samples().size(), 1u);
    EXPECT_EQ(sampler.samples()[0].start_cycle, 0u);
    EXPECT_EQ(sampler.samples()[0].end_cycle, 60u);
    EXPECT_EQ(sampler.samples()[0].flits_delivered, 7u);
    // Finishing exactly on a closed boundary adds nothing.
    sampler.finish(60, 7, 0);
    EXPECT_EQ(sampler.samples().size(), 1u);
}

TEST(TimeSeriesSampler, FlagsClampedWindowP99)
{
    TimeSeriesSampler sampler(0, 10, /*latency_hi=*/50.0);
    for (int i = 0; i < 20; ++i)
        sampler.onCompletion(500.0);   // All beyond the histogram.
    sampler.onCycle(10, 20, 0);
    ASSERT_EQ(sampler.samples().size(), 1u);
    EXPECT_TRUE(sampler.samples()[0].latency_p99_clamped);
    EXPECT_DOUBLE_EQ(sampler.samples()[0].latency_p99_cycles, 50.0);
    // The true maximum is still reported unclamped alongside.
    EXPECT_DOUBLE_EQ(sampler.samples()[0].latency_max_cycles, 500.0);
}

// ----- through the Simulator -----------------------------------------

TEST(TimeSeriesSampler, SimulatorSeriesCoversMeasurementWindow)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig config;
    config.injection_rate = 0.05;
    config.warmup_cycles = 500;
    config.measure_cycles = 2000;
    config.obs.sample_stride = 250;

    Simulator sim(*routing, *pattern, config);
    const SimResult result = sim.run();
    ASSERT_FALSE(result.deadlocked);

    const ObsReport report = sim.obsReport();
    ASSERT_EQ(report.samples.size(), 8u);
    std::uint64_t delivered_in_windows = 0;
    for (std::size_t i = 0; i < report.samples.size(); ++i) {
        const WindowSample &w = report.samples[i];
        EXPECT_EQ(w.end_cycle - w.start_cycle, 250u);
        if (i > 0)
            EXPECT_EQ(w.start_cycle, report.samples[i - 1].end_cycle);
        delivered_in_windows += w.flits_delivered;
    }
    EXPECT_EQ(report.samples.front().start_cycle, 500u);
    EXPECT_EQ(report.samples.back().end_cycle, 2500u);
    EXPECT_GT(delivered_in_windows, 0u);
}

TEST(TimeSeriesSampler, SamplerDoesNotPerturbResults)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    PatternPtr pattern = makePattern("transpose", mesh);
    SimConfig config;
    config.injection_rate = 0.06;
    config.warmup_cycles = 500;
    config.measure_cycles = 2000;

    RoutingPtr r1 = makeRouting("west-first", mesh);
    Simulator plain(*r1, *pattern, config);
    const SimResult without = plain.run();

    config.obs.sample_stride = 100;
    config.obs.channel_counters = true;
    config.obs.trace_capacity = 256;
    RoutingPtr r2 = makeRouting("west-first", mesh);
    Simulator observed(*r2, *pattern, config);
    const SimResult with = observed.run();

    EXPECT_EQ(without.packets_measured, with.packets_measured);
    EXPECT_DOUBLE_EQ(without.avg_latency_us, with.avg_latency_us);
    EXPECT_DOUBLE_EQ(without.throughput_flits_per_us,
                     with.throughput_flits_per_us);
    EXPECT_DOUBLE_EQ(without.p99_latency_us, with.p99_latency_us);
    EXPECT_EQ(without.saturated, with.saturated);
}

} // namespace
} // namespace turnmodel
