/**
 * @file
 * Unit tests for the per-channel counter arrays, plus the flit
 * conservation law they must obey when wired into a Network: every
 * flit of every delivered packet crosses exactly `hops` network
 * channels and one ejection channel, so the counters must sum to the
 * hops-weighted (respectively plain) flit totals of the completions.
 */

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "obs/channel_stats.hpp"
#include "obs/report.hpp"
#include "sim/network.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TEST(ChannelStats, CountsForwardsPerPort)
{
    ChannelStats stats(4);
    stats.recordForward(1, 10);
    stats.recordForward(1, 11);
    stats.recordForward(3, 10);
    EXPECT_EQ(stats.flitsForwarded(0), 0u);
    EXPECT_EQ(stats.flitsForwarded(1), 2u);
    EXPECT_EQ(stats.flitsForwarded(3), 1u);
    EXPECT_EQ(stats.totalFlitsForwarded(), 3u);
}

TEST(ChannelStats, BusySplitsIntoBlockedByForwardStamp)
{
    ChannelStats stats(2);
    // Cycle 5: held and forwarding — busy but not blocked.
    stats.recordForward(0, 5);
    stats.recordHeld(0, 5);
    // Cycle 6: held with no flit crossing — busy and blocked.
    stats.recordHeld(0, 6);
    EXPECT_EQ(stats.busyCycles(0), 2u);
    EXPECT_EQ(stats.blockedCycles(0), 1u);
}

TEST(ChannelStats, PeakOccupancyIsMaximum)
{
    ChannelStats stats(2);
    stats.recordOccupancy(1, 2);
    stats.recordOccupancy(1, 5);
    stats.recordOccupancy(1, 3);
    EXPECT_EQ(stats.peakOccupancy(1), 5u);
    EXPECT_EQ(stats.peakOccupancy(0), 0u);
}

TEST(ChannelStats, TickCountsObservedCycles)
{
    ChannelStats stats(1);
    stats.tick();
    stats.tick();
    EXPECT_EQ(stats.observedCycles(), 2u);
}

// ----- conservation against a live network ---------------------------

class SilentPattern : public TrafficPattern
{
  public:
    std::optional<NodeId> destination(NodeId, Rng &) const override
    {
        return std::nullopt;
    }
    std::string name() const override { return "silent"; }
    bool isDeterministic() const override { return true; }
};

TEST(ChannelStats, NetworkCountersConserveFlits)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    SilentPattern pattern;
    SimConfig config;
    config.obs.channel_counters = true;
    Network net(*routing, pattern, config);

    // A mixed batch: different sources, destinations, lengths, and
    // hop counts.
    net.post(mesh.node({0, 0}), mesh.node({3, 3}), 7);
    net.post(mesh.node({3, 0}), mesh.node({0, 2}), 1);
    net.post(mesh.node({1, 2}), mesh.node({2, 2}), 12);
    net.post(mesh.node({2, 3}), mesh.node({2, 0}), 3);

    std::vector<Completion> done;
    while (net.now() < 2000) {
        net.step();
        for (auto &c : net.drainCompletions())
            done.push_back(c);
        if (net.counters().flits_in_network == 0 &&
            net.sourceQueuePackets() == 0) {
            break;
        }
    }
    ASSERT_EQ(done.size(), 4u);

    std::uint64_t hop_weighted = 0;
    std::uint64_t flits = 0;
    for (const Completion &c : done) {
        hop_weighted += static_cast<std::uint64_t>(c.length) * c.hops;
        flits += c.length;
    }

    ObsReport report;
    net.fillObsReport(report);
    std::uint64_t network_flits = 0;
    std::uint64_t eject_flits = 0;
    for (const ChannelUtilRow &row : report.channels) {
        if (row.dir == "eject")
            eject_flits += row.flits_forwarded;
        else
            network_flits += row.flits_forwarded;
    }
    // Every flit crosses `hops` network channels and one ejection
    // channel — the conservation law of the counter layer.
    EXPECT_EQ(network_flits, hop_weighted);
    EXPECT_EQ(eject_flits, flits);
}

TEST(ChannelStats, PeakOccupancyBoundedByBufferDepth)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    SilentPattern pattern;
    SimConfig config;
    config.buffer_depth = 2;
    config.obs.channel_counters = true;
    Network net(*routing, pattern, config);
    // Cross traffic through the mesh center to force contention.
    for (int i = 0; i < 4; ++i) {
        net.post(mesh.node({0, i}), mesh.node({3, i}), 20);
        net.post(mesh.node({i, 0}), mesh.node({i, 3}), 20);
    }
    while (net.now() < 3000 &&
           (net.counters().flits_in_network > 0 ||
            net.sourceQueuePackets() > 0 ||
            net.counters().packets_delivered < 8)) {
        net.step();
    }
    ObsReport report;
    net.fillObsReport(report);
    std::uint32_t peak = 0;
    for (const ChannelUtilRow &row : report.channels)
        peak = std::max(peak, row.peak_occupancy);
    EXPECT_GT(peak, 0u);
    EXPECT_LE(peak, config.buffer_depth);
}

} // namespace
} // namespace turnmodel
