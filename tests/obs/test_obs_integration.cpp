/**
 * @file
 * Integration tests of the observability layer: enabling it must not
 * change simulation results by a single byte, the parallel obs study
 * must be deterministic at any job count, and the exported report
 * must have the advertised shape (one row per directed mesh channel
 * plus one eject row per node).
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "core/routing/factory.hpp"
#include "exec/result_sink.hpp"
#include "exec/runner.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

ExperimentSpec
obsSpec(const Topology &topo)
{
    ExperimentSpec spec;
    spec.name = "obs-integration";
    spec.topology = &topo;
    spec.pattern = "transpose";
    spec.algorithms = {"xy", "west-first"};
    spec.injection_rates = {0.02, 0.05};
    spec.sim.warmup_cycles = 500;
    spec.sim.measure_cycles = 1500;
    return spec;
}

std::string
seriesJson(const ExperimentResult &result)
{
    std::ostringstream os;
    writeSeriesJson(os, result.experiment, result.series);
    return os.str();
}

std::string
obsJson(const ObsStudy &study)
{
    std::ostringstream os;
    ResultSink::writeObsJson(os, study);
    return os.str();
}

TEST(ObsIntegration, SweepBytesIdenticalWithObservabilityOn)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    const ExperimentSpec off = obsSpec(mesh);

    ExperimentSpec on = obsSpec(mesh);
    on.sim.obs.channel_counters = true;
    on.sim.obs.sample_stride = 100;
    on.sim.obs.trace_capacity = 512;

    Runner runner(4);
    EXPECT_EQ(seriesJson(runner.run(off)), seriesJson(runner.run(on)));
}

TEST(ObsIntegration, ObsStudyByteIdenticalAcrossJobCounts)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    const ExperimentSpec spec = obsSpec(mesh);
    ObsConfig obs;
    obs.channel_counters = true;
    obs.sample_stride = 200;
    obs.trace_capacity = 128;

    const std::string serial =
        obsJson(Runner(1).runObs(spec, 0.05, obs));
    EXPECT_EQ(serial, obsJson(Runner(4).runObs(spec, 0.05, obs)));
    EXPECT_EQ(serial, obsJson(Runner(8).runObs(spec, 0.05, obs)));
}

TEST(ObsIntegration, ReportHasOneRowPerDirectedChannelPlusEject)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ExperimentSpec spec = obsSpec(mesh);
    spec.algorithms = {"xy"};
    ObsConfig obs;
    obs.channel_counters = true;

    const ObsStudy study = Runner(1).runObs(spec, 0.05, obs);
    ASSERT_EQ(study.runs.size(), 1u);
    const ObsReport &report = study.runs[0].report;

    // 4x4 mesh: 2*(3*4 + 4*3) = 48 directed network channels plus 16
    // ejection channels.
    EXPECT_EQ(report.channels.size(), 64u);
    std::size_t ejects = 0;
    std::set<std::pair<NodeId, std::string>> keys;
    for (const ChannelUtilRow &row : report.channels) {
        EXPECT_LT(row.node, 16u);
        ASSERT_EQ(row.coords.size(), 2u);
        EXPECT_GE(row.coords[0], 0);
        EXPECT_LT(row.coords[0], 4);
        EXPECT_GE(row.coords[1], 0);
        EXPECT_LT(row.coords[1], 4);
        EXPECT_GE(row.utilization, 0.0);
        EXPECT_LE(row.utilization, 1.0);
        EXPECT_LE(row.blocked_cycles, row.busy_cycles);
        if (row.dir == "eject")
            ++ejects;
        keys.insert({row.node, row.dir});
    }
    EXPECT_EQ(ejects, 16u);
    // (node, dir) keys are unique.
    EXPECT_EQ(keys.size(), report.channels.size());
    EXPECT_EQ(report.observed_cycles,
              spec.sim.warmup_cycles + spec.sim.measure_cycles);
}

TEST(ObsIntegration, StudyJsonCarriesSchemaAndRuns)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ExperimentSpec spec = obsSpec(mesh);
    ObsConfig obs;
    obs.channel_counters = true;
    obs.sample_stride = 500;

    const ObsStudy study = Runner(2).runObs(spec, 0.05, obs);
    const std::string json = obsJson(study);
    EXPECT_NE(json.find("\"schema\": \"turnmodel-obs-study-v3\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schema\": \"turnmodel-obs-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"trace_dropped\""), std::string::npos);
    EXPECT_NE(json.find("\"algorithm\": \"xy\""), std::string::npos);
    EXPECT_NE(json.find("\"algorithm\": \"west-first\""),
              std::string::npos);
    EXPECT_NE(json.find("\"delivered_ratio\""), std::string::npos);
    EXPECT_NE(json.find("\"p99_latency_clamped\""), std::string::npos);

    std::ostringstream csv;
    ResultSink::writeObsCsv(csv, study);
    // Header plus one row per (run, channel).
    std::size_t lines = 0;
    for (char c : csv.str())
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 1u + 2u * 64u);
}

TEST(ObsIntegration, DefaultConfigBuildsNoObserver)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig config;
    config.warmup_cycles = 100;
    config.measure_cycles = 200;
    Simulator sim(*routing, *pattern, config);
    (void)sim.run();
    EXPECT_EQ(sim.network().observer(), nullptr);
    EXPECT_TRUE(sim.obsReport().empty());
}

} // namespace
} // namespace turnmodel
