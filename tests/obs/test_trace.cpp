/**
 * @file
 * Tests for the bounded packet event trace: ring-buffer mechanics in
 * isolation, and the inject/route/deliver event stream a Network
 * emits for a packet with a known path.
 */

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TraceEvent
event(std::uint64_t cycle, std::int64_t packet)
{
    TraceEvent e;
    e.cycle = cycle;
    e.packet = packet;
    return e;
}

TEST(PacketTrace, KeepsEverythingUnderCapacity)
{
    PacketTrace trace(4);
    trace.record(event(1, 10));
    trace.record(event(2, 11));
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.dropped(), 0u);
    const auto events = trace.chronological();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].cycle, 1u);
    EXPECT_EQ(events[1].cycle, 2u);
}

TEST(PacketTrace, OverwritesOldestOnceFull)
{
    PacketTrace trace(3);
    for (std::uint64_t c = 1; c <= 5; ++c)
        trace.record(event(c, static_cast<std::int64_t>(c)));
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.dropped(), 2u);
    const auto events = trace.chronological();
    ASSERT_EQ(events.size(), 3u);
    // The three newest survive, oldest first.
    EXPECT_EQ(events[0].cycle, 3u);
    EXPECT_EQ(events[1].cycle, 4u);
    EXPECT_EQ(events[2].cycle, 5u);
}

TEST(TraceEventKind, Names)
{
    EXPECT_STREQ(toString(TraceEventKind::Inject), "inject");
    EXPECT_STREQ(toString(TraceEventKind::Route), "route");
    EXPECT_STREQ(toString(TraceEventKind::Deliver), "deliver");
}

// ----- against a live network ----------------------------------------

class SilentPattern : public TrafficPattern
{
  public:
    std::optional<NodeId> destination(NodeId, Rng &) const override
    {
        return std::nullopt;
    }
    std::string name() const override { return "silent"; }
    bool isDeterministic() const override { return true; }
};

TEST(PacketTrace, NetworkEmitsInjectRouteDeliverSequence)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    SilentPattern pattern;
    SimConfig config;
    config.obs.trace_capacity = 64;
    Network net(*routing, pattern, config);

    const NodeId src = mesh.node({0, 0});
    const NodeId dst = mesh.node({2, 1});
    const PacketId id = net.post(src, dst, 4);

    std::vector<Completion> done;
    while (net.now() < 500 && done.empty()) {
        net.step();
        for (auto &c : net.drainCompletions())
            done.push_back(c);
    }
    ASSERT_EQ(done.size(), 1u);

    ObsReport report;
    net.fillObsReport(report);
    ASSERT_FALSE(report.trace.empty());
    EXPECT_EQ(report.trace_dropped, 0u);

    std::size_t injects = 0, routes = 0, delivers = 0;
    for (const TraceEvent &e : report.trace) {
        EXPECT_EQ(e.packet, static_cast<std::int64_t>(id));
        switch (e.kind) {
        case TraceEventKind::Inject:
            ++injects;
            EXPECT_EQ(e.node, src);
            break;
        case TraceEventKind::Route:
            ++routes;
            break;
        case TraceEventKind::Deliver:
            ++delivers;
            EXPECT_EQ(e.node, dst);
            break;
        }
    }
    EXPECT_EQ(injects, 1u);
    EXPECT_EQ(delivers, 1u);
    // One route event per header channel crossing.
    EXPECT_EQ(routes, done[0].hops);

    // Chronological: inject first, deliver last.
    EXPECT_EQ(report.trace.front().kind, TraceEventKind::Inject);
    EXPECT_EQ(report.trace.back().kind, TraceEventKind::Deliver);
    for (std::size_t i = 1; i < report.trace.size(); ++i)
        EXPECT_GE(report.trace[i].cycle, report.trace[i - 1].cycle);
}

TEST(PacketTrace, RingKeepsMostRecentHistoryUnderOverflow)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    SilentPattern pattern;
    SimConfig config;
    config.obs.trace_capacity = 8;   // Far smaller than the event count.
    Network net(*routing, pattern, config);

    for (int i = 0; i < 4; ++i)
        net.post(mesh.node({0, i}), mesh.node({3, i}), 6);
    while (net.now() < 1000 && net.counters().packets_delivered < 4)
        net.step();

    ObsReport report;
    net.fillObsReport(report);
    EXPECT_EQ(report.trace.size(), 8u);
    EXPECT_GT(report.trace_dropped, 0u);
    // The last event of the run must still be present.
    EXPECT_EQ(report.trace.back().kind, TraceEventKind::Deliver);
}

} // namespace
} // namespace turnmodel
