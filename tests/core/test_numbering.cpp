/**
 * @file
 * Tests for the explicit channel numbering schemes of Theorems 2 and
 * 5: the numbers must change strictly monotonically along every
 * realizable channel dependency, which is the Dally-Seitz criterion
 * the paper's proofs invoke.
 */

#include <gtest/gtest.h>

#include "core/numbering.hpp"
#include "core/routing/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TEST(Numbering, Theorem5CertifiesNegativeFirst2D)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    const auto numbering = theorem5Numbering(mesh);
    EXPECT_TRUE(verifyMonotone(*makeRouting("negative-first", mesh),
                               numbering,
                               Monotonic::StrictlyIncreasing));
}

TEST(Numbering, Theorem5CertifiesNegativeFirst3D)
{
    NDMesh mesh(Shape{4, 3, 3});
    const auto numbering = theorem5Numbering(mesh);
    EXPECT_TRUE(verifyMonotone(*makeRouting("negative-first", mesh),
                               numbering,
                               Monotonic::StrictlyIncreasing));
}

TEST(Numbering, Theorem5CertifiesPCube)
{
    // p-cube is the hypercube special case of negative-first, so the
    // same numbering applies (Section 5).
    Hypercube cube(5);
    const auto numbering = theorem5Numbering(cube);
    EXPECT_TRUE(verifyMonotone(*makeRouting("p-cube", cube), numbering,
                               Monotonic::StrictlyIncreasing));
}

TEST(Numbering, Theorem5ValuesMatchFormula)
{
    // Positive channels K-n+X, negative channels K-n-X.
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const auto numbering = theorem5Numbering(mesh);
    const ChannelSpace space(mesh);
    const int big_k = 8, n = 2;
    const NodeId node = mesh.node({1, 2});   // X = 3.
    EXPECT_EQ(numbering[space.id(node, dir2d::East)], big_k - n + 3);
    EXPECT_EQ(numbering[space.id(node, dir2d::North)], big_k - n + 3);
    EXPECT_EQ(numbering[space.id(node, dir2d::West)], big_k - n - 3);
    EXPECT_EQ(numbering[space.id(node, dir2d::South)], big_k - n - 3);
}

TEST(Numbering, Theorem5DoesNotCertifyXy)
{
    // xy turns from y back to x rise against the negative-first
    // ordering, so this numbering must not certify it... except that
    // xy only turns x -> y, which *is* compatible. Use north-last,
    // whose west-after-south turns break monotonicity.
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    const auto numbering = theorem5Numbering(mesh);
    EXPECT_FALSE(verifyMonotone(*makeRouting("north-last", mesh),
                                numbering,
                                Monotonic::StrictlyIncreasing));
}

TEST(Numbering, WestFirstNumberingCertifiesWestFirst)
{
    for (auto [m, n] : {std::pair{4, 4}, std::pair{6, 6},
                        std::pair{8, 5}, std::pair{3, 7}}) {
        NDMesh mesh = NDMesh::mesh2D(m, n);
        const auto numbering = westFirstNumbering(mesh);
        EXPECT_TRUE(verifyMonotone(*makeRouting("west-first", mesh),
                                   numbering,
                                   Monotonic::StrictlyDecreasing))
            << m << "x" << n;
    }
}

TEST(Numbering, WestFirstNumberingAlsoCertifiesXy)
{
    // xy's turns are a subset of west-first's, so the same numbering
    // certifies it.
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    EXPECT_TRUE(verifyMonotone(*makeRouting("xy", mesh),
                               westFirstNumbering(mesh),
                               Monotonic::StrictlyDecreasing));
}

TEST(Numbering, WestFirstNumberingRejectsNorthLast)
{
    // North-last allows east-after-south turns... those are allowed
    // by west-first too; the distinguishing turn is west-after-north
    // is prohibited in both. North-last permits turns *into* west
    // from nothing... Actually north-last permits west after south?
    // No: north-last prohibits only turns out of north. It allows
    // south->west, which west-first prohibits; that dependency rises.
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    EXPECT_FALSE(verifyMonotone(*makeRouting("north-last", mesh),
                                westFirstNumbering(mesh),
                                Monotonic::StrictlyDecreasing));
}

TEST(Numbering, WestwardChannelsAboveAllOthers)
{
    NDMesh mesh = NDMesh::mesh2D(6, 4);
    const auto numbering = westFirstNumbering(mesh);
    const ChannelSpace space(mesh);
    std::int64_t min_west = INT64_MAX, max_other = INT64_MIN;
    for (ChannelId ch : space.channels()) {
        if (space.direction(ch) == dir2d::West)
            min_west = std::min(min_west, numbering[ch]);
        else
            max_other = std::max(max_other, numbering[ch]);
    }
    EXPECT_GT(min_west, max_other);
}

TEST(Numbering, WestwardNumbersDecreaseGoingWest)
{
    NDMesh mesh = NDMesh::mesh2D(6, 4);
    const auto numbering = westFirstNumbering(mesh);
    const ChannelSpace space(mesh);
    for (int x = 2; x < 6; ++x) {
        EXPECT_LT(numbering[space.id(mesh.node({x - 1, 1}), dir2d::West)],
                  numbering[space.id(mesh.node({x, 1}), dir2d::West)]);
    }
}

} // namespace
} // namespace turnmodel
