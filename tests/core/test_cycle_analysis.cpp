/**
 * @file
 * Tests for abstract-cycle analysis and the 2D symmetry reduction —
 * the combinatorial backbone of Section 3: sixteen ways to prohibit
 * one turn per cycle, twelve deadlock free, three unique under
 * symmetry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/cycle_analysis.hpp"

namespace turnmodel {
namespace {

TEST(CycleAnalysis, CycleCounts)
{
    // n(n-1) abstract cycles of four turns each (Section 2).
    EXPECT_EQ(countAbstractCycles(2), 2);
    EXPECT_EQ(countAbstractCycles(3), 6);
    EXPECT_EQ(countAbstractCycles(8), 56);
    for (int n : {2, 3, 4, 8}) {
        EXPECT_EQ(static_cast<int>(abstractCycles(n).size()),
                  countAbstractCycles(n));
    }
}

TEST(CycleAnalysis, EachPlaneHasBothSenses)
{
    const auto cycles = abstractCycles(3);
    int cw = 0, ccw = 0;
    for (const auto &c : cycles) {
        EXPECT_LT(c.dim_low, c.dim_high);
        if (c.sense == TurnSense::Clockwise)
            ++cw;
        else
            ++ccw;
    }
    EXPECT_EQ(cw, 3);
    EXPECT_EQ(ccw, 3);
}

TEST(CycleAnalysis, CycleTurnsMatchTheirSense)
{
    for (const auto &cycle : abstractCycles(4)) {
        for (const Turn &t : cycle.turns)
            EXPECT_EQ(t.sense(), cycle.sense);
    }
}

TEST(CycleAnalysis, CycleTurnsChain)
{
    // Each turn's destination direction is the next turn's source.
    for (const auto &cycle : abstractCycles(3)) {
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(cycle.turns[i].to, cycle.turns[(i + 1) % 4].from);
    }
}

TEST(CycleAnalysis, MinimumProhibitedIsQuarter)
{
    for (int n : {2, 3, 4, 8}) {
        EXPECT_EQ(minimumProhibitedTurns(n), n * (n - 1));
        EXPECT_EQ(4 * minimumProhibitedTurns(n), count90DegreeTurns(n));
    }
}

TEST(CycleAnalysis, FactoriesBreakAllCycles)
{
    for (int n : {2, 3, 4}) {
        EXPECT_TRUE(breaksAllAbstractCycles(TurnSet::negativeFirst(n), n));
        EXPECT_TRUE(breaksAllAbstractCycles(
            TurnSet::allButOneNegativeFirst(n), n));
        EXPECT_TRUE(breaksAllAbstractCycles(
            TurnSet::allButOnePositiveLast(n), n));
        EXPECT_TRUE(breaksAllAbstractCycles(TurnSet::dimensionOrder(n),
                                            n));
    }
    EXPECT_TRUE(breaksAllAbstractCycles(TurnSet::westFirst(), 2));
    EXPECT_TRUE(breaksAllAbstractCycles(TurnSet::northLast(), 2));
}

TEST(CycleAnalysis, FullSetBreaksNothing)
{
    TurnSet all(2);
    all.allowAll90();
    EXPECT_FALSE(breaksAllAbstractCycles(all, 2));
}

TEST(CycleAnalysis, OneCycleLeftIntactIsDetected)
{
    // Prohibit one turn of the clockwise cycle only.
    TurnSet set(2);
    set.allowAll90();
    set.prohibit(Turn(dir2d::East, dir2d::South));
    EXPECT_FALSE(breaksAllAbstractCycles(set, 2));
}

TEST(CycleAnalysis, AllSixteenPairsBreakAbstractCycles)
{
    // Any one-per-cycle prohibition breaks the *abstract* cycles —
    // the point of Figure 4 is that this is necessary, not
    // sufficient.
    const auto cycles = abstractCycles(2);
    ASSERT_EQ(cycles.size(), 2u);
    for (const Turn &a : cycles[0].turns) {
        for (const Turn &b : cycles[1].turns) {
            EXPECT_TRUE(breaksAllAbstractCycles(
                TurnSet::twoProhibited2D(a, b), 2));
        }
    }
}

TEST(SquareSymmetry, IdentityFixesEverything)
{
    const SquareSymmetry id(0);
    for (Direction d : allDirections(2))
        EXPECT_EQ(id.apply(d), d);
    EXPECT_EQ(id.apply(TurnSet::westFirst()), TurnSet::westFirst());
}

TEST(SquareSymmetry, RotationCyclesDirections)
{
    const SquareSymmetry quarter(1);
    EXPECT_EQ(quarter.apply(dir2d::East), dir2d::North);
    EXPECT_EQ(quarter.apply(dir2d::North), dir2d::West);
    EXPECT_EQ(quarter.apply(dir2d::West), dir2d::South);
    EXPECT_EQ(quarter.apply(dir2d::South), dir2d::East);
}

TEST(SquareSymmetry, ReflectionSwapsNorthSouth)
{
    const SquareSymmetry mirror(4);
    EXPECT_EQ(mirror.apply(dir2d::North), dir2d::South);
    EXPECT_EQ(mirror.apply(dir2d::South), dir2d::North);
    EXPECT_EQ(mirror.apply(dir2d::East), dir2d::East);
    EXPECT_EQ(mirror.apply(dir2d::West), dir2d::West);
}

TEST(SquareSymmetry, GroupActsBijectively)
{
    for (int s = 0; s < SquareSymmetry::groupSize(); ++s) {
        const SquareSymmetry sym(s);
        std::set<DirId> images;
        for (Direction d : allDirections(2))
            images.insert(sym.apply(d).id());
        EXPECT_EQ(images.size(), 4u) << "symmetry " << s;
    }
}

TEST(SquareSymmetry, PreservesTurnKind)
{
    const SquareSymmetry sym(5);
    for (Turn t : all90DegreeTurns(2))
        EXPECT_EQ(sym.apply(t).kind(), TurnKind::Ninety);
}

TEST(SquareSymmetry, OrbitOfWestFirstContainsAnalogs)
{
    // Rotations of west-first give the other "X-first" algorithms;
    // they are all one orbit.
    std::vector<TurnSet> sets{TurnSet::westFirst()};
    const auto reps = symmetryOrbitRepresentatives(sets);
    EXPECT_EQ(reps.size(), 1u);

    bool found_north_last = false;
    for (int s = 0; s < SquareSymmetry::groupSize(); ++s) {
        if (SquareSymmetry(s).apply(TurnSet::westFirst()) ==
            TurnSet::northLast()) {
            found_north_last = true;
        }
    }
    // West-first and north-last are *different* orbits (the paper
    // counts three unique algorithms: WF-type, NL-type, NF).
    EXPECT_FALSE(found_north_last);
}

TEST(Enumeration, CountsOneTurnPerCycleSets)
{
    // 4 choices per abstract cycle, n(n-1) cycles.
    EXPECT_EQ(countOneTurnPerCycleSets(2), 16u);
    EXPECT_EQ(countOneTurnPerCycleSets(3), 4096u);
    EXPECT_EQ(countOneTurnPerCycleSets(4), 16777216u);
}

TEST(Enumeration, OneTurnPerCycleSetsAreDistinctAndValid)
{
    const auto sets = allOneTurnPerCycleSets(2);
    ASSERT_EQ(sets.size(), 16u);
    for (std::size_t i = 0; i < sets.size(); ++i) {
        EXPECT_EQ(sets[i].countProhibited90(), 2);
        EXPECT_TRUE(breaksAllAbstractCycles(sets[i], 2));
        for (std::size_t j = i + 1; j < sets.size(); ++j)
            EXPECT_NE(sets[i], sets[j]);
    }
}

TEST(Enumeration, OneTurnPerCycleIndexingMatchesBatchEnumeration)
{
    const auto sets = allOneTurnPerCycleSets(2);
    for (std::uint64_t i = 0; i < sets.size(); ++i)
        EXPECT_EQ(oneTurnPerCycleSet(2, i), sets[i]);
}

TEST(Enumeration, OneTurnPerCycleFamilyContainsThePapersAlgorithms)
{
    const auto sets = allOneTurnPerCycleSets(2);
    for (const TurnSet &named :
         {TurnSet::westFirst(), TurnSet::northLast(),
          TurnSet::negativeFirst(2)}) {
        EXPECT_NE(std::find(sets.begin(), sets.end(), named),
                  sets.end());
    }
    // Dimension-order prohibits four turns, not the minimal two, so
    // it is outside the one-per-cycle family.
    EXPECT_EQ(std::find(sets.begin(), sets.end(),
                        TurnSet::dimensionOrder(2)),
              sets.end());
}

TEST(Enumeration, CountsMinimalProhibitionSubsets)
{
    // C(4n(n-1), n(n-1)): C(8,2) = 28, C(24,6) = 134596.
    EXPECT_EQ(countMinimalProhibitionSubsets(2), 28u);
    EXPECT_EQ(countMinimalProhibitionSubsets(3), 134596u);
}

TEST(Enumeration, WalksAllMinimalSubsets)
{
    std::uint64_t total = 0;
    std::uint64_t covering = 0;
    forEachMinimalProhibitionSubset(2, [&](const TurnSet &set) {
        ++total;
        EXPECT_EQ(set.countProhibited90(), 2);
        if (breaksAllAbstractCycles(set, 2))
            ++covering;
        return true;
    });
    EXPECT_EQ(total, 28u);
    // Theorem 1's necessary condition prunes 28 down to the 16
    // one-per-cycle sets.
    EXPECT_EQ(covering, 16u);
}

TEST(Enumeration, MinimalSubsetWalkStopsOnFalse)
{
    std::uint64_t seen = 0;
    forEachMinimalProhibitionSubset(2, [&](const TurnSet &) {
        ++seen;
        return seen < 5;
    });
    EXPECT_EQ(seen, 5u);
}

} // namespace
} // namespace turnmodel
