/**
 * @file
 * Tests for the channel-dependency-graph deadlock checker — the
 * machine-checked form of the paper's Theorems 2-5 and of the
 * Figure 4 counterexamples.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/channel_dependency.hpp"
#include "core/cycle_analysis.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TEST(Cdg, XyIsAcyclic)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    EXPECT_TRUE(isDeadlockFree(*makeRouting("xy", mesh)));
}

TEST(Cdg, WestFirstIsAcyclicTheorem2)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    EXPECT_TRUE(isDeadlockFree(*makeRouting("west-first", mesh)));
}

TEST(Cdg, NorthLastIsAcyclicTheorem3)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    EXPECT_TRUE(isDeadlockFree(*makeRouting("north-last", mesh)));
}

TEST(Cdg, NegativeFirstIsAcyclicTheorem4)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    EXPECT_TRUE(isDeadlockFree(*makeRouting("negative-first", mesh)));
}

TEST(Cdg, NDimensionalAlgorithmsAcyclicTheorem5)
{
    NDMesh mesh3(Shape{4, 4, 4});
    for (const char *name :
         {"dimension-order", "negative-first", "abonf", "abopl"}) {
        EXPECT_TRUE(isDeadlockFree(*makeRouting(name, mesh3))) << name;
    }
    NDMesh mesh4(Shape{3, 3, 3, 3});
    for (const char *name : {"negative-first", "abonf", "abopl"})
        EXPECT_TRUE(isDeadlockFree(*makeRouting(name, mesh4))) << name;
}

TEST(Cdg, HypercubeAlgorithmsAcyclic)
{
    Hypercube cube(6);
    for (const char *name :
         {"e-cube", "p-cube", "p-cube-nonminimal", "abonf", "abopl"}) {
        EXPECT_TRUE(isDeadlockFree(*makeRouting(name, cube))) << name;
    }
}

TEST(Cdg, NonminimalVariantsAcyclic)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    for (const char *name :
         {"west-first-nonminimal", "north-last-nonminimal",
          "negative-first-nonminimal"}) {
        EXPECT_TRUE(isDeadlockFree(*makeRouting(name, mesh))) << name;
    }
}

TEST(Cdg, FullyAdaptiveWithoutProhibitionsIsCyclic)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting routing(mesh, all, true);
    ChannelDependencyGraph cdg(routing);
    EXPECT_FALSE(cdg.isAcyclic());
}

TEST(Cdg, FoundCycleIsRealCycle)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting routing(mesh, all, true);
    ChannelDependencyGraph cdg(routing);
    const auto cycle = cdg.findCycle();
    ASSERT_GE(cycle.size(), 2u);
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const ChannelId from = cycle[i];
        const ChannelId to = cycle[(i + 1) % cycle.size()];
        const auto &succ = cdg.successors(from);
        EXPECT_NE(std::find(succ.begin(), succ.end(), to), succ.end())
            << "edge " << i << " missing";
    }
}

TEST(Cdg, TwelveOfSixteenPairsAreDeadlockFree)
{
    // Section 3: of the 16 ways to prohibit one turn per abstract
    // cycle, 12 prevent deadlock.
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const auto cycles = abstractCycles(2);
    int deadlock_free = 0;
    for (const Turn &a : cycles[0].turns) {
        for (const Turn &b : cycles[1].turns) {
            TurnTableRouting routing(
                mesh, TurnSet::twoProhibited2D(a, b), true);
            if (isDeadlockFree(routing))
                ++deadlock_free;
        }
    }
    EXPECT_EQ(deadlock_free, 12);
}

TEST(Cdg, FailingPairsAreExactlyTheReverses)
{
    // The four failing prohibitions pair a turn with its reverse
    // (Figure 4's construction).
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const auto cycles = abstractCycles(2);
    for (const Turn &a : cycles[0].turns) {
        for (const Turn &b : cycles[1].turns) {
            TurnTableRouting routing(
                mesh, TurnSet::twoProhibited2D(a, b), true);
            const bool reverses = a.from == b.to && a.to == b.from;
            EXPECT_EQ(!isDeadlockFree(routing), reverses)
                << a.toString() << " + " << b.toString();
        }
    }
}

TEST(Cdg, TopologicalNumberingExistsIffAcyclic)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ChannelDependencyGraph good(*makeRouting("west-first", mesh));
    EXPECT_FALSE(good.topologicalNumbering().empty());

    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting bad_routing(mesh, all, true);
    ChannelDependencyGraph bad(bad_routing);
    EXPECT_TRUE(bad.topologicalNumbering().empty());
}

TEST(Cdg, TopologicalNumberingIsStrictlyDecreasing)
{
    NDMesh mesh = NDMesh::mesh2D(5, 4);
    ChannelDependencyGraph cdg(*makeRouting("north-last", mesh));
    const auto numbering = cdg.topologicalNumbering();
    ASSERT_FALSE(numbering.empty());
    for (ChannelId c : cdg.channels().channels()) {
        for (ChannelId next : cdg.successors(c))
            EXPECT_LT(numbering[next], numbering[c]);
    }
}

TEST(Cdg, EdgesOnlyBetweenAdjacentChannels)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ChannelDependencyGraph cdg(*makeRouting("negative-first", mesh));
    const ChannelSpace &space = cdg.channels();
    for (ChannelId c : space.channels()) {
        for (ChannelId next : cdg.successors(c)) {
            // The head of c must be the tail of next.
            EXPECT_EQ(space.destination(c), space.source(next));
        }
    }
}

TEST(Cdg, XyHasNoYtoXDependencies)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ChannelDependencyGraph cdg(*makeRouting("xy", mesh));
    const ChannelSpace &space = cdg.channels();
    for (ChannelId c : space.channels()) {
        for (ChannelId next : cdg.successors(c)) {
            EXPECT_LE(space.direction(c).dim, space.direction(next).dim);
        }
    }
}

TEST(Cdg, RectangularMeshesHandled)
{
    NDMesh wide = NDMesh::mesh2D(8, 3);
    for (const char *name : {"xy", "west-first", "north-last",
                             "negative-first"}) {
        EXPECT_TRUE(isDeadlockFree(*makeRouting(name, wide))) << name;
    }
}

} // namespace
} // namespace turnmodel
