/**
 * @file
 * Unit tests for the turn algebra.
 */

#include <gtest/gtest.h>

#include "core/turn.hpp"

namespace turnmodel {
namespace {

TEST(Turn, KindClassification)
{
    EXPECT_EQ(Turn(dir2d::East, dir2d::North).kind(), TurnKind::Ninety);
    EXPECT_EQ(Turn(dir2d::East, dir2d::West).kind(), TurnKind::OneEighty);
    EXPECT_EQ(Turn(dir2d::East, dir2d::East).kind(), TurnKind::Zero);
}

TEST(Turn, LeftTurnsAreCounterclockwise)
{
    // The four left turns of the paper's Figure 2.
    for (auto [from, to] :
         {std::pair{dir2d::East, dir2d::North},
          std::pair{dir2d::North, dir2d::West},
          std::pair{dir2d::West, dir2d::South},
          std::pair{dir2d::South, dir2d::East}}) {
        EXPECT_EQ(Turn(from, to).sense(), TurnSense::Counterclockwise)
            << Turn(from, to).toString();
    }
}

TEST(Turn, RightTurnsAreClockwise)
{
    for (auto [from, to] :
         {std::pair{dir2d::East, dir2d::South},
          std::pair{dir2d::South, dir2d::West},
          std::pair{dir2d::West, dir2d::North},
          std::pair{dir2d::North, dir2d::East}}) {
        EXPECT_EQ(Turn(from, to).sense(), TurnSense::Clockwise)
            << Turn(from, to).toString();
    }
}

TEST(Turn, ReverseTurnHasOppositeSense)
{
    for (Turn t : all90DegreeTurns(4)) {
        const Turn reverse(t.to, t.from);
        EXPECT_NE(t.sense(), reverse.sense());
    }
}

TEST(Turn, IdRoundTrip)
{
    for (int dims : {2, 3, 4}) {
        for (Turn t : all90DegreeTurns(dims)) {
            EXPECT_EQ(Turn::fromId(t.id(dims), dims), t);
        }
    }
}

TEST(Turn, CountFormula)
{
    // 4n(n-1) 90-degree turns (Section 2).
    EXPECT_EQ(count90DegreeTurns(2), 8);
    EXPECT_EQ(count90DegreeTurns(3), 24);
    EXPECT_EQ(count90DegreeTurns(4), 48);
    EXPECT_EQ(count90DegreeTurns(8), 224);
    for (int n : {2, 3, 4, 5, 8}) {
        EXPECT_EQ(static_cast<int>(all90DegreeTurns(n).size()),
                  count90DegreeTurns(n));
    }
}

TEST(Turn, All180Count)
{
    EXPECT_EQ(all180DegreeTurns(2).size(), 4u);
    EXPECT_EQ(all180DegreeTurns(3).size(), 6u);
    for (Turn t : all180DegreeTurns(3))
        EXPECT_EQ(t.kind(), TurnKind::OneEighty);
}

TEST(Turn, NinetyTurnsChangeDimension)
{
    for (Turn t : all90DegreeTurns(3))
        EXPECT_NE(t.from.dim, t.to.dim);
}

TEST(Turn, ToString)
{
    EXPECT_EQ(Turn(dir2d::East, dir2d::North).toString(), "east->north");
    EXPECT_EQ(Turn(dir2d::North, dir2d::West).toString(), "north->west");
}

TEST(TurnDeathTest, SenseOfStraightPanics)
{
    EXPECT_DEATH({ (void)Turn(dir2d::East, dir2d::East).sense(); },
                 "90-degree");
}

} // namespace
} // namespace turnmodel
