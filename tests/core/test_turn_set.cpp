/**
 * @file
 * Unit tests for allowed-turn sets and the factories of the paper's
 * algorithms.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cycle_analysis.hpp"
#include "core/turn_set.hpp"

namespace turnmodel {
namespace {

bool
prohibits(const TurnSet &set, Direction from, Direction to)
{
    return !set.isAllowed(Turn(from, to));
}

TEST(TurnSet, StartsEmpty)
{
    TurnSet set(2);
    EXPECT_EQ(set.countAllowed90(), 0);
    EXPECT_EQ(set.countProhibited90(), 8);
}

TEST(TurnSet, AllowProhibitToggle)
{
    TurnSet set(2);
    const Turn t(dir2d::East, dir2d::North);
    set.allow(t);
    EXPECT_TRUE(set.isAllowed(t));
    set.prohibit(t);
    EXPECT_FALSE(set.isAllowed(t));
}

TEST(TurnSet, WestFirstProhibitsTurnsToWest)
{
    const TurnSet set = TurnSet::westFirst();
    EXPECT_TRUE(prohibits(set, dir2d::North, dir2d::West));
    EXPECT_TRUE(prohibits(set, dir2d::South, dir2d::West));
    EXPECT_EQ(set.countProhibited90(), 2);
    // A westbound packet may still turn away from west.
    EXPECT_TRUE(set.isAllowed(Turn(dir2d::West, dir2d::North)));
    EXPECT_TRUE(set.isAllowed(Turn(dir2d::West, dir2d::South)));
}

TEST(TurnSet, NorthLastProhibitsTurnsOutOfNorth)
{
    const TurnSet set = TurnSet::northLast();
    EXPECT_TRUE(prohibits(set, dir2d::North, dir2d::West));
    EXPECT_TRUE(prohibits(set, dir2d::North, dir2d::East));
    EXPECT_EQ(set.countProhibited90(), 2);
    EXPECT_TRUE(set.isAllowed(Turn(dir2d::West, dir2d::North)));
    EXPECT_TRUE(set.isAllowed(Turn(dir2d::East, dir2d::North)));
}

TEST(TurnSet, NegativeFirst2DProhibitsPositiveToNegative)
{
    const TurnSet set = TurnSet::negativeFirst(2);
    EXPECT_TRUE(prohibits(set, dir2d::East, dir2d::South));
    EXPECT_TRUE(prohibits(set, dir2d::North, dir2d::West));
    EXPECT_EQ(set.countProhibited90(), 2);
}

TEST(TurnSet, DimensionOrderProhibitsHalf)
{
    for (int n : {2, 3, 4}) {
        const TurnSet set = TurnSet::dimensionOrder(n);
        EXPECT_EQ(set.countProhibited90(), count90DegreeTurns(n) / 2);
    }
    const TurnSet xy = TurnSet::dimensionOrder(2);
    // Only x -> y turns allowed (Figure 3).
    EXPECT_TRUE(xy.isAllowed(Turn(dir2d::East, dir2d::North)));
    EXPECT_TRUE(xy.isAllowed(Turn(dir2d::West, dir2d::South)));
    EXPECT_TRUE(prohibits(xy, dir2d::North, dir2d::East));
    EXPECT_TRUE(prohibits(xy, dir2d::South, dir2d::West));
}

TEST(TurnSet, FactoriesProhibitExactlyQuarter)
{
    // Theorem 1 / Theorem 6: the partially adaptive algorithms
    // prohibit exactly n(n-1) turns — one quarter of 4n(n-1).
    for (int n : {2, 3, 4, 5, 8}) {
        EXPECT_EQ(TurnSet::negativeFirst(n).countProhibited90(),
                  minimumProhibitedTurns(n)) << "negative-first n=" << n;
        EXPECT_EQ(TurnSet::allButOneNegativeFirst(n).countProhibited90(),
                  minimumProhibitedTurns(n)) << "abonf n=" << n;
        EXPECT_EQ(TurnSet::allButOnePositiveLast(n).countProhibited90(),
                  minimumProhibitedTurns(n)) << "abopl n=" << n;
    }
}

TEST(TurnSet, AllButOneSpecializeToWestFirstNorthLast2D)
{
    EXPECT_EQ(TurnSet::allButOneNegativeFirst(2).prohibited90(),
              TurnSet::westFirst().prohibited90());
    EXPECT_EQ(TurnSet::allButOnePositiveLast(2).prohibited90(),
              TurnSet::northLast().prohibited90());
}

TEST(TurnSet, StraightTravelAllowedByFactories)
{
    for (const TurnSet &set :
         {TurnSet::westFirst(), TurnSet::northLast(),
          TurnSet::negativeFirst(2), TurnSet::dimensionOrder(2)}) {
        for (Direction d : allDirections(2))
            EXPECT_TRUE(set.isAllowed(Turn(d, d)));
    }
}

TEST(TurnSet, OneEightyProhibitedByDefaultFactories)
{
    for (const TurnSet &set :
         {TurnSet::westFirst(), TurnSet::northLast(),
          TurnSet::negativeFirst(2)}) {
        for (Direction d : allDirections(2))
            EXPECT_FALSE(set.isAllowed(Turn(d, d.opposite())));
    }
}

TEST(TurnSet, TwoProhibited2D)
{
    const Turn a(dir2d::North, dir2d::West);
    const Turn b(dir2d::East, dir2d::South);
    const TurnSet set = TurnSet::twoProhibited2D(a, b);
    EXPECT_EQ(set.countProhibited90(), 2);
    EXPECT_FALSE(set.isAllowed(a));
    EXPECT_FALSE(set.isAllowed(b));
}

TEST(TurnSet, Allow180)
{
    TurnSet set(2);
    set.allowAll180();
    for (Direction d : allDirections(2))
        EXPECT_TRUE(set.isAllowed(Turn(d, d.opposite())));
}

TEST(TurnSet, ToStringListsProhibited)
{
    const TurnSet set = TurnSet::westFirst();
    const std::string s = set.toString();
    EXPECT_NE(s.find("north->west"), std::string::npos);
    EXPECT_NE(s.find("south->west"), std::string::npos);
}

TEST(TurnSet, EqualityComparesContents)
{
    EXPECT_EQ(TurnSet::westFirst(), TurnSet::westFirst());
    EXPECT_NE(TurnSet::westFirst(), TurnSet::northLast());
}

TEST(TurnSet, ProhibitedSpecNamesTheProhibitedTurns)
{
    EXPECT_EQ(TurnSet::westFirst().prohibitedSpec(),
              "south->west,north->west");
    EXPECT_EQ(TurnSet::northLast().prohibitedSpec(),
              "north->west,north->east");
}

TEST(TurnSet, SpecRoundTripsThroughTheParser)
{
    for (const TurnSet &set :
         {TurnSet::westFirst(), TurnSet::northLast(),
          TurnSet::negativeFirst(2), TurnSet::negativeFirst(3),
          TurnSet::dimensionOrder(3)}) {
        const auto parsed =
            TurnSet::fromProhibitedSpec(set.prohibitedSpec(),
                                        set.numDims());
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, set);
    }
}

TEST(TurnSet, FromProhibitedSpecRejectsMalformedInput)
{
    EXPECT_FALSE(TurnSet::fromProhibitedSpec("", 2).has_value());
    EXPECT_FALSE(TurnSet::fromProhibitedSpec("north", 2).has_value());
    EXPECT_FALSE(
        TurnSet::fromProhibitedSpec("north->", 2).has_value());
    EXPECT_FALSE(
        TurnSet::fromProhibitedSpec("up->west", 2).has_value());
    // 180-degree reversals are not 90-degree prohibitions.
    EXPECT_FALSE(
        TurnSet::fromProhibitedSpec("north->south", 2).has_value());
    // Direction from a higher dimension than the set supports.
    EXPECT_FALSE(
        TurnSet::fromProhibitedSpec("+d2->north", 2).has_value());
}

TEST(TurnSet, FromProhibitedSpecAllowsEverythingElse)
{
    const auto set =
        TurnSet::fromProhibitedSpec("north->west,south->west", 2);
    ASSERT_TRUE(set.has_value());
    EXPECT_EQ(*set, TurnSet::westFirst());
    EXPECT_EQ(set->countProhibited90(), 2);
    // Straight-through moves survive parsing.
    EXPECT_TRUE(set->isAllowed(Turn(dir2d::East, dir2d::East)));
}

} // namespace
} // namespace turnmodel
