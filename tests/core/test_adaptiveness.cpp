/**
 * @file
 * Tests for the adaptiveness metrics of Sections 3.4, 4.1 and 5: the
 * closed-form path counts, their agreement with exhaustive counting
 * over the actual routing functions, and the paper's average-ratio
 * claims.
 */

#include <gtest/gtest.h>

#include "core/adaptiveness.hpp"
#include "core/routing/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TEST(Adaptiveness, BinomialValues)
{
    EXPECT_EQ(binomial(0, 0), 1u);
    EXPECT_EQ(binomial(5, 0), 1u);
    EXPECT_EQ(binomial(5, 5), 1u);
    EXPECT_EQ(binomial(5, 2), 10u);
    EXPECT_EQ(binomial(10, 5), 252u);
    EXPECT_EQ(binomial(30, 15), 155117520u);
    EXPECT_EQ(binomial(6, 3), 20u);
}

TEST(Adaptiveness, FactorialValues)
{
    EXPECT_EQ(factorial(0), 1u);
    EXPECT_EQ(factorial(1), 1u);
    EXPECT_EQ(factorial(6), 720u);
    EXPECT_EQ(factorial(10), 3628800u);
}

TEST(Adaptiveness, FullyAdaptiveCount2D)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    // (dx+dy choose dx).
    EXPECT_EQ(fullyAdaptivePathCount(mesh, mesh.node({0, 0}),
                                     mesh.node({4, 4})),
              70u);
    EXPECT_EQ(fullyAdaptivePathCount(mesh, mesh.node({2, 3}),
                                     mesh.node({2, 3})),
              1u);
    EXPECT_EQ(fullyAdaptivePathCount(mesh, mesh.node({0, 0}),
                                     mesh.node({7, 0})),
              1u);
}

TEST(Adaptiveness, FullyAdaptiveCount3D)
{
    NDMesh mesh(Shape{4, 4, 4});
    // Multinomial 6!/(2!2!2!) = 90.
    EXPECT_EQ(fullyAdaptivePathCount(mesh, mesh.node({0, 0, 0}),
                                     mesh.node({2, 2, 2})),
              90u);
}

TEST(Adaptiveness, WestFirstClosedForm)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    // East-bound: fully adaptive.
    EXPECT_EQ(westFirstPathCount(mesh, mesh.node({1, 1}),
                                 mesh.node({4, 5})),
              binomial(7, 3));
    // West-bound: single path.
    EXPECT_EQ(westFirstPathCount(mesh, mesh.node({5, 1}),
                                 mesh.node({2, 4})),
              1u);
}

TEST(Adaptiveness, NorthLastClosedForm)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    // Southbound or level: fully adaptive.
    EXPECT_EQ(northLastPathCount(mesh, mesh.node({1, 5}),
                                 mesh.node({4, 2})),
              binomial(6, 3));
    // Northbound: single path.
    EXPECT_EQ(northLastPathCount(mesh, mesh.node({1, 1}),
                                 mesh.node({4, 4})),
              1u);
}

TEST(Adaptiveness, NegativeFirstClosedForm)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    // Both deltas negative: fully adaptive.
    EXPECT_EQ(negativeFirstPathCount(mesh, mesh.node({5, 5}),
                                     mesh.node({2, 1})),
              binomial(7, 3));
    // Both positive: fully adaptive.
    EXPECT_EQ(negativeFirstPathCount(mesh, mesh.node({1, 2}),
                                     mesh.node({4, 6})),
              binomial(7, 3));
    // Mixed: single path.
    EXPECT_EQ(negativeFirstPathCount(mesh, mesh.node({5, 2}),
                                     mesh.node({2, 6})),
              1u);
}

TEST(Adaptiveness, PCubeClosedForm)
{
    Hypercube cube(10);
    // Section 5 example: h1 = 3, h0 = 3 -> 3! * 3! = 36.
    EXPECT_EQ(pcubePathCount(cube, 0b1011010100, 0b0010111001), 36u);
    // All-ones to all-zeros: h1 = 10, h0 = 0 -> 10!.
    EXPECT_EQ(pcubePathCount(cube, 0b1111111111, 0), factorial(10));
}

/**
 * The closed forms must agree with exhaustive counting over the
 * actual routing function for every pair of a small mesh.
 */
class ClosedFormVsExhaustive
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ClosedFormVsExhaustive, AgreeOnAllPairs)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    const std::string name = GetParam();
    RoutingPtr routing = makeRouting(name, mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            std::uint64_t expected;
            if (name == "west-first")
                expected = westFirstPathCount(mesh, s, d);
            else if (name == "north-last")
                expected = northLastPathCount(mesh, s, d);
            else if (name == "negative-first")
                expected = negativeFirstPathCount(mesh, s, d);
            else
                expected = 1;   // xy
            EXPECT_EQ(countAllowedShortestPaths(*routing, s, d),
                      expected)
                << name << " " << s << "->" << d;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ClosedFormVsExhaustive,
                         ::testing::Values("xy", "west-first",
                                           "north-last",
                                           "negative-first"));

TEST(Adaptiveness, PCubeClosedFormVsExhaustive)
{
    Hypercube cube(5);
    RoutingPtr routing = makeRouting("p-cube", cube);
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(countAllowedShortestPaths(*routing, s, d),
                      pcubePathCount(cube, s, d));
        }
    }
}

TEST(Adaptiveness, FullyAdaptiveUpperBounds)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    for (const char *name : {"west-first", "north-last",
                             "negative-first"}) {
        RoutingPtr routing = makeRouting(name, mesh);
        for (NodeId s = 0; s < mesh.numNodes(); s += 3) {
            for (NodeId d = 0; d < mesh.numNodes(); d += 2) {
                if (s == d)
                    continue;
                EXPECT_LE(countAllowedShortestPaths(*routing, s, d),
                          fullyAdaptivePathCount(mesh, s, d));
            }
        }
    }
}

TEST(Adaptiveness, MeanRatioExceedsHalf2D)
{
    // Section 3.4: averaged across all pairs, S_p/S_f > 1/2.
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    for (const char *name : {"west-first", "north-last",
                             "negative-first"}) {
        const auto summary =
            summarizeAdaptiveness(*makeRouting(name, mesh));
        EXPECT_GT(summary.mean_ratio, 0.5) << name;
    }
}

TEST(Adaptiveness, MeanRatioExceedsBoundHypercube)
{
    // Section 4.1: averaged across all pairs, S_p/S_f > 1/2^{n-1}.
    Hypercube cube(5);
    for (const char *name : {"p-cube", "abonf", "abopl"}) {
        const auto summary =
            summarizeAdaptiveness(*makeRouting(name, cube));
        EXPECT_GT(summary.mean_ratio, 1.0 / 16.0) << name;
    }
}

TEST(Adaptiveness, SingleForAtLeastHalfThePairs2D)
{
    // Section 3.4: S_p = 1 for at least half of the pairs.
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    for (const char *name : {"west-first", "north-last"}) {
        const auto summary =
            summarizeAdaptiveness(*makeRouting(name, mesh));
        EXPECT_GE(summary.fraction_single, 0.5) << name;
    }
}

TEST(Adaptiveness, XyIsNonadaptive)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    const auto summary = summarizeAdaptiveness(*makeRouting("xy", mesh));
    EXPECT_DOUBLE_EQ(summary.fraction_single, 1.0);
    EXPECT_DOUBLE_EQ(summary.mean_paths, 1.0);
}

TEST(AdaptivenessDeathTest, BinomialDomain)
{
    EXPECT_DEATH({ (void)binomial(3, 4); }, "domain");
    EXPECT_DEATH({ (void)factorial(25); }, "overflow");
}

} // namespace
} // namespace turnmodel
