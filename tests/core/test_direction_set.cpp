/**
 * @file
 * Unit tests for the DirectionSet bitmask value type.
 */

#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "core/direction_set.hpp"

namespace turnmodel {
namespace {

TEST(DirectionSet, DefaultIsEmpty)
{
    constexpr DirectionSet s;
    static_assert(s.empty());
    static_assert(s.size() == 0);
    EXPECT_TRUE(s.toVector().empty());
    EXPECT_EQ(s.begin(), s.end());
}

TEST(DirectionSet, StaysRegisterSizedAndTrivial)
{
    static_assert(sizeof(DirectionSet) == 4);
    static_assert(std::is_trivially_copyable_v<DirectionSet>);
}

TEST(DirectionSet, InsertContainsErase)
{
    DirectionSet s;
    s.insert(dir2d::East);
    s.insert(dir2d::North);
    EXPECT_TRUE(s.contains(dir2d::East));
    EXPECT_TRUE(s.contains(dir2d::North));
    EXPECT_FALSE(s.contains(dir2d::West));
    EXPECT_EQ(s.size(), 2);
    s.erase(dir2d::East);
    EXPECT_FALSE(s.contains(dir2d::East));
    EXPECT_EQ(s.size(), 1);
    // Erasing an absent member is a no-op.
    s.erase(dir2d::South);
    EXPECT_EQ(s.size(), 1);
}

TEST(DirectionSet, InitializerListAndOf)
{
    const DirectionSet a{dir2d::West, dir2d::North};
    const DirectionSet b = DirectionSet::of({dir2d::North, dir2d::West});
    EXPECT_EQ(a, b);
    EXPECT_EQ(DirectionSet::single(dir2d::South),
              (DirectionSet{dir2d::South}));
}

TEST(DirectionSet, AllCoversEveryDirection)
{
    const DirectionSet all2 = DirectionSet::all(2);
    EXPECT_EQ(all2.size(), 4);
    for (Direction d : allDirections(2))
        EXPECT_TRUE(all2.contains(d));
    EXPECT_EQ(DirectionSet::all(6).size(), 12);
    // The 16-dimension maximum fills the whole word.
    EXPECT_EQ(DirectionSet::all(16).size(), DirectionSet::kMaxDirs);
}

TEST(DirectionSet, IterationIsAscendingIdOrder)
{
    const DirectionSet s{dir2d::North, dir2d::West, dir2d::East};
    std::vector<DirId> ids;
    for (Direction d : s)
        ids.push_back(d.id());
    const std::vector<DirId> expect{dir2d::West.id(), dir2d::East.id(),
                                    dir2d::North.id()};
    EXPECT_EQ(ids, expect);
    EXPECT_EQ(s.toVector().size(), 3u);
    EXPECT_EQ(s.toVector().front(), dir2d::West);
}

TEST(DirectionSet, FirstLastNth)
{
    const DirectionSet s{dir2d::East, dir2d::South, dir2d::North};
    EXPECT_EQ(s.first(), dir2d::East);    // id 1
    EXPECT_EQ(s.last(), dir2d::North);    // id 3
    EXPECT_EQ(s.nth(0), dir2d::East);
    EXPECT_EQ(s.nth(1), dir2d::South);
    EXPECT_EQ(s.nth(2), dir2d::North);
}

TEST(DirectionSet, SetAlgebra)
{
    const DirectionSet a{dir2d::West, dir2d::East};
    const DirectionSet b{dir2d::East, dir2d::North};
    EXPECT_EQ(a | b,
              (DirectionSet{dir2d::West, dir2d::East, dir2d::North}));
    EXPECT_EQ(a & b, DirectionSet::single(dir2d::East));
    EXPECT_EQ(a - b, DirectionSet::single(dir2d::West));
    DirectionSet c = a;
    c |= b;
    EXPECT_EQ(c, (a | b));
    c &= b;
    EXPECT_EQ(c, b);
    c -= DirectionSet::single(dir2d::North);
    EXPECT_EQ(c, DirectionSet::single(dir2d::East));
}

TEST(DirectionSet, RawRoundTrip)
{
    const DirectionSet s{dir2d::West, dir2d::North};
    EXPECT_EQ(DirectionSet::fromBits(s.raw()), s);
    EXPECT_EQ(s.raw(), (DirectionSet::Bits{1} << dir2d::West.id()) |
                           (DirectionSet::Bits{1} << dir2d::North.id()));
}

TEST(DirectionSet, ToStringListsMembers)
{
    EXPECT_EQ(toString(DirectionSet{}), "{}");
    EXPECT_EQ(toString(DirectionSet{dir2d::West, dir2d::North}),
              "{west, north}");
}

} // namespace
} // namespace turnmodel
