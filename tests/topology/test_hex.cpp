/**
 * @file
 * Tests for the hexagonal mesh and the turn model applied to it
 * (the paper's Section 7 future-work topology).
 */

#include <gtest/gtest.h>

#include "core/channel_dependency.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "sim/network.hpp"
#include "topology/hex.hpp"
#include "traffic/pattern.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

TEST(Hex, BasicProperties)
{
    HexMesh hex(6, 6);
    EXPECT_EQ(hex.numDims(), 3);
    EXPECT_EQ(hex.numDirs(), 6);
    EXPECT_EQ(hex.numNodes(), 36u);
    EXPECT_EQ(hex.name(), "6x6 hex mesh");
    EXPECT_EQ(hex.diameter(), 10);
}

TEST(Hex, InteriorNodeHasSixNeighbors)
{
    HexMesh hex(5, 5);
    EXPECT_EQ(hex.outgoingDirections(hex.node({2, 2})).size(), 6u);
    // The (0,0) corner reaches only +q and +r: both s-axis moves
    // would leave the rhombus.
    EXPECT_EQ(hex.outgoingDirections(hex.node({0, 0})).size(), 2u);
    // The (0, kr-1) corner also reaches +s = (+1, -1).
    EXPECT_EQ(hex.outgoingDirections(hex.node({0, 4})).size(), 3u);
}

TEST(Hex, SAxisMovesDiagonally)
{
    HexMesh hex(5, 5);
    const NodeId at = hex.node({2, 2});
    EXPECT_EQ(hex.neighbor(at, Direction(2, true)), hex.node({3, 1}));
    EXPECT_EQ(hex.neighbor(at, Direction(2, false)), hex.node({1, 3}));
}

TEST(Hex, NeighborIsInverse)
{
    HexMesh hex(4, 5);
    for (NodeId v = 0; v < hex.numNodes(); ++v) {
        for (Direction d : allDirections(3)) {
            const auto w = hex.neighbor(v, d);
            if (w) {
                EXPECT_EQ(hex.neighbor(*w, d.opposite()), v);
            }
        }
    }
}

TEST(Hex, DistanceExamples)
{
    HexMesh hex(8, 8);
    // One +s hop covers (+1, -1) in a single move.
    EXPECT_EQ(hex.distance(hex.node({2, 2}), hex.node({3, 1})), 1);
    // Same-sign deltas cannot use the s axis: full sum.
    EXPECT_EQ(hex.distance(hex.node({0, 0}), hex.node({3, 4})), 7);
    // Opposite-sign deltas shortcut along s.
    EXPECT_EQ(hex.distance(hex.node({0, 4}), hex.node({3, 1})), 3);
}

TEST(Hex, DistanceMatchesGreedyWalk)
{
    HexMesh hex(5, 5);
    Rng rng(5);
    for (NodeId a = 0; a < hex.numNodes(); ++a) {
        for (NodeId b = 0; b < hex.numNodes(); ++b) {
            if (a == b)
                continue;
            // Greedy: any profitable hop, counted.
            NodeId at = a;
            int hops = 0;
            while (at != b) {
                const auto dirs = minimalDirections(hex, at, b);
                ASSERT_FALSE(dirs.empty()) << a << "->" << b;
                at = *hex.neighbor(at,
                                   dirs[rng.nextBounded(dirs.size())]);
                ++hops;
            }
            EXPECT_EQ(hops, hex.distance(a, b));
        }
    }
}

TEST(Hex, NegativeFirstIsDeadlockFree)
{
    HexMesh hex(5, 5);
    RoutingPtr routing = makeRouting("negative-first", hex);
    EXPECT_TRUE(isDeadlockFree(*routing));
}

TEST(Hex, AxisOrderIsDeadlockFree)
{
    HexMesh hex(5, 5);
    RoutingPtr routing = makeRouting("axis-order", hex);
    EXPECT_TRUE(isDeadlockFree(*routing));
}

TEST(Hex, NonminimalNegativeFirstIsDeadlockFree)
{
    HexMesh hex(4, 4);
    RoutingPtr routing = makeRouting("negative-first-nonminimal", hex);
    EXPECT_TRUE(isDeadlockFree(*routing));
}

TEST(Hex, FullyAdaptiveHasCycles)
{
    // With every turn allowed, hexagonal cycles close (some in only
    // three turns), so the dependency graph must be cyclic.
    HexMesh hex(4, 4);
    TurnSet all(3);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting routing(hex, all, true, "hex-fully-adaptive");
    EXPECT_FALSE(isDeadlockFree(routing));
}

TEST(Hex, RoutingDeliversEverywhere)
{
    HexMesh hex(5, 4);
    Rng rng(9);
    for (const char *name : {"axis-order", "negative-first"}) {
        RoutingPtr routing = makeRouting(name, hex);
        for (NodeId s = 0; s < hex.numNodes(); ++s) {
            for (NodeId d = 0; d < hex.numNodes(); ++d) {
                if (s == d)
                    continue;
                NodeId at = s;
                std::optional<Direction> in;
                int hops = 0;
                while (at != d) {
                    const auto options = routing->route(at, in, d);
                    ASSERT_FALSE(options.empty())
                        << name << " " << s << "->" << d;
                    const Direction take =
                        options[rng.nextBounded(options.size())];
                    at = *hex.neighbor(at, take);
                    in = take;
                    ASSERT_LE(++hops, hex.distance(s, d));
                }
            }
        }
    }
}

TEST(Hex, NegativeFirstOffersAdaptivity)
{
    HexMesh hex(6, 6);
    RoutingPtr routing = makeRouting("negative-first", hex);
    // A destination needing -q and -r can also use -s: three
    // candidates from the negative phase.
    const auto dirs = routing->route(hex.node({4, 4}), std::nullopt,
                                     hex.node({1, 1}));
    EXPECT_GE(dirs.size(), 2u);
}

TEST(Hex, SimulationRunsClean)
{
    HexMesh hex(6, 6);
    RoutingPtr routing = makeRouting("negative-first", hex);
    PatternPtr pattern = makePattern("uniform", hex);
    SimConfig cfg;
    cfg.injection_rate = 0.05;
    Network net(*routing, *pattern, cfg);
    for (int i = 0; i < 6000; ++i)
        net.step();
    EXPECT_FALSE(net.deadlockDetected());
    EXPECT_GT(net.counters().flits_delivered, 2000u);
    const auto &c = net.counters();
    EXPECT_EQ(c.flits_generated,
              c.flits_delivered + c.flits_in_network +
                  c.source_queue_flits);
}

TEST(Hex, FactoryNamesAreExactlyTheSupportedOnes)
{
    HexMesh hex(4, 4);
    const auto names = availableRoutingNames(hex);
    EXPECT_EQ(names.size(), 3u);
    for (const auto &name : names)
        EXPECT_NE(makeRouting(name, hex), nullptr) << name;
}

TEST(HexDeathTest, UnsupportedAlgorithmIsFatal)
{
    HexMesh hex(4, 4);
    EXPECT_EXIT({ (void)makeRouting("west-first", hex); },
                ::testing::ExitedWithCode(1), "hex meshes support");
}

} // namespace
} // namespace turnmodel
