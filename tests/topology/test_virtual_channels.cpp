/**
 * @file
 * Unit tests for the virtual-channel view of a mesh (Step 1 of the
 * turn model: v channels per physical direction become v virtual
 * directions).
 */

#include <gtest/gtest.h>

#include "topology/virtual_channels.hpp"

namespace turnmodel {
namespace {

TEST(VirtualizedMesh, DoubleYDimensions)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(8, 8);
    EXPECT_EQ(mesh.numDims(), 3);
    EXPECT_EQ(mesh.numDirs(), 6);
    EXPECT_EQ(mesh.numPhysicalDims(), 2);
    EXPECT_EQ(mesh.numNodes(), 64u);   // Nodes stay physical.
    EXPECT_EQ(mesh.vcsOf(0), 1);
    EXPECT_EQ(mesh.vcsOf(1), 2);
}

TEST(VirtualizedMesh, DimensionMapping)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(8, 8);
    EXPECT_EQ(mesh.physicalDim(0), 0);
    EXPECT_EQ(mesh.physicalDim(1), 1);
    EXPECT_EQ(mesh.physicalDim(2), 1);
    EXPECT_EQ(mesh.vcIndex(0), 0);
    EXPECT_EQ(mesh.vcIndex(1), 0);
    EXPECT_EQ(mesh.vcIndex(2), 1);
    EXPECT_EQ(mesh.virtualDim(1, 0), 1);
    EXPECT_EQ(mesh.virtualDim(1, 1), 2);
}

TEST(VirtualizedMesh, RadixFollowsPhysicalDim)
{
    VirtualizedMesh mesh(Shape{4, 6}, {1, 2});
    EXPECT_EQ(mesh.radix(0), 4);
    EXPECT_EQ(mesh.radix(1), 6);
    EXPECT_EQ(mesh.radix(2), 6);
}

TEST(VirtualizedMesh, VirtualDirectionsMoveOnPhysicalGrid)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(4, 4);
    const NodeId at = mesh.node({1, 1});
    // N1 (dim 1) and N2 (dim 2) both move north physically.
    const Direction n1(1, true), n2(2, true);
    EXPECT_EQ(mesh.neighbor(at, n1), mesh.node({1, 2}));
    EXPECT_EQ(mesh.neighbor(at, n2), mesh.node({1, 2}));
    // Both disappear at the boundary.
    const NodeId top = mesh.node({1, 3});
    EXPECT_FALSE(mesh.neighbor(top, n1));
    EXPECT_FALSE(mesh.neighbor(top, n2));
}

TEST(VirtualizedMesh, DistanceIsPhysical)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(8, 8);
    EXPECT_EQ(mesh.distance(mesh.node({0, 0}), mesh.node({3, 4})), 7);
    EXPECT_EQ(mesh.diameter(), 14);
}

TEST(VirtualizedMesh, PhysicalChannelGroups)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(4, 4);
    EXPECT_TRUE(mesh.hasSharedPhysicalChannels());
    const Direction n1(1, true), n2(2, true), s1(1, false), s2(2, false);
    EXPECT_EQ(mesh.physicalChannelGroup(n1.id()),
              mesh.physicalChannelGroup(n2.id()));
    EXPECT_EQ(mesh.physicalChannelGroup(s1.id()),
              mesh.physicalChannelGroup(s2.id()));
    EXPECT_NE(mesh.physicalChannelGroup(n1.id()),
              mesh.physicalChannelGroup(s1.id()));
    EXPECT_NE(mesh.physicalChannelGroup(Direction(0, true).id()),
              mesh.physicalChannelGroup(n1.id()));
}

TEST(VirtualizedMesh, TrivialVirtualizationMatchesPlainMesh)
{
    VirtualizedMesh mesh(Shape{4, 4}, {1, 1});
    NDMesh plain = NDMesh::mesh2D(4, 4);
    EXPECT_EQ(mesh.numDims(), plain.numDims());
    EXPECT_FALSE(mesh.hasSharedPhysicalChannels());
    for (NodeId v = 0; v < plain.numNodes(); ++v) {
        for (Direction d : allDirections(2))
            EXPECT_EQ(mesh.neighbor(v, d), plain.neighbor(v, d));
    }
}

TEST(VirtualizedMesh, PhysicalDirection)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(4, 4);
    EXPECT_EQ(mesh.physicalDirection(Direction(2, true)),
              Direction(1, true));
    EXPECT_EQ(mesh.physicalDirection(Direction(0, false)),
              Direction(0, false));
}

TEST(VirtualizedMesh, NamesIncludeVcCounts)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(8, 8);
    EXPECT_EQ(mesh.name(), "8x8 mesh (vcs 1 2)");
}

TEST(VirtualizedMeshDeathTest, RejectsBadSpecs)
{
    EXPECT_DEATH({ VirtualizedMesh mesh(Shape{4, 4}, {1}); },
                 "per physical dimension");
    EXPECT_DEATH({ VirtualizedMesh mesh(Shape{4, 4}, {1, 0}); },
                 "at least one");
}

} // namespace
} // namespace turnmodel
