/**
 * @file
 * Unit tests for channel-fault injection.
 */

#include <gtest/gtest.h>

#include "topology/faults.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TEST(Faults, FaultyChannelDisappears)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ChannelSpace space(mesh);
    const NodeId v = mesh.node({1, 1});
    FaultyTopology faulty(mesh, {space.id(v, dir2d::East)});
    EXPECT_FALSE(faulty.neighbor(v, dir2d::East));
    EXPECT_TRUE(faulty.isFaulty(v, dir2d::East));
    // The other direction of the same physical link survives
    // (faults are unidirectional).
    EXPECT_EQ(faulty.neighbor(mesh.node({2, 1}), dir2d::West), v);
    // Unrelated channels untouched.
    EXPECT_EQ(faulty.neighbor(v, dir2d::North), mesh.node({1, 2}));
}

TEST(Faults, EmptyFaultSetIsTransparent)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    FaultyTopology faulty(mesh, {});
    for (NodeId v = 0; v < mesh.numNodes(); ++v) {
        for (Direction d : allDirections(2))
            EXPECT_EQ(faulty.neighbor(v, d), mesh.neighbor(v, d));
    }
    EXPECT_EQ(faulty.countChannels(), mesh.countChannels());
}

TEST(Faults, RandomFaultsHaveRequestedCount)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    Rng rng(5);
    const FaultyTopology faulty =
        FaultyTopology::withRandomFaults(mesh, 7, rng);
    EXPECT_EQ(faulty.faults().size(), 7u);
    EXPECT_EQ(faulty.countChannels(), mesh.countChannels() - 7);
}

TEST(Faults, MetadataDelegatesToBase)
{
    NDMesh mesh = NDMesh::mesh2D(5, 3);
    FaultyTopology faulty(mesh, {});
    EXPECT_EQ(faulty.numDims(), 2);
    EXPECT_EQ(faulty.radix(0), 5);
    EXPECT_EQ(faulty.numNodes(), 15u);
    EXPECT_EQ(faulty.distance(0, 14), mesh.distance(0, 14));
    EXPECT_EQ(faulty.diameter(), mesh.diameter());
    EXPECT_NE(faulty.name().find("faulty"), std::string::npos);
}

TEST(FaultsDeathTest, RejectsNonexistentChannel)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ChannelSpace space(mesh);
    const ChannelId bogus = space.id(mesh.node({0, 0}), dir2d::West);
    EXPECT_DEATH({ FaultyTopology faulty(mesh, {bogus}); },
                 "lacks");
}

} // namespace
} // namespace turnmodel
