/**
 * @file
 * Unit tests for dense channel identifiers.
 */

#include <gtest/gtest.h>

#include "topology/channel.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace turnmodel {
namespace {

TEST(ChannelSpace, CountMatchesTopology)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ChannelSpace space(mesh);
    EXPECT_EQ(space.count(), mesh.countChannels());
    EXPECT_EQ(space.idBound(), 16u * 4u);
}

TEST(ChannelSpace, RoundTrip)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ChannelSpace space(mesh);
    for (ChannelId ch : space.channels()) {
        const NodeId src = space.source(ch);
        const Direction dir = space.direction(ch);
        EXPECT_EQ(space.id(src, dir), ch);
        EXPECT_TRUE(space.exists(ch));
    }
}

TEST(ChannelSpace, DestinationMatchesNeighbor)
{
    NDMesh mesh = NDMesh::mesh2D(5, 3);
    ChannelSpace space(mesh);
    for (ChannelId ch : space.channels()) {
        const auto nb =
            mesh.neighbor(space.source(ch), space.direction(ch));
        ASSERT_TRUE(nb.has_value());
        EXPECT_EQ(space.destination(ch), *nb);
    }
}

TEST(ChannelSpace, BoundaryChannelsDoNotExist)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ChannelSpace space(mesh);
    const ChannelId west_of_corner = space.id(mesh.node({0, 0}),
                                              dir2d::West);
    EXPECT_FALSE(space.exists(west_of_corner));
}

TEST(ChannelSpace, WraparoundFlagged)
{
    KAryNCube torus(4, 2);
    ChannelSpace space(torus);
    const ChannelId wrap = space.id(torus.node({3, 0}), dir2d::East);
    const ChannelId normal = space.id(torus.node({1, 0}), dir2d::East);
    EXPECT_TRUE(space.isWraparound(wrap));
    EXPECT_FALSE(space.isWraparound(normal));
}

TEST(ChannelSpace, ToStringMentionsDirectionAndWrap)
{
    KAryNCube torus(4, 2);
    ChannelSpace space(torus);
    const ChannelId wrap = space.id(torus.node({3, 0}), dir2d::East);
    const std::string s = space.toString(wrap);
    EXPECT_NE(s.find("east"), std::string::npos);
    EXPECT_NE(s.find("wrap"), std::string::npos);
}

TEST(ChannelSpace, ChannelsSortedAndUnique)
{
    NDMesh mesh = NDMesh::mesh2D(3, 3);
    ChannelSpace space(mesh);
    const auto &all = space.channels();
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1], all[i]);
}

TEST(ChannelSpaceDeathTest, DestinationOfMissingChannelPanics)
{
    NDMesh mesh = NDMesh::mesh2D(3, 3);
    ChannelSpace space(mesh);
    const ChannelId bad = space.id(mesh.node({0, 0}), dir2d::West);
    EXPECT_DEATH({ (void)space.destination(bad); }, "does not exist");
}

} // namespace
} // namespace turnmodel
