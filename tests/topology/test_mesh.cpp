/**
 * @file
 * Unit and property tests for the n-dimensional mesh topology.
 */

#include <gtest/gtest.h>

#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TEST(Mesh, BasicProperties)
{
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    EXPECT_EQ(mesh.numDims(), 2);
    EXPECT_EQ(mesh.numNodes(), 256u);
    EXPECT_EQ(mesh.radix(0), 16);
    EXPECT_EQ(mesh.radix(1), 16);
    EXPECT_EQ(mesh.numDirs(), 4);
    EXPECT_EQ(mesh.name(), "16x16 mesh");
}

TEST(Mesh, InteriorNeighbors)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const NodeId center = mesh.node({1, 1});
    EXPECT_EQ(mesh.neighbor(center, dir2d::East), mesh.node({2, 1}));
    EXPECT_EQ(mesh.neighbor(center, dir2d::West), mesh.node({0, 1}));
    EXPECT_EQ(mesh.neighbor(center, dir2d::North), mesh.node({1, 2}));
    EXPECT_EQ(mesh.neighbor(center, dir2d::South), mesh.node({1, 0}));
}

TEST(Mesh, BoundaryHasNoNeighbor)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_FALSE(mesh.neighbor(mesh.node({0, 0}), dir2d::West));
    EXPECT_FALSE(mesh.neighbor(mesh.node({0, 0}), dir2d::South));
    EXPECT_FALSE(mesh.neighbor(mesh.node({3, 3}), dir2d::East));
    EXPECT_FALSE(mesh.neighbor(mesh.node({3, 3}), dir2d::North));
}

TEST(Mesh, NeverWraparound)
{
    NDMesh mesh = NDMesh::mesh2D(3, 3);
    for (NodeId v = 0; v < mesh.numNodes(); ++v) {
        for (Direction d : allDirections(2))
            EXPECT_FALSE(mesh.isWraparound(v, d));
    }
}

TEST(Mesh, CornerDegreeIsN)
{
    NDMesh mesh(Shape{4, 4, 4});
    EXPECT_EQ(mesh.outgoingDirections(mesh.node({0, 0, 0})).size(), 3u);
    EXPECT_EQ(mesh.outgoingDirections(mesh.node({3, 3, 3})).size(), 3u);
    EXPECT_EQ(mesh.outgoingDirections(mesh.node({1, 1, 1})).size(), 6u);
}

TEST(Mesh, ManhattanDistance)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    EXPECT_EQ(mesh.distance(mesh.node({0, 0}), mesh.node({7, 7})), 14);
    EXPECT_EQ(mesh.distance(mesh.node({3, 4}), mesh.node({3, 4})), 0);
    EXPECT_EQ(mesh.distance(mesh.node({2, 5}), mesh.node({6, 1})), 8);
}

TEST(Mesh, DistanceIsSymmetric)
{
    NDMesh mesh(Shape{3, 4});
    for (NodeId a = 0; a < mesh.numNodes(); ++a) {
        for (NodeId b = 0; b < mesh.numNodes(); ++b)
            EXPECT_EQ(mesh.distance(a, b), mesh.distance(b, a));
    }
}

TEST(Mesh, Diameter)
{
    EXPECT_EQ(NDMesh::mesh2D(16, 16).diameter(), 30);
    EXPECT_EQ(NDMesh(Shape{4, 4, 4}).diameter(), 9);
    EXPECT_EQ(NDMesh(Shape{2, 2}).diameter(), 2);
}

TEST(Mesh, ChannelCount2D)
{
    // 2 * (m*(n-1) + n*(m-1)) unidirectional channels.
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    EXPECT_EQ(mesh.countChannels(), 2u * (16 * 15 + 16 * 15));
}

TEST(Mesh, NeighborIsInverse)
{
    NDMesh mesh(Shape{4, 3});
    for (NodeId v = 0; v < mesh.numNodes(); ++v) {
        for (Direction d : allDirections(2)) {
            const auto w = mesh.neighbor(v, d);
            if (w) {
                EXPECT_EQ(mesh.neighbor(*w, d.opposite()), v);
            }
        }
    }
}

TEST(Mesh, IncomingMatchesOutgoingOfNeighbors)
{
    NDMesh mesh(Shape{3, 3});
    for (NodeId v = 0; v < mesh.numNodes(); ++v) {
        for (Direction d : mesh.incomingDirections(v)) {
            // A packet travelling along d arrives from neighbor in
            // d.opposite(); that hop must exist both ways.
            const auto up = mesh.neighbor(v, d.opposite());
            ASSERT_TRUE(up.has_value());
            EXPECT_EQ(mesh.neighbor(*up, d), v);
        }
    }
}

TEST(Mesh, RectangularShape)
{
    NDMesh mesh(Shape{5, 3});
    EXPECT_EQ(mesh.numNodes(), 15u);
    EXPECT_EQ(mesh.diameter(), 6);
    EXPECT_EQ(mesh.name(), "5x3 mesh");
}

/** Distance equals the hop count of a greedy minimal walk. */
class MeshShapes : public ::testing::TestWithParam<Shape>
{
};

TEST_P(MeshShapes, GreedyWalkRealizesDistance)
{
    NDMesh mesh(GetParam());
    for (NodeId a = 0; a < mesh.numNodes(); ++a) {
        for (NodeId b = 0; b < mesh.numNodes(); ++b) {
            NodeId at = a;
            int hops = 0;
            while (at != b) {
                const Coords cur = mesh.coords(at);
                const Coords dst = mesh.coords(b);
                bool moved = false;
                for (std::size_t d = 0; d < cur.size() && !moved; ++d) {
                    if (cur[d] != dst[d]) {
                        at = *mesh.neighbor(
                            at, Direction(static_cast<std::uint8_t>(d),
                                          dst[d] > cur[d]));
                        ++hops;
                        moved = true;
                    }
                }
            }
            EXPECT_EQ(hops, mesh.distance(a, b));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshShapes,
                         ::testing::Values(Shape{2, 2}, Shape{4, 4},
                                           Shape{5, 3}, Shape{3, 3, 3},
                                           Shape{2, 3, 4}));

} // namespace
} // namespace turnmodel
