/**
 * @file
 * Unit tests for the hypercube topology.
 */

#include <gtest/gtest.h>

#include "topology/hypercube.hpp"

namespace turnmodel {
namespace {

TEST(Hypercube, BasicProperties)
{
    Hypercube cube(8);
    EXPECT_EQ(cube.numNodes(), 256u);
    EXPECT_EQ(cube.numDims(), 8);
    EXPECT_EQ(cube.name(), "binary 8-cube");
    EXPECT_EQ(cube.diameter(), 8);
}

TEST(Hypercube, AddressIsNodeId)
{
    Hypercube cube(4);
    for (NodeId v = 0; v < cube.numNodes(); ++v)
        EXPECT_EQ(cube.address(v), v);
}

TEST(Hypercube, CoordsAreAddressBits)
{
    Hypercube cube(4);
    const Coords c = cube.coords(0b1010);
    EXPECT_EQ(c, (Coords{0, 1, 0, 1}));
}

TEST(Hypercube, NeighborAcross)
{
    Hypercube cube(4);
    EXPECT_EQ(cube.neighborAcross(0b0000, 2), 0b0100u);
    EXPECT_EQ(cube.neighborAcross(0b0100, 2), 0b0000u);
}

TEST(Hypercube, NeighborAcrossMatchesTopologyHop)
{
    Hypercube cube(5);
    for (NodeId v = 0; v < cube.numNodes(); ++v) {
        for (int dim = 0; dim < 5; ++dim) {
            const NodeId w = cube.neighborAcross(v, dim);
            // The topology-level hop direction depends on the bit.
            const Direction d(static_cast<std::uint8_t>(dim),
                              !((v >> dim) & 1));
            EXPECT_EQ(cube.neighbor(v, d), w);
        }
    }
}

TEST(Hypercube, EveryNodeHasDegreeN)
{
    Hypercube cube(6);
    for (NodeId v = 0; v < cube.numNodes(); ++v)
        EXPECT_EQ(cube.outgoingDirections(v).size(), 6u);
}

TEST(Hypercube, HammingDistanceIsTopologyDistance)
{
    Hypercube cube(6);
    for (NodeId a = 0; a < cube.numNodes(); a += 7) {
        for (NodeId b = 0; b < cube.numNodes(); b += 5) {
            EXPECT_EQ(cube.hammingDistance(a, b), cube.distance(a, b));
        }
    }
}

TEST(Hypercube, ChannelCount)
{
    Hypercube cube(8);
    EXPECT_EQ(cube.countChannels(), 256u * 8u);
}

TEST(Hypercube, PaperExampleDistance)
{
    // Section 5: h = 6 between 1011010100 and 0010111001.
    Hypercube cube(10);
    EXPECT_EQ(cube.hammingDistance(0b1011010100, 0b0010111001), 6);
}

} // namespace
} // namespace turnmodel
