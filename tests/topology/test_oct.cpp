/**
 * @file
 * Tests for the octagonal mesh and the turn model applied to it
 * (the paper's Section 7 future-work topology).
 */

#include <gtest/gtest.h>

#include "core/channel_dependency.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "sim/network.hpp"
#include "topology/oct.hpp"
#include "traffic/pattern.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

TEST(Oct, BasicProperties)
{
    OctMesh oct(6, 6);
    EXPECT_EQ(oct.numDims(), 4);
    EXPECT_EQ(oct.numDirs(), 8);
    EXPECT_EQ(oct.numNodes(), 36u);
    EXPECT_EQ(oct.name(), "6x6 octagonal mesh");
    EXPECT_EQ(oct.diameter(), 5);
}

TEST(Oct, InteriorNodeHasEightNeighbors)
{
    OctMesh oct(5, 5);
    EXPECT_EQ(oct.outgoingDirections(oct.node({2, 2})).size(), 8u);
    // Corners keep three (orthogonal two plus one diagonal).
    EXPECT_EQ(oct.outgoingDirections(oct.node({0, 0})).size(), 3u);
}

TEST(Oct, DiagonalAxes)
{
    OctMesh oct(5, 5);
    const NodeId at = oct.node({2, 2});
    EXPECT_EQ(oct.neighbor(at, Direction(2, true)), oct.node({3, 3}));
    EXPECT_EQ(oct.neighbor(at, Direction(2, false)), oct.node({1, 1}));
    EXPECT_EQ(oct.neighbor(at, Direction(3, true)), oct.node({3, 1}));
    EXPECT_EQ(oct.neighbor(at, Direction(3, false)), oct.node({1, 3}));
}

TEST(Oct, NeighborIsInverse)
{
    OctMesh oct(4, 5);
    for (NodeId v = 0; v < oct.numNodes(); ++v) {
        for (Direction d : allDirections(4)) {
            const auto w = oct.neighbor(v, d);
            if (w) {
                EXPECT_EQ(oct.neighbor(*w, d.opposite()), v);
            }
        }
    }
}

TEST(Oct, ChebyshevDistance)
{
    OctMesh oct(8, 8);
    EXPECT_EQ(oct.distance(oct.node({0, 0}), oct.node({5, 3})), 5);
    EXPECT_EQ(oct.distance(oct.node({0, 0}), oct.node({3, 3})), 3);
    EXPECT_EQ(oct.distance(oct.node({2, 7}), oct.node({5, 1})), 6);
}

TEST(Oct, DistanceMatchesGreedyWalk)
{
    OctMesh oct(5, 5);
    Rng rng(7);
    for (NodeId a = 0; a < oct.numNodes(); ++a) {
        for (NodeId b = 0; b < oct.numNodes(); ++b) {
            if (a == b)
                continue;
            NodeId at = a;
            int hops = 0;
            while (at != b) {
                const auto dirs = minimalDirections(oct, at, b);
                ASSERT_FALSE(dirs.empty()) << a << "->" << b;
                at = *oct.neighbor(at,
                                   dirs[rng.nextBounded(dirs.size())]);
                ++hops;
            }
            EXPECT_EQ(hops, oct.distance(a, b));
        }
    }
}

TEST(Oct, NegativeFirstAndAxisOrderAreDeadlockFree)
{
    OctMesh oct(5, 5);
    EXPECT_TRUE(isDeadlockFree(*makeRouting("negative-first", oct)));
    EXPECT_TRUE(isDeadlockFree(*makeRouting("axis-order", oct)));
    EXPECT_TRUE(isDeadlockFree(
        *makeRouting("negative-first-nonminimal", oct)));
}

TEST(Oct, FullyAdaptiveHasCycles)
{
    OctMesh oct(4, 4);
    TurnSet all(4);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting routing(oct, all, true, "oct-fully-adaptive");
    EXPECT_FALSE(isDeadlockFree(routing));
}

TEST(Oct, RoutingDeliversEverywhere)
{
    OctMesh oct(5, 4);
    Rng rng(11);
    for (const char *name : {"axis-order", "negative-first"}) {
        RoutingPtr routing = makeRouting(name, oct);
        for (NodeId s = 0; s < oct.numNodes(); ++s) {
            for (NodeId d = 0; d < oct.numNodes(); ++d) {
                if (s == d)
                    continue;
                NodeId at = s;
                std::optional<Direction> in;
                int hops = 0;
                while (at != d) {
                    const auto options = routing->route(at, in, d);
                    ASSERT_FALSE(options.empty())
                        << name << " " << s << "->" << d;
                    const Direction take =
                        options[rng.nextBounded(options.size())];
                    at = *oct.neighbor(at, take);
                    in = take;
                    ASSERT_LE(++hops, oct.distance(s, d));
                }
            }
        }
    }
}

TEST(Oct, SimulationRunsClean)
{
    OctMesh oct(6, 6);
    RoutingPtr routing = makeRouting("negative-first", oct);
    PatternPtr pattern = makePattern("uniform", oct);
    SimConfig cfg;
    cfg.injection_rate = 0.05;
    Network net(*routing, *pattern, cfg);
    for (int i = 0; i < 6000; ++i)
        net.step();
    EXPECT_FALSE(net.deadlockDetected());
    EXPECT_GT(net.counters().flits_delivered, 2000u);
}

TEST(OctDeathTest, UnsupportedAlgorithmIsFatal)
{
    OctMesh oct(4, 4);
    EXPECT_EXIT({ (void)makeRouting("west-first", oct); },
                ::testing::ExitedWithCode(1), "octagonal");
}

} // namespace
} // namespace turnmodel
