/**
 * @file
 * Unit tests for direction algebra.
 */

#include <gtest/gtest.h>

#include "topology/direction.hpp"

namespace turnmodel {
namespace {

TEST(Direction, IdRoundTrip)
{
    for (int dims = 1; dims <= 6; ++dims) {
        for (DirId id = 0; id < 2 * dims; ++id) {
            const Direction d = Direction::fromId(id);
            EXPECT_EQ(d.id(), id);
        }
    }
}

TEST(Direction, IdLayout)
{
    EXPECT_EQ(dir2d::West.id(), 0);
    EXPECT_EQ(dir2d::East.id(), 1);
    EXPECT_EQ(dir2d::South.id(), 2);
    EXPECT_EQ(dir2d::North.id(), 3);
}

TEST(Direction, Opposite)
{
    EXPECT_EQ(dir2d::West.opposite(), dir2d::East);
    EXPECT_EQ(dir2d::East.opposite(), dir2d::West);
    EXPECT_EQ(dir2d::North.opposite(), dir2d::South);
    EXPECT_EQ(dir2d::South.opposite(), dir2d::North);
}

TEST(Direction, OppositeIsInvolution)
{
    for (Direction d : allDirections(5))
        EXPECT_EQ(d.opposite().opposite(), d);
}

TEST(Direction, Delta)
{
    EXPECT_EQ(dir2d::West.delta(), -1);
    EXPECT_EQ(dir2d::East.delta(), 1);
    EXPECT_EQ(dir2d::South.delta(), -1);
    EXPECT_EQ(dir2d::North.delta(), 1);
}

TEST(Direction, AllDirectionsCountAndOrder)
{
    const auto dirs = allDirections(3);
    ASSERT_EQ(dirs.size(), 6u);
    for (std::size_t i = 0; i < dirs.size(); ++i)
        EXPECT_EQ(dirs[i].id(), i);
}

TEST(Direction, Names)
{
    EXPECT_EQ(directionName(dir2d::West), "west");
    EXPECT_EQ(directionName(dir2d::East), "east");
    EXPECT_EQ(directionName(dir2d::South), "south");
    EXPECT_EQ(directionName(dir2d::North), "north");
    EXPECT_EQ(directionName(Direction(2, true)), "+d2");
    EXPECT_EQ(directionName(Direction(4, false)), "-d4");
}

TEST(Direction, Comparison)
{
    EXPECT_EQ(dir2d::West, Direction(0, false));
    EXPECT_NE(dir2d::West, dir2d::East);
}

} // namespace
} // namespace turnmodel
