/**
 * @file
 * Unit tests for the k-ary n-cube (torus) topology.
 */

#include <gtest/gtest.h>

#include "topology/torus.hpp"

namespace turnmodel {
namespace {

TEST(Torus, BasicProperties)
{
    KAryNCube torus(4, 2);
    EXPECT_EQ(torus.numNodes(), 16u);
    EXPECT_EQ(torus.k(), 4);
    EXPECT_EQ(torus.name(), "4-ary 2-cube");
}

TEST(Torus, WrapsAround)
{
    KAryNCube torus(4, 2);
    EXPECT_EQ(torus.neighbor(torus.node({3, 0}), dir2d::East),
              torus.node({0, 0}));
    EXPECT_EQ(torus.neighbor(torus.node({0, 2}), dir2d::West),
              torus.node({3, 2}));
    EXPECT_EQ(torus.neighbor(torus.node({1, 3}), dir2d::North),
              torus.node({1, 0}));
    EXPECT_EQ(torus.neighbor(torus.node({1, 0}), dir2d::South),
              torus.node({1, 3}));
}

TEST(Torus, WraparoundFlag)
{
    KAryNCube torus(4, 2);
    EXPECT_TRUE(torus.isWraparound(torus.node({3, 1}), dir2d::East));
    EXPECT_FALSE(torus.isWraparound(torus.node({2, 1}), dir2d::East));
    EXPECT_TRUE(torus.isWraparound(torus.node({0, 1}), dir2d::West));
    EXPECT_TRUE(torus.isWraparound(torus.node({1, 0}), dir2d::South));
    EXPECT_TRUE(torus.isWraparound(torus.node({1, 3}), dir2d::North));
}

TEST(Torus, EveryNodeHasFullDegree)
{
    KAryNCube torus(4, 2);
    for (NodeId v = 0; v < torus.numNodes(); ++v)
        EXPECT_EQ(torus.outgoingDirections(v).size(), 4u);
}

TEST(Torus, ChannelCount)
{
    // k > 2: every node drives 2n channels.
    KAryNCube torus(4, 2);
    EXPECT_EQ(torus.countChannels(), 16u * 4u);
    KAryNCube torus3(3, 3);
    EXPECT_EQ(torus3.countChannels(), 27u * 6u);
}

TEST(Torus, RingDistance)
{
    KAryNCube torus(8, 1);
    EXPECT_EQ(torus.distance(0, 4), 4);
    EXPECT_EQ(torus.distance(0, 5), 3);   // Around the short way.
    EXPECT_EQ(torus.distance(0, 7), 1);
    EXPECT_EQ(torus.distance(2, 2), 0);
}

TEST(Torus, Distance2D)
{
    KAryNCube torus(4, 2);
    EXPECT_EQ(torus.distance(torus.node({0, 0}), torus.node({3, 3})), 2);
    EXPECT_EQ(torus.distance(torus.node({0, 0}), torus.node({2, 2})), 4);
}

TEST(Torus, Diameter)
{
    EXPECT_EQ(KAryNCube(4, 2).diameter(), 4);
    EXPECT_EQ(KAryNCube(8, 2).diameter(), 8);
    EXPECT_EQ(KAryNCube(2, 8).diameter(), 8);
}

TEST(Torus, BinaryDegeneratesToHypercube)
{
    // For k = 2 the wraparound duplicates the mesh hop; each node has
    // exactly n neighbors, reached by exactly one direction each.
    KAryNCube cube(2, 3);
    for (NodeId v = 0; v < cube.numNodes(); ++v) {
        EXPECT_EQ(cube.outgoingDirections(v).size(), 3u);
        for (Direction d : cube.outgoingDirections(v)) {
            const auto w = cube.neighbor(v, d);
            ASSERT_TRUE(w.has_value());
            EXPECT_EQ(cube.distance(v, *w), 1);
        }
    }
    EXPECT_EQ(cube.countChannels(), 8u * 3u);
}

TEST(Torus, NeighborIsInverseForKGreaterTwo)
{
    KAryNCube torus(5, 2);
    for (NodeId v = 0; v < torus.numNodes(); ++v) {
        for (Direction d : allDirections(2)) {
            const auto w = torus.neighbor(v, d);
            ASSERT_TRUE(w.has_value());
            EXPECT_EQ(torus.neighbor(*w, d.opposite()), v);
        }
    }
}

TEST(Torus, DistanceIsSymmetric)
{
    KAryNCube torus(5, 2);
    for (NodeId a = 0; a < torus.numNodes(); ++a) {
        for (NodeId b = 0; b < torus.numNodes(); ++b)
            EXPECT_EQ(torus.distance(a, b), torus.distance(b, a));
    }
}

} // namespace
} // namespace turnmodel
