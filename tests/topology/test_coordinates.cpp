/**
 * @file
 * Unit tests for coordinate/linear-id conversions.
 */

#include <gtest/gtest.h>

#include "topology/coordinates.hpp"

namespace turnmodel {
namespace {

TEST(Coordinates, ShapeSize)
{
    EXPECT_EQ(shapeSize({16, 16}), 256u);
    EXPECT_EQ(shapeSize({2, 2, 2, 2, 2, 2, 2, 2}), 256u);
    EXPECT_EQ(shapeSize({4, 3}), 12u);
}

TEST(Coordinates, RoundTripAllNodes)
{
    const Shape shape{4, 3, 2};
    for (NodeId v = 0; v < shapeSize(shape); ++v) {
        const Coords c = coordsOf(v, shape);
        EXPECT_EQ(nodeAt(c, shape), v);
    }
}

TEST(Coordinates, Dim0VariesFastest)
{
    const Shape shape{4, 4};
    EXPECT_EQ(coordsOf(0, shape), (Coords{0, 0}));
    EXPECT_EQ(coordsOf(1, shape), (Coords{1, 0}));
    EXPECT_EQ(coordsOf(4, shape), (Coords{0, 1}));
    EXPECT_EQ(coordsOf(15, shape), (Coords{3, 3}));
}

TEST(Coordinates, InBounds)
{
    const Shape shape{3, 3};
    EXPECT_TRUE(inBounds({0, 0}, shape));
    EXPECT_TRUE(inBounds({2, 2}, shape));
    EXPECT_FALSE(inBounds({3, 0}, shape));
    EXPECT_FALSE(inBounds({0, -1}, shape));
    EXPECT_FALSE(inBounds({0}, shape));
}

TEST(Coordinates, ToString)
{
    EXPECT_EQ(coordsToString({1, 2}), "(1,2)");
    EXPECT_EQ(coordsToString({7}), "(7)");
    EXPECT_EQ(coordsToString({0, 0, 0}), "(0,0,0)");
}

TEST(CoordinatesDeathTest, OutOfRangeCoordinatePanics)
{
    const Shape shape{2, 2};
    EXPECT_DEATH({ (void)nodeAt({2, 0}, shape); }, "out of bounds");
}

TEST(CoordinatesDeathTest, NodeIdOutsideShapePanics)
{
    const Shape shape{2, 2};
    EXPECT_DEATH({ (void)coordsOf(4, shape); }, "outside of shape");
}

} // namespace
} // namespace turnmodel
