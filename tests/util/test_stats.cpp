/**
 * @file
 * Unit tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace turnmodel {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic sequence is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues)
{
    RunningStats s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng rng(7);
    RunningStats all, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 100.0 - 50.0;
        all.add(x);
        (i % 2 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, StddevIsSqrtVariance)
{
    RunningStats s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(s.variance()));
}

TEST(Histogram, BinsAndCounts)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.numBins(), 10u);
    h.add(0.5);
    h.add(1.5);
    h.add(1.7);
    h.add(9.99);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.0);    // hi is exclusive
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinLowEdges)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.binLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binLow(4), 18.0);
}

TEST(Histogram, QuantileUniformData)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
    EXPECT_NEAR(h.quantile(0.01), 1.0, 2.0);
}

TEST(Histogram, QuantileEmpty)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileFlagsOverflowClamp)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 50; ++i)
        h.add(50.0);      // In range.
    for (int i = 0; i < 50; ++i)
        h.add(1000.0);    // Overflow bin.
    bool clamped = false;
    // The p99 lives in the overflow bin: the returned value is only
    // the histogram bound, and the flag must say so.
    EXPECT_DOUBLE_EQ(h.quantile(0.99, &clamped), 100.0);
    EXPECT_TRUE(clamped);
    // The median is measured normally and must not be flagged.
    EXPECT_NEAR(h.quantile(0.25, &clamped), 50.0, 10.0);
    EXPECT_FALSE(clamped);
}

TEST(Histogram, QuantileFlagsUnderflowClamp)
{
    Histogram h(10.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(1.0);       // Below lo: underflow bin.
    for (int i = 0; i < 90; ++i)
        h.add(50.0);
    bool clamped = false;
    EXPECT_DOUBLE_EQ(h.quantile(0.05, &clamped), 10.0);
    EXPECT_TRUE(clamped);
    EXPECT_NEAR(h.quantile(0.99, &clamped), 50.0, 10.0);
    EXPECT_FALSE(clamped);
}

TEST(Histogram, QuantileClampPointerIsOptional)
{
    Histogram h(0.0, 10.0, 4);
    h.add(100.0);
    // Legacy single-argument form still works (and still clamps).
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    h.add(2.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.binCount(0), 0u);
}

/** Exact nearest-rank quantile of a sample set (reference oracle). */
double
exactQuantile(std::vector<double> xs, double q)
{
    std::sort(xs.begin(), xs.end());
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(xs.size())));
    return xs[rank == 0 ? 0 : rank - 1];
}

TEST(P2Quantile, EmptyIsZero)
{
    P2Quantile p(0.99);
    EXPECT_EQ(p.count(), 0u);
    EXPECT_DOUBLE_EQ(p.value(), 0.0);
}

TEST(P2Quantile, SmallSamplesAreExact)
{
    // Until the marker array fills, the estimator buffers samples and
    // must return the exact nearest-rank order statistic.
    P2Quantile median(0.5);
    for (double x : {9.0, 1.0, 5.0, 3.0, 7.0})
        median.add(x);
    EXPECT_EQ(median.count(), 5u);
    EXPECT_DOUBLE_EQ(median.value(), 5.0);

    P2Quantile p99(0.99);
    for (double x : {4.0, 2.0, 8.0})
        p99.add(x);
    EXPECT_DOUBLE_EQ(p99.value(), 8.0);
}

TEST(P2Quantile, ExponentialTailWithinTwoPercent)
{
    // Latency-like heavy-ish tail: exponential inter-arrival samples.
    // The acceptance bound for the streaming estimator is 2% of the
    // exact order statistic at soak-scale sample counts.
    Rng rng(42);
    P2Quantile p99(0.99);
    std::vector<double> xs;
    xs.reserve(200000);
    for (int i = 0; i < 200000; ++i) {
        const double x = rng.nextExponential(50.0);
        xs.push_back(x);
        p99.add(x);
    }
    const double exact = exactQuantile(xs, 0.99);
    EXPECT_NEAR(p99.value(), exact, 0.02 * exact);
}

TEST(P2Quantile, BimodalPacketLatencies)
{
    // The paper's workload produces bimodal latencies (10- and
    // 200-flit packets); the p99 sits in the long-packet mode.
    Rng rng(7);
    P2Quantile p99(0.99);
    std::vector<double> xs;
    for (int i = 0; i < 50000; ++i) {
        const double base = rng.nextBool() ? 20.0 : 400.0;
        const double x = base + rng.nextExponential(30.0);
        xs.push_back(x);
        p99.add(x);
    }
    const double exact = exactQuantile(xs, 0.99);
    EXPECT_NEAR(p99.value(), exact, 0.02 * exact);
}

TEST(P2Quantile, ConstantMemoryIsDeterministic)
{
    // The estimate is a pure function of the sample sequence: two
    // estimators fed the same stream agree to the last bit (the
    // property the simulator's reproducibility contract needs).
    Rng rng_a(3), rng_b(3);
    P2Quantile a(0.99), b(0.99);
    for (int i = 0; i < 10000; ++i) {
        a.add(rng_a.nextExponential(10.0));
        b.add(rng_b.nextExponential(10.0));
    }
    EXPECT_DOUBLE_EQ(a.value(), b.value());
}

TEST(P2Quantile, ResetClears)
{
    P2Quantile p(0.9);
    for (int i = 0; i < 100; ++i)
        p.add(static_cast<double>(i));
    p.reset();
    EXPECT_EQ(p.count(), 0u);
    EXPECT_DOUBLE_EQ(p.value(), 0.0);
    // Reusable after reset: small-sample exactness again.
    p.add(2.0);
    p.add(1.0);
    EXPECT_DOUBLE_EQ(p.value(), 2.0);
}

} // namespace
} // namespace turnmodel
