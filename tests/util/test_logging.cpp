/**
 * @file
 * Tests for the logging/error helpers: message composition and the
 * fatal paths (checked via death tests).
 */

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace turnmodel {
namespace {

TEST(Logging, ComposeMessage)
{
    EXPECT_EQ(composeMessage("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(composeMessage(), "");
    EXPECT_EQ(composeMessage(42), "42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT({ TM_FATAL("bad input ", 7); },
                ::testing::ExitedWithCode(1), "bad input 7");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH({ TM_PANIC("broken invariant"); }, "broken invariant");
}

TEST(LoggingDeathTest, AssertFires)
{
    EXPECT_DEATH({ TM_ASSERT(1 == 2, "math failed"); }, "assertion");
}

TEST(Logging, AssertPassesSilently)
{
    TM_ASSERT(1 + 1 == 2, "never shown");
    SUCCEED();
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    TM_WARN("this is a warning");
    TM_INFORM("this is information");
    SUCCEED();
}

} // namespace
} // namespace turnmodel
