/**
 * @file
 * Unit tests for the xoshiro256++ generator and its distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace turnmodel {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NearbySeedsDecorrelated)
{
    // SplitMix64 seeding should make consecutive seeds unrelated.
    Rng a(1000);
    Rng b(1001);
    const std::uint64_t xa = a();
    const std::uint64_t xb = b();
    EXPECT_NE(xa, xb);
    // Hamming distance of first outputs should be near 32.
    const int ham = __builtin_popcountll(xa ^ xb);
    EXPECT_GT(ham, 10);
    EXPECT_LT(ham, 54);
}

TEST(Rng, StreamsIndependent)
{
    Rng a = Rng::forStream(7, 0);
    Rng b = Rng::forStream(7, 1);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ForStreamDeterministic)
{
    Rng a = Rng::forStream(9, 5);
    Rng b = Rng::forStream(9, 5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(3);
    for (int bound : {1, 2, 3, 7, 100, 1000000}) {
        for (int i = 0; i < 200; ++i) {
            const auto v = rng.nextBounded(
                static_cast<std::uint64_t>(bound));
            EXPECT_LT(v, static_cast<std::uint64_t>(bound));
        }
    }
}

TEST(Rng, BoundedOneIsAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BoundedRoughlyUniform)
{
    Rng rng(5);
    constexpr int kBuckets = 10;
    constexpr int kDraws = 100000;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.nextBounded(kBuckets)];
    for (int c : counts) {
        EXPECT_GT(c, kDraws / kBuckets * 0.9);
        EXPECT_LT(c, kDraws / kBuckets * 1.1);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.nextDouble();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(23);
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(29);
    const double mean = 40.0;
    double sum = 0.0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i)
        sum += rng.nextExponential(mean);
    EXPECT_NEAR(sum / kDraws, mean, mean * 0.02);
}

TEST(Rng, ExponentialIsPositive)
{
    Rng rng(31);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.nextExponential(1.0), 0.0);
}

TEST(Rng, BoolProbability)
{
    Rng rng(37);
    int trues = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        if (rng.nextBool(0.3))
            ++trues;
    }
    EXPECT_NEAR(static_cast<double>(trues) / kDraws, 0.3, 0.01);
}

TEST(Rng, BoolExtremes)
{
    Rng rng(41);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

} // namespace
} // namespace turnmodel
