/**
 * @file
 * Unit and property tests for bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

TEST(BitOps, Popcount)
{
    EXPECT_EQ(popcount(0), 0);
    EXPECT_EQ(popcount(1), 1);
    EXPECT_EQ(popcount(0xff), 8);
    EXPECT_EQ(popcount(~0ULL), 64);
    EXPECT_EQ(popcount(0b1011010100), 5);
}

TEST(BitOps, LowestSetBit)
{
    EXPECT_EQ(lowestSetBit(0), -1);
    EXPECT_EQ(lowestSetBit(1), 0);
    EXPECT_EQ(lowestSetBit(0b1000), 3);
    EXPECT_EQ(lowestSetBit(0b101000), 3);
    EXPECT_EQ(lowestSetBit(1ULL << 63), 63);
}

TEST(BitOps, BitOf)
{
    EXPECT_TRUE(bitOf(0b100, 2));
    EXPECT_FALSE(bitOf(0b100, 1));
    EXPECT_FALSE(bitOf(0b100, 0));
}

TEST(BitOps, WithBit)
{
    EXPECT_EQ(withBit(0, 3, true), 0b1000u);
    EXPECT_EQ(withBit(0b1111, 2, false), 0b1011u);
    EXPECT_EQ(withBit(0b1000, 3, true), 0b1000u);
}

TEST(BitOps, FlipBit)
{
    EXPECT_EQ(flipBit(0, 0), 1u);
    EXPECT_EQ(flipBit(1, 0), 0u);
    EXPECT_EQ(flipBit(0b1010, 1), 0b1000u);
}

TEST(BitOps, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xffu);
    EXPECT_EQ(lowMask(64), ~0ULL);
}

TEST(BitOps, ReverseBitsKnown)
{
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011u);
    EXPECT_EQ(reverseBits(0b10110, 5), 0b01101u);
}

TEST(BitOps, ReverseClearsHighBits)
{
    EXPECT_EQ(reverseBits(0xf0, 4), 0u);
}

TEST(BitOps, ComplementBits)
{
    EXPECT_EQ(complementBits(0b0000, 4), 0b1111u);
    EXPECT_EQ(complementBits(0b1010, 4), 0b0101u);
    EXPECT_EQ(complementBits(0, 8), 0xffu);
}

TEST(BitOps, PaperReverseFlipExample)
{
    // (x0..x7) -> (~x7 ... ~x0): reverse then complement over 8 bits.
    const std::uint64_t x = 0b10110100;      // reversed: 0b00101101
    const std::uint64_t expected = 0b11010010;
    EXPECT_EQ(complementBits(reverseBits(x, 8), 8), expected);
}

/** Property sweep over widths: double-reverse is the identity. */
class BitOpsWidth : public ::testing::TestWithParam<int>
{
};

TEST_P(BitOpsWidth, DoubleReverseIsIdentity)
{
    const int width = GetParam();
    Rng rng(width);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t x = rng() & lowMask(width);
        EXPECT_EQ(reverseBits(reverseBits(x, width), width), x);
    }
}

TEST_P(BitOpsWidth, DoubleComplementIsIdentity)
{
    const int width = GetParam();
    Rng rng(width * 31);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t x = rng() & lowMask(width);
        EXPECT_EQ(complementBits(complementBits(x, width), width), x);
    }
}

TEST_P(BitOpsWidth, ReversePreservesPopcount)
{
    const int width = GetParam();
    Rng rng(width * 17);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t x = rng() & lowMask(width);
        EXPECT_EQ(popcount(reverseBits(x, width)), popcount(x));
    }
}

TEST_P(BitOpsWidth, ComplementPopcountSums)
{
    const int width = GetParam();
    Rng rng(width * 13);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t x = rng() & lowMask(width);
        EXPECT_EQ(popcount(x) + popcount(complementBits(x, width)),
                  width);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitOpsWidth,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 16, 32, 63,
                                           64));

} // namespace
} // namespace turnmodel
