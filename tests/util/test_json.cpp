/**
 * @file
 * Tests for the shared JSON emission helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/json.hpp"

namespace turnmodel {
namespace {

TEST(Json, EscapePassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("synth:north->west,south->west"),
              "synth:north->west,south->west");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(Json, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("\\\""), "\\\\\\\"");
}

TEST(Json, EscapesControlCharactersWithShortForms)
{
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
    EXPECT_EQ(jsonEscape("a\bb"), "a\\bb");
    EXPECT_EQ(jsonEscape("a\fb"), "a\\fb");
}

TEST(Json, EscapesRemainingControlCharactersAsUnicode)
{
    EXPECT_EQ(jsonEscape(std::string("a\x01:b", 4)), "a\\u0001:b");
    EXPECT_EQ(jsonEscape(std::string("\x1f", 1)), "\\u001f");
    // U+0000 embedded mid-string survives as an escape.
    EXPECT_EQ(jsonEscape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(Json, EscapeLeavesNonControlBytesAlone)
{
    // 0x20 (space) and 8-bit bytes (UTF-8 continuation) are not
    // control characters.
    EXPECT_EQ(jsonEscape(" ~"), " ~");
    const std::string utf8 = "caf\xc3\xa9";
    EXPECT_EQ(jsonEscape(utf8), utf8);
}

TEST(Json, NumberWritesFiniteValues)
{
    std::ostringstream os;
    writeJsonNumber(os, 1.5);
    os << ' ';
    writeJsonNumber(os, -3.0);
    EXPECT_EQ(os.str(), "1.5 -3");
}

TEST(Json, NumberRoundTripsDoublesExactly)
{
    // max_digits10 output must parse back to the identical bits —
    // the old 6-significant-digit default silently rounded results.
    const double values[] = {
        1.0 / 3.0,
        0.1,
        123456.789012345,
        3.0000000000000004,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        -2.2250738585072014e-308,
    };
    for (const double v : values) {
        std::ostringstream os;
        writeJsonNumber(os, v);
        const double back = std::strtod(os.str().c_str(), nullptr);
        EXPECT_EQ(back, v) << "emitted '" << os.str() << "'";
    }
}

TEST(Json, NumberIgnoresStreamPrecisionAndRestoresIt)
{
    std::ostringstream os;
    os.precision(2);
    os << std::fixed;
    writeJsonNumber(os, 1.0 / 3.0);
    const double back = std::strtod(os.str().c_str(), nullptr);
    EXPECT_EQ(back, 1.0 / 3.0);
    // The caller's formatting survives the call.
    os << ' ' << 0.5;
    EXPECT_NE(os.str().find(" 0.50"), std::string::npos);
}

TEST(Json, NumberMapsNonFiniteToNull)
{
    std::ostringstream os;
    writeJsonNumber(os, std::numeric_limits<double>::quiet_NaN());
    os << ' ';
    writeJsonNumber(os, std::numeric_limits<double>::infinity());
    os << ' ';
    writeJsonNumber(os, -std::numeric_limits<double>::infinity());
    EXPECT_EQ(os.str(), "null null null");
}

} // namespace
} // namespace turnmodel
