/**
 * @file
 * Unit tests for CSV emission.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"

namespace turnmodel {
namespace {

TEST(Csv, HeaderAndRows)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.header({"a", "b", "c"});
    csv.beginRow().field(1).field(2.5).field("x");
    csv.endRow();
    EXPECT_EQ(os.str(), "a,b,c\n1,2.5,x\n");
    EXPECT_EQ(csv.rowCount(), 1u);
}

TEST(Csv, HeaderNotCountedAsRow)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.header({"x"});
    EXPECT_EQ(csv.rowCount(), 0u);
}

TEST(Csv, EscapesCommas)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.beginRow().field("a,b");
    csv.endRow();
    EXPECT_EQ(os.str(), "\"a,b\"\n");
}

TEST(Csv, EscapesQuotes)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.beginRow().field("say \"hi\"");
    csv.endRow();
    EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, EscapesNewlines)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.beginRow().field("line1\nline2");
    csv.endRow();
    EXPECT_EQ(os.str(), "\"line1\nline2\"\n");
}

TEST(Csv, IntegerTypes)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.beginRow()
        .field(std::uint64_t{18446744073709551615ULL})
        .field(std::int64_t{-5})
        .field(-7);
    csv.endRow();
    EXPECT_EQ(os.str(), "18446744073709551615,-5,-7\n");
}

TEST(Csv, MultipleRows)
{
    std::ostringstream os;
    CsvWriter csv(os);
    for (int i = 0; i < 3; ++i) {
        csv.beginRow().field(i);
        csv.endRow();
    }
    EXPECT_EQ(os.str(), "0\n1\n2\n");
    EXPECT_EQ(csv.rowCount(), 3u);
}

TEST(Csv, PlainStringUntouched)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.beginRow().field(std::string("hello world"));
    csv.endRow();
    EXPECT_EQ(os.str(), "hello world\n");
}

} // namespace
} // namespace turnmodel
