/**
 * @file
 * Unit tests for the round-robin arbiter backing the VC router's
 * separable switch allocator: rotating priority, pointer updates only
 * on confirmed grants, and candidate-order insensitivity (the
 * determinism contract).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "router/arbiter.hpp"

namespace turnmodel {
namespace {

std::uint32_t
pick(const RoundRobinArbiter &arb, std::vector<std::uint32_t> cands)
{
    return arb.select(cands.data(), cands.size());
}

TEST(RoundRobinArbiter, FreshArbiterPicksLowestId)
{
    RoundRobinArbiter arb(8);
    EXPECT_EQ(arb.priority(), 0u);
    EXPECT_EQ(pick(arb, {3, 1, 6}), 1u);
    EXPECT_EQ(pick(arb, {0, 7}), 0u);
}

TEST(RoundRobinArbiter, SelectDoesNotAdvancePriority)
{
    RoundRobinArbiter arb(8);
    EXPECT_EQ(pick(arb, {2, 5}), 2u);
    EXPECT_EQ(pick(arb, {2, 5}), 2u);
    EXPECT_EQ(arb.priority(), 0u);
}

TEST(RoundRobinArbiter, ConfirmMovesPriorityPastWinner)
{
    RoundRobinArbiter arb(4);
    arb.confirm(1);
    EXPECT_EQ(arb.priority(), 2u);
    // Members at or after the pointer win before wrapped ones.
    EXPECT_EQ(pick(arb, {0, 1, 3}), 3u);
    arb.confirm(3);
    EXPECT_EQ(arb.priority(), 0u);   // Wraps at the universe size.
}

TEST(RoundRobinArbiter, CyclesThroughPersistentContenders)
{
    RoundRobinArbiter arb(4);
    std::vector<std::uint32_t> grants;
    for (int i = 0; i < 8; ++i) {
        const std::uint32_t w = pick(arb, {0, 1, 2, 3});
        arb.confirm(w);
        grants.push_back(w);
    }
    EXPECT_EQ(grants,
              (std::vector<std::uint32_t>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(RoundRobinArbiter, StarvationFreeUnderAsymmetricLoad)
{
    // Member 2 requests every cycle against rotating competition; it
    // must win within one full rotation.
    RoundRobinArbiter arb(4);
    int waited = 0;
    for (int i = 0; i < 32; ++i) {
        const std::uint32_t other = static_cast<std::uint32_t>(i % 2);
        const std::uint32_t w = pick(arb, {other, 2});
        arb.confirm(w);
        if (w == 2)
            waited = 0;
        else
            ASSERT_LE(++waited, 4);
    }
}

TEST(RoundRobinArbiter, CandidateOrderDoesNotMatter)
{
    RoundRobinArbiter arb(16);
    arb.confirm(9);   // Priority pointer now at 10.
    std::vector<std::uint32_t> cands = {1, 14, 10, 4, 12};
    std::sort(cands.begin(), cands.end());
    do {
        EXPECT_EQ(pick(arb, cands), 10u);
    } while (std::next_permutation(cands.begin(), cands.end()));
}

TEST(RoundRobinArbiter, SingleCandidateAlwaysWins)
{
    RoundRobinArbiter arb(8);
    arb.confirm(5);
    EXPECT_EQ(pick(arb, {3}), 3u);
}

} // namespace
} // namespace turnmodel
