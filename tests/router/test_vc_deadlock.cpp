/**
 * @file
 * Deadlock behavior of the VC router: unrestricted fully adaptive
 * routing wedges under the drain criterion, while the escape-VC
 * discipline — the same adaptive freedom plus a turn-model-restricted
 * VC0 — always drains and runs a saturated 16x16 mesh past a million
 * delivered packets.
 */

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "router/vc_network.hpp"
#include "topology/mesh.hpp"
#include "topology/virtual_channels.hpp"
#include "traffic/permutation.hpp"

namespace turnmodel {
namespace {

/** Quarter-rotation permutation (as in the classic deadlock tests). */
class RotationPattern : public PermutationTraffic
{
  public:
    explicit RotationPattern(const Topology &topo)
        : PermutationTraffic(topo)
    {
    }

    NodeId map(NodeId src) const override
    {
        const Coords c = topo_.coords(src);
        const int m = topo_.radix(0);
        return topo_.node({c[1], m - 1 - c[0]});
    }

    std::string name() const override { return "rotation"; }
};

/**
 * The drain criterion from the classic deadlock suite: saturate the
 * network, stop generation, and try to drain. A wedged dependency
 * cycle can never drain, so residual flits mean deadlock — a far
 * sharper signal than any stall watchdog.
 */
bool
drains(const Topology &topo, const RoutingAlgorithm &routing,
       std::uint64_t seed)
{
    RotationPattern pattern(topo);
    SimConfig cfg;
    cfg.router_model = RouterModel::VcCredit;
    cfg.buffer_depth = 1;
    cfg.injection_rate = 0.9;
    cfg.seed = seed;
    cfg.output_selection = OutputSelection::Random;
    VcNetwork net(routing, pattern, cfg);
    std::vector<Completion> drained;
    while (net.now() < 4000) {
        net.step();
        net.drainCompletions(drained);
    }
    net.setGenerationEnabled(false);
    while (net.now() < 200000 && net.stallCycles() < 2000 &&
           (net.counters().flits_in_network > 0 ||
            net.sourceQueuePackets() > 0)) {
        net.step();
        net.drainCompletions(drained);
    }
    return net.counters().flits_in_network == 0;
}

TEST(VcDeadlock, UnrestrictedFullyAdaptiveWedges)
{
    // The cyclic routing relation deadlocks the credit-based router
    // just as it does the classic engine. (With two unrestricted VCs
    // per wire a wedge needs every candidate VC of every waiting
    // header held in-cycle — too rare to provoke at this scale, which
    // is precisely why deadlock freedom must come from the escape
    // discipline rather than from adding channels.)
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting routing(mesh, all, true, "fully-adaptive");
    EXPECT_FALSE(drains(mesh, routing, 11))
        << "unrestricted fully adaptive routing should wedge";
}

TEST(VcDeadlock, EscapeVcSurvivesTheSameStress)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({8, 8}, 2);
    for (const char *algorithm : {"vc:xy", "vc:westfirst"}) {
        RoutingPtr routing = makeRouting(algorithm, mesh);
        EXPECT_TRUE(drains(mesh, *routing, 11)) << algorithm;
    }
}

/**
 * The acceptance bar: run a saturated 16x16 mesh until a million
 * packets are delivered. Deadlock freedom means delivery never stops:
 * every window must complete packets, and no packet may stall beyond
 * the (generous) threshold. Individual packets legitimately starve
 * for tens of thousands of cycles this deep past saturation (west-
 * first's adaptivity asymmetry makes it far worse than xy here, as in
 * the paper's uniform-traffic ranking), so the threshold separates
 * "slow under overload" from "wedged".
 */
void
runMillionPackets(const char *algorithm)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({16, 16}, 2);
    RoutingPtr routing = makeRouting(algorithm, mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg;
    cfg.router_model = RouterModel::VcCredit;
    cfg.buffer_depth = 2;
    cfg.injection_rate = 0.45;  // Past uniform-mesh saturation.
    cfg.lengths = PacketLengthDist::fixed(2);
    cfg.deadlock_threshold = 100'000;
    VcNetwork net(*routing, *pattern, cfg);

    const std::uint64_t target = 1'000'000;
    const std::uint64_t horizon = 400'000;
    std::vector<Completion> drained;
    std::uint64_t last_delivered = 0;
    while (net.counters().packets_delivered < target) {
        for (int i = 0; i < 4096 && net.counters().packets_delivered < target; ++i) {
            net.step();
            net.drainCompletions(drained);   // Keep memory bounded.
        }
        ASSERT_FALSE(net.deadlockDetected())
            << algorithm << " wedged at cycle " << net.now();
        ASSERT_GT(net.counters().packets_delivered, last_delivered)
            << algorithm << " stopped delivering at cycle "
            << net.now();
        last_delivered = net.counters().packets_delivered;
        ASSERT_LT(net.now(), horizon)
            << algorithm << " too slow: " << last_delivered
            << " delivered";
    }
    EXPECT_GE(net.counters().packets_delivered, target);
}

TEST(VcDeadlock, EscapeXyDeliversAMillionPacketsSaturated)
{
    runMillionPackets("vc:xy");
}

TEST(VcDeadlock, EscapeWestFirstDeliversAMillionPacketsSaturated)
{
    runMillionPackets("vc:westfirst");
}

} // namespace
} // namespace turnmodel
