/**
 * @file
 * Behavioral tests of the credit-based VC router engine: single
 * packets traverse the pipeline with the advertised timing, traffic
 * is delivered under both switch-arbiter organizations and both
 * pipeline modes, the engine honors virtual-channel wire sharing,
 * and sweep results are byte-identical at any job count.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/routing/factory.hpp"
#include "exec/runner.hpp"
#include "router/vc_network.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "topology/virtual_channels.hpp"

namespace turnmodel {
namespace {

/** A pattern that never generates traffic (tests drive post()). */
class SilentPattern : public TrafficPattern
{
  public:
    std::optional<NodeId> destination(NodeId, Rng &) const override
    {
        return std::nullopt;
    }
    std::string name() const override { return "silent"; }
    bool isDeterministic() const override { return true; }
};

SimConfig
vcConfig()
{
    SimConfig cfg;
    cfg.router_model = RouterModel::VcCredit;
    cfg.buffer_depth = 4;
    return cfg;
}

std::vector<Completion>
runToDrain(VcNetwork &net, std::uint64_t horizon)
{
    std::vector<Completion> done;
    std::vector<Completion> batch;
    while (net.now() < horizon) {
        net.step();
        net.drainCompletions(batch);
        done.insert(done.end(), batch.begin(), batch.end());
        if (net.counters().flits_in_network == 0 &&
            net.sourceQueuePackets() == 0) {
            break;
        }
    }
    return done;
}

TEST(VcNetwork, SinglePacketCrossesTheMesh)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    SilentPattern silent;
    VcNetwork net(*routing, silent, vcConfig());
    net.post(mesh.node({0, 0}), mesh.node({3, 3}), 10);
    const auto done = runToDrain(net, 1000);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].hops, 6u);
    EXPECT_EQ(net.counters().flits_delivered, 10u);
    EXPECT_EQ(net.counters().flits_in_network, 0u);
}

TEST(VcNetwork, PipelineChargesPerHopLatency)
{
    // One lonely 1-flit packet, one hop. Pipelined: inject at cycle 1,
    // RC+VA charge two cycles, SA+LT one, eject one — strictly more
    // cycles than the non-pipelined router, which matches the classic
    // engine's hop timing.
    NDMesh mesh = NDMesh::mesh2D(2, 2);
    RoutingPtr routing = makeRouting("xy", mesh);
    SilentPattern silent;

    SimConfig pipe = vcConfig();
    VcNetwork fast(*routing, silent, pipe);
    fast.post(mesh.node({0, 0}), mesh.node({1, 0}), 1);
    const auto piped = runToDrain(fast, 100);

    SimConfig flat = vcConfig();
    flat.vc_router.pipelined = false;
    VcNetwork slow(*routing, silent, flat);
    slow.post(mesh.node({0, 0}), mesh.node({1, 0}), 1);
    const auto direct = runToDrain(slow, 100);

    ASSERT_EQ(piped.size(), 1u);
    ASSERT_EQ(direct.size(), 1u);
    EXPECT_GT(piped[0].delivered, direct[0].delivered);
}

TEST(VcNetwork, DeliversUniformTrafficOnPlainMesh)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = vcConfig();
    cfg.injection_rate = 0.05;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 4000;
    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();
    EXPECT_GT(r.packets_measured, 50u);
    EXPECT_GT(r.throughput_flits_per_us, 0.0);
    EXPECT_FALSE(r.saturated);
    EXPECT_FALSE(r.deadlocked);
}

TEST(VcNetwork, DeliversEscapeVcTrafficOnVirtualizedMesh)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({8, 8}, 2);
    RoutingPtr routing = makeRouting("vc:west-first", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    SimConfig cfg = vcConfig();
    cfg.injection_rate = 0.05;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 4000;
    cfg.lengths = PacketLengthDist::fixed(8);
    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();
    EXPECT_GT(r.packets_measured, 50u);
    EXPECT_FALSE(r.deadlocked);
}

TEST(VcNetwork, BothArbiterOrganizationsDeliver)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("west-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    for (SwitchArbiter arb :
         {SwitchArbiter::InputFirst, SwitchArbiter::OutputFirst}) {
        SimConfig cfg = vcConfig();
        cfg.vc_router.arbiter = arb;
        cfg.injection_rate = 0.06;
        cfg.warmup_cycles = 1000;
        cfg.measure_cycles = 3000;
        Simulator sim(*routing, *pattern, cfg);
        const SimResult r = sim.run();
        EXPECT_GT(r.packets_measured, 50u) << toString(arb);
        EXPECT_FALSE(r.deadlocked) << toString(arb);
    }
}

TEST(VcNetwork, RunsAreReproducible)
{
    // Identical configuration twice: identical results (the engine
    // has no hidden global state).
    VirtualizedMesh mesh = VirtualizedMesh::uniform({6, 6}, 2);
    RoutingPtr routing = makeRouting("vc:xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = vcConfig();
    cfg.injection_rate = 0.08;
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 2000;
    const SimResult a = Simulator(*routing, *pattern, cfg).run();
    const SimResult b = Simulator(*routing, *pattern, cfg).run();
    EXPECT_EQ(a.packets_measured, b.packets_measured);
    EXPECT_EQ(a.throughput_flits_per_us, b.throughput_flits_per_us);
    EXPECT_EQ(a.avg_latency_us, b.avg_latency_us);
    EXPECT_EQ(a.p99_latency_us, b.p99_latency_us);
}

TEST(VcNetwork, SweepBytesIdenticalAcrossJobCounts)
{
    // The acceptance bar: a VC-router experiment serializes to the
    // same bytes at --jobs=1 and --jobs=8.
    VirtualizedMesh mesh = VirtualizedMesh::uniform({8, 8}, 2);
    ExperimentSpec spec;
    spec.name = "vc-jobs-determinism";
    spec.topology = &mesh;
    spec.pattern = "transpose";
    spec.algorithms = {"vc:xy", "vc:west-first"};
    spec.injection_rates = {0.04, 0.10};
    spec.sim = vcConfig();
    spec.sim.warmup_cycles = 500;
    spec.sim.measure_cycles = 2000;
    spec.sim.lengths = PacketLengthDist::fixed(6);

    std::string first;
    for (unsigned jobs : {1u, 8u}) {
        Runner runner(jobs);
        const ExperimentResult result = runner.run(spec);
        std::ostringstream os;
        writeSeriesJson(os, result.experiment, result.series);
        if (first.empty())
            first = os.str();
        else
            EXPECT_EQ(first, os.str())
                << "VC sweep diverged at --jobs=" << jobs;
    }
}

TEST(VcNetwork, StoreAndForwardIsRejected)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    SilentPattern silent;
    SimConfig cfg = vcConfig();
    cfg.switching = Switching::StoreAndForward;
    cfg.buffer_depth = 256;
    EXPECT_DEATH(VcNetwork(*routing, silent, cfg), "wormhole");
}

TEST(VcNetwork, ObsReportCarriesPerVcRows)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({4, 4}, 2);
    RoutingPtr routing = makeRouting("vc:xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = vcConfig();
    cfg.injection_rate = 0.06;
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 1500;
    cfg.obs.channel_counters = true;
    Simulator sim(*routing, *pattern, cfg);
    (void)sim.run();
    const ObsReport report = sim.obsReport();
    EXPECT_EQ(report.schema_version, 2);
    // 4x4 mesh, 2 VCs: 2 * 48 directed physical channels + 16 ejects.
    EXPECT_EQ(report.channels.size(), 2u * 48u + 16u);
    std::size_t ejects = 0;
    std::size_t vc1_rows = 0;
    for (const ChannelUtilRow &row : report.channels) {
        if (row.dir == "eject") {
            ++ejects;
            EXPECT_EQ(row.vc, -1);
        } else {
            // Physical vocabulary even on the virtualized topology.
            EXPECT_TRUE(row.dir == "east" || row.dir == "west" ||
                        row.dir == "north" || row.dir == "south")
                << row.dir;
            EXPECT_GE(row.vc, 0);
            EXPECT_LE(row.vc, 1);
            vc1_rows += row.vc == 1 ? 1 : 0;
        }
    }
    EXPECT_EQ(ejects, 16u);
    EXPECT_EQ(vc1_rows, 48u);
    const std::ostringstream os;
    std::ostringstream json;
    report.writeJson(json);
    EXPECT_NE(json.str().find("\"schema\": \"turnmodel-obs-v2\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"credit_stall_cycles\""),
              std::string::npos);
}

} // namespace
} // namespace turnmodel
