/**
 * @file
 * Degenerate-configuration differential test: the VC router with one
 * VC per wire (a plain mesh), ideal credits, and the pipeline
 * collapsed reduces structurally to the classic single-buffer
 * engine, so the two engines must report the same results on the
 * paper's Figure 13 uniform-mesh sweep. Integer counters must match
 * exactly; floating-point aggregates are compared to 1e-9 relative
 * tolerance (completion-order summation may differ).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/routing/factory.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

void
expectClose(double a, double b, const std::string &what)
{
    const double tol = 1e-9 * std::max(1.0, std::max(std::abs(a),
                                                     std::abs(b)));
    EXPECT_NEAR(a, b, tol) << what;
}

void
expectSameResults(const RoutingAlgorithm &routing,
                  const TrafficPattern &pattern, SimConfig cfg,
                  const std::string &what)
{
    cfg.router_model = RouterModel::Classic;
    Simulator classic(routing, pattern, cfg);
    const SimResult a = classic.run();

    cfg.router_model = RouterModel::VcCredit;
    cfg.vc_router.ideal_credits = true;
    cfg.vc_router.pipelined = false;
    Simulator vc(routing, pattern, cfg);
    const SimResult b = vc.run();

    EXPECT_EQ(a.packets_measured, b.packets_measured) << what;
    EXPECT_EQ(a.saturated, b.saturated) << what;
    EXPECT_EQ(a.deadlocked, b.deadlocked) << what;
    expectClose(a.throughput_flits_per_us, b.throughput_flits_per_us,
                what + " throughput");
    expectClose(a.avg_latency_us, b.avg_latency_us,
                what + " latency");
    expectClose(a.p99_latency_us, b.p99_latency_us, what + " p99");
    expectClose(a.avg_hops, b.avg_hops, what + " hops");
    expectClose(a.delivered_ratio, b.delivered_ratio,
                what + " delivered ratio");

    const NetworkCounters &ca = classic.network().counters();
    const NetworkCounters &cb = vc.network().counters();
    EXPECT_EQ(ca.packets_generated, cb.packets_generated) << what;
    EXPECT_EQ(ca.packets_delivered, cb.packets_delivered) << what;
    EXPECT_EQ(ca.flits_generated, cb.flits_generated) << what;
    EXPECT_EQ(ca.flits_delivered, cb.flits_delivered) << what;
    EXPECT_EQ(ca.header_hops, cb.header_hops) << what;
    EXPECT_EQ(ca.flit_moves, cb.flit_moves) << what;
    EXPECT_EQ(ca.flits_in_network, cb.flits_in_network) << what;
    EXPECT_EQ(ca.source_queue_flits, cb.source_queue_flits) << what;
}

TEST(DegenerateDifferential, Fig13UniformMeshSweep)
{
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    PatternPtr pattern = makePattern("uniform", mesh);
    for (const char *algorithm :
         {"xy", "west-first", "north-last", "negative-first"}) {
        RoutingPtr routing = makeRouting(algorithm, mesh);
        for (double rate : {0.06, 0.18, 0.28}) {
            SimConfig cfg;
            cfg.injection_rate = rate;
            cfg.warmup_cycles = 2000;
            cfg.measure_cycles = 4000;
            expectSameResults(*routing, *pattern, cfg,
                              std::string(algorithm) + " @ " +
                                  std::to_string(rate));
        }
    }
}

TEST(DegenerateDifferential, DeeperBuffersAndOtherPolicies)
{
    // The reduction does not depend on single-flit buffers or the
    // default selection policies — only on one VC, ideal credits, a
    // collapsed pipeline, and deterministic selection.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    PatternPtr pattern = makePattern("transpose", mesh);
    RoutingPtr routing = makeRouting("west-first", mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.12;
    cfg.buffer_depth = 4;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 3000;
    cfg.output_selection = OutputSelection::StraightFirst;
    cfg.input_selection = InputSelection::FixedPriority;
    expectSameResults(*routing, *pattern, cfg, "deep transpose");
}

TEST(DegenerateDifferential, UncompiledRoutingPathToo)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    PatternPtr pattern = makePattern("uniform", mesh);
    RoutingPtr routing = makeRouting("north-last", mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.10;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 2500;
    cfg.compiled_routing = false;
    expectSameResults(*routing, *pattern, cfg, "uncompiled");
}

} // namespace
} // namespace turnmodel
