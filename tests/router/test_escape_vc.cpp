/**
 * @file
 * Tests of the escape-VC fully adaptive routing algorithm (Duato's
 * methodology layered on the turn model): VC0 of every physical wire
 * is an escape channel restricted to a deadlock-free turn-model
 * algorithm, every higher VC is fully adaptive minimal. Checks the
 * candidate sets the three packet states see (fresh, on an adaptive
 * VC, on the escape VC), the factory's "vc:" prefix, and composition
 * with compiled route tables.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/routing/compiled.hpp"
#include "core/routing/escape_vc.hpp"
#include "core/routing/factory.hpp"
#include "topology/virtual_channels.hpp"

namespace turnmodel {
namespace {

/** Positive/negative direction of virtual dim (pdim, vc). */
Direction
vdir(const VirtualizedMesh &mesh, int pdim, int vc, bool positive)
{
    return Direction(
        static_cast<std::uint8_t>(mesh.virtualDim(pdim, vc)),
        positive);
}

TEST(EscapeVc, FreshPacketSeesAdaptiveVcsPlusEscape)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({4, 4}, 2);
    EscapeVcRouting routing(mesh, "xy");
    // (0,0) -> (2,2): minimal physical directions are +x and +y; xy
    // takes +x first. Adaptive VC1 offers both dimensions, the escape
    // VC0 only xy's choice.
    const DirectionSet set = routing.routeSet(
        mesh.node({0, 0}), std::nullopt, mesh.node({2, 2}));
    EXPECT_TRUE(set.contains(vdir(mesh, 0, 1, true)));
    EXPECT_TRUE(set.contains(vdir(mesh, 1, 1, true)));
    EXPECT_TRUE(set.contains(vdir(mesh, 0, 0, true)));
    EXPECT_FALSE(set.contains(vdir(mesh, 1, 0, true)));
    EXPECT_EQ(set.size(), 3);
}

TEST(EscapeVc, AdaptiveArrivalKeepsFullChoice)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({4, 4}, 2);
    EscapeVcRouting routing(mesh, "xy");
    // Arrived at (1,1) on the adaptive x VC; both adaptive VCs stay
    // open and the escape channel is offered as a fresh xy packet
    // (drop-to-escape counts as injection into the escape network).
    const DirectionSet set = routing.routeSet(
        mesh.node({1, 1}), vdir(mesh, 0, 1, true), mesh.node({2, 2}));
    EXPECT_TRUE(set.contains(vdir(mesh, 0, 1, true)));
    EXPECT_TRUE(set.contains(vdir(mesh, 1, 1, true)));
    EXPECT_TRUE(set.contains(vdir(mesh, 0, 0, true)));
    EXPECT_FALSE(set.contains(vdir(mesh, 1, 0, true)));
    EXPECT_EQ(set.size(), 3);
}

TEST(EscapeVc, EscapeArrivalIsConfinedToEscapeChannels)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({4, 4}, 2);
    EscapeVcRouting routing(mesh, "xy");
    // Once on the escape network a wormhole packet stays there: only
    // VC0 candidates, following xy with the physical input direction.
    const DirectionSet set = routing.routeSet(
        mesh.node({1, 0}), vdir(mesh, 0, 0, true), mesh.node({2, 2}));
    EXPECT_EQ(set.size(), 1);
    EXPECT_TRUE(set.contains(vdir(mesh, 0, 0, true)));
}

TEST(EscapeVc, EscapeChannelsRestrictedWhereAdaptiveAreNot)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({4, 4}, 2);
    EscapeVcRouting routing(mesh, "west-first");
    // (2,1) -> (1,3): west-first must exhaust west hops first, so the
    // escape VC0 offers only -x, while the fully adaptive VC1 offers
    // both minimal directions.
    const DirectionSet set = routing.routeSet(
        mesh.node({2, 1}), std::nullopt, mesh.node({1, 3}));
    EXPECT_TRUE(set.contains(vdir(mesh, 0, 0, false)));
    EXPECT_FALSE(set.contains(vdir(mesh, 1, 0, true)));
    EXPECT_TRUE(set.contains(vdir(mesh, 0, 1, false)));
    EXPECT_TRUE(set.contains(vdir(mesh, 1, 1, true)));
    EXPECT_EQ(set.size(), 3);
}

TEST(EscapeVc, EveryPairReachableInEveryState)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({3, 3}, 2);
    EscapeVcRouting routing(mesh, "xy");
    for (NodeId cur = 0; cur < mesh.numNodes(); ++cur) {
        for (NodeId dest = 0; dest < mesh.numNodes(); ++dest) {
            if (cur == dest)
                continue;
            EXPECT_FALSE(
                routing.routeSet(cur, std::nullopt, dest).empty())
                << cur << "->" << dest;
            for (Direction in : allDirections(mesh.numDims())) {
                if (!mesh.neighbor(cur, in.opposite()))
                    continue;   // Cannot have arrived from there.
                EXPECT_FALSE(
                    routing.routeSet(cur, in, dest).empty())
                    << cur << "->" << dest << " in "
                    << directionName(in);
            }
        }
    }
}

TEST(EscapeVc, FactoryPrefixAndAliases)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({4, 4}, 2);
    const RoutingPtr vc = makeRouting("vc:xy", mesh);
    ASSERT_NE(vc, nullptr);
    EXPECT_EQ(vc->name(), "vc:xy");
    EXPECT_TRUE(vc->isMinimal());
    EXPECT_TRUE(vc->isInputDependent());
    EXPECT_EQ(makeRouting("vc:westfirst", mesh)->name(),
              "vc:west-first");
    EXPECT_EQ(makeRouting("vc:ecube", mesh)->name(),
              "vc:dimension-order");
}

TEST(EscapeVc, FactoryListsVcNamesOnlyWithEscapeCapacity)
{
    VirtualizedMesh two = VirtualizedMesh::uniform({4, 4}, 2);
    const auto names = availableRoutingNames(two);
    const auto has = [&](const char *n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("vc:dimension-order"));
    EXPECT_TRUE(has("vc:west-first"));
    EXPECT_TRUE(has("vc:north-last"));
    EXPECT_TRUE(has("vc:negative-first"));
    EXPECT_TRUE(has("fully-adaptive"));

    // doubleY has only one x pair: no escape+adaptive split there.
    VirtualizedMesh dy = VirtualizedMesh::doubleY(4, 4);
    const auto dy_names = availableRoutingNames(dy);
    EXPECT_EQ(std::find_if(dy_names.begin(), dy_names.end(),
                           [](const std::string &n) {
                               return n.rfind("vc:", 0) == 0;
                           }),
              dy_names.end());
}

TEST(EscapeVc, ComposesWithCompiledTables)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({3, 3}, 2);
    const RoutingPtr live = makeRouting("vc:west-first", mesh);
    const CompiledRoutingTable table(*live);
    EXPECT_TRUE(table.allPairsRoutable());
    for (NodeId cur = 0; cur < mesh.numNodes(); ++cur) {
        for (NodeId dest = 0; dest < mesh.numNodes(); ++dest) {
            if (cur == dest)
                continue;
            ASSERT_EQ(table.routeSet(cur, std::nullopt, dest),
                      live->routeSet(cur, std::nullopt, dest));
            for (Direction in : allDirections(mesh.numDims())) {
                if (!mesh.neighbor(cur, in.opposite()))
                    continue;
                ASSERT_EQ(table.routeSet(cur, in, dest),
                          live->routeSet(cur, in, dest));
            }
        }
    }
}

TEST(FullyAdaptive, OffersEveryMinimalDirection)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const RoutingPtr fa = makeRouting("fully-adaptive", mesh);
    ASSERT_NE(fa, nullptr);
    EXPECT_TRUE(fa->isMinimal());
    const DirectionSet set = fa->routeSet(
        mesh.node({0, 0}), std::nullopt, mesh.node({2, 3}));
    EXPECT_EQ(set.size(), 2);
    EXPECT_EQ(set, minimalDirectionSet(mesh, mesh.node({0, 0}),
                                       mesh.node({2, 3})));
}

} // namespace
} // namespace turnmodel
