/**
 * @file
 * Credit flow-control invariants of the VC router: counters start at
 * the downstream buffer depth, never go negative, and are conserved
 * around every link's credit loop (held credits + credits in flight
 * + downstream occupancy == buffer depth) at every cycle boundary,
 * for any credit-return delay. Also pins the backpressure signal:
 * single-flit buffers with a round-trip delay force credit stalls.
 */

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "router/vc_network.hpp"
#include "topology/mesh.hpp"
#include "topology/virtual_channels.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {
namespace {

SimConfig
busyConfig(std::uint32_t depth, std::uint32_t credit_delay)
{
    SimConfig cfg;
    cfg.router_model = RouterModel::VcCredit;
    cfg.buffer_depth = depth;
    cfg.vc_router.credit_delay = credit_delay;
    cfg.injection_rate = 0.2;
    cfg.lengths = PacketLengthDist::fixed(6);
    return cfg;
}

TEST(Credits, IdleCountersEqualBufferDepth)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    // Constructed but never stepped: every counter at full depth.
    VcNetwork net(*routing, *pattern, busyConfig(3, 2));
    for (NodeId v = 0; v < mesh.numNodes(); ++v) {
        for (Direction d : allDirections(mesh.numDims())) {
            if (!mesh.neighbor(v, d))
                continue;
            EXPECT_EQ(net.credits(v, d), 3);
        }
    }
    EXPECT_TRUE(net.auditCredits());
}

TEST(Credits, ConservedEveryCycleUnderLoad)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("west-first", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    VcNetwork net(*routing, *pattern, busyConfig(2, 1));
    for (int cycle = 0; cycle < 3000; ++cycle) {
        net.step();
        ASSERT_TRUE(net.auditCredits()) << "cycle " << cycle;
    }
    EXPECT_GT(net.counters().packets_delivered, 100u);
}

TEST(Credits, ConservedAcrossLongerReturnDelays)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    for (std::uint32_t delay : {1u, 2u, 4u}) {
        VcNetwork net(*routing, *pattern, busyConfig(4, delay));
        for (int cycle = 0; cycle < 2000; ++cycle) {
            net.step();
            ASSERT_TRUE(net.auditCredits())
                << "delay " << delay << " cycle " << cycle;
        }
        EXPECT_GT(net.counters().packets_delivered, 50u)
            << "delay " << delay;
    }
}

TEST(Credits, ConservedOnVirtualizedMeshWithEscapeRouting)
{
    VirtualizedMesh mesh = VirtualizedMesh::uniform({5, 5}, 2);
    RoutingPtr routing = makeRouting("vc:xy", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    VcNetwork net(*routing, *pattern, busyConfig(2, 2));
    for (int cycle = 0; cycle < 3000; ++cycle) {
        net.step();
        ASSERT_TRUE(net.auditCredits()) << "cycle " << cycle;
    }
    EXPECT_GT(net.counters().packets_delivered, 50u);
}

TEST(Credits, RoundTripDelayForcesCreditStalls)
{
    // Depth-1 buffers with a 2-cycle return path cannot stream: a
    // multi-flit packet must stall on credits at every hop.
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    VcNetwork net(*routing, *pattern, busyConfig(1, 2));
    for (int cycle = 0; cycle < 2000; ++cycle)
        net.step();
    EXPECT_GT(net.creditStallCycles(), 0u);
    EXPECT_GT(net.counters().packets_delivered, 0u);

    // Deep buffers at light load stream without a single stall.
    VcNetwork deep(*routing, *pattern, busyConfig(16, 1));
    for (int cycle = 0; cycle < 500; ++cycle)
        deep.step();
    EXPECT_EQ(deep.creditStallCycles(), 0u);
}

} // namespace
} // namespace turnmodel
