/**
 * @file
 * Acceptance test for the synthesis subsystem: the engine must
 * mechanically rediscover Section 3 of the paper on the 2D mesh —
 * sixteen two-turn prohibitions covering both abstract cycles,
 * exactly twelve deadlock free under the channel-dependency-graph
 * criterion, and exactly three maximally adaptive symmetry classes,
 * which are west-first, north-last, and negative-first — and a
 * synthesized winner selected purely by its factory name must run
 * through the simulator with performance comparable to the
 * hand-coded algorithm it is equivalent to.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/channel_dependency.hpp"
#include "core/routing/factory.hpp"
#include "exec/sweep.hpp"
#include "synthesis/engine.hpp"
#include "synthesis/symmetry.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {
namespace {

TEST(SynthesisAcceptance, RediscoversSectionThreeOnTheMesh)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    const SynthesisReport report = synthesize(mesh);

    // Sixteen candidates prohibiting one turn per abstract cycle.
    ASSERT_EQ(report.candidates.size(), 16u);

    // Exactly twelve CDG-verified deadlock free.
    EXPECT_EQ(report.deadlockFreeCandidates(), 12u);
    EXPECT_EQ(report.deadlockFreeClasses(), 3u);

    // Exactly three maximally adaptive symmetry classes, and they
    // are the paper's three named algorithms.
    const auto top = report.maximallyAdaptive();
    ASSERT_EQ(top.size(), 3u);
    const auto group = SignedPermutation::fullGroup(2);
    const std::map<std::vector<int>, std::string> named{
        {canonicalKey(TurnSet::westFirst(), group), "west-first"},
        {canonicalKey(TurnSet::northLast(), group), "north-last"},
        {canonicalKey(TurnSet::negativeFirst(2), group),
         "negative-first"},
    };
    std::set<std::string> found;
    for (std::size_t index : top) {
        const auto key =
            canonicalKey(report.candidates[index].set, group);
        const auto it = named.find(key);
        ASSERT_NE(it, named.end())
            << "unexpected maximally adaptive class "
            << report.candidates[index].name;
        found.insert(it->second);
    }
    EXPECT_EQ(found.size(), 3u);
}

TEST(SynthesisAcceptance, EngineVerdictsMatchDirectCdgChecks)
{
    // The report's per-candidate verdicts must agree with running
    // the Dally-Seitz check directly on a factory-built routing.
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    SynthesisConfig config;
    config.rank = false;
    const SynthesisReport report = synthesize(mesh, config);
    for (const SynthesizedCandidate &c : report.candidates) {
        RoutingPtr routing = makeRouting(c.name, mesh);
        EXPECT_EQ(isDeadlockFree(*routing), c.deadlock_free)
            << c.name;
    }
}

TEST(SynthesisAcceptance, SynthesizedWinnerRunsLikeItsHandCodedTwin)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    const SynthesisReport report = synthesize(mesh);

    // Pick the ranked survivor in west-first's symmetry orbit.
    const auto group = SignedPermutation::fullGroup(2);
    const auto wf_key = canonicalKey(TurnSet::westFirst(), group);
    std::string synth_name;
    for (std::size_t index : report.ranking) {
        if (canonicalKey(report.candidates[index].set, group)
            == wf_key) {
            synth_name = report.candidates[index].name;
            break;
        }
    }
    ASSERT_FALSE(synth_name.empty());

    // Select it from the factory by name alone and sweep it next to
    // the hand-coded algorithm under uniform traffic.
    RoutingPtr synth = makeRouting(synth_name, mesh);
    RoutingPtr hand = makeRouting("west-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SweepConfig cfg;
    cfg.injection_rates = {0.05, 0.1, 0.2, 0.3};
    cfg.sim.warmup_cycles = 500;
    cfg.sim.measure_cycles = 2000;
    const SweepSeries synth_series = runSweep(*synth, *pattern, cfg);
    const SweepSeries hand_series = runSweep(*hand, *pattern, cfg);

    EXPECT_EQ(synth_series.algorithm, synth_name);
    ASSERT_FALSE(synth_series.points.empty());
    const double synth_peak = synth_series.maxSustainableThroughput();
    const double hand_peak = hand_series.maxSustainableThroughput();
    ASSERT_GT(synth_peak, 0.0);
    ASSERT_GT(hand_peak, 0.0);
    // Same algorithm up to a reflection of the mesh: uniform-traffic
    // throughput must match closely.
    EXPECT_NEAR(synth_peak, hand_peak, 0.2 * hand_peak);
}

} // namespace
} // namespace turnmodel
