/**
 * @file
 * Checks of specific quantities printed in the paper: the Section 5
 * worked example, the adaptiveness formulas and bounds, and the
 * average path lengths of Section 6.
 */

#include <gtest/gtest.h>

#include "core/adaptiveness.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/pcube.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {
namespace {

TEST(PaperNumbers, Section5WorkedExample)
{
    // Source 1011010100 to destination 0010111001 in a 10-cube:
    // h = 6, h1 = 3, h0 = 3, 36 shortest paths under p-cube, 720
    // under full adaptivity.
    Hypercube cube(10);
    const NodeId s = 0b1011010100;
    const NodeId d = 0b0010111001;
    EXPECT_EQ(cube.hammingDistance(s, d), 6);
    EXPECT_EQ(pcubePathCount(cube, s, d), 36u);
    EXPECT_EQ(factorial(6), 720u);
    RoutingPtr pcube = makeRouting("p-cube", cube);
    EXPECT_EQ(countAllowedShortestPaths(*pcube, s, d), 36u);
}

TEST(PaperNumbers, Section5RatioFormula)
{
    // S_pcube / S_f = 1 / C(h, h1).
    Hypercube cube(10);
    const NodeId s = 0b1011010100;
    const NodeId d = 0b0010111001;
    const double ratio =
        static_cast<double>(pcubePathCount(cube, s, d)) /
        static_cast<double>(factorial(cube.hammingDistance(s, d)));
    EXPECT_DOUBLE_EQ(ratio, 1.0 / static_cast<double>(binomial(6, 3)));
}

TEST(PaperNumbers, Section34AverageRatioAboveHalf)
{
    // "averaged across all source-destination pairs, S_p/S_f > 1/2"
    // for each 2D partially adaptive algorithm.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    for (const char *name :
         {"west-first", "north-last", "negative-first"}) {
        const auto s = summarizeAdaptiveness(*makeRouting(name, mesh));
        EXPECT_GT(s.mean_ratio, 0.5) << name;
        EXPECT_LT(s.mean_ratio, 1.0) << name;
    }
}

TEST(PaperNumbers, Section34HalfThePairsSinglePath)
{
    // "S_p = 1 for at least half of the source-destination pairs."
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    for (const char *name :
         {"west-first", "north-last", "negative-first"}) {
        const auto s = summarizeAdaptiveness(*makeRouting(name, mesh));
        EXPECT_GE(s.fraction_single, 0.5) << name;
    }
}

TEST(PaperNumbers, Section41HypercubeBound)
{
    // "averaged across all pairs, S_p/S_f > 1/2^{n-1}".
    for (int n : {4, 5, 6}) {
        Hypercube cube(n);
        const auto s =
            summarizeAdaptiveness(*makeRouting("p-cube", cube));
        EXPECT_GT(s.mean_ratio, 1.0 / static_cast<double>(1 << (n - 1)))
            << "n=" << n;
    }
}

TEST(PaperNumbers, Section6MeshPathLengths)
{
    // "average path length for matrix-transpose traffic is 11.34
    // hops, versus 10.61 hops for uniform traffic" (16x16 mesh; our
    // uniform excludes self-traffic exactly, giving 10.67).
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    Rng rng(42);
    PatternPtr uniform = makePattern("uniform", mesh);
    PatternPtr transpose = makePattern("transpose", mesh);
    EXPECT_NEAR(uniform->averageDistance(mesh, rng, 200), 10.67, 0.1);
    EXPECT_NEAR(transpose->averageDistance(mesh, rng), 11.33, 0.01);
}

TEST(PaperNumbers, Section6CubePathLengths)
{
    // "average path length for reverse-flip traffic is 4.27 hops,
    // versus 4.01 hops for uniform traffic" (8-cube; excluding
    // self-traffic exactly gives 4.016 and 4.267).
    Hypercube cube(8);
    Rng rng(43);
    PatternPtr uniform = makePattern("uniform", cube);
    PatternPtr flip = makePattern("reverse-flip", cube);
    EXPECT_NEAR(uniform->averageDistance(cube, rng, 200), 4.016, 0.05);
    EXPECT_NEAR(flip->averageDistance(cube, rng), 4.267, 0.01);
}

TEST(PaperNumbers, HypercubeTransposePathLength)
{
    // The hypercube transpose averages 4.27 hops as well (half-swap
    // with two complemented bits).
    Hypercube cube(8);
    Rng rng(44);
    PatternPtr transpose = makePattern("transpose", cube);
    const double avg = transpose->averageDistance(cube, rng);
    EXPECT_GT(avg, 4.0);
    EXPECT_LT(avg, 5.0);
}

TEST(PaperNumbers, Figure5WestFirstExample)
{
    // Figure 5b routes in an 8x8 mesh: a westbound packet has
    // exactly one shortest path; an eastbound one is fully adaptive.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr wf = makeRouting("west-first", mesh);
    EXPECT_EQ(countAllowedShortestPaths(*wf, mesh.node({6, 2}),
                                        mesh.node({1, 5})),
              1u);
    EXPECT_EQ(countAllowedShortestPaths(*wf, mesh.node({1, 2}),
                                        mesh.node({5, 6})),
              binomial(8, 4));
}

} // namespace
} // namespace turnmodel
