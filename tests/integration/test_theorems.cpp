/**
 * @file
 * Machine checks of the paper's theorems as stated, across a range
 * of dimensions and mesh shapes:
 *
 *  - Theorem 1/6: prohibiting a quarter of the turns (n(n-1)) is
 *    necessary and sufficient for deadlock freedom;
 *  - Theorems 2-5: the named algorithms are deadlock free;
 *  - Section 3: 16 two-turn prohibitions, 12 deadlock free, 3 unique
 *    under symmetry.
 */

#include <gtest/gtest.h>

#include "core/channel_dependency.hpp"
#include "core/cycle_analysis.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TEST(Theorems, Theorem1QuarterOfTurns)
{
    for (int n = 2; n <= 8; ++n) {
        EXPECT_EQ(minimumProhibitedTurns(n), count90DegreeTurns(n) / 4);
        EXPECT_EQ(countAbstractCycles(n), n * (n - 1));
    }
}

TEST(Theorems, Theorem1Necessity)
{
    // Fewer prohibitions than cycles must leave some cycle intact:
    // drop one prohibition from negative-first and check the
    // abstract analysis notices.
    for (int n : {2, 3}) {
        TurnSet set = TurnSet::negativeFirst(n);
        const auto prohibited = set.prohibited90();
        ASSERT_EQ(static_cast<int>(prohibited.size()),
                  minimumProhibitedTurns(n));
        set.allow(prohibited.front());
        EXPECT_FALSE(breaksAllAbstractCycles(set, n));
    }
}

TEST(Theorems, Theorem6SufficiencyOnConcreteMeshes)
{
    // The quarter prohibited by negative-first suffices: the CDG of
    // the resulting routing is acyclic on concrete meshes.
    NDMesh mesh2 = NDMesh::mesh2D(6, 6);
    TurnTableRouting r2(mesh2, TurnSet::negativeFirst(2), true);
    EXPECT_TRUE(isDeadlockFree(r2));

    NDMesh mesh3(Shape{3, 3, 3});
    TurnTableRouting r3(mesh3, TurnSet::negativeFirst(3), true);
    EXPECT_TRUE(isDeadlockFree(r3));
}

TEST(Theorems, SixteenTwelveThree)
{
    // Section 3's full enumeration: 16 pairs, 12 deadlock free, and
    // 3 unique algorithms under the square's symmetry group.
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    const auto cycles = abstractCycles(2);
    std::vector<TurnSet> deadlock_free_sets;
    int total = 0;
    for (const Turn &a : cycles[0].turns) {
        for (const Turn &b : cycles[1].turns) {
            ++total;
            const TurnSet set = TurnSet::twoProhibited2D(a, b);
            TurnTableRouting routing(mesh, set, true);
            if (isDeadlockFree(routing))
                deadlock_free_sets.push_back(set);
        }
    }
    EXPECT_EQ(total, 16);
    EXPECT_EQ(deadlock_free_sets.size(), 12u);
    const auto reps = symmetryOrbitRepresentatives(deadlock_free_sets);
    EXPECT_EQ(reps.size(), 3u);
}

TEST(Theorems, TheNamedAlgorithmsAreAmongTheTwelve)
{
    // West-first, north-last, and negative-first all appear among
    // the twelve deadlock-free two-turn prohibitions.
    const auto wf = TurnSet::westFirst();
    const auto nl = TurnSet::northLast();
    const auto nf = TurnSet::negativeFirst(2);
    const auto cycles = abstractCycles(2);
    int matches = 0;
    for (const Turn &a : cycles[0].turns) {
        for (const Turn &b : cycles[1].turns) {
            const TurnSet set = TurnSet::twoProhibited2D(a, b);
            if (set == wf || set == nl || set == nf)
                ++matches;
        }
    }
    EXPECT_EQ(matches, 3);
}

class MeshShapesForTheorems : public ::testing::TestWithParam<Shape>
{
};

TEST_P(MeshShapesForTheorems, AllNamedAlgorithmsDeadlockFree)
{
    NDMesh mesh(GetParam());
    std::vector<std::string> algos{"dimension-order", "negative-first"};
    if (mesh.numDims() >= 2) {
        algos.push_back("abonf");
        algos.push_back("abopl");
    }
    if (mesh.numDims() == 2) {
        algos.push_back("west-first");
        algos.push_back("north-last");
    }
    for (const auto &name : algos) {
        EXPECT_TRUE(isDeadlockFree(*makeRouting(name, mesh)))
            << name << " on " << mesh.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshShapesForTheorems,
                         ::testing::Values(Shape{4, 4}, Shape{8, 3},
                                           Shape{2, 2}, Shape{3, 3, 3},
                                           Shape{2, 2, 2, 2},
                                           Shape{4, 2, 3}));

TEST(Theorems, HypercubeSpecialCases)
{
    Hypercube cube(5);
    for (const char *name :
         {"e-cube", "p-cube", "p-cube-nonminimal", "abonf", "abopl",
          "negative-first"}) {
        EXPECT_TRUE(isDeadlockFree(*makeRouting(name, cube))) << name;
    }
}

} // namespace
} // namespace turnmodel
