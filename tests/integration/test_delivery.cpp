/**
 * @file
 * Integration tests across topology x routing x traffic: every
 * combination the paper evaluates must simulate cleanly — flits
 * conserved, no deadlock, sensible latencies — at moderate load.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/routing/factory.hpp"
#include "sim/simulator.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {
namespace {

using Combo = std::tuple<const char *, const char *, const char *>;

std::unique_ptr<Topology>
makeTopo(const std::string &spec)
{
    if (spec == "mesh")
        return std::make_unique<NDMesh>(Shape{8, 8});
    if (spec == "cube")
        return std::make_unique<Hypercube>(6);
    return std::make_unique<KAryNCube>(4, 2);
}

class SimCombos : public ::testing::TestWithParam<Combo>
{
};

TEST_P(SimCombos, ModerateLoadRunsClean)
{
    const auto [topo_spec, algo, pattern_name] = GetParam();
    auto topo = makeTopo(topo_spec);
    RoutingPtr routing = makeRouting(algo, *topo);
    PatternPtr pattern = makePattern(pattern_name, *topo);

    SimConfig cfg;
    cfg.injection_rate = 0.04;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 4000;
    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();

    EXPECT_FALSE(r.deadlocked);
    EXPECT_GT(r.packets_measured, 10u);
    EXPECT_GT(r.throughput_flits_per_us, 0.0);
    EXPECT_GT(r.avg_latency_us, 0.0);

    const auto &c = sim.network().counters();
    // Conservation: everything generated is queued, in flight, or
    // delivered.
    EXPECT_EQ(c.flits_generated,
              c.flits_delivered + c.flits_in_network +
                  c.source_queue_flits);
}

INSTANTIATE_TEST_SUITE_P(
    MeshCombos, SimCombos,
    ::testing::Combine(
        ::testing::Values("mesh"),
        ::testing::Values("xy", "west-first", "north-last",
                          "negative-first", "abonf", "abopl"),
        ::testing::Values("uniform", "transpose", "bit-complement",
                          "hotspot:0.1")));

INSTANTIATE_TEST_SUITE_P(
    CubeCombos, SimCombos,
    ::testing::Combine(
        ::testing::Values("cube"),
        ::testing::Values("e-cube", "p-cube", "abonf", "abopl"),
        ::testing::Values("uniform", "transpose", "reverse-flip",
                          "bit-reversal", "shuffle")));

INSTANTIATE_TEST_SUITE_P(
    TorusCombos, SimCombos,
    ::testing::Combine(
        ::testing::Values("torus"),
        ::testing::Values("torus-negative-first",
                          "wrap-first-hop:negative-first",
                          "wrap-first-hop:dimension-order"),
        ::testing::Values("uniform", "tornado", "bit-complement")));

TEST(DeliveryIntegration, NonminimalVariantsSimulateClean)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    PatternPtr pattern = makePattern("uniform", mesh);
    for (const char *algo :
         {"west-first-nonminimal", "north-last-nonminimal",
          "negative-first-nonminimal"}) {
        RoutingPtr routing = makeRouting(algo, mesh);
        SimConfig cfg;
        cfg.injection_rate = 0.03;
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 2500;
        Simulator sim(*routing, *pattern, cfg);
        const SimResult r = sim.run();
        EXPECT_FALSE(r.deadlocked) << algo;
        EXPECT_GT(r.packets_measured, 10u) << algo;
    }
}

TEST(DeliveryIntegration, SelectionPoliciesSimulateClean)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("west-first", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    for (auto in_sel : {InputSelection::Fcfs, InputSelection::Random,
                        InputSelection::FixedPriority}) {
        for (auto out_sel :
             {OutputSelection::LowestDim, OutputSelection::HighestDim,
              OutputSelection::Random,
              OutputSelection::StraightFirst}) {
            SimConfig cfg;
            cfg.injection_rate = 0.05;
            cfg.warmup_cycles = 500;
            cfg.measure_cycles = 2000;
            cfg.input_selection = in_sel;
            cfg.output_selection = out_sel;
            Simulator sim(*routing, *pattern, cfg);
            const SimResult r = sim.run();
            EXPECT_FALSE(r.deadlocked)
                << toString(in_sel) << "/" << toString(out_sel);
            EXPECT_GT(r.packets_measured, 10u);
        }
    }
}

TEST(DeliveryIntegration, BufferDepthsSimulateClean)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("negative-first", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    double last_latency = 1e30;
    for (std::uint32_t depth : {1u, 2u, 4u}) {
        SimConfig cfg;
        cfg.injection_rate = 0.08;
        cfg.warmup_cycles = 1000;
        cfg.measure_cycles = 4000;
        cfg.buffer_depth = depth;
        Simulator sim(*routing, *pattern, cfg);
        const SimResult r = sim.run();
        EXPECT_FALSE(r.deadlocked) << "depth " << depth;
        EXPECT_GT(r.packets_measured, 50u);
        // Deeper buffers should not make latency dramatically worse.
        EXPECT_LT(r.avg_latency_us, last_latency * 1.5)
            << "depth " << depth;
        last_latency = r.avg_latency_us;
    }
}

} // namespace
} // namespace turnmodel
