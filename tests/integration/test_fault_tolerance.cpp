/**
 * @file
 * Fault-tolerance integration tests: the paper's claim that
 * adaptiveness — and especially nonminimal routing — routes packets
 * around broken channels (Sections 1, 3.3, 7).
 */

#include <gtest/gtest.h>

#include "core/channel_dependency.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/mad_y.hpp"
#include "core/routing/turn_table.hpp"
#include "topology/virtual_channels.hpp"
#include "sim/network.hpp"
#include "topology/faults.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {
namespace {

/** Ordered pairs the routing function can still connect. */
std::size_t
connectedPairs(const RoutingAlgorithm &routing)
{
    const Topology &topo = routing.topology();
    std::size_t count = 0;
    for (NodeId s = 0; s < topo.numNodes(); ++s) {
        for (NodeId d = 0; d < topo.numNodes(); ++d) {
            if (s == d)
                continue;
            if (!routing.route(s, std::nullopt, d).empty())
                ++count;
        }
    }
    return count;
}

TEST(FaultTolerance, NonminimalSurvivesWhereMinimalCannot)
{
    // Break the eastward channel in the middle of a row: a minimal
    // west-first packet crossing it has no alternative, a nonminimal
    // one detours around.
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    ChannelSpace space(mesh);
    FaultyTopology faulty(
        mesh, {space.id(mesh.node({2, 3}), dir2d::East)});

    // Fault-aware turn-table routing with the west-first rules, in
    // both flavors.
    TurnTableRouting minimal(faulty, TurnSet::westFirst(), true,
                             "wf-minimal");
    RoutingPtr nonminimal = makeRouting("west-first-nonminimal", faulty);

    const NodeId s = mesh.node({1, 3});
    const NodeId d = mesh.node({4, 3});
    // A straight-line eastbound pair has no *minimal* alternative to
    // the broken hop at (2,3): north/south detours are unprofitable.
    EXPECT_TRUE(minimal.route(mesh.node({2, 3}), std::nullopt,
                              d).empty());
    // The nonminimal variant detours and still connects the pair.
    EXPECT_FALSE(nonminimal->route(mesh.node({2, 3}), std::nullopt,
                                   d).empty());
    EXPECT_FALSE(nonminimal->route(s, std::nullopt, d).empty());
}

TEST(FaultTolerance, NonminimalKeepsMorePairsConnected)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    Rng rng(21);
    const FaultyTopology faulty =
        FaultyTopology::withRandomFaults(mesh, 8, rng);
    const std::size_t total =
        static_cast<std::size_t>(mesh.numNodes()) *
        (mesh.numNodes() - 1);

    // Compare the same turn rules, minimal vs nonminimal.
    TurnSet wf = TurnSet::westFirst();
    TurnTableRouting minimal(faulty, wf, true, "wf-min");
    TurnTableRouting nonminimal(faulty, wf, false, "wf-nonmin");
    const std::size_t min_pairs = connectedPairs(minimal);
    const std::size_t nonmin_pairs = connectedPairs(nonminimal);
    EXPECT_GE(nonmin_pairs, min_pairs);
    EXPECT_GT(nonmin_pairs, total * 8 / 10);
}

TEST(FaultTolerance, DeadlockFreedomSurvivesFaults)
{
    // Removing channels cannot create dependency cycles: every
    // fault-aware algorithm (the turn-rule family consults the
    // topology hop by hop) stays deadlock free on the degraded
    // network. The fixed-function classes (WestFirstRouting etc.)
    // assume a healthy network by design.
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    Rng rng(22);
    const FaultyTopology faulty =
        FaultyTopology::withRandomFaults(mesh, 6, rng);
    for (const char *name :
         {"odd-even", "odd-even-nonminimal", "west-first-nonminimal",
          "north-last-nonminimal", "negative-first-nonminimal"}) {
        EXPECT_TRUE(isDeadlockFree(*makeRouting(name, faulty))) << name;
    }
    for (const TurnSet &set :
         {TurnSet::westFirst(), TurnSet::northLast(),
          TurnSet::negativeFirst(2), TurnSet::dimensionOrder(2)}) {
        TurnTableRouting routing(faulty, set, true);
        EXPECT_TRUE(isDeadlockFree(routing)) << set.toString();
    }
}

TEST(FaultTolerance, TrafficFlowsAroundFaults)
{
    // Simulate uniform traffic on a faulted mesh with nonminimal
    // routing; messages between still-connected pairs must flow and
    // nothing may deadlock. Unroutable messages are dropped at the
    // source by a filtering pattern.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    Rng rng(23);
    const FaultyTopology faulty =
        FaultyTopology::withRandomFaults(mesh, 6, rng);
    RoutingPtr routing = makeRouting("west-first-nonminimal", faulty);

    class RoutablePattern : public TrafficPattern
    {
      public:
        RoutablePattern(const Topology &topo,
                        const RoutingAlgorithm &routing)
            : topo_(topo), routing_(routing)
        {
        }
        std::optional<NodeId>
        destination(NodeId src, Rng &rng) const override
        {
            for (int attempt = 0; attempt < 8; ++attempt) {
                NodeId d = static_cast<NodeId>(
                    rng.nextBounded(topo_.numNodes() - 1));
                if (d >= src)
                    ++d;
                if (!routing_.route(src, std::nullopt, d).empty())
                    return d;
            }
            return std::nullopt;
        }
        std::string name() const override { return "routable-uniform"; }
        bool isDeterministic() const override { return false; }

      private:
        const Topology &topo_;
        const RoutingAlgorithm &routing_;
    };

    RoutablePattern pattern(faulty, *routing);
    SimConfig cfg;
    cfg.injection_rate = 0.04;
    Network net(*routing, pattern, cfg);
    for (int i = 0; i < 10000; ++i)
        net.step();
    EXPECT_FALSE(net.deadlockDetected());
    EXPECT_GT(net.counters().packets_delivered, 150u);
}

TEST(FaultTolerance, MadYOnFaultyDoubleY)
{
    // Virtualized meshes compose with fault injection as well: break
    // a physical y wire's y1 copy and the y2 copy keeps the column
    // usable.
    VirtualizedMesh vmesh = VirtualizedMesh::doubleY(5, 5);
    ChannelSpace space(vmesh);
    const NodeId v = vmesh.node({2, 2});
    FaultyTopology faulty(vmesh,
                          {space.id(v, Direction(1, true))});   // N1
    TurnSet mady = madYTurnSet();
    TurnTableRouting routing(faulty, mady, true, "mad-y-faulty");
    EXPECT_TRUE(isDeadlockFree(routing));
    // Northbound through the broken channel still works via N2.
    EXPECT_FALSE(routing.route(v, std::nullopt,
                               vmesh.node({2, 4})).empty());
}

} // namespace
} // namespace turnmodel
