/**
 * @file
 * End-to-end equivalence of the compiled-table simulator path: a
 * Figure-13-style sweep must produce byte-identical output whether
 * the network consults the live routing algorithm or its compiled
 * snapshot, because the snapshot is bit-for-bit the same function.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/routing/factory.hpp"
#include "exec/sweep.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

std::string
sweepJson(const std::string &algorithm, bool compiled,
          OutputSelection selection)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting(algorithm, mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SweepConfig cfg;
    cfg.injection_rates = {0.02, 0.05, 0.08};
    cfg.sim.warmup_cycles = 500;
    cfg.sim.measure_cycles = 2000;
    cfg.sim.compiled_routing = compiled;
    cfg.sim.output_selection = selection;
    const SweepSeries series = runSweep(*routing, *pattern, cfg);
    std::ostringstream os;
    writeSeriesJson(os, "fig13-determinism", {series});
    return os.str();
}

TEST(CompiledDeterminism, Fig13SweepIsByteIdentical)
{
    for (const char *algorithm :
         {"xy", "west-first", "negative-first"}) {
        SCOPED_TRACE(algorithm);
        EXPECT_EQ(sweepJson(algorithm, true,
                            OutputSelection::LowestDim),
                  sweepJson(algorithm, false,
                            OutputSelection::LowestDim));
    }
}

TEST(CompiledDeterminism, HoldsUnderEveryOutputSelection)
{
    // Random consumes the router RNG in candidate order, so this
    // also checks that compiled tables preserve candidate order.
    for (auto selection :
         {OutputSelection::HighestDim, OutputSelection::Random,
          OutputSelection::StraightFirst}) {
        SCOPED_TRACE(static_cast<int>(selection));
        EXPECT_EQ(sweepJson("west-first", true, selection),
                  sweepJson("west-first", false, selection));
    }
}

} // namespace
} // namespace turnmodel
