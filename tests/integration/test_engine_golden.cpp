/**
 * @file
 * Differential golden suite for the wormhole engine. Every case runs
 * real sweeps through the public experiment API, serializes the
 * results with the exact round-trip JSON writers, and compares the
 * bytes against golden files captured from the pre-packet-pool seed
 * engine (commit 32b5d7f). The engine's internals are free to change
 * — packet storage, scratch buffers, arbitration bookkeeping — but
 * these bytes are not: same completions, same metrics, same obs
 * output, with the observer on or off, at any job count.
 *
 * Regenerate (only when an intentional behavior change is made) with
 *   TURNMODEL_REGEN_GOLDEN=1 ./tests/test_integration \
 *       --gtest_filter='EngineGolden.*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "exec/result_sink.hpp"
#include "exec/runner.hpp"
#include "topology/mesh.hpp"
#include "traffic/permutation.hpp"

namespace turnmodel {
namespace {

std::string
goldenPath(const std::string &name)
{
    return std::string(TURNMODEL_TEST_DATA_DIR) + "/" + name;
}

/**
 * Compare @p actual byte-for-byte against the named golden file, or
 * rewrite the file when TURNMODEL_REGEN_GOLDEN is set.
 */
void
checkGolden(const std::string &name, const std::string &actual)
{
    const std::string path = goldenPath(name);
    if (std::getenv("TURNMODEL_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (run with TURNMODEL_REGEN_GOLDEN=1)";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "engine output diverged from the seed engine (" << name
        << ")";
}

std::string
seriesJson(const ExperimentResult &result)
{
    std::ostringstream os;
    writeSeriesJson(os, result.experiment, result.series);
    return os.str();
}

std::string
obsJson(const ObsStudy &study)
{
    std::ostringstream os;
    ResultSink::writeObsJson(os, study);
    return os.str();
}

/**
 * Run @p spec at jobs 1, 4, and 8; assert the three serializations
 * are identical and return the bytes.
 */
std::string
runAtAllJobCounts(const ExperimentSpec &spec)
{
    std::string first;
    for (unsigned jobs : {1u, 4u, 8u}) {
        Runner runner(jobs);
        const std::string bytes = seriesJson(runner.run(spec));
        if (first.empty())
            first = bytes;
        else
            EXPECT_EQ(first, bytes)
                << "series diverged at --jobs=" << jobs;
    }
    return first;
}

/** Quarter-rotation permutation (as in the deadlock tests). */
class RotationPattern : public PermutationTraffic
{
  public:
    explicit RotationPattern(const Topology &topo)
        : PermutationTraffic(topo)
    {
    }

    NodeId map(NodeId src) const override
    {
        const Coords c = topo_.coords(src);
        const int m = topo_.radix(0);
        return topo_.node({c[1], m - 1 - c[0]});
    }

    std::string name() const override { return "rotation"; }
};

TEST(EngineGolden, Fig13SweepPoints)
{
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    ExperimentSpec spec;
    spec.name = "golden-fig13";
    spec.topology = &mesh;
    spec.pattern = "uniform";
    spec.algorithms = {"xy", "west-first", "north-last",
                       "negative-first"};
    spec.injection_rates = {0.05, 0.14, 0.22};
    spec.sim.warmup_cycles = 1000;
    spec.sim.measure_cycles = 3000;
    checkGolden("golden_fig13.json", runAtAllJobCounts(spec));
}

TEST(EngineGolden, Fig14SweepPoints)
{
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    ExperimentSpec spec;
    spec.name = "golden-fig14";
    spec.topology = &mesh;
    spec.pattern = "transpose";
    spec.algorithms = {"west-first", "negative-first"};
    spec.injection_rates = {0.04, 0.10};
    spec.sim.warmup_cycles = 1000;
    spec.sim.measure_cycles = 3000;
    checkGolden("golden_fig14.json", runAtAllJobCounts(spec));
}

TEST(EngineGolden, AllMeshPatterns)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    std::string all;
    for (const char *pattern :
         {"uniform", "transpose", "bit-complement", "tornado",
          "hotspot:0.1"}) {
        ExperimentSpec spec;
        spec.name = std::string("golden-pattern-") + pattern;
        spec.topology = &mesh;
        spec.pattern = pattern;
        spec.algorithms = {"xy", "west-first"};
        spec.injection_rates = {0.08, 0.15};
        spec.sim.warmup_cycles = 800;
        spec.sim.measure_cycles = 2500;
        Runner runner(2);
        all += seriesJson(runner.run(spec));
    }
    checkGolden("golden_patterns.json", all);
}

TEST(EngineGolden, DeadlockWatchdogTrip)
{
    // A fully adaptive minimal turn table deadlocks under rotation
    // traffic; the watchdog trips inside the measurement window, and
    // the completions drained on the tripping cycle must be kept.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    ExperimentSpec spec;
    spec.name = "golden-deadlock";
    spec.topology = &mesh;
    spec.pattern = "rotation";
    spec.algorithms = {"fully-adaptive"};
    spec.injection_rates = {0.9};
    spec.sim.warmup_cycles = 500;
    spec.sim.measure_cycles = 8000;
    spec.sim.deadlock_threshold = 1200;
    spec.sim.output_selection = OutputSelection::Random;
    spec.make_routing = [](const std::string &name,
                           const Topology &topo) -> RoutingPtr {
        TurnSet all(2);
        all.allowAll90();
        all.allowAllStraight();
        return std::make_unique<TurnTableRouting>(topo, all, true,
                                                  name);
    };
    spec.make_pattern = [](const std::string &,
                           const Topology &topo) -> PatternPtr {
        return std::make_unique<RotationPattern>(topo);
    };
    const std::string bytes = runAtAllJobCounts(spec);
    EXPECT_NE(bytes.find("\"deadlocked\": true"), std::string::npos)
        << "the scenario no longer trips the watchdog";
    checkGolden("golden_deadlock.json", bytes);
}

TEST(EngineGolden, UncompiledRoutingPath)
{
    // The virtual-dispatch decision path (compiled_routing off) must
    // produce the same bytes as ever, too.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    ExperimentSpec spec;
    spec.name = "golden-uncompiled";
    spec.topology = &mesh;
    spec.pattern = "uniform";
    spec.algorithms = {"west-first"};
    spec.injection_rates = {0.10};
    spec.sim.warmup_cycles = 800;
    spec.sim.measure_cycles = 2500;
    spec.sim.compiled_routing = false;
    Runner runner(1);
    checkGolden("golden_uncompiled.json",
                seriesJson(runner.run(spec)));
}

TEST(EngineGolden, ObservedRunsMatchAndObserverStaysPassive)
{
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    ExperimentSpec spec;
    spec.name = "golden-obs";
    spec.topology = &mesh;
    spec.pattern = "uniform";
    spec.algorithms = {"xy", "west-first"};
    spec.sim.warmup_cycles = 1000;
    spec.sim.measure_cycles = 3000;

    ObsConfig obs;
    obs.channel_counters = true;
    obs.sample_stride = 500;
    obs.trace_capacity = 512;

    const double rate = 0.14;
    std::string first;
    ObsStudy study;
    for (unsigned jobs : {1u, 4u}) {
        Runner runner(jobs);
        study = runner.runObs(spec, rate, obs);
        const std::string bytes = obsJson(study);
        if (first.empty())
            first = bytes;
        else
            EXPECT_EQ(first, bytes)
                << "obs study diverged at --jobs=" << jobs;
    }
    checkGolden("golden_obs.json", first);

    // The observer is passive: an observed run's SimResult is
    // byte-identical to the same run with observability off.
    for (const ObsRun &run : study.runs) {
        const RoutingPtr routing = makeRouting(run.algorithm, mesh);
        const PatternPtr pattern = makePattern(spec.pattern, mesh);
        const SweepPoint plain =
            runSweepPoint(*routing, *pattern, spec.sim, rate);
        std::ostringstream with_obs, without_obs;
        writeSimResultJson(with_obs, run.result);
        writeSimResultJson(without_obs, plain.result);
        EXPECT_EQ(without_obs.str(), with_obs.str())
            << run.algorithm;
    }
}

TEST(EngineGolden, ShardedSteppingMatchesTheGoldenBytes)
{
    // The sharded two-phase core must produce the serial engine's
    // exact bytes at every shard count, for both engines. jobs=1
    // keeps the runner from clamping sim_threads.
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    ExperimentSpec spec;
    spec.name = "golden-sharded";
    spec.topology = &mesh;
    spec.pattern = "uniform";
    spec.algorithms = {"xy", "negative-first"};
    spec.injection_rates = {0.08, 0.16};
    spec.sim.warmup_cycles = 1000;
    spec.sim.measure_cycles = 3000;

    for (RouterModel model :
         {RouterModel::Classic, RouterModel::VcCredit}) {
        spec.sim.router_model = model;
        spec.sim.buffer_depth =
            model == RouterModel::VcCredit ? 4 : 1;
        std::string first;
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            spec.sim.sim_threads = threads;
            Runner runner(1);
            const std::string bytes = seriesJson(runner.run(spec));
            if (first.empty())
                first = bytes;
            else
                EXPECT_EQ(first, bytes)
                    << "series diverged at --sim-threads=" << threads;
        }
        checkGolden(model == RouterModel::VcCredit
                        ? "golden_sharded_vc.json"
                        : "golden_sharded.json",
                    first);
    }
}

} // namespace
} // namespace turnmodel
