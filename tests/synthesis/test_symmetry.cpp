/**
 * @file
 * Unit tests for the n-dimensional signed-permutation symmetries the
 * synthesis engine reduces candidate turn sets with.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/cycle_analysis.hpp"
#include "synthesis/symmetry.hpp"
#include "topology/hex.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TEST(SignedPermutation, GroupSizesAreHyperoctahedral)
{
    // |B_n| = 2^n n!.
    EXPECT_EQ(SignedPermutation::fullGroup(2).size(), 8u);
    EXPECT_EQ(SignedPermutation::fullGroup(3).size(), 48u);
    EXPECT_EQ(SignedPermutation::fullGroup(4).size(), 384u);
}

TEST(SignedPermutation, IdentityFixesEverything)
{
    const auto id = SignedPermutation::identity(3);
    EXPECT_TRUE(id.isIdentity());
    for (Direction d : allDirections(3))
        EXPECT_EQ(id.apply(d), d);
    EXPECT_EQ(id.apply(TurnSet::negativeFirst(3)),
              TurnSet::negativeFirst(3));
}

TEST(SignedPermutation, EveryElementActsBijectivelyOnDirections)
{
    for (const auto &sym : SignedPermutation::fullGroup(3)) {
        std::set<DirId> images;
        for (Direction d : allDirections(3))
            images.insert(sym.apply(d).id());
        EXPECT_EQ(images.size(), 6u);
    }
}

TEST(SignedPermutation, PreservesTurnKind)
{
    for (const auto &sym : SignedPermutation::fullGroup(3)) {
        for (Turn t : all90DegreeTurns(3))
            EXPECT_EQ(sym.apply(t).kind(), TurnKind::Ninety);
        for (Turn t : all180DegreeTurns(3))
            EXPECT_EQ(sym.apply(t).kind(), TurnKind::OneEighty);
    }
}

TEST(SignedPermutation, PreservesProhibitionCount)
{
    const TurnSet nf = TurnSet::negativeFirst(3);
    for (const auto &sym : SignedPermutation::fullGroup(3)) {
        EXPECT_EQ(sym.apply(nf).countProhibited90(),
                  nf.countProhibited90());
    }
}

TEST(SignedPermutation, MatchesSquareSymmetryOrbitsIn2D)
{
    // The 2D hyperoctahedral group is the square's symmetry group:
    // the orbit partitions of the sixteen one-per-cycle sets must
    // agree with the SquareSymmetry reduction used by the paper
    // reproduction tests.
    const auto sets = allOneTurnPerCycleSets(2);
    const auto square_reps = symmetryOrbitRepresentatives(sets);

    const auto group = SignedPermutation::fullGroup(2);
    std::set<std::vector<int>> keys;
    for (const TurnSet &set : sets)
        keys.insert(canonicalKey(set, group));
    EXPECT_EQ(keys.size(), square_reps.size());
}

TEST(SignedPermutation, CanonicalKeyIsOrbitInvariant)
{
    const auto group = SignedPermutation::fullGroup(2);
    const TurnSet wf = TurnSet::westFirst();
    const auto key = canonicalKey(wf, group);
    for (const auto &sym : group)
        EXPECT_EQ(canonicalKey(sym.apply(wf), group), key);
    // A set from a different orbit gets a different key.
    EXPECT_NE(canonicalKey(TurnSet::negativeFirst(2), group), key);
}

TEST(AdmissibleSymmetries, CubicMeshGetsTheFullGroup)
{
    NDMesh square = NDMesh::mesh2D(4, 4);
    EXPECT_EQ(admissibleSymmetries(square).size(), 8u);
    NDMesh cube(Shape{3, 3, 3});
    EXPECT_EQ(admissibleSymmetries(cube).size(), 48u);
}

TEST(AdmissibleSymmetries, UnequalRadixesRestrictPermutations)
{
    // A 4x3 mesh admits sign flips but not the x<->y swap.
    NDMesh mesh = NDMesh::mesh2D(4, 3);
    EXPECT_EQ(admissibleSymmetries(mesh).size(), 4u);
}

TEST(AdmissibleSymmetries, CoupledAxisTopologiesKeepOnlyIdentity)
{
    HexMesh hex(3, 3);
    const auto syms = admissibleSymmetries(hex);
    ASSERT_EQ(syms.size(), 1u);
    EXPECT_TRUE(syms.front().isIdentity());
}

} // namespace
} // namespace turnmodel
