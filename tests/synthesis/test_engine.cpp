/**
 * @file
 * Unit tests for the turn-set synthesis engine: enumeration modes,
 * cycle pruning, symmetry classing, verdict propagation, sampling,
 * and ranking, mostly on the 2D mesh where the paper gives exact
 * expected counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/routing/factory.hpp"
#include "synthesis/engine.hpp"
#include "synthesis/symmetry.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

SynthesisReport
run2D(SynthesisConfig config = {})
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    return synthesize(mesh, config);
}

TEST(SynthesisEngine, AutoPicksMinimalSubsetsIn2D)
{
    const SynthesisReport report = run2D();
    EXPECT_EQ(report.mode_used, EnumerationMode::MinimalSubsets);
    EXPECT_EQ(report.num_dims, 2);
    EXPECT_FALSE(report.sampled);
}

TEST(SynthesisEngine, Reproduces2DPipelineCounts)
{
    // Section 3: C(8,2) = 28 two-turn subsets, 12 leave a cycle
    // unbroken, 16 prohibit one turn per cycle, 12 of those are
    // deadlock free, in 3 symmetry classes.
    const SynthesisReport report = run2D();
    EXPECT_EQ(report.space_size, 28u);
    EXPECT_EQ(report.enumerated, 28u);
    EXPECT_EQ(report.pruned_by_cycles, 12u);
    ASSERT_EQ(report.candidates.size(), 16u);
    EXPECT_EQ(report.classes.size(), 4u);
    EXPECT_EQ(report.cdg_checks, 4u);
    EXPECT_EQ(report.deadlockFreeCandidates(), 12u);
    EXPECT_EQ(report.deadlockFreeClasses(), 3u);
    // The non-deadlock-free class cannot even connect all pairs
    // under the reachability guard.
    EXPECT_EQ(report.connectedCandidates(), 12u);
    EXPECT_EQ(report.usableCandidates(), 12u);
    EXPECT_EQ(report.ranking.size(), 3u);
}

TEST(SynthesisEngine, EveryCandidateProhibitsTwoTurnsAndBreaksCycles)
{
    const SynthesisReport report = run2D();
    for (const SynthesizedCandidate &c : report.candidates) {
        EXPECT_EQ(c.set.countProhibited90(), 2);
        EXPECT_TRUE(c.breaks_all_cycles);
        EXPECT_EQ(c.name, "synth:" + c.set.prohibitedSpec());
    }
}

TEST(SynthesisEngine, ClassSizesPartitionTheCandidates)
{
    const SynthesisReport report = run2D();
    std::size_t total = 0;
    for (const SynthesisClass &cls : report.classes) {
        EXPECT_TRUE(report.candidates[cls.representative]
                        .is_representative);
        EXPECT_EQ(report.candidates[cls.representative].class_id,
                  static_cast<std::size_t>(
                      &cls - report.classes.data()));
        total += cls.size;
    }
    EXPECT_EQ(total, report.candidates.size());
}

TEST(SynthesisEngine, MaximallyAdaptiveAreThePapersThreeAlgorithms)
{
    const SynthesisReport report = run2D();
    const auto top = report.maximallyAdaptive();
    ASSERT_EQ(top.size(), 3u);

    const auto group = SignedPermutation::fullGroup(2);
    std::set<std::vector<int>> expected{
        canonicalKey(TurnSet::westFirst(), group),
        canonicalKey(TurnSet::northLast(), group),
        canonicalKey(TurnSet::negativeFirst(2), group),
    };
    std::set<std::vector<int>> got;
    for (std::size_t index : top) {
        const SynthesizedCandidate &c = report.candidates[index];
        EXPECT_TRUE(c.has_adaptiveness);
        got.insert(canonicalKey(c.set, group));
    }
    EXPECT_EQ(got, expected);
}

TEST(SynthesisEngine, RankingIsSortedByMeanRatio)
{
    const SynthesisReport report = run2D();
    for (std::size_t i = 1; i < report.ranking.size(); ++i) {
        EXPECT_GE(report.candidates[report.ranking[i - 1]]
                      .adaptiveness.mean_ratio,
                  report.candidates[report.ranking[i]]
                      .adaptiveness.mean_ratio);
    }
}

TEST(SynthesisEngine, VerifyAllAgreesWithClassPropagation)
{
    SynthesisConfig all;
    all.verify_all = true;
    const SynthesisReport direct = run2D(all);
    const SynthesisReport propagated = run2D();
    ASSERT_EQ(direct.candidates.size(), propagated.candidates.size());
    for (std::size_t i = 0; i < direct.candidates.size(); ++i) {
        EXPECT_TRUE(direct.candidates[i].verified_directly);
        EXPECT_EQ(direct.candidates[i].deadlock_free,
                  propagated.candidates[i].deadlock_free);
        EXPECT_EQ(direct.candidates[i].connected,
                  propagated.candidates[i].connected);
    }
}

TEST(SynthesisEngine, DisablingSymmetryVerifiesEveryCandidate)
{
    SynthesisConfig config;
    config.use_symmetry = false;
    const SynthesisReport report = run2D(config);
    EXPECT_EQ(report.classes.size(), 16u);
    EXPECT_EQ(report.cdg_checks, 16u);
    EXPECT_EQ(report.deadlockFreeCandidates(), 12u);
    EXPECT_EQ(report.ranking.size(), 12u);
}

TEST(SynthesisEngine, OnePerCycleModeGeneratesThePrunedFamily)
{
    SynthesisConfig config;
    config.mode = EnumerationMode::OnePerCycle;
    const SynthesisReport report = run2D(config);
    EXPECT_EQ(report.mode_used, EnumerationMode::OnePerCycle);
    EXPECT_EQ(report.space_size, 16u);
    EXPECT_EQ(report.enumerated, 16u);
    EXPECT_EQ(report.pruned_by_cycles, 0u);
    EXPECT_EQ(report.candidates.size(), 16u);
    EXPECT_EQ(report.deadlockFreeCandidates(), 12u);

    // Same sets as the minimal-subsets walk, just in another order.
    const SynthesisReport minimal = run2D();
    std::set<std::string> a, b;
    for (const auto &c : report.candidates)
        a.insert(c.name);
    for (const auto &c : minimal.candidates)
        b.insert(c.name);
    EXPECT_EQ(a, b);
}

TEST(SynthesisEngine, MaxCandidatesSamplesDeterministically)
{
    SynthesisConfig config;
    config.mode = EnumerationMode::OnePerCycle;
    config.max_candidates = 8;
    const SynthesisReport first = run2D(config);
    EXPECT_TRUE(first.sampled);
    EXPECT_LE(first.candidates.size(), 8u);
    EXPECT_GE(first.candidates.size(), 4u);

    const SynthesisReport second = run2D(config);
    ASSERT_EQ(first.candidates.size(), second.candidates.size());
    for (std::size_t i = 0; i < first.candidates.size(); ++i)
        EXPECT_EQ(first.candidates[i].name, second.candidates[i].name);
}

TEST(SynthesisEngine, SynthesizedNamesRoundTripThroughTheFactory)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    const SynthesisReport report = synthesize(mesh);
    ASSERT_FALSE(report.ranking.empty());
    for (std::size_t index : report.ranking) {
        const SynthesizedCandidate &c = report.candidates[index];
        RoutingPtr routing = makeRouting(c.name, mesh);
        ASSERT_NE(routing, nullptr);
        EXPECT_EQ(routing->name(), c.name);
    }
}

TEST(SynthesisEngine, RankingCanBeDisabled)
{
    SynthesisConfig config;
    config.rank = false;
    const SynthesisReport report = run2D(config);
    EXPECT_TRUE(report.ranking.empty());
    EXPECT_TRUE(report.maximallyAdaptive().empty());
    for (const SynthesizedCandidate &c : report.candidates)
        EXPECT_FALSE(c.has_adaptiveness);
}

TEST(SynthesisEngine, ThreeDimensionalMeshSurvivorsAreVerified)
{
    // Keep this cheap: sample the 3D one-per-cycle family and check
    // the engine's verdict for a few survivors against a direct
    // factory construction.
    NDMesh cube(Shape{3, 3, 3});
    SynthesisConfig config;
    config.mode = EnumerationMode::OnePerCycle;
    config.max_candidates = 64;
    config.rank = false;
    const SynthesisReport report = synthesize(cube, config);
    EXPECT_TRUE(report.sampled);
    EXPECT_EQ(report.space_size, 4096u);
    EXPECT_GT(report.candidates.size(), 0u);
    for (const SynthesizedCandidate &c : report.candidates)
        EXPECT_EQ(c.set.countProhibited90(), 6);
}

} // namespace
} // namespace turnmodel
