/**
 * @file
 * Tests for the work-stealing thread pool behind the experiment
 * runner.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"

namespace turnmodel {
namespace {

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_EQ(pool.size(), ThreadPool::hardwareThreads());
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        constexpr std::size_t kCount = 257;
        std::vector<std::atomic<int>> hits(kCount);
        pool.parallelFor(kCount, [&](std::size_t i) {
            hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < kCount; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, EmptyBatchIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> sum{0};
    for (int batch = 0; batch < 10; ++batch)
        pool.parallelFor(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 10u * (99u * 100u / 2u));
}

TEST(ThreadPool, ResultsBySlotAreDeterministic)
{
    // The pool runs tasks in nondeterministic order; writing by index
    // makes the assembled result order-independent. This is the
    // contract the runner relies on.
    std::vector<std::vector<int>> results;
    for (unsigned threads : {1u, 4u, 8u}) {
        ThreadPool pool(threads);
        std::vector<int> out(64, -1);
        pool.parallelFor(out.size(), [&](std::size_t i) {
            out[i] = static_cast<int>(i * i % 31);
        });
        results.push_back(std::move(out));
    }
    EXPECT_EQ(results[0], results[1]);
    EXPECT_EQ(results[0], results[2]);
}

TEST(ThreadPool, StealsUnderUnbalancedLoad)
{
    if (ThreadPool::hardwareThreads() < 2)
        GTEST_SKIP() << "stealing needs two runnable workers";
    ThreadPool pool(4);
    // Indices are dealt round-robin, so worker 0 owns 0, 4, 8, ...
    // Make worker 0's first task slow: its remaining tasks can only
    // finish promptly if other workers steal them.
    std::atomic<int> done{0};
    pool.parallelFor(64, [&](std::size_t i) {
        if (i == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        done.fetch_add(1);
    });
    EXPECT_EQ(done.load(), 64);
    EXPECT_GT(pool.stealCount(), 0u);
}

TEST(ThreadPool, PropagatesTaskExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(16, [](std::size_t i) {
            if (i == 7)
                throw std::runtime_error("task failed");
        }),
        std::runtime_error);
    // The pool stays usable after a failed batch.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolWorkerTeam, RunsEveryRankOnce)
{
    for (unsigned ranks : {1u, 2u, 4u, 8u}) {
        WorkerTeam team(ranks);
        EXPECT_EQ(team.ranks(), ranks);
        std::vector<std::atomic<int>> hits(ranks);
        team.run([&](unsigned rank) { hits[rank].fetch_add(1); });
        for (unsigned r = 0; r < ranks; ++r)
            EXPECT_EQ(hits[r].load(), 1) << "rank " << r;
    }
}

TEST(ThreadPoolWorkerTeam, BarrierSeparatesPhases)
{
    // Every rank writes its slot in phase 1, then reads all slots in
    // phase 2; without a working barrier some rank would observe a
    // stale zero.
    constexpr unsigned kRanks = 8;
    WorkerTeam team(kRanks);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<int> slots(kRanks, 0);
        std::atomic<int> sum_errors{0};
        team.run([&](unsigned rank) {
            slots[rank] = static_cast<int>(rank) + 1;
            team.barrier();
            int sum = 0;
            for (unsigned r = 0; r < kRanks; ++r)
                sum += slots[r];
            if (sum != kRanks * (kRanks + 1) / 2)
                sum_errors.fetch_add(1);
        });
        ASSERT_EQ(sum_errors.load(), 0) << "iteration " << iter;
    }
}

TEST(ThreadPoolWorkerTeam, ReusableAcrossRuns)
{
    WorkerTeam team(4);
    std::atomic<int> total{0};
    for (int run = 0; run < 50; ++run)
        team.run([&](unsigned) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPoolWorkerTeam, SingleRankRunsInline)
{
    WorkerTeam team(1);
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    team.run([&](unsigned rank) {
        EXPECT_EQ(rank, 0u);
        ran_on = std::this_thread::get_id();
        team.barrier();   // Degenerates to a no-op rendezvous.
    });
    EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolWorkerTeam, PropagatesExceptions)
{
    WorkerTeam team(4);
    EXPECT_THROW(team.run([](unsigned rank) {
        if (rank == 2)
            throw std::runtime_error("rank failed");
    }),
                 std::runtime_error);
    // The team stays usable after a failed run.
    std::atomic<int> ran{0};
    team.run([&](unsigned) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4);
}

} // namespace
} // namespace turnmodel
