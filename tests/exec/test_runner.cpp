/**
 * @file
 * Tests for the thread-parallel experiment runner: determinism at
 * any job count, spec-order series assembly, and parity with the
 * serial sweep path including its early-stop behaviour.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/routing/factory.hpp"
#include "exec/runner.hpp"
#include "exec/result_sink.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

ExperimentSpec
quickSpec(const Topology &topo)
{
    ExperimentSpec spec;
    spec.name = "runner-unit-test";
    spec.topology = &topo;
    spec.pattern = "uniform";
    spec.algorithms = {"xy", "west-first", "negative-first"};
    spec.injection_rates = {0.01, 0.02, 0.04};
    spec.sim.warmup_cycles = 500;
    spec.sim.measure_cycles = 1500;
    return spec;
}

std::string
seriesJson(const ExperimentResult &result)
{
    // Compare only the series payload: the full ResultSink document
    // also carries wall-clock time, which legitimately differs
    // between runs.
    std::ostringstream os;
    writeSeriesJson(os, result.experiment, result.series);
    return os.str();
}

TEST(Runner, ByteIdenticalAcrossJobCounts)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    const ExperimentSpec spec = quickSpec(mesh);
    const std::string serial = seriesJson(Runner(1).run(spec));
    EXPECT_EQ(serial, seriesJson(Runner(4).run(spec)));
    EXPECT_EQ(serial, seriesJson(Runner(8).run(spec)));
}

TEST(Runner, MatchesSerialSweepExactly)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    const ExperimentSpec spec = quickSpec(mesh);
    const ExperimentResult result = Runner(4).run(spec);

    std::vector<SweepSeries> reference;
    for (const std::string &algo : spec.algorithms) {
        RoutingPtr routing = makeRouting(algo, mesh);
        PatternPtr pattern = makePattern(spec.pattern, mesh);
        SweepConfig cfg;
        cfg.injection_rates = spec.injection_rates;
        cfg.sim = spec.sim;
        cfg.stop_after_saturated = spec.stop_after_saturated;
        reference.push_back(runSweep(*routing, *pattern, cfg));
    }

    std::ostringstream parallel_os, serial_os;
    writeSeriesJson(parallel_os, spec.name, result.series);
    writeSeriesJson(serial_os, spec.name, reference);
    EXPECT_EQ(parallel_os.str(), serial_os.str());
}

TEST(Runner, SeriesFollowSpecOrderNotCompletionOrder)
{
    // Jobs for later algorithms can finish before earlier ones; the
    // assembled result must still follow spec.algorithms order.
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    ExperimentSpec spec = quickSpec(mesh);
    spec.algorithms = {"negative-first", "xy", "north-last",
                       "west-first"};
    const ExperimentResult result = Runner(8).run(spec);
    ASSERT_EQ(result.series.size(), spec.algorithms.size());
    for (std::size_t i = 0; i < spec.algorithms.size(); ++i)
        EXPECT_EQ(result.series[i].algorithm, spec.algorithms[i]);
    for (const SweepSeries &series : result.series) {
        ASSERT_EQ(series.points.size(), spec.injection_rates.size());
        for (std::size_t i = 0; i < series.points.size(); ++i)
            EXPECT_DOUBLE_EQ(series.points[i].injection_rate,
                             spec.injection_rates[i]);
    }
}

TEST(Runner, ReproducesSerialEarlyStop)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    ExperimentSpec spec = quickSpec(mesh);
    spec.pattern = "transpose";
    spec.algorithms = {"xy"};
    // Every rate far beyond saturation: the serial sweep stops after
    // stop_after_saturated points, so the runner must truncate to
    // the same prefix.
    spec.injection_rates = {0.9, 0.95, 1.0, 1.05, 1.1, 1.15};
    spec.stop_after_saturated = 2;
    const ExperimentResult result = Runner(4).run(spec);
    ASSERT_EQ(result.series.size(), 1u);
    EXPECT_EQ(result.series[0].points.size(), 2u);
}

TEST(Runner, HonoursCustomRoutingFactory)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    ExperimentSpec spec = quickSpec(mesh);
    spec.algorithms = {"my-xy"};
    int factory_calls = 0;
    spec.make_routing = [&](const std::string &name,
                            const Topology &topo) {
        EXPECT_EQ(name, "my-xy");
        ++factory_calls;
        return makeRouting("xy", topo);
    };
    const ExperimentResult result = Runner(2).run(spec);
    // One private instance per (algorithm, rate) job.
    EXPECT_EQ(factory_calls,
              static_cast<int>(spec.injection_rates.size()));
    ASSERT_EQ(result.series.size(), 1u);
    EXPECT_GT(result.series[0].maxSustainableThroughput(), 0.0);
}

TEST(Runner, RecordsJobsAndWallClock)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ExperimentSpec spec = quickSpec(mesh);
    spec.algorithms = {"xy"};
    spec.injection_rates = {0.01};
    Runner runner(3);
    EXPECT_EQ(runner.jobs(), 3u);
    const ExperimentResult result = runner.run(spec);
    EXPECT_EQ(result.jobs, 3u);
    EXPECT_GE(result.wall_seconds, 0.0);
    EXPECT_EQ(result.experiment, spec.name);
}

TEST(ResultSink, JsonCarriesExperimentMetadata)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ExperimentSpec spec = quickSpec(mesh);
    spec.algorithms = {"xy"};
    spec.injection_rates = {0.01, 0.02};
    const ExperimentResult result = Runner(2).run(spec);
    std::ostringstream os;
    ResultSink::writeJson(os, result);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"experiment\": \"runner-unit-test\""),
              std::string::npos);
    EXPECT_NE(text.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(text.find("\"wall_clock_seconds\""), std::string::npos);
    EXPECT_NE(text.find("\"algorithm\": \"xy\""), std::string::npos);
}

} // namespace
} // namespace turnmodel
