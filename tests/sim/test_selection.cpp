/**
 * @file
 * Unit tests for the input and output selection policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/selection.hpp"

namespace turnmodel {
namespace {

TEST(OutputSelection, LowestDimPicksLowestId)
{
    Rng rng(1);
    const DirectionSet c{dir2d::North, dir2d::East, dir2d::South};
    EXPECT_EQ(selectOutput(OutputSelection::LowestDim, c, std::nullopt,
                           rng),
              dir2d::East);
}

TEST(OutputSelection, HighestDimPicksHighestId)
{
    Rng rng(1);
    const DirectionSet c{dir2d::East, dir2d::South, dir2d::North};
    EXPECT_EQ(selectOutput(OutputSelection::HighestDim, c, std::nullopt,
                           rng),
              dir2d::North);
}

TEST(OutputSelection, SingleCandidateShortCircuits)
{
    Rng rng(1);
    const DirectionSet c{dir2d::South};
    for (auto policy :
         {OutputSelection::LowestDim, OutputSelection::HighestDim,
          OutputSelection::Random, OutputSelection::StraightFirst}) {
        EXPECT_EQ(selectOutput(policy, c, dir2d::East, rng),
                  dir2d::South);
    }
}

TEST(OutputSelection, StraightFirstPrefersSameDirection)
{
    Rng rng(1);
    const DirectionSet c{dir2d::East, dir2d::North};
    EXPECT_EQ(selectOutput(OutputSelection::StraightFirst, c,
                           dir2d::North, rng),
              dir2d::North);
    // No straight candidate: falls back to lowest.
    EXPECT_EQ(selectOutput(OutputSelection::StraightFirst, c,
                           dir2d::South, rng),
              dir2d::East);
    // Injection (no arrival direction): lowest.
    EXPECT_EQ(selectOutput(OutputSelection::StraightFirst, c,
                           std::nullopt, rng),
              dir2d::East);
}

TEST(OutputSelection, RandomCoversAllCandidates)
{
    Rng rng(5);
    const DirectionSet c{dir2d::East, dir2d::North, dir2d::South};
    std::set<DirId> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(selectOutput(OutputSelection::Random, c,
                                 std::nullopt, rng).id());
    EXPECT_EQ(seen.size(), 3u);
}

TEST(InputSelection, FcfsPicksEarliestArrival)
{
    Rng rng(1);
    const std::vector<InputRequest> reqs{
        {10, 500}, {11, 300}, {12, 400}};
    EXPECT_EQ(selectInput(InputSelection::Fcfs, reqs, rng), 1u);
}

TEST(InputSelection, FcfsBreaksTiesByPort)
{
    Rng rng(1);
    const std::vector<InputRequest> reqs{{12, 300}, {10, 300}};
    EXPECT_EQ(selectInput(InputSelection::Fcfs, reqs, rng), 1u);
}

TEST(InputSelection, FixedPriorityPicksLowestPort)
{
    Rng rng(1);
    const std::vector<InputRequest> reqs{
        {12, 100}, {10, 900}, {11, 200}};
    EXPECT_EQ(selectInput(InputSelection::FixedPriority, reqs, rng), 1u);
}

TEST(InputSelection, RandomCoversAllRequests)
{
    Rng rng(7);
    const std::vector<InputRequest> reqs{{1, 0}, {2, 0}, {3, 0}};
    std::set<std::size_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(selectInput(InputSelection::Random, reqs, rng));
    EXPECT_EQ(seen.size(), 3u);
}

TEST(InputSelection, SingleRequestShortCircuits)
{
    Rng rng(1);
    const std::vector<InputRequest> reqs{{5, 123}};
    for (auto policy :
         {InputSelection::Fcfs, InputSelection::Random,
          InputSelection::FixedPriority}) {
        EXPECT_EQ(selectInput(policy, reqs, rng), 0u);
    }
}

TEST(PolicyNames, ToString)
{
    EXPECT_STREQ(toString(InputSelection::Fcfs), "fcfs");
    EXPECT_STREQ(toString(OutputSelection::LowestDim), "lowest-dim");
    EXPECT_STREQ(toString(OutputSelection::StraightFirst),
                 "straight-first");
}

} // namespace
} // namespace turnmodel
