/**
 * @file
 * Tests for the measurement driver: latency/throughput accounting,
 * determinism, and saturation flagging.
 */

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"
#include "traffic/permutation.hpp"

namespace turnmodel {
namespace {

SimConfig
quickConfig(double rate)
{
    SimConfig cfg;
    cfg.injection_rate = rate;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 4000;
    return cfg;
}

TEST(Simulator, ModerateLoadDeliversTraffic)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.05));
    const SimResult r = sim.run();
    EXPECT_GT(r.packets_measured, 50u);
    EXPECT_GT(r.throughput_flits_per_us, 0.0);
    EXPECT_GT(r.avg_latency_us, 0.0);
    EXPECT_GT(r.avg_hops, 1.0);
    EXPECT_FALSE(r.saturated);
    EXPECT_FALSE(r.deadlocked);
}

TEST(Simulator, NetworkLatencyBelowTotalLatency)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("west-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.05));
    const SimResult r = sim.run();
    EXPECT_LE(r.avg_network_latency_us, r.avg_latency_us + 1e-9);
}

TEST(Simulator, ThroughputTracksOfferedLoadBelowSaturation)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = quickConfig(0.04);
    cfg.measure_cycles = 8000;
    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();
    EXPECT_NEAR(r.throughput_flits_per_us, r.offered_flits_per_us,
                r.offered_flits_per_us * 0.15);
}

TEST(Simulator, OverloadIsFlaggedSaturated)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.9));
    const SimResult r = sim.run();
    EXPECT_TRUE(r.saturated);
    // Delivered throughput stays below offered.
    EXPECT_LT(r.throughput_flits_per_us, r.offered_flits_per_us);
}

TEST(Simulator, SameSeedIsDeterministic)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("negative-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = quickConfig(0.08);
    cfg.seed = 77;
    const SimResult a = Simulator(*routing, *pattern, cfg).run();
    const SimResult b = Simulator(*routing, *pattern, cfg).run();
    EXPECT_DOUBLE_EQ(a.throughput_flits_per_us,
                     b.throughput_flits_per_us);
    EXPECT_DOUBLE_EQ(a.avg_latency_us, b.avg_latency_us);
    EXPECT_EQ(a.packets_measured, b.packets_measured);
}

TEST(Simulator, DifferentSeedsDiffer)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("negative-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = quickConfig(0.08);
    cfg.seed = 1;
    const SimResult a = Simulator(*routing, *pattern, cfg).run();
    cfg.seed = 2;
    const SimResult b = Simulator(*routing, *pattern, cfg).run();
    EXPECT_NE(a.packets_measured, b.packets_measured);
}

TEST(Simulator, OfferedLoadFormula)
{
    // 64 nodes at 0.05 flits/node/cycle and 20 flits/us channels:
    // 64 * 0.05 * 20 = 64 flits/us offered.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.05));
    const SimResult r = sim.run();
    EXPECT_DOUBLE_EQ(r.offered_flits_per_us, 64.0);
}

TEST(Simulator, SaturationFlaggedWhenQueueGrowthHeuristicMisses)
{
    // Over-driven transpose with a short window: the source backlog
    // has not yet grown by two packets per node, so the queue-growth
    // heuristic alone misses the saturation, but the network only
    // delivers ~65% of the offered flits. The delivered/offered
    // criterion must catch it.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.26;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 1500;
    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();
    ASSERT_FALSE(r.deadlocked);
    // The scenario only regresses the old criterion if the queue
    // heuristic indeed misses.
    ASSERT_LT(r.queue_growth_packets, 2.0);
    EXPECT_LT(r.delivered_ratio, 0.75);
    EXPECT_TRUE(r.saturated);
}

TEST(Simulator, DeliveredRatioNearOneBelowSaturation)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = quickConfig(0.04);
    cfg.measure_cycles = 8000;
    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();
    EXPECT_GT(r.delivered_ratio, 0.85);
    EXPECT_FALSE(r.saturated);
}

TEST(Simulator, P99UnclampedWhenHistogramCoversWindow)
{
    // The latency histogram spans the whole measurement window, and a
    // measured packet cannot live longer than the window, so for a
    // run that completes normally the p99 must be a real measurement.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.05));
    const SimResult r = sim.run();
    EXPECT_FALSE(r.latency_p99_clamped);
    EXPECT_GE(r.p99_latency_us, r.avg_latency_us);
}

/** Quarter-rotation permutation: every packet turns the same way. */
class RotationPattern : public PermutationTraffic
{
  public:
    explicit RotationPattern(const Topology &topo)
        : PermutationTraffic(topo)
    {
    }

    NodeId map(NodeId src) const override
    {
        const Coords c = topo_.coords(src);
        const int m = topo_.radix(0);
        return topo_.node({c[1], m - 1 - c[0]});
    }

    std::string name() const override { return "rotation"; }
};

TEST(Simulator, CountsCompletionsDrainedOnDeadlockTripCycle)
{
    // Fully adaptive minimal routing under the rotation permutation
    // deadlocks; with this seed the watchdog trips on a cycle that
    // itself delivers a measurement-eligible packet. run() used to
    // break out of the measurement loop before draining, losing that
    // completion from the latency statistics.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RotationPattern rotation(mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.5;
    cfg.seed = 1;
    cfg.output_selection = OutputSelection::Random;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 60000;
    cfg.deadlock_threshold = 2000;

    const auto makeFullyAdaptive = [&]() {
        TurnSet all(2);
        all.allowAll90();
        all.allowAllStraight();
        return TurnTableRouting(mesh, all, true, "fully-adaptive");
    };

    // Reference: the same phases with an explicit drain after the
    // deadlock break.
    TurnTableRouting ref_routing = makeFullyAdaptive();
    Network net(ref_routing, rotation, cfg);
    for (std::uint64_t c = 0; c < cfg.warmup_cycles; ++c) {
        net.step();
        if (net.deadlockDetected())
            break;
    }
    (void)net.drainCompletions();
    const double measure_start = static_cast<double>(net.now());
    std::uint64_t measured = 0;
    std::uint64_t lost_on_trip = 0;
    for (std::uint64_t c = 0; c < cfg.measure_cycles; ++c) {
        net.step();
        const bool tripped = net.deadlockDetected();
        for (const Completion &done : net.drainCompletions()) {
            if (done.created < measure_start)
                continue;
            ++measured;
            if (tripped)
                ++lost_on_trip;
        }
        if (tripped)
            break;
    }
    ASSERT_TRUE(net.deadlockDetected());
    // The scenario must actually deliver on the trip cycle, or it
    // could not regress the missing drain.
    ASSERT_GT(lost_on_trip, 0u);

    TurnTableRouting sim_routing = makeFullyAdaptive();
    Simulator sim(sim_routing, rotation, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.deadlocked);
    EXPECT_EQ(r.packets_measured, measured);
}

TEST(Simulator, HopsExceedOneOnAverage)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.03));
    const SimResult r = sim.run();
    // Uniform 8x8 mesh: ~5.3 hops average plus the ejection hop.
    EXPECT_GT(r.avg_hops, 4.0);
    EXPECT_LT(r.avg_hops, 8.0);
}

} // namespace
} // namespace turnmodel
