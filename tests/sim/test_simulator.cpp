/**
 * @file
 * Tests for the measurement driver: latency/throughput accounting,
 * determinism, and saturation flagging.
 */

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {
namespace {

SimConfig
quickConfig(double rate)
{
    SimConfig cfg;
    cfg.injection_rate = rate;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 4000;
    return cfg;
}

TEST(Simulator, ModerateLoadDeliversTraffic)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.05));
    const SimResult r = sim.run();
    EXPECT_GT(r.packets_measured, 50u);
    EXPECT_GT(r.throughput_flits_per_us, 0.0);
    EXPECT_GT(r.avg_latency_us, 0.0);
    EXPECT_GT(r.avg_hops, 1.0);
    EXPECT_FALSE(r.saturated);
    EXPECT_FALSE(r.deadlocked);
}

TEST(Simulator, NetworkLatencyBelowTotalLatency)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("west-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.05));
    const SimResult r = sim.run();
    EXPECT_LE(r.avg_network_latency_us, r.avg_latency_us + 1e-9);
}

TEST(Simulator, ThroughputTracksOfferedLoadBelowSaturation)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = quickConfig(0.04);
    cfg.measure_cycles = 8000;
    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();
    EXPECT_NEAR(r.throughput_flits_per_us, r.offered_flits_per_us,
                r.offered_flits_per_us * 0.15);
}

TEST(Simulator, OverloadIsFlaggedSaturated)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.9));
    const SimResult r = sim.run();
    EXPECT_TRUE(r.saturated);
    // Delivered throughput stays below offered.
    EXPECT_LT(r.throughput_flits_per_us, r.offered_flits_per_us);
}

TEST(Simulator, SameSeedIsDeterministic)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("negative-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = quickConfig(0.08);
    cfg.seed = 77;
    const SimResult a = Simulator(*routing, *pattern, cfg).run();
    const SimResult b = Simulator(*routing, *pattern, cfg).run();
    EXPECT_DOUBLE_EQ(a.throughput_flits_per_us,
                     b.throughput_flits_per_us);
    EXPECT_DOUBLE_EQ(a.avg_latency_us, b.avg_latency_us);
    EXPECT_EQ(a.packets_measured, b.packets_measured);
}

TEST(Simulator, DifferentSeedsDiffer)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("negative-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = quickConfig(0.08);
    cfg.seed = 1;
    const SimResult a = Simulator(*routing, *pattern, cfg).run();
    cfg.seed = 2;
    const SimResult b = Simulator(*routing, *pattern, cfg).run();
    EXPECT_NE(a.packets_measured, b.packets_measured);
}

TEST(Simulator, OfferedLoadFormula)
{
    // 64 nodes at 0.05 flits/node/cycle and 20 flits/us channels:
    // 64 * 0.05 * 20 = 64 flits/us offered.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.05));
    const SimResult r = sim.run();
    EXPECT_DOUBLE_EQ(r.offered_flits_per_us, 64.0);
}

TEST(Simulator, HopsExceedOneOnAverage)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    Simulator sim(*routing, *pattern, quickConfig(0.03));
    const SimResult r = sim.run();
    // Uniform 8x8 mesh: ~5.3 hops average plus the ejection hop.
    EXPECT_GT(r.avg_hops, 4.0);
    EXPECT_LT(r.avg_hops, 8.0);
}

} // namespace
} // namespace turnmodel
