/**
 * @file
 * Property sweeps over the simulator: invariants that must hold for
 * any seed, load, algorithm, and buffer depth — flit conservation,
 * latency bounds, monotone congestion behaviour, and determinism.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/routing/factory.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, ConservationAndSanity)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("west-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg;
    cfg.seed = GetParam();
    cfg.injection_rate = 0.06;
    cfg.warmup_cycles = 800;
    cfg.measure_cycles = 3000;
    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GT(r.packets_measured, 20u);
    // No packet can beat the physical floor: one hop plus the
    // shortest packet, in cycles.
    EXPECT_GT(r.avg_latency_us, (1.0 + 10.0) * cfg.cycleUs());
    // Network latency cannot exceed total latency.
    EXPECT_LE(r.avg_network_latency_us, r.avg_latency_us + 1e-12);
    // p99 at least the mean (heavy right tail by construction).
    EXPECT_GE(r.p99_latency_us, r.avg_latency_us * 0.5);
    const auto &c = sim.network().counters();
    EXPECT_EQ(c.flits_generated,
              c.flits_delivered + c.flits_in_network +
                  c.source_queue_flits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

TEST(SimProperties, LatencyRisesWithLoad)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    double last = 0.0;
    for (double rate : {0.02, 0.08, 0.20}) {
        SimConfig cfg;
        cfg.injection_rate = rate;
        cfg.warmup_cycles = 1500;
        cfg.measure_cycles = 6000;
        Simulator sim(*routing, *pattern, cfg);
        const SimResult r = sim.run();
        EXPECT_GT(r.avg_latency_us, last * 0.95) << "rate " << rate;
        last = r.avg_latency_us;
    }
}

TEST(SimProperties, ThroughputCappedByOfferedLoad)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    PatternPtr pattern = makePattern("transpose", mesh);
    for (const char *algo : {"xy", "negative-first"}) {
        RoutingPtr routing = makeRouting(algo, mesh);
        for (double rate : {0.03, 0.10, 0.40}) {
            SimConfig cfg;
            cfg.injection_rate = rate;
            cfg.warmup_cycles = 1000;
            cfg.measure_cycles = 4000;
            Simulator sim(*routing, *pattern, cfg);
            const SimResult r = sim.run();
            // A small transient overshoot is possible (packets
            // injected during warmup draining in the window).
            EXPECT_LT(r.throughput_flits_per_us,
                      r.offered_flits_per_us * 1.25)
                << algo << " rate " << rate;
        }
    }
}

TEST(SimProperties, BufferDepthNeverHurtsThroughputMuch)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("west-first", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    double depth1 = 0.0;
    for (std::uint32_t depth : {1u, 4u}) {
        SimConfig cfg;
        cfg.injection_rate = 0.15;
        cfg.warmup_cycles = 1500;
        cfg.measure_cycles = 6000;
        cfg.buffer_depth = depth;
        Simulator sim(*routing, *pattern, cfg);
        const SimResult r = sim.run();
        if (depth == 1)
            depth1 = r.throughput_flits_per_us;
        else
            EXPECT_GT(r.throughput_flits_per_us, depth1 * 0.9);
    }
}

TEST(SimProperties, SaturationThroughputStabilizes)
{
    // Beyond saturation, delivered throughput must not keep scaling
    // with offered load.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    double at_high = 0.0, at_extreme = 0.0;
    for (double rate : {0.5, 1.0}) {
        SimConfig cfg;
        cfg.injection_rate = rate;
        cfg.warmup_cycles = 2000;
        cfg.measure_cycles = 8000;
        Simulator sim(*routing, *pattern, cfg);
        const SimResult r = sim.run();
        EXPECT_TRUE(r.saturated);
        (rate == 0.5 ? at_high : at_extreme) =
            r.throughput_flits_per_us;
    }
    EXPECT_LT(at_extreme, at_high * 1.5);
}

TEST(SimProperties, WarmupLengthDoesNotChangeStableThroughput)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("negative-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    double short_warmup = 0.0, long_warmup = 0.0;
    for (std::uint64_t warmup : {1000ull, 4000ull}) {
        SimConfig cfg;
        cfg.injection_rate = 0.05;
        cfg.warmup_cycles = warmup;
        cfg.measure_cycles = 8000;
        Simulator sim(*routing, *pattern, cfg);
        const SimResult r = sim.run();
        (warmup == 1000 ? short_warmup : long_warmup) =
            r.throughput_flits_per_us;
    }
    EXPECT_NEAR(short_warmup, long_warmup, short_warmup * 0.1);
}

class AlgorithmLoadSweep
    : public ::testing::TestWithParam<std::tuple<const char *, double>>
{
};

TEST_P(AlgorithmLoadSweep, NoDeadlockAndConservation)
{
    const auto [algo, rate] = GetParam();
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting(algo, mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    SimConfig cfg;
    cfg.injection_rate = rate;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 4000;
    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();
    EXPECT_FALSE(r.deadlocked) << algo << " @ " << rate;
    const auto &c = sim.network().counters();
    EXPECT_EQ(c.flits_generated,
              c.flits_delivered + c.flits_in_network +
                  c.source_queue_flits);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlgorithmLoadSweep,
    ::testing::Combine(::testing::Values("xy", "west-first",
                                         "north-last", "negative-first",
                                         "odd-even"),
                       ::testing::Values(0.05, 0.25, 0.8)));

} // namespace
} // namespace turnmodel
