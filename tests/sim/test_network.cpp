/**
 * @file
 * Unit tests for the flit-level wormhole network engine: pipelining,
 * channel holding, buffer semantics, arbitration fairness, counters,
 * and conservation of flits.
 */

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "sim/network.hpp"
#include "topology/mesh.hpp"
#include "traffic/uniform.hpp"

namespace turnmodel {
namespace {

/** A pattern that never generates traffic (tests drive post()). */
class SilentPattern : public TrafficPattern
{
  public:
    std::optional<NodeId> destination(NodeId, Rng &) const override
    {
        return std::nullopt;
    }
    std::string name() const override { return "silent"; }
    bool isDeterministic() const override { return true; }
};

struct Fixture
{
    Fixture(int m, int n, const char *algo, SimConfig cfg = {})
        : mesh(NDMesh::mesh2D(m, n)),
          routing(makeRouting(algo, mesh)),
          config(cfg),
          net(*routing, pattern, config)
    {
    }

    NDMesh mesh;
    SilentPattern pattern;
    RoutingPtr routing;
    SimConfig config;
    Network net;
};

/** Step until the network is empty or the horizon passes. */
std::vector<Completion>
runToDrain(Network &net, std::uint64_t horizon)
{
    std::vector<Completion> done;
    while (net.now() < horizon) {
        net.step();
        for (auto &c : net.drainCompletions())
            done.push_back(c);
        if (net.counters().flits_in_network == 0 &&
            net.sourceQueuePackets() == 0) {
            break;
        }
    }
    return done;
}

TEST(Network, SinglePacketDelivered)
{
    Fixture f(4, 4, "xy");
    const NodeId src = f.mesh.node({0, 0});
    const NodeId dst = f.mesh.node({3, 3});
    f.net.post(src, dst, 5);
    const auto done = runToDrain(f.net, 1000);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].src, src);
    EXPECT_EQ(done[0].dest, dst);
    EXPECT_EQ(done[0].length, 5u);
    EXPECT_EQ(done[0].hops, 6u);
    EXPECT_EQ(f.net.counters().flits_delivered, 5u);
    EXPECT_EQ(f.net.counters().packets_delivered, 1u);
}

TEST(Network, UncontendedLatencyIsDistancePlusLength)
{
    // Wormhole: latency ~ hops + length (plus per-hop pipeline
    // overheads), NOT hops * length as in store-and-forward.
    Fixture f(8, 8, "xy");
    const NodeId src = f.mesh.node({0, 0});
    const NodeId dst = f.mesh.node({7, 7});
    f.net.post(src, dst, 50);
    const auto done = runToDrain(f.net, 5000);
    ASSERT_EQ(done.size(), 1u);
    const double latency = done[0].delivered - done[0].created;
    const double lower = 14.0 + 50.0;          // hops + flits
    const double upper = 2.5 * 14.0 + 50.0;    // generous overhead
    EXPECT_GE(latency, lower);
    EXPECT_LE(latency, upper);
    // Far below the store-and-forward product.
    EXPECT_LT(latency, 14.0 * 50.0 / 2.0);
}

TEST(Network, LongPacketStreamsAtFullBandwidth)
{
    // With single-flit buffers, consecutive flits must still move
    // every cycle once the path is held: delivery time of a 100-flit
    // packet over 2 hops must be ~100 cycles, not ~200.
    Fixture f(4, 4, "xy");
    const NodeId src = f.mesh.node({0, 0});
    const NodeId dst = f.mesh.node({2, 0});
    f.net.post(src, dst, 100);
    const auto done = runToDrain(f.net, 5000);
    ASSERT_EQ(done.size(), 1u);
    const double latency = done[0].delivered - done[0].created;
    EXPECT_LT(latency, 100.0 + 4 * 3 + 8);
}

TEST(Network, FlitsConserved)
{
    Fixture f(4, 4, "west-first");
    f.net.post(f.mesh.node({0, 0}), f.mesh.node({3, 3}), 7);
    f.net.post(f.mesh.node({3, 0}), f.mesh.node({0, 3}), 9);
    f.net.post(f.mesh.node({1, 2}), f.mesh.node({2, 1}), 11);
    runToDrain(f.net, 2000);
    const auto &c = f.net.counters();
    EXPECT_EQ(c.flits_generated, 27u);
    EXPECT_EQ(c.flits_delivered, 27u);
    EXPECT_EQ(c.flits_in_network, 0u);
    EXPECT_EQ(c.source_queue_flits, 0u);
    EXPECT_EQ(c.packets_delivered, 3u);
}

TEST(Network, HopsMatchMinimalDistance)
{
    Fixture f(6, 6, "negative-first");
    const NodeId src = f.mesh.node({5, 5});
    const NodeId dst = f.mesh.node({1, 2});
    f.net.post(src, dst, 3);
    const auto done = runToDrain(f.net, 2000);
    ASSERT_EQ(done.size(), 1u);
    // Hops count router-to-router channel crossings only (injection
    // and ejection channels excluded).
    EXPECT_EQ(done[0].hops,
              static_cast<std::uint32_t>(f.mesh.distance(src, dst)));
}

TEST(Network, TwoPacketsToSameDestinationSerialize)
{
    // Both packets eject through the same delivery channel: total
    // drain time is at least the sum of their lengths.
    Fixture f(4, 4, "xy");
    const NodeId dst = f.mesh.node({3, 3});
    f.net.post(f.mesh.node({0, 3}), dst, 40);
    f.net.post(f.mesh.node({3, 0}), dst, 40);
    const auto done = runToDrain(f.net, 5000);
    ASSERT_EQ(done.size(), 2u);
    const double finish =
        std::max(done[0].delivered, done[1].delivered);
    EXPECT_GE(finish, 80.0);
}

TEST(Network, WormholeHoldsChannelWhileBlocked)
{
    // A long packet crossing a channel blocks a second packet that
    // needs the same channel until its tail passes (the defining
    // wormhole behavior).
    Fixture f(5, 2, "xy");
    // P1: (0,0) -> (4,0) along the bottom row, 60 flits.
    f.net.post(f.mesh.node({0, 0}), f.mesh.node({4, 0}), 60);
    // Let P1 establish its path.
    for (int i = 0; i < 6; ++i)
        f.net.step();
    // P2 needs the same eastward channels.
    f.net.post(f.mesh.node({1, 0}), f.mesh.node({4, 0}), 4);
    const auto done = runToDrain(f.net, 2000);
    ASSERT_EQ(done.size(), 2u);
    const Completion &p1 = done[0].length == 60 ? done[0] : done[1];
    const Completion &p2 = done[0].length == 60 ? done[1] : done[0];
    // P2 cannot finish before P1's tail has passed node (1,0).
    EXPECT_GT(p2.delivered, p1.delivered - 60);
}

TEST(Network, SourceQueueBlocksFollowers)
{
    // Messages queue at the source: a second packet from the same
    // node cannot inject before the first one's tail.
    Fixture f(4, 4, "xy");
    const NodeId src = f.mesh.node({0, 0});
    f.net.post(src, f.mesh.node({3, 0}), 30);
    f.net.post(src, f.mesh.node({0, 3}), 5);
    const auto done = runToDrain(f.net, 1000);
    ASSERT_EQ(done.size(), 2u);
    const Completion &p2 = done[0].length == 5 ? done[0] : done[1];
    EXPECT_GT(p2.injected, 29.0);
}

TEST(Network, DeeperBuffersReduceNothingWhenUncontended)
{
    // Buffer depth must not break single-packet delivery.
    SimConfig cfg;
    cfg.buffer_depth = 4;
    Fixture f(4, 4, "xy", cfg);
    f.net.post(f.mesh.node({0, 1}), f.mesh.node({3, 2}), 20);
    const auto done = runToDrain(f.net, 1000);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(f.net.counters().flits_delivered, 20u);
}

TEST(Network, FcfsArbitrationFavorsEarlierArrival)
{
    // Two headers contending for one ejection channel: the one that
    // arrived at the router first wins.
    Fixture f(3, 3, "xy");
    const NodeId dst = f.mesh.node({1, 1});
    // P1 has a 2-hop route, P2 a 1-hop route but posted later; give
    // P1 a head start so its header arrives first.
    f.net.post(f.mesh.node({0, 0}), dst, 20);   // arrives via west
    for (int i = 0; i < 4; ++i)
        f.net.step();
    f.net.post(f.mesh.node({1, 0}), dst, 20);   // arrives via south
    const auto done = runToDrain(f.net, 1000);
    ASSERT_EQ(done.size(), 2u);
    const Completion &p1 = done[0].src == f.mesh.node({0, 0})
        ? done[0] : done[1];
    const Completion &p2 = done[0].src == f.mesh.node({0, 0})
        ? done[1] : done[0];
    EXPECT_LT(p1.delivered, p2.delivered);
}

TEST(Network, StallWatchdogQuietWhileTrafficFlows)
{
    Fixture f(4, 4, "west-first");
    f.net.post(f.mesh.node({0, 0}), f.mesh.node({3, 3}), 10);
    runToDrain(f.net, 1000);
    EXPECT_FALSE(f.net.deadlockDetected());
}

TEST(Network, GenerationTogglesMessageCreation)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    UniformTraffic uniform(mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.5;
    Network net(*routing, uniform, cfg);
    for (int i = 0; i < 100; ++i)
        net.step();
    EXPECT_GT(net.counters().packets_generated, 0u);
    const auto generated = net.counters().packets_generated;
    net.setGenerationEnabled(false);
    for (int i = 0; i < 100; ++i)
        net.step();
    EXPECT_EQ(net.counters().packets_generated, generated);
}

TEST(Network, PostValidatesArguments)
{
    Fixture f(4, 4, "xy");
    EXPECT_DEATH({ f.net.post(0, 0, 5); }, "distinct");
    EXPECT_DEATH({ f.net.post(0, 99, 5); }, "out of range");
    EXPECT_DEATH({ f.net.post(0, 1, 0); }, "at least one");
}

TEST(Network, CompletionTimesOrdered)
{
    Fixture f(4, 4, "xy");
    f.net.post(f.mesh.node({0, 0}), f.mesh.node({2, 2}), 8);
    const auto done = runToDrain(f.net, 1000);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_LE(done[0].created, done[0].injected);
    EXPECT_LT(done[0].injected, done[0].delivered);
}

} // namespace
} // namespace turnmodel
