/**
 * @file
 * Simulation tests for virtual-channel wire sharing: virtual
 * channels multiply buffers, not bandwidth — two packets streaming
 * on different VCs of one physical wire must share its one flit per
 * cycle.
 */

#include <gtest/gtest.h>

#include "core/routing/mad_y.hpp"
#include "sim/network.hpp"
#include "topology/virtual_channels.hpp"

namespace turnmodel {
namespace {

/** A pattern that never generates traffic (tests drive post()). */
class SilentPattern : public TrafficPattern
{
  public:
    std::optional<NodeId> destination(NodeId, Rng &) const override
    {
        return std::nullopt;
    }
    std::string name() const override { return "silent"; }
    bool isDeterministic() const override { return true; }
};

std::vector<Completion>
runToDrain(Network &net, std::uint64_t horizon)
{
    std::vector<Completion> done;
    while (net.now() < horizon) {
        net.step();
        for (auto &c : net.drainCompletions())
            done.push_back(c);
        if (net.counters().flits_in_network == 0 &&
            net.sourceQueuePackets() == 0) {
            break;
        }
    }
    return done;
}

TEST(VcSim, SinglePacketDeliveredOnDoubleY)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(4, 4);
    MadYRouting routing(mesh);
    SilentPattern silent;
    SimConfig cfg;
    Network net(routing, silent, cfg);
    net.post(mesh.node({0, 0}), mesh.node({3, 3}), 10);
    const auto done = runToDrain(net, 1000);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].hops, 6u);
    EXPECT_EQ(net.counters().flits_delivered, 10u);
}

TEST(VcSim, SharedWireHalvesCombinedBandwidth)
{
    // Two packets from different sources crossing the same physical
    // y wire on (potentially) different VCs: the wire moves one flit
    // per cycle, so draining 2 x 60 flits through it takes at least
    // ~120 cycles. With private wires it would take ~60.
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(2, 4);
    MadYRouting routing(mesh);
    SilentPattern silent;
    SimConfig cfg;
    Network net(routing, silent, cfg);
    // Both packets go straight north through the wire (0,1)->(0,2).
    net.post(mesh.node({0, 0}), mesh.node({0, 3}), 60);
    net.post(mesh.node({0, 1}), mesh.node({0, 3}), 60);
    const auto done = runToDrain(net, 5000);
    ASSERT_EQ(done.size(), 2u);
    const double finish =
        std::max(done[0].delivered, done[1].delivered);
    // Ejection at the shared destination is itself serialized at one
    // flit per cycle, so 120 is also the ejection bound; what must
    // NOT happen is finishing near 60.
    EXPECT_GE(finish, 120.0);
    EXPECT_EQ(net.counters().flits_delivered, 120u);
}

TEST(VcSim, VcsBypassABlockedPacket)
{
    // The point of the extra VC: a packet blocked on y1 does not
    // block y2. P1 heads north but jams behind a slow ejector; P2
    // crosses the same physical column northward on the other VC.
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(3, 6);
    MadYRouting routing(mesh);
    SilentPattern silent;
    SimConfig cfg;
    Network net(routing, silent, cfg);
    // Two long packets to the SAME destination fight for its single
    // ejection channel; a third packet shares their column but has
    // its own destination and should slip past on the spare VC.
    net.post(mesh.node({1, 0}), mesh.node({1, 5}), 120);
    net.post(mesh.node({1, 1}), mesh.node({1, 5}), 120);
    net.post(mesh.node({1, 2}), mesh.node({1, 4}), 8);
    const auto done = runToDrain(net, 5000);
    ASSERT_EQ(done.size(), 3u);
    const Completion *small = nullptr;
    for (const auto &c : done) {
        if (c.length == 8)
            small = &c;
    }
    ASSERT_NE(small, nullptr);
    // The small packet finishes long before the 240-flit fight does.
    EXPECT_LT(small->delivered, 150.0);
    EXPECT_FALSE(net.deadlockDetected());
}

TEST(VcSim, UniformTrafficRunsCleanOnDoubleY)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(8, 8);
    MadYRouting routing(mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.08;
    PatternPtr pattern = makePattern("uniform", mesh);
    Network net(routing, *pattern, cfg);
    for (int i = 0; i < 8000; ++i)
        net.step();
    EXPECT_FALSE(net.deadlockDetected());
    EXPECT_GT(net.counters().flits_delivered, 1000u);
    const auto &c = net.counters();
    EXPECT_EQ(c.flits_generated,
              c.flits_delivered + c.flits_in_network +
                  c.source_queue_flits);
}

} // namespace
} // namespace turnmodel
