/**
 * @file
 * Closed-loop request/reply and workload-feature tests across both
 * engines: replies are generated and delivered, keep flowing through
 * drain phases (message-dependent chains), stay bit-identical at any
 * shard count, and a captured injection trace replays to identical
 * metrics. Also the soak-class regression tests: a warmup deadlock
 * must skip the measurement window, delivered_ratio is clamped to
 * 1.0, and long bursty runs hold a constant packet-pool high-water
 * mark.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"
#include "traffic/permutation.hpp"
#include "traffic/trace.hpp"

namespace turnmodel {
namespace {

/** Quarter-rotation permutation: every packet turns the same way. */
class RotationPattern : public PermutationTraffic
{
  public:
    explicit RotationPattern(const Topology &topo)
        : PermutationTraffic(topo)
    {
    }

    NodeId map(NodeId src) const override
    {
        const Coords c = topo_.coords(src);
        const int m = topo_.radix(0);
        return topo_.node({c[1], m - 1 - c[0]});
    }

    std::string name() const override { return "rotation"; }
};

SimConfig
closedLoopConfig(RouterModel model)
{
    SimConfig cfg;
    cfg.router_model = model;
    cfg.injection_rate = 0.05;
    // Requests and replies get distinct lengths so completions can
    // be told apart.
    cfg.lengths = PacketLengthDist::fixed(16);
    cfg.workload.request_reply = true;
    cfg.workload.reply_length = 4;
    cfg.workload.think_cycles = 3;
    return cfg;
}

/** Step @p cycles cycles collecting every completion. */
std::vector<Completion>
stepAndCollect(NetworkEngine &net, std::uint64_t cycles)
{
    std::vector<Completion> all, batch;
    for (std::uint64_t c = 0; c < cycles; ++c) {
        net.step();
        net.drainCompletions(batch);
        all.insert(all.end(), batch.begin(), batch.end());
    }
    return all;
}

/** Exact (bitwise) digest of a completion stream plus counters. */
std::string
digest(const std::vector<Completion> &completions,
       const NetworkCounters &counters)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const Completion &c : completions) {
        os << c.id << ',' << c.src << ',' << c.dest << ',' << c.length
           << ',' << c.hops << ',' << c.created << ',' << c.injected
           << ',' << c.delivered << '\n';
    }
    os << counters.packets_generated << ' ' << counters.flits_delivered
       << ' ' << counters.flit_moves << ' '
       << counters.flits_in_network;
    return os.str();
}

class ClosedLoopEngines : public ::testing::TestWithParam<RouterModel>
{
};

TEST_P(ClosedLoopEngines, RepliesAreGeneratedAndDelivered)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("xy", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);
    const SimConfig cfg = closedLoopConfig(GetParam());

    const auto net = makeEngine(*routing, *pattern, cfg);
    const std::vector<Completion> done = stepAndCollect(*net, 6000);

    std::size_t requests = 0, replies = 0;
    for (const Completion &c : done) {
        if (c.length == 16)
            ++requests;
        else if (c.length == 4)
            ++replies;
        else
            FAIL() << "unexpected packet length " << c.length;
    }
    EXPECT_GT(requests, 100u);
    EXPECT_GT(replies, 100u);
    // Every reply answers a delivered request; with think time the
    // tail can still be pending, so replies never lead.
    EXPECT_LE(replies, requests);
}

TEST_P(ClosedLoopEngines, RepliesKeepFlowingThroughDrain)
{
    // Message-dependent chains must survive the drain phase: with
    // stochastic generation disabled, deliveries of in-flight
    // requests still enqueue replies, and a deadlock-free algorithm
    // must drain the whole dependency chain to empty.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("west-first", mesh);
    const PatternPtr pattern = makePattern("transpose", mesh);
    SimConfig cfg = closedLoopConfig(GetParam());
    cfg.injection_rate = 0.1;

    const auto net = makeEngine(*routing, *pattern, cfg);
    (void)stepAndCollect(*net, 3000);
    net->setGenerationEnabled(false);

    std::vector<Completion> batch;
    std::size_t drained_replies = 0;
    while (net->now() < 100000
           && (net->counters().flits_in_network > 0
               || net->sourceQueuePackets() > 0)) {
        net->step();
        net->drainCompletions(batch);
        for (const Completion &c : batch)
            drained_replies += c.length == 4 ? 1 : 0;
    }
    EXPECT_GT(drained_replies, 0u)
        << "drain phase delivered no replies";
    EXPECT_EQ(net->counters().flits_in_network, 0u);
    EXPECT_FALSE(net->deadlockDetected());
}

TEST_P(ClosedLoopEngines, BitIdenticalAcrossShardCounts)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("xy", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = closedLoopConfig(GetParam());
    cfg.sim_threads = 1;

    const auto serial = makeEngine(*routing, *pattern, cfg);
    const std::string expected =
        digest(stepAndCollect(*serial, 4000), serial->counters());

    for (unsigned threads : {2u, 4u}) {
        cfg.sim_threads = threads;
        const auto sharded = makeEngine(*routing, *pattern, cfg);
        EXPECT_EQ(digest(stepAndCollect(*sharded, 4000),
                         sharded->counters()),
                  expected)
            << threads << " shards";
    }
}

TEST_P(ClosedLoopEngines, BurstyStormBitIdenticalAcrossShardCounts)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("xy", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg;
    cfg.router_model = GetParam();
    cfg.injection_rate = 0.08;
    cfg.workload.burst_on_cycles = 80.0;
    cfg.workload.burst_off_cycles = 240.0;
    cfg.workload.storm_period_cycles = 1000;
    cfg.workload.storm_duty = 0.25;
    cfg.workload.storm_fraction = 0.3;
    cfg.sim_threads = 1;

    const auto serial = makeEngine(*routing, *pattern, cfg);
    const std::string expected =
        digest(stepAndCollect(*serial, 4000), serial->counters());

    cfg.sim_threads = 4;
    const auto sharded = makeEngine(*routing, *pattern, cfg);
    EXPECT_EQ(digest(stepAndCollect(*sharded, 4000),
                     sharded->counters()),
              expected);
}

/** Every SimResult field, bitwise. */
std::string
fingerprint(const SimResult &r)
{
    std::ostringstream os;
    os << std::hexfloat << r.offered_flits_per_us << ' '
       << r.throughput_flits_per_us << ' ' << r.avg_latency_us << ' '
       << r.avg_network_latency_us << ' ' << r.p99_latency_us << ' '
       << r.avg_hops << ' ' << r.packets_measured << ' '
       << r.saturated << ' ' << r.deadlocked << ' '
       << r.queue_growth_packets << ' ' << r.delivered_ratio;
    return os.str();
}

TEST_P(ClosedLoopEngines, CapturedTraceReplaysToIdenticalMetrics)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    const RoutingPtr routing = makeRouting("xy", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);

    SimConfig cfg = closedLoopConfig(GetParam());
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 4000;
    cfg.obs.capture_injections = true;

    Simulator capture_sim(*routing, *pattern, cfg);
    const SimResult captured = capture_sim.run();
    const InjectionTrace *log =
        capture_sim.network().observer()->injections();
    ASSERT_NE(log, nullptr);
    ASSERT_FALSE(log->empty());

    // Round-trip through the binary format, then replay: the same
    // packets enter the same source queues on the same cycles, so
    // every metric matches bit for bit.
    std::stringstream bytes;
    ASSERT_TRUE(log->save(bytes));
    auto replay = std::make_shared<InjectionTrace>();
    ASSERT_TRUE(replay->load(bytes));
    ASSERT_EQ(replay->size(), log->size());

    SimConfig replay_cfg = closedLoopConfig(GetParam());
    replay_cfg.warmup_cycles = cfg.warmup_cycles;
    replay_cfg.measure_cycles = cfg.measure_cycles;
    replay_cfg.workload.replay = replay;
    Simulator replay_sim(*routing, *pattern, replay_cfg);
    EXPECT_EQ(fingerprint(replay_sim.run()), fingerprint(captured));
}

TEST_P(ClosedLoopEngines, DeliveredRatioClampedWithReplyTraffic)
{
    // Replies are delivered but never offered, so the raw
    // delivered/offered quotient of a closed-loop run exceeds 1.0;
    // the reported ratio must be clamped (S3) and the spillover must
    // not be misread as saturation headroom.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("xy", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg = closedLoopConfig(GetParam());
    cfg.workload.reply_length = 16;   // Replies double the flits.
    // Keep the total (request + reply) load light enough that even
    // the VC engine's tighter buffers sustain it: the test is about
    // the clamp, not the saturation point.
    cfg.injection_rate = 0.025;
    cfg.warmup_cycles = 2000;
    cfg.measure_cycles = 6000;

    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_LE(r.delivered_ratio, 1.0);
    EXPECT_DOUBLE_EQ(r.delivered_ratio, 1.0)
        << "reply spillover should pin the clamped ratio at 1.0";
    EXPECT_FALSE(r.saturated);
}

INSTANTIATE_TEST_SUITE_P(Engines, ClosedLoopEngines,
                         ::testing::Values(RouterModel::Classic,
                                           RouterModel::VcCredit));

TEST(ClosedLoop, WarmupDeadlockSkipsMeasurementWindow)
{
    // S1 regression: a deadlock tripped during warmup used to fall
    // through into the measurement loop and report a window of
    // frozen-network cycles as data. The run must instead return a
    // zero-width window flagged deadlocked and saturated.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting routing(mesh, all, true, "fully-adaptive");
    RotationPattern rotation(mesh);

    SimConfig cfg;
    cfg.injection_rate = 0.9;
    cfg.output_selection = OutputSelection::Random;
    cfg.deadlock_threshold = 1500;
    cfg.warmup_cycles = 60000;
    cfg.measure_cycles = 5000;
    cfg.seed = 11;

    Simulator sim(routing, rotation, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.deadlocked);
    EXPECT_TRUE(r.saturated);
    EXPECT_EQ(r.packets_measured, 0u);
    EXPECT_DOUBLE_EQ(r.throughput_flits_per_us, 0.0);
    EXPECT_DOUBLE_EQ(r.avg_latency_us, 0.0);
    EXPECT_GT(r.offered_flits_per_us, 0.0);
}

TEST(ClosedLoop, SoakHoldsConstantPacketPoolHighWaterMark)
{
    // Long-horizon bursty soak smoke: the packet pool may grow while
    // the network fills, but a leaky steady state would keep doubling
    // the arena. The high-water mark over the second half must stay
    // below twice the midpoint mark (rare storm bursts may add a few
    // slots; a leak grows linearly in cycles).
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("west-first", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.06;
    cfg.workload.burst_on_cycles = 100.0;
    cfg.workload.burst_off_cycles = 300.0;
    cfg.workload.storm_period_cycles = 2000;
    cfg.workload.storm_duty = 0.2;
    cfg.workload.storm_fraction = 0.4;

    const auto net = makeEngine(*routing, *pattern, cfg);
    std::vector<Completion> batch;
    constexpr std::uint64_t kChunk = 30000;
    std::size_t mid_cap = 0;
    for (int checkpoint = 0; checkpoint < 10; ++checkpoint) {
        for (std::uint64_t c = 0; c < kChunk; ++c)
            net->step();
        net->drainCompletions(batch);
        if (checkpoint == 4)
            mid_cap = net->packetPoolCapacity();
    }
    EXPECT_GT(mid_cap, 0u);
    EXPECT_LT(net->packetPoolCapacity(), 2 * mid_cap);
    EXPECT_FALSE(net->deadlockDetected());
}

} // namespace
} // namespace turnmodel
