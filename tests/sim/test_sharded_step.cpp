/**
 * @file
 * Shard-count invariance suite: the sharded two-phase stepping core
 * must be bit-identical to the serial engine at any --sim-threads
 * value, for both engines. Every test runs the same configuration at
 * several shard counts and compares completions (every field),
 * counters, deadlock state, and stuck-packet reports with exact
 * equality — the doubles are cycle stamps, so == is the right
 * comparison. Shard-boundary pressure comes from a 1-wide chain
 * where every hop crosses a shard edge at 8 shards.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "exec/result_sink.hpp"
#include "exec/runner.hpp"
#include "router/vc_network.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "topology/virtual_channels.hpp"
#include "traffic/permutation.hpp"

namespace turnmodel {
namespace {

/** Everything observable from one stepped run. */
struct RunLog
{
    std::vector<Completion> completions;
    NetworkCounters counters;
    std::uint64_t cycles = 0;
    bool deadlocked = false;
    std::vector<PacketId> stuck;
    unsigned shards = 0;
};

/** Step @p cycles cycles, draining completions every cycle. */
RunLog
runEngine(const RoutingAlgorithm &routing,
          const TrafficPattern &pattern, const SimConfig &cfg,
          std::uint64_t cycles)
{
    const auto net = makeEngine(routing, pattern, cfg);
    RunLog log;
    log.shards = net->shardCount();
    std::vector<Completion> batch;
    for (std::uint64_t c = 0; c < cycles; ++c) {
        net->step();
        net->drainCompletions(batch);
        log.completions.insert(log.completions.end(), batch.begin(),
                               batch.end());
    }
    log.counters = net->counters();
    log.cycles = net->now();
    log.deadlocked = net->deadlockDetected();
    log.stuck = net->stuckPackets(200);
    return log;
}

void
expectSameCounters(const NetworkCounters &a, const NetworkCounters &b,
                   const std::string &what)
{
    EXPECT_EQ(a.packets_generated, b.packets_generated) << what;
    EXPECT_EQ(a.packets_delivered, b.packets_delivered) << what;
    EXPECT_EQ(a.flits_generated, b.flits_generated) << what;
    EXPECT_EQ(a.flits_delivered, b.flits_delivered) << what;
    EXPECT_EQ(a.header_hops, b.header_hops) << what;
    EXPECT_EQ(a.source_queue_flits, b.source_queue_flits) << what;
    EXPECT_EQ(a.flits_in_network, b.flits_in_network) << what;
    EXPECT_EQ(a.flit_moves, b.flit_moves) << what;
}

void
expectSameLog(const RunLog &serial, const RunLog &sharded,
              const std::string &what)
{
    ASSERT_EQ(serial.completions.size(), sharded.completions.size())
        << what;
    for (std::size_t i = 0; i < serial.completions.size(); ++i) {
        const Completion &a = serial.completions[i];
        const Completion &b = sharded.completions[i];
        EXPECT_EQ(a.id, b.id) << what << " completion " << i;
        EXPECT_EQ(a.src, b.src) << what << " completion " << i;
        EXPECT_EQ(a.dest, b.dest) << what << " completion " << i;
        EXPECT_EQ(a.length, b.length) << what << " completion " << i;
        EXPECT_EQ(a.hops, b.hops) << what << " completion " << i;
        EXPECT_EQ(a.created, b.created) << what << " completion " << i;
        EXPECT_EQ(a.injected, b.injected)
            << what << " completion " << i;
        EXPECT_EQ(a.delivered, b.delivered)
            << what << " completion " << i;
    }
    expectSameCounters(serial.counters, sharded.counters, what);
    EXPECT_EQ(serial.cycles, sharded.cycles) << what;
    EXPECT_EQ(serial.deadlocked, sharded.deadlocked) << what;
    EXPECT_EQ(serial.stuck, sharded.stuck) << what;
}

/** Run @p cfg serially and at several shard counts; compare. */
void
expectShardInvariant(const Topology &topo, const char *algo,
                     const char *pattern_name, SimConfig cfg,
                     std::uint64_t cycles)
{
    const RoutingPtr routing = makeRouting(algo, topo);
    ASSERT_NE(routing, nullptr) << algo;
    const PatternPtr pattern = makePattern(pattern_name, topo);
    cfg.sim_threads = 1;
    const RunLog serial = runEngine(*routing, *pattern, cfg, cycles);
    EXPECT_EQ(serial.shards, 1u);
    for (unsigned threads : {2u, 4u, 8u}) {
        cfg.sim_threads = threads;
        const RunLog sharded =
            runEngine(*routing, *pattern, cfg, cycles);
        std::ostringstream what;
        what << algo << "/" << pattern_name << " at sim_threads="
             << threads;
        EXPECT_EQ(sharded.shards,
                  std::min<unsigned>(threads, topo.numNodes()))
            << what.str();
        expectSameLog(serial, sharded, what.str());
    }
}

TEST(ShardedStep, UniformMeshMatchesSerial)
{
    SimConfig cfg;
    cfg.injection_rate = 0.12;
    expectShardInvariant(NDMesh::mesh2D(16, 16), "xy", "uniform",
                         cfg, 1500);
}

TEST(ShardedStep, AdaptiveTransposeMatchesSerial)
{
    SimConfig cfg;
    cfg.injection_rate = 0.10;
    cfg.buffer_depth = 2;
    expectShardInvariant(NDMesh::mesh2D(12, 12), "west-first",
                         "transpose", cfg, 1500);
}

TEST(ShardedStep, ChainStressesShardBoundaries)
{
    // A 2-wide ribbon (the thinnest legal mesh): at 8 shards every
    // shard owns a short strip and nearly all traffic repeatedly
    // crosses shard edges in both directions.
    SimConfig cfg;
    cfg.injection_rate = 0.08;
    expectShardInvariant(NDMesh::mesh2D(32, 2), "xy", "uniform",
                         cfg, 2000);
}

TEST(ShardedStep, SharedWiresUseTheSerialArbPhase)
{
    // A virtualized mesh multiplexes VCs onto physical wires; the
    // classic engine resolves that contention in a serial
    // arbitration mini-phase whose outcome must not depend on the
    // shard layout.
    SimConfig cfg;
    cfg.injection_rate = 0.10;
    expectShardInvariant(VirtualizedMesh::uniform({6, 6}, 2),
                         "vc:west-first", "uniform", cfg, 1500);
}

TEST(ShardedStep, PostedPacketsMatchSerial)
{
    // post() allocates from the source's shard arena; a drain-only
    // run (generation off) must land the same completions.
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("xy", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg;

    const auto drive = [&](unsigned threads) {
        cfg.sim_threads = threads;
        const auto net = makeEngine(*routing, *pattern, cfg);
        net->setGenerationEnabled(false);
        for (NodeId src = 0; src < mesh.numNodes(); ++src)
            net->post(src, mesh.numNodes() - 1 - src, 4 + src % 7);
        RunLog log;
        log.shards = net->shardCount();
        std::vector<Completion> batch;
        while (net->counters().packets_delivered <
                   mesh.numNodes() &&
               net->now() < 5000) {
            net->step();
            net->drainCompletions(batch);
            log.completions.insert(log.completions.end(),
                                   batch.begin(), batch.end());
        }
        log.counters = net->counters();
        log.cycles = net->now();
        return log;
    };

    const RunLog serial = drive(1);
    EXPECT_EQ(serial.completions.size(),
              static_cast<std::size_t>(NDMesh::mesh2D(8, 8)
                                           .numNodes()));
    for (unsigned threads : {2u, 8u}) {
        const RunLog sharded = drive(threads);
        expectSameLog(serial, sharded,
                      "posted drain at sim_threads=" +
                          std::to_string(threads));
    }
}

/** Quarter-rotation permutation (as in the deadlock goldens). */
class RotationPattern : public PermutationTraffic
{
  public:
    explicit RotationPattern(const Topology &topo)
        : PermutationTraffic(topo)
    {
    }

    NodeId map(NodeId src) const override
    {
        const Coords c = topo_.coords(src);
        const int m = topo_.radix(0);
        return topo_.node({c[1], m - 1 - c[0]});
    }

    std::string name() const override { return "rotation"; }
};

TEST(ShardedStep, WatchdogDrainMatchesSerial)
{
    // A fully adaptive minimal turn table deadlocks under rotation
    // overload; the watchdog trip cycle and the completions drained
    // up to (and on) that cycle must be shard-count-invariant.
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    const TurnTableRouting routing(mesh, all, true,
                                   "fully-adaptive");
    const RotationPattern pattern(mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.9;
    cfg.deadlock_threshold = 1200;

    cfg.sim_threads = 1;
    const RunLog serial = runEngine(routing, pattern, cfg, 6000);
    EXPECT_TRUE(serial.deadlocked)
        << "the scenario no longer trips the watchdog";
    for (unsigned threads : {2u, 4u, 8u}) {
        cfg.sim_threads = threads;
        const RunLog sharded = runEngine(routing, pattern, cfg, 6000);
        expectSameLog(serial, sharded,
                      "watchdog at sim_threads=" +
                          std::to_string(threads));
    }
}

TEST(ShardedStep, RandomPoliciesAndTracingForceOneShard)
{
    // The Random selection policies consume the single router RNG
    // stream in visit order, and the packet trace logs in event
    // order; both are serial artifacts, so the engine must fall back
    // to one shard no matter what sim_threads asks for.
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("west-first", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);

    SimConfig cfg;
    cfg.sim_threads = 8;
    cfg.output_selection = OutputSelection::Random;
    EXPECT_EQ(makeEngine(*routing, *pattern, cfg)->shardCount(), 1u);

    cfg = SimConfig{};
    cfg.sim_threads = 8;
    cfg.input_selection = InputSelection::Random;
    EXPECT_EQ(makeEngine(*routing, *pattern, cfg)->shardCount(), 1u);

    cfg = SimConfig{};
    cfg.sim_threads = 8;
    cfg.obs.trace_capacity = 64;
    EXPECT_EQ(makeEngine(*routing, *pattern, cfg)->shardCount(), 1u);

    cfg = SimConfig{};
    cfg.sim_threads = 8;
    cfg.obs.channel_counters = true;   // Counters alone are fine.
    EXPECT_EQ(makeEngine(*routing, *pattern, cfg)->shardCount(), 8u);
}

TEST(ShardedStep, ObsStudyBytesMatchSerial)
{
    // Channel counters, time series, and the full obs JSON must be
    // byte-identical at any shard count (jobs=1 keeps the runner
    // from clamping sim_threads).
    NDMesh mesh = NDMesh::mesh2D(12, 12);
    ExperimentSpec spec;
    spec.name = "sharded-obs";
    spec.topology = &mesh;
    spec.pattern = "uniform";
    spec.algorithms = {"xy", "west-first"};
    spec.sim.warmup_cycles = 400;
    spec.sim.measure_cycles = 1200;

    ObsConfig obs;
    obs.channel_counters = true;
    obs.sample_stride = 200;

    std::string first;
    for (unsigned threads : {1u, 2u, 8u}) {
        spec.sim.sim_threads = threads;
        Runner runner(1);
        std::ostringstream os;
        ResultSink::writeObsJson(os, runner.runObs(spec, 0.12, obs));
        if (first.empty())
            first = os.str();
        else
            EXPECT_EQ(first, os.str())
                << "obs bytes diverged at sim_threads=" << threads;
    }
}

// ----- VC engine ----------------------------------------------------

void
expectVcShardInvariant(const Topology &topo, const char *algo,
                       const char *pattern_name, SimConfig cfg,
                       std::uint64_t cycles)
{
    cfg.router_model = RouterModel::VcCredit;
    const RoutingPtr routing = makeRouting(algo, topo);
    ASSERT_NE(routing, nullptr) << algo;
    const PatternPtr pattern = makePattern(pattern_name, topo);

    cfg.sim_threads = 1;
    const RunLog serial = runEngine(*routing, *pattern, cfg, cycles);
    EXPECT_EQ(serial.shards, 1u);
    for (unsigned threads : {2u, 4u, 8u}) {
        cfg.sim_threads = threads;
        const RunLog sharded =
            runEngine(*routing, *pattern, cfg, cycles);
        std::ostringstream what;
        what << "vc " << algo << "/" << pattern_name
             << " at sim_threads=" << threads;
        expectSameLog(serial, sharded, what.str());
    }
}

TEST(VcNetworkSharded, CreditFlowMatchesSerial)
{
    // Real credits: the cross-shard credit mailboxes must land every
    // credit in the owner's ring for the same cycle the serial
    // engine would have used.
    SimConfig cfg;
    cfg.injection_rate = 0.15;
    cfg.buffer_depth = 4;
    expectVcShardInvariant(NDMesh::mesh2D(8, 8), "xy", "uniform",
                           cfg, 1500);
}

TEST(VcNetworkSharded, CreditAuditHoldsAtEveryShardCount)
{
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("west-first", mesh);
    const PatternPtr pattern = makePattern("transpose", mesh);
    SimConfig cfg;
    cfg.router_model = RouterModel::VcCredit;
    cfg.injection_rate = 0.2;
    cfg.buffer_depth = 4;
    cfg.vc_router.credit_delay = 2;
    for (unsigned threads : {1u, 4u}) {
        cfg.sim_threads = threads;
        VcNetwork net(*routing, *pattern, cfg);
        for (int c = 0; c < 800; ++c) {
            net.step();
            ASSERT_TRUE(net.auditCredits())
                << "credit conservation broke at cycle " << c
                << " with sim_threads=" << threads;
        }
    }
}

TEST(VcNetworkSharded, EscapeVcMeshMatchesSerial)
{
    // Virtual channels + escape-style restricted routing over a
    // virtualized mesh: VC allocation stays router-local, wire
    // contention goes through the separable switch allocator.
    SimConfig cfg;
    cfg.injection_rate = 0.12;
    cfg.buffer_depth = 2;
    expectVcShardInvariant(VirtualizedMesh::uniform({6, 6}, 2),
                           "vc:west-first", "uniform", cfg, 1500);
}

TEST(VcNetworkSharded, IdealCreditsSharedWiresMatchSerial)
{
    // ideal_credits on shared wires takes the serial wire-arb
    // mini-phase (the only global step in the VC cycle).
    SimConfig cfg;
    cfg.injection_rate = 0.12;
    cfg.buffer_depth = 2;
    cfg.vc_router.ideal_credits = true;
    expectVcShardInvariant(VirtualizedMesh::uniform({6, 6}, 2),
                           "vc:dimension-order", "uniform", cfg,
                           1500);
}

TEST(VcNetworkSharded, PipelinedRouterMatchesSerial)
{
    SimConfig cfg;
    cfg.injection_rate = 0.15;
    cfg.buffer_depth = 4;
    cfg.vc_router.pipelined = true;
    cfg.vc_router.credit_delay = 3;
    expectVcShardInvariant(NDMesh::mesh2D(8, 8), "north-last",
                           "uniform", cfg, 1500);
}

TEST(VcNetworkSharded, ChainStressesShardBoundaries)
{
    SimConfig cfg;
    cfg.injection_rate = 0.08;
    cfg.buffer_depth = 2;
    expectVcShardInvariant(NDMesh::mesh2D(32, 2), "xy", "uniform",
                           cfg, 2000);
}

} // namespace
} // namespace turnmodel
