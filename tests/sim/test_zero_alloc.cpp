/**
 * @file
 * Proof that the steady-state hot loop does not touch the heap.
 *
 * This test lives in its own binary: it replaces the global
 * operator new/delete with counting versions, and that replacement
 * must not leak into unrelated suites. The counters only run while
 * `counting` is armed, so gtest's own bookkeeping stays invisible.
 *
 * Method: warm a network past every high-water mark (pool slots,
 * source-queue rings, per-cycle scratch, completion buffers), then
 * assert that thousands of further step()/drainCompletions() cycles
 * perform literally zero allocations. Scenarios cover the plain
 * mesh path, the observer-on path (channel counters + trace ring),
 * and the virtual-channel path whose physical-wire arbitration has
 * its own scratch state.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "sim/network.hpp"
#include "topology/mesh.hpp"
#include "topology/virtual_channels.hpp"
#include "traffic/pattern.hpp"

namespace {

std::atomic<bool> counting{false};
std::atomic<std::uint64_t> allocations{0};

void *
countedAlloc(std::size_t size)
{
    if (counting.load(std::memory_order_relaxed))
        allocations.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size ? size : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, std::align_val_t)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using namespace turnmodel;

/**
 * Run @p warmup cycles to reach every high-water mark (the run is
 * deterministic for a fixed seed, so a warmup that covers the marks
 * once covers them always), then count
 * allocations over @p measured further cycles (draining completions
 * into a reused buffer each cycle, as the measurement driver does).
 */
std::uint64_t
allocationsInSteadyState(Network &net, std::uint64_t warmup,
                         std::uint64_t measured)
{
    std::vector<Completion> done;
    for (std::uint64_t c = 0; c < warmup; ++c) {
        net.step();
        net.drainCompletions(done);
    }
    allocations.store(0);
    counting.store(true);
    for (std::uint64_t c = 0; c < measured; ++c) {
        net.step();
        net.drainCompletions(done);
    }
    counting.store(false);
    return allocations.load();
}

TEST(ZeroAlloc, MeshSteadyStateStepIsAllocationFree)
{
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("xy", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.10;
    Network net(*routing, *pattern, cfg);
    EXPECT_EQ(allocationsInSteadyState(net, 20000, 3000), 0u);
}

TEST(ZeroAlloc, AdaptiveRoutingPathIsAllocationFree)
{
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("west-first", mesh);
    const PatternPtr pattern = makePattern("transpose", mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.08;
    Network net(*routing, *pattern, cfg);
    EXPECT_EQ(allocationsInSteadyState(net, 20000, 3000), 0u);
}

TEST(ZeroAlloc, ObserverOnPathIsAllocationFree)
{
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("xy", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.10;
    cfg.obs.channel_counters = true;
    cfg.obs.trace_capacity = 4096;
    Network net(*routing, *pattern, cfg);
    EXPECT_EQ(allocationsInSteadyState(net, 20000, 3000), 0u);
}

TEST(ZeroAlloc, PhysicalChannelArbitrationIsAllocationFree)
{
    const VirtualizedMesh vmesh = VirtualizedMesh::doubleY(8, 8);
    const RoutingPtr routing = makeRouting("mad-y", vmesh);
    const PatternPtr pattern = makePattern("uniform", vmesh);
    SimConfig cfg;
    cfg.injection_rate = 0.12;
    Network net(*routing, *pattern, cfg);
    EXPECT_EQ(allocationsInSteadyState(net, 20000, 3000), 0u);
}

TEST(ZeroAlloc, SaturatedNetworkOnlyGrowsHighWaterMarks)
{
    // Past saturation the source queues and the packet pool grow
    // without bound, so "zero" is the wrong bar; what must hold is
    // that per-cycle scratch stays flat: allocations come only from
    // capacity doublings, a vanishing fraction of cycles.
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("xy", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.60;
    Network net(*routing, *pattern, cfg);
    const std::uint64_t n = allocationsInSteadyState(net, 20000, 3000);
    EXPECT_LE(n, 64u);
}

} // namespace
