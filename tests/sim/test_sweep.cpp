/**
 * @file
 * Tests for the sweep harness shared by the figure benchmarks.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/routing/factory.hpp"
#include "exec/sweep.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TEST(Sweep, LadderEndpointsAndMonotonicity)
{
    const auto rates = SweepConfig::ladder(0.01, 0.64, 7);
    ASSERT_EQ(rates.size(), 7u);
    EXPECT_DOUBLE_EQ(rates.front(), 0.01);
    EXPECT_NEAR(rates.back(), 0.64, 1e-9);
    for (std::size_t i = 1; i < rates.size(); ++i)
        EXPECT_GT(rates[i], rates[i - 1]);
}

TEST(Sweep, LadderIsGeometric)
{
    const auto rates = SweepConfig::ladder(0.1, 0.8, 4);
    const double r0 = rates[1] / rates[0];
    for (std::size_t i = 2; i < rates.size(); ++i)
        EXPECT_NEAR(rates[i] / rates[i - 1], r0, 1e-9);
}

TEST(Sweep, RunsAllPointsBelowSaturation)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SweepConfig cfg;
    cfg.injection_rates = {0.01, 0.02, 0.03};
    cfg.sim.warmup_cycles = 500;
    cfg.sim.measure_cycles = 2000;
    const SweepSeries series = runSweep(*routing, *pattern, cfg);
    EXPECT_EQ(series.algorithm, "xy");
    EXPECT_EQ(series.points.size(), 3u);
    EXPECT_GT(series.maxSustainableThroughput(), 0.0);
}

TEST(Sweep, StopsAfterConsecutiveSaturation)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("xy", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);
    SweepConfig cfg;
    // Every point far beyond saturation.
    cfg.injection_rates = {0.9, 0.95, 1.0, 1.05, 1.1, 1.15};
    cfg.stop_after_saturated = 2;
    cfg.sim.warmup_cycles = 500;
    cfg.sim.measure_cycles = 2000;
    const SweepSeries series = runSweep(*routing, *pattern, cfg);
    EXPECT_EQ(series.points.size(), 2u);
}

TEST(Sweep, PrintSeriesEmitsTableAndCsv)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("west-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SweepConfig cfg;
    cfg.injection_rates = {0.02, 0.04};
    cfg.sim.warmup_cycles = 500;
    cfg.sim.measure_cycles = 1500;
    const SweepSeries series = runSweep(*routing, *pattern, cfg);
    std::ostringstream os;
    printSeries(os, "unit-test-experiment", {series});
    const std::string text = os.str();
    EXPECT_NE(text.find("unit-test-experiment"), std::string::npos);
    EXPECT_NE(text.find("west-first"), std::string::npos);
    EXPECT_NE(text.find("max sustainable"), std::string::npos);
    EXPECT_NE(text.find("experiment,algorithm,injection_rate"),
              std::string::npos);
    // Two CSV data rows for the two points.
    EXPECT_NE(text.find("unit-test-experiment,west-first,0.02"),
              std::string::npos);
    EXPECT_NE(text.find("unit-test-experiment,west-first,0.04"),
              std::string::npos);
}

TEST(Sweep, WriteJsonEmitsBalancedMachineReadableOutput)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("west-first", mesh);
    PatternPtr pattern = makePattern("uniform", mesh);
    SweepConfig cfg;
    cfg.injection_rates = {0.02, 0.04};
    cfg.sim.warmup_cycles = 500;
    cfg.sim.measure_cycles = 1500;
    const SweepSeries series = runSweep(*routing, *pattern, cfg);

    std::ostringstream os;
    writeSeriesJson(os, "unit-test-json", {series, series});
    const std::string text = os.str();

    EXPECT_NE(text.find("\"experiment\": \"unit-test-json\""),
              std::string::npos);
    EXPECT_NE(text.find("\"algorithm\": \"west-first\""),
              std::string::npos);
    EXPECT_NE(text.find("\"max_sustainable_throughput_flits_per_us\""),
              std::string::npos);
    EXPECT_NE(text.find("\"injection_rate\""), std::string::npos);
    EXPECT_NE(text.find("\"saturated\""), std::string::npos);

    // Structurally valid: balanced braces/brackets, two series
    // objects, one points array each with two entries.
    long braces = 0, brackets = 0;
    for (char c : text) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);

    std::size_t series_count = 0;
    for (std::size_t pos = text.find("\"points\"");
         pos != std::string::npos;
         pos = text.find("\"points\"", pos + 1)) {
        ++series_count;
    }
    EXPECT_EQ(series_count, 2u);
}

TEST(Sweep, WriteJsonPreservesStreamFormatting)
{
    SweepSeries series;
    series.algorithm = "empty";
    std::ostringstream os;
    os.precision(3);
    os << 1.23456 << ' ';
    series.writeJson(os);
    os << ' ' << 1.23456;
    const std::string text = os.str();
    // The caller's precision survives the JSON emission.
    EXPECT_EQ(text.substr(0, 5), "1.23 ");
    EXPECT_EQ(text.substr(text.size() - 4), "1.23");
}

TEST(SweepDeathTest, LadderValidatesArguments)
{
    EXPECT_DEATH({ (void)SweepConfig::ladder(0.0, 1.0, 5); },
                 "ladder");
    EXPECT_DEATH({ (void)SweepConfig::ladder(0.5, 0.2, 5); },
                 "ladder");
    EXPECT_DEATH({ (void)SweepConfig::ladder(0.1, 0.2, 1); },
                 "ladder");
}

} // namespace
} // namespace turnmodel
