/**
 * @file
 * Switching-technique tests: the Section 1 background claim that
 * wormhole (and virtual cut-through) latency is proportional to
 * packet length PLUS distance while store-and-forward latency is
 * proportional to their PRODUCT.
 */

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "sim/network.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

class SilentPattern : public TrafficPattern
{
  public:
    std::optional<NodeId> destination(NodeId, Rng &) const override
    {
        return std::nullopt;
    }
    std::string name() const override { return "silent"; }
    bool isDeterministic() const override { return true; }
};

double
lonePacketLatency(Switching mode, int hops, std::uint32_t length)
{
    NDMesh mesh = NDMesh::mesh2D(16, 2);
    RoutingPtr routing = makeRouting("xy", mesh);
    SilentPattern silent;
    SimConfig cfg;
    cfg.switching = mode;
    cfg.lengths = PacketLengthDist::fixed(length);
    if (mode == Switching::StoreAndForward)
        cfg.buffer_depth = length;
    Network net(*routing, silent, cfg);
    net.post(mesh.node({0, 0}),
             mesh.node({hops, 0}), length);
    while (net.now() < 100000) {
        net.step();
        const auto done = net.drainCompletions();
        if (!done.empty())
            return done.front().delivered - done.front().created;
    }
    return -1.0;
}

TEST(Switching, WormholeLatencyIsSumLike)
{
    const double lat = lonePacketLatency(Switching::Wormhole, 10, 64);
    // ~ length + hops plus small per-hop overheads.
    EXPECT_GE(lat, 74.0);
    EXPECT_LE(lat, 74.0 + 3 * 10);
}

TEST(Switching, StoreAndForwardLatencyIsProductLike)
{
    const double lat =
        lonePacketLatency(Switching::StoreAndForward, 10, 64);
    // Each of the ~11 store hops (10 network + ejection) forwards
    // all 64 flits.
    EXPECT_GE(lat, 10.0 * 64.0);
    EXPECT_LE(lat, 13.0 * 64.0 + 100.0);
}

TEST(Switching, ModesAgreeAtDistanceOneUpToOverheads)
{
    const double wh = lonePacketLatency(Switching::Wormhole, 1, 32);
    const double saf =
        lonePacketLatency(Switching::StoreAndForward, 1, 32);
    // One network hop plus ejection: SAF pays roughly one extra
    // packet-store compared to wormhole.
    EXPECT_LT(wh, saf);
    EXPECT_LE(saf, wh + 2.0 * 32.0);
}

TEST(Switching, RatioGrowsWithDistance)
{
    const double wh4 = lonePacketLatency(Switching::Wormhole, 4, 50);
    const double wh12 = lonePacketLatency(Switching::Wormhole, 12, 50);
    const double saf4 =
        lonePacketLatency(Switching::StoreAndForward, 4, 50);
    const double saf12 =
        lonePacketLatency(Switching::StoreAndForward, 12, 50);
    // Wormhole adds ~1 cycle per extra hop; SAF adds ~length.
    EXPECT_LT(wh12 - wh4, 3.0 * 8.0);
    EXPECT_GT(saf12 - saf4, 7.0 * 50.0);
}

TEST(Switching, StoreAndForwardConservesFlits)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("west-first", mesh);
    SilentPattern silent;
    SimConfig cfg;
    cfg.switching = Switching::StoreAndForward;
    cfg.buffer_depth = 16;
    cfg.lengths = PacketLengthDist::fixed(16);
    Network net(*routing, silent, cfg);
    net.post(mesh.node({0, 0}), mesh.node({5, 5}), 16);
    net.post(mesh.node({5, 0}), mesh.node({0, 5}), 16);
    net.post(mesh.node({2, 2}), mesh.node({3, 4}), 16);
    while (net.now() < 5000 &&
           net.counters().flits_delivered < 48) {
        net.step();
    }
    EXPECT_EQ(net.counters().flits_delivered, 48u);
    EXPECT_FALSE(net.deadlockDetected());
}

TEST(SwitchingDeathTest, StoreAndForwardNeedsDeepBuffers)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting("xy", mesh);
    SilentPattern silent;
    SimConfig cfg;
    cfg.switching = Switching::StoreAndForward;
    cfg.buffer_depth = 1;   // Paper bimodal max is 200.
    EXPECT_DEATH({ Network net(*routing, silent, cfg); },
                 "fit a whole packet");
}

TEST(Switching, Names)
{
    EXPECT_STREQ(toString(Switching::Wormhole), "wormhole");
    EXPECT_STREQ(toString(Switching::StoreAndForward),
                 "store-and-forward");
}

} // namespace
} // namespace turnmodel
