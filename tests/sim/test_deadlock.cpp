/**
 * @file
 * End-to-end deadlock tests: routing with intact turn cycles
 * deadlocks in simulation under the drain criterion, while the
 * paper's partially adaptive algorithms always drain.
 */

#include <gtest/gtest.h>

#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "sim/network.hpp"
#include "topology/mesh.hpp"
#include "traffic/permutation.hpp"

namespace turnmodel {
namespace {

/** Quarter-rotation permutation: every packet turns the same way. */
class RotationPattern : public PermutationTraffic
{
  public:
    explicit RotationPattern(const Topology &topo)
        : PermutationTraffic(topo)
    {
    }

    NodeId map(NodeId src) const override
    {
        const Coords c = topo_.coords(src);
        const int m = topo_.radix(0);
        return topo_.node({c[1], m - 1 - c[0]});
    }

    std::string name() const override { return "rotation"; }
};

/**
 * Saturate the network, stop generation, and try to drain.
 *
 * @return true when every flit left the network (deadlock free).
 */
bool
drains(const RoutingAlgorithm &routing, const TrafficPattern &pattern,
       std::uint64_t seed)
{
    SimConfig cfg;
    cfg.injection_rate = 0.9;
    cfg.seed = seed;
    cfg.output_selection = OutputSelection::Random;
    Network net(routing, pattern, cfg);
    while (net.now() < 4000)
        net.step();
    net.setGenerationEnabled(false);
    while (net.now() < 200000 && net.stallCycles() < 2000 &&
           (net.counters().flits_in_network > 0 ||
            net.sourceQueuePackets() > 0)) {
        net.step();
    }
    return net.counters().flits_in_network == 0;
}

TEST(Deadlock, FullyAdaptiveMinimalDeadlocks)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting routing(mesh, all, true, "fully-adaptive");
    RotationPattern rotation(mesh);
    EXPECT_FALSE(drains(routing, rotation, 11));
}

TEST(Deadlock, ReversePairProhibitionDeadlocks)
{
    // One of the four Figure 4 configurations.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    TurnSet set = TurnSet::twoProhibited2D(
        Turn(dir2d::North, dir2d::West), Turn(dir2d::West, dir2d::North));
    TurnTableRouting routing(mesh, set, true, "figure-4");
    RotationPattern rotation(mesh);
    EXPECT_FALSE(drains(routing, rotation, 13));
}

class DeadlockFreeAlgorithms
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DeadlockFreeAlgorithms, AlwaysDrains)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting(GetParam(), mesh);
    RotationPattern rotation(mesh);
    EXPECT_TRUE(drains(*routing, rotation, 17)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DeadlockFreeAlgorithms,
                         ::testing::Values("xy", "west-first",
                                           "north-last",
                                           "negative-first", "abonf",
                                           "abopl"));

TEST(Deadlock, WatchdogFiresOnGlobalStall)
{
    // Once only the deadlocked packets remain, nothing moves and the
    // stall counter climbs monotonically.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting routing(mesh, all, true);
    RotationPattern rotation(mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.9;
    cfg.deadlock_threshold = 1500;
    cfg.output_selection = OutputSelection::Random;
    Network net(routing, rotation, cfg);
    while (net.now() < 4000)
        net.step();
    net.setGenerationEnabled(false);
    while (net.now() < 200000 && net.stallCycles() < 2000)
        net.step();
    EXPECT_GE(net.stallCycles(), 2000u);
    EXPECT_TRUE(net.deadlockDetected());
    EXPECT_FALSE(net.stuckPackets(1500).empty());
}

TEST(Deadlock, StuckPacketsSortedByIdDespiteSlotRecycling)
{
    // The pool hands out recycled slots, so the live-slot iteration
    // order bears no relation to packet age or id; stuckPackets()
    // promises ascending id order regardless. Drive the network
    // through thousands of deliveries (ample recycling) into a
    // deadlock, then check the contract.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting routing(mesh, all, true);
    RotationPattern rotation(mesh);
    SimConfig cfg;
    cfg.injection_rate = 0.9;
    cfg.output_selection = OutputSelection::Random;
    Network net(routing, rotation, cfg);
    while (net.now() < 4000)
        net.step();
    net.setGenerationEnabled(false);
    while (net.now() < 200000 && net.stallCycles() < 2000)
        net.step();

    const std::vector<PacketId> stuck = net.stuckPackets(1000);
    ASSERT_GT(stuck.size(), 1u);
    for (std::size_t i = 1; i < stuck.size(); ++i)
        EXPECT_LT(stuck[i - 1], stuck[i]) << "at index " << i;
    // The report is a pure query: repeating it must yield the same
    // list, not a permutation.
    EXPECT_EQ(net.stuckPackets(1000), stuck);
}

} // namespace
} // namespace turnmodel
