/**
 * @file
 * Unit tests for the selection-policy layer: the enum adapters must
 * be exact stand-ins for the classic selectOutput kernel (including
 * RNG consumption), the congestion policies must score candidates as
 * documented with the hashed tie-break, and the factory must accept
 * exactly the registered names.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "core/routing/factory.hpp"
#include "select/factory.hpp"
#include "select/lookahead.hpp"
#include "sim/selection.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

/** Fixture providing a routing instance the factory can compile
 * lookahead tables against. */
class SelectionPolicies : public ::testing::Test
{
  protected:
    NDMesh mesh_ = NDMesh::mesh2D(4, 4);
    RoutingPtr routing_ = makeRouting("xy", mesh_);

    SelectionPolicyPtr
    make(const std::string &name) const
    {
        return makeSelectionPolicy(name, *routing_);
    }
};

using SelectionFactory = SelectionPolicies;
using LookaheadTable = SelectionPolicies;

/** A query with no congestion state, for the stateless policies. */
SelectionQuery
query(DirectionSet candidates, std::optional<Direction> in_dir,
      Rng *rng = nullptr)
{
    SelectionQuery q;
    q.candidates = candidates;
    q.in_dir = in_dir;
    q.here = 5;
    q.dest = 10;
    q.packet = 42;
    q.rng = rng;
    return q;
}

TEST_F(SelectionPolicies, AdaptersMatchSelectOutputExhaustively)
{
    // Every non-empty candidate subset of the four 2D directions,
    // with every possible arrival direction (and none): the adapter
    // must return exactly what the classic kernel returns, drawing
    // from an identically seeded RNG in the same order.
    const struct
    {
        const char *name;
        OutputSelection policy;
    } adapters[] = {
        {"lowest-dim", OutputSelection::LowestDim},
        {"highest-dim", OutputSelection::HighestDim},
        {"random", OutputSelection::Random},
        {"straight-first", OutputSelection::StraightFirst},
    };
    for (const auto &[name, policy] : adapters) {
        const SelectionPolicyPtr sel = make(name);
        EXPECT_EQ(sel->name(), name);
        Rng rng_policy(99);
        Rng rng_kernel(99);
        for (DirectionSet::Bits bits = 1; bits < 16; ++bits) {
            const DirectionSet c = DirectionSet::fromBits(bits);
            for (int in = -1; in < 4; ++in) {
                const std::optional<Direction> in_dir = in < 0
                    ? std::nullopt
                    : std::optional<Direction>(Direction::fromId(
                          static_cast<DirId>(in)));
                const Direction got =
                    sel->pick(query(c, in_dir, &rng_policy));
                const Direction want =
                    selectOutput(policy, c, in_dir, rng_kernel);
                EXPECT_EQ(got, want)
                    << name << " candidates=" << toString(c);
            }
        }
        // The two streams stayed in lockstep, so the adapter drew
        // exactly as often as the kernel did.
        EXPECT_EQ(rng_policy(), rng_kernel()) << name;
    }
}

TEST_F(SelectionPolicies, StraightFirstInjectionFallsBackToLowestDim)
{
    // "Straight" is undefined at the injection port (no arrival
    // direction) — the documented fallback is the lowest direction
    // id, not an arbitrary or uninitialized pick.
    const SelectionPolicyPtr sel = make("straight-first");
    Rng rng(1);
    const DirectionSet c{dir2d::North, dir2d::East};
    EXPECT_EQ(sel->pick(query(c, std::nullopt, &rng)), dir2d::East);
    // Same fallback when continuing straight is illegal or busy.
    EXPECT_EQ(sel->pick(query(c, dir2d::South, &rng)), dir2d::East);
    // With a straight candidate it still goes straight.
    EXPECT_EQ(sel->pick(query(c, dir2d::North, &rng)), dir2d::North);
}

TEST_F(SelectionPolicies, HashedIsPureAndCoversCandidates)
{
    const SelectionPolicyPtr sel = make("hashed");
    const DirectionSet c{dir2d::East, dir2d::North, dir2d::South};

    // Pure: no RNG, and the same identity always picks the same
    // direction.
    SelectionQuery q = query(c, std::nullopt, nullptr);
    const Direction first = sel->pick(q);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sel->pick(q), first);

    // Varying the packet id spreads picks over every candidate, and
    // never outside the set.
    std::set<DirId> seen;
    for (std::uint64_t packet = 0; packet < 64; ++packet) {
        q.packet = packet;
        const Direction d = sel->pick(q);
        EXPECT_TRUE(c.contains(d));
        seen.insert(d.id());
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST_F(SelectionPolicies, LocalCongestionPicksMostFreeSlots)
{
    const SelectionPolicyPtr sel = make("local-congestion");
    EXPECT_TRUE(sel->needs().free_slots);
    EXPECT_FALSE(sel->needs().regional);
    EXPECT_FALSE(sel->consumesGlobalRng());

    const DirectionSet c{dir2d::East, dir2d::North, dir2d::South};
    SelectionQuery q = query(c, std::nullopt);
    // Ports indexed east=1, south=2, north=3 (dense direction ids).
    const std::uint16_t free[] = {0, 2, 7, 5};
    q.port_base = 0;
    q.free_slots = free;
    EXPECT_EQ(sel->pick(q), dir2d::South);

    // A tie goes to the hashed pick over the tied set only.
    const std::uint16_t tied_free[] = {0, 6, 6, 1};
    q.free_slots = tied_free;
    const DirectionSet tied{dir2d::East, dir2d::South};
    EXPECT_EQ(sel->pick(q), pickHashed(tied, q));
}

TEST_F(SelectionPolicies, RegionalPrefersLowCongestionThenFreeSlots)
{
    const SelectionPolicyPtr sel = make("regional");
    EXPECT_TRUE(sel->needs().free_slots);
    EXPECT_TRUE(sel->needs().regional);

    const DirectionSet c{dir2d::East, dir2d::North, dir2d::South};
    SelectionQuery q = query(c, std::nullopt);
    q.port_base = 0;
    const std::uint16_t free[] = {0, 1, 9, 9};
    const std::uint32_t congestion[] = {0, 100, 900, 900};
    q.free_slots = free;
    q.congestion = congestion;
    // East is the least congested despite having the fewest slots.
    EXPECT_EQ(sel->pick(q), dir2d::East);

    // Equal congestion: free slots break the tie.
    const std::uint32_t flat[] = {0, 500, 500, 500};
    const std::uint16_t slots[] = {0, 1, 3, 2};
    q.congestion = flat;
    q.free_slots = slots;
    EXPECT_EQ(sel->pick(q), dir2d::South);

    // Fully tied: the hashed pick, over the whole candidate set.
    const std::uint16_t even[] = {0, 4, 4, 4};
    q.free_slots = even;
    EXPECT_EQ(sel->pick(q), pickHashed(c, q));
}

TEST_F(SelectionPolicies, HashedTieBreakIsShardLayoutFree)
{
    // The hash depends only on (here, dest, packet) — nothing about
    // ports, shard ids, or visit order — so any engine layout
    // produces the same tie-break.
    const std::uint32_t h = selectionHash(7, 13, 1000);
    EXPECT_EQ(h, selectionHash(7, 13, 1000));
    EXPECT_NE(h, selectionHash(8, 13, 1000));
    EXPECT_NE(h, selectionHash(7, 14, 1000));
    EXPECT_NE(h, selectionHash(7, 13, 1001));
}

TEST_F(LookaheadTable, XyCostsAreManhattanDistances)
{
    // Dimension-order routing permits exactly the minimal paths, so
    // the residual cost from any node is the Manhattan distance.
    const LookaheadCostTable table(*routing_);
    ASSERT_EQ(table.numNodes(), 16u);
    for (NodeId v = 0; v < 16; ++v) {
        for (NodeId dest = 0; dest < 16; ++dest) {
            const Coords a = mesh_.coords(v);
            const Coords b = mesh_.coords(dest);
            const int manhattan = std::abs(a[0] - b[0]) +
                std::abs(a[1] - b[1]);
            EXPECT_EQ(table.cost(v, dest), manhattan)
                << "v=" << v << " dest=" << dest;
        }
    }
}

TEST_F(LookaheadTable, PolicyMovesTowardTheDestination)
{
    // From (0,0) to (3,0): stepping east leaves 2 hops, stepping
    // north leaves 4 — lookahead must pick east even though both
    // are offered.
    const SelectionPolicyPtr sel = make("lookahead");
    SelectionQuery q;
    q.candidates = DirectionSet{dir2d::East, dir2d::North};
    q.here = mesh_.node({0, 0});
    q.dest = mesh_.node({3, 0});
    q.packet = 7;
    EXPECT_EQ(sel->pick(q), dir2d::East);

    // Equidistant neighbors fall back to the hashed tie-break.
    q.dest = mesh_.node({2, 2});
    EXPECT_EQ(sel->pick(q), pickHashed(q.candidates, q));
}

TEST_F(SelectionFactory, RegisteredNamesConstructAndRoundTrip)
{
    const std::vector<std::string> names =
        availableSelectionPolicyNames();
    ASSERT_EQ(names.size(), 8u);
    for (const std::string &name : names) {
        const SelectionPolicyPtr sel = make(name);
        ASSERT_NE(sel, nullptr) << name;
        EXPECT_EQ(sel->name(), name);
    }
}

TEST_F(SelectionFactory, OnlyRandomConsumesGlobalRng)
{
    for (const std::string &name : availableSelectionPolicyNames()) {
        EXPECT_EQ(make(name)->consumesGlobalRng(), name == "random")
            << name;
    }
}

TEST_F(SelectionFactory, OnlyCongestionPoliciesDeclareNeeds)
{
    for (const std::string &name : availableSelectionPolicyNames()) {
        const SelectionNeeds needs = make(name)->needs();
        EXPECT_EQ(needs.free_slots,
                  name == "local-congestion" || name == "regional")
            << name;
        EXPECT_EQ(needs.regional, name == "regional") << name;
    }
}

TEST_F(SelectionFactory, UnknownNameDiesListingPolicies)
{
    EXPECT_DEATH({ (void)make("bogus"); },
                 "unknown selection policy 'bogus'");
    EXPECT_DEATH({ (void)make("bogus"); }, "lookahead");
}

} // namespace
} // namespace turnmodel
