/**
 * @file
 * Differential and shard/job invariance suite for the selection
 * layer. Two families of guarantees:
 *
 * SelectionDifferential — naming an adapter policy by string must be
 * byte-identical to configuring the classic enum, through the whole
 * experiment pipeline (series JSON and obs JSON). This pins the
 * refactor to the pre-policy-layer engine behavior.
 *
 * SelectionSharded — the congestion policies are deterministic at
 * any --jobs and any --sim-threads: completions, counters, and
 * serialized bytes must not change with the execution layout, on
 * both engines. Unlike the `random` adapter they must NOT pin the
 * engine to one shard.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/routing/factory.hpp"
#include "exec/result_sink.hpp"
#include "exec/runner.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

constexpr const char *kCongestionPolicies[] = {
    "hashed", "local-congestion", "regional", "lookahead"};

std::string
seriesJson(const ExperimentResult &result)
{
    std::ostringstream os;
    writeSeriesJson(os, result.experiment, result.series);
    return os.str();
}

/** A small fig13-style sweep on the paper's mesh. */
ExperimentSpec
sweepSpec(const NDMesh &mesh)
{
    ExperimentSpec spec;
    spec.name = "selection-differential";
    spec.topology = &mesh;
    spec.pattern = "uniform";
    spec.algorithms = {"xy", "west-first", "negative-first"};
    spec.injection_rates = {0.06, 0.14};
    spec.sim.warmup_cycles = 600;
    spec.sim.measure_cycles = 2000;
    return spec;
}

TEST(SelectionDifferential, AdapterNamesReproduceEnumBytes)
{
    // Each adapter, named through the policy factory, must yield the
    // exact bytes of the classic enum configuration on a fig13-style
    // sweep — the refactor is a behavioral no-op.
    const struct
    {
        const char *name;
        OutputSelection policy;
    } adapters[] = {
        {"lowest-dim", OutputSelection::LowestDim},
        {"highest-dim", OutputSelection::HighestDim},
        {"random", OutputSelection::Random},
        {"straight-first", OutputSelection::StraightFirst},
    };
    const NDMesh mesh = NDMesh::mesh2D(16, 16);
    for (const auto &[name, policy] : adapters) {
        ExperimentSpec enum_spec = sweepSpec(mesh);
        enum_spec.sim.output_selection = policy;
        ExperimentSpec named_spec = sweepSpec(mesh);
        named_spec.sim.selection_policy = name;

        Runner runner(2);
        EXPECT_EQ(seriesJson(runner.run(enum_spec)),
                  seriesJson(runner.run(named_spec)))
            << name;
    }
}

TEST(SelectionDifferential, AdapterObsBytesMatchEnum)
{
    // The observability pipeline (channel counters + samples) sees
    // identical engine behavior under the named adapter, too.
    const NDMesh mesh = NDMesh::mesh2D(12, 12);
    ExperimentSpec enum_spec = sweepSpec(mesh);
    enum_spec.algorithms = {"west-first"};
    enum_spec.sim.output_selection = OutputSelection::StraightFirst;
    ExperimentSpec named_spec = enum_spec;
    named_spec.sim.output_selection = OutputSelection::LowestDim;
    named_spec.sim.selection_policy = "straight-first";

    ObsConfig obs;
    obs.channel_counters = true;
    obs.sample_stride = 400;

    Runner runner(1);
    std::ostringstream enum_bytes, named_bytes;
    ResultSink::writeObsJson(enum_bytes,
                             runner.runObs(enum_spec, 0.12, obs));
    ResultSink::writeObsJson(named_bytes,
                             runner.runObs(named_spec, 0.12, obs));
    EXPECT_EQ(enum_bytes.str(), named_bytes.str());
}

TEST(SelectionDifferential, VcEngineAdapterMatchesEnum)
{
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    ExperimentSpec enum_spec = sweepSpec(mesh);
    enum_spec.algorithms = {"west-first", "negative-first"};
    enum_spec.sim.router_model = RouterModel::VcCredit;
    enum_spec.sim.buffer_depth = 4;
    enum_spec.sim.output_selection = OutputSelection::HighestDim;
    ExperimentSpec named_spec = enum_spec;
    named_spec.sim.output_selection = OutputSelection::LowestDim;
    named_spec.sim.selection_policy = "highest-dim";

    Runner runner(2);
    EXPECT_EQ(seriesJson(runner.run(enum_spec)),
              seriesJson(runner.run(named_spec)));
}

TEST(SelectionSharded, CongestionPoliciesJobCountInvariant)
{
    // The runner farms sweep points across worker threads; every
    // congestion policy must produce the same bytes at any --jobs.
    const NDMesh mesh = NDMesh::mesh2D(12, 12);
    for (const char *policy : kCongestionPolicies) {
        ExperimentSpec spec = sweepSpec(mesh);
        spec.pattern = "transpose";
        spec.algorithms = {"west-first", "negative-first"};
        spec.injection_rates = {0.10};
        spec.sim.selection_policy = policy;

        std::string first;
        for (unsigned jobs : {1u, 4u, 8u}) {
            Runner runner(jobs);
            const std::string bytes = seriesJson(runner.run(spec));
            if (first.empty())
                first = bytes;
            else
                EXPECT_EQ(first, bytes)
                    << policy << " diverged at --jobs=" << jobs;
        }
    }
}

/** Step an engine directly and collect everything observable. */
struct RunLog
{
    std::vector<Completion> completions;
    NetworkCounters counters;
    unsigned shards = 0;
};

RunLog
runEngine(const RoutingAlgorithm &routing,
          const TrafficPattern &pattern, const SimConfig &cfg,
          std::uint64_t cycles)
{
    const auto net = makeEngine(routing, pattern, cfg);
    RunLog log;
    log.shards = net->shardCount();
    std::vector<Completion> batch;
    for (std::uint64_t c = 0; c < cycles; ++c) {
        net->step();
        net->drainCompletions(batch);
        log.completions.insert(log.completions.end(), batch.begin(),
                               batch.end());
    }
    log.counters = net->counters();
    return log;
}

void
expectSameLog(const RunLog &serial, const RunLog &sharded,
              const std::string &what)
{
    ASSERT_EQ(serial.completions.size(), sharded.completions.size())
        << what;
    for (std::size_t i = 0; i < serial.completions.size(); ++i) {
        const Completion &a = serial.completions[i];
        const Completion &b = sharded.completions[i];
        EXPECT_EQ(a.id, b.id) << what << " completion " << i;
        EXPECT_EQ(a.hops, b.hops) << what << " completion " << i;
        EXPECT_EQ(a.injected, b.injected)
            << what << " completion " << i;
        EXPECT_EQ(a.delivered, b.delivered)
            << what << " completion " << i;
    }
    EXPECT_EQ(serial.counters.packets_delivered,
              sharded.counters.packets_delivered) << what;
    EXPECT_EQ(serial.counters.flit_moves, sharded.counters.flit_moves)
        << what;
    EXPECT_EQ(serial.counters.header_hops,
              sharded.counters.header_hops) << what;
}

void
expectPolicyShardInvariant(RouterModel model)
{
    // The congestion snapshots are taken at the cycle top from
    // owner-local state, so the sharded engines must replay the
    // serial decisions exactly — this is the test that would catch a
    // missing barrier or a cross-shard read of current-cycle state.
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("negative-first", mesh);
    const PatternPtr pattern = makePattern("transpose", mesh);
    for (const char *policy : kCongestionPolicies) {
        SimConfig cfg;
        cfg.injection_rate = 0.14;
        cfg.router_model = model;
        cfg.buffer_depth = model == RouterModel::VcCredit ? 4 : 2;
        cfg.selection_policy = policy;

        cfg.sim_threads = 1;
        const RunLog serial =
            runEngine(*routing, *pattern, cfg, 1500);
        EXPECT_EQ(serial.shards, 1u);
        EXPECT_GT(serial.completions.size(), 0u) << policy;
        for (unsigned threads : {2u, 4u, 8u}) {
            cfg.sim_threads = threads;
            const RunLog sharded =
                runEngine(*routing, *pattern, cfg, 1500);
            EXPECT_EQ(sharded.shards, threads);
            expectSameLog(serial, sharded,
                          std::string(policy) + " at sim_threads=" +
                              std::to_string(threads));
        }
    }
}

TEST(SelectionSharded, ClassicEngineShardInvariant)
{
    expectPolicyShardInvariant(RouterModel::Classic);
}

TEST(SelectionSharded, VcEngineShardInvariant)
{
    expectPolicyShardInvariant(RouterModel::VcCredit);
}

TEST(SelectionSharded, CongestionPoliciesDoNotForceOneShard)
{
    // Only the `random` adapter consumes the shared router RNG; the
    // congestion policies use the hashed tie-break precisely so the
    // engine can keep sharding.
    const NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("west-first", mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);
    for (const char *policy : kCongestionPolicies) {
        SimConfig cfg;
        cfg.sim_threads = 8;
        cfg.selection_policy = policy;
        EXPECT_EQ(makeEngine(*routing, *pattern, cfg)->shardCount(),
                  8u)
            << policy;
    }
    SimConfig cfg;
    cfg.sim_threads = 8;
    cfg.selection_policy = "random";
    EXPECT_EQ(makeEngine(*routing, *pattern, cfg)->shardCount(), 1u);
}

} // namespace
} // namespace turnmodel
