/**
 * @file
 * Unit tests for generic turn-table routing and its reachability
 * oracle — the executable form of an arbitrary allowed-turn set.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/routing/turn_table.hpp"
#include "core/routing/west_first.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

TEST(TurnTable, MinimalMatchesWestFirstCandidates)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    TurnTableRouting table(mesh, TurnSet::westFirst(), true);
    WestFirstRouting wf(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            // From the injection state the turn table may offer a
            // superset (it can start in any direction), but it must
            // offer at least the phase-correct candidates and every
            // offer must keep the destination reachable. For
            // west-first the sets coincide: starting east of the
            // destination with a westward need is only fixable by
            // going west immediately.
            auto a = table.route(s, std::nullopt, d);
            auto b = wf.route(s, std::nullopt, d);
            std::sort(a.begin(), a.end());
            std::sort(b.begin(), b.end());
            EXPECT_EQ(a, b) << s << "->" << d;
        }
    }
}

TEST(TurnTable, HonorsArrivalDirection)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    TurnTableRouting table(mesh, TurnSet::northLast(), true);
    EXPECT_TRUE(table.isInputDependent());
    // Travelling north, a packet cannot turn; the only offer is
    // straight north.
    const NodeId at = mesh.node({3, 3});
    const NodeId dst = mesh.node({3, 5});
    const auto dirs = table.route(at, dir2d::North, dst);
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], dir2d::North);
}

TEST(TurnTable, ReachabilityGuardsNonminimalDetours)
{
    // Nonminimal west-first: a packet must never be offered a hop to
    // the east of its destination column, because returning west
    // would need a prohibited turn.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    TurnTableRouting table(mesh, TurnSet::westFirst(), false);
    const NodeId dst = mesh.node({3, 4});
    for (int y = 0; y < 8; ++y) {
        // At the destination column, travelling east: any further
        // east hop strands the packet.
        const NodeId at = mesh.node({3, y});
        if (at == dst)
            continue;
        const auto dirs = table.route(at, dir2d::East, dst);
        for (Direction d : dirs)
            EXPECT_NE(d, dir2d::East) << "y=" << y;
    }
}

TEST(TurnTable, NonminimalOffersDetours)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    TurnTableRouting table(mesh, TurnSet::westFirst(), false);
    // Well west of the destination, a nonminimal packet may continue
    // west (a detour) as well as move productively.
    const auto dirs = table.route(mesh.node({4, 4}), std::nullopt,
                                  mesh.node({6, 4}));
    EXPECT_GT(dirs.size(), 1u);
    EXPECT_NE(std::find(dirs.begin(), dirs.end(), dir2d::West),
              dirs.end());
}

TEST(TurnTable, ConnectedForGoodTurnSets)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    for (const TurnSet &set :
         {TurnSet::westFirst(), TurnSet::northLast(),
          TurnSet::negativeFirst(2), TurnSet::dimensionOrder(2)}) {
        TurnTableRouting table(mesh, set, true);
        EXPECT_TRUE(table.isConnected()) << set.toString();
    }
}

TEST(TurnTable, DisconnectedWhenTurnsMissing)
{
    // Allowing only straight travel cannot connect nodes in
    // different rows and columns.
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    TurnSet straight_only(2);
    straight_only.allowAllStraight();
    TurnTableRouting table(mesh, straight_only, true);
    EXPECT_FALSE(table.isConnected());
    // And the routing function reports no way forward.
    EXPECT_TRUE(table.route(mesh.node({0, 0}), std::nullopt,
                            mesh.node({2, 2})).empty());
}

TEST(TurnTable, StraightLineStillRoutable)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    TurnSet straight_only(2);
    straight_only.allowAllStraight();
    TurnTableRouting table(mesh, straight_only, true);
    const auto dirs = table.route(mesh.node({0, 0}), std::nullopt,
                                  mesh.node({3, 0}));
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], dir2d::East);
}

TEST(TurnTable, NonminimalWalksTerminate)
{
    // Deadlock-free turn sets imply an acyclic channel ordering, so
    // even adversarial choices terminate within the channel count.
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    TurnTableRouting table(mesh, TurnSet::negativeFirst(2), false);
    Rng rng(13);
    const int bound = static_cast<int>(mesh.countChannels());
    for (int trial = 0; trial < 300; ++trial) {
        const NodeId s = static_cast<NodeId>(
            rng.nextBounded(mesh.numNodes()));
        const NodeId d = static_cast<NodeId>(
            rng.nextBounded(mesh.numNodes()));
        if (s == d)
            continue;
        NodeId at = s;
        std::optional<Direction> in;
        int hops = 0;
        while (at != d) {
            const auto dirs = table.route(at, in, d);
            ASSERT_FALSE(dirs.empty());
            const Direction take = dirs[rng.nextBounded(dirs.size())];
            at = *mesh.neighbor(at, take);
            in = take;
            ASSERT_LE(++hops, bound);
        }
    }
}

TEST(TurnTable, GeneratedNameMentionsProhibitions)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    TurnTableRouting table(mesh, TurnSet::westFirst(), true);
    EXPECT_NE(table.name().find("north->west"), std::string::npos);
    TurnTableRouting named(mesh, TurnSet::westFirst(), true, "custom");
    EXPECT_EQ(named.name(), "custom");
}

TEST(ReachabilityOracle, DestinationAlwaysReachableFromItself)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    ReachabilityOracle oracle(mesh, TurnSet::westFirst(), true);
    for (NodeId v = 0; v < mesh.numNodes(); ++v)
        EXPECT_TRUE(oracle.reachable(v, std::nullopt, v));
}

TEST(ReachabilityOracle, MinimalReachabilityRespectsGeometry)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    ReachabilityOracle oracle(mesh, TurnSet::westFirst(), true);
    // Minimal west-first: travelling north at the destination
    // column, the destination above remains reachable...
    EXPECT_TRUE(oracle.reachable(mesh.node({2, 1}), dir2d::North,
                                 mesh.node({2, 4})));
    // ...but a destination to the west does not (the turn north->
    // west is prohibited and minimal moves cannot recover).
    EXPECT_FALSE(oracle.reachable(mesh.node({4, 2}), dir2d::North,
                                  mesh.node({2, 4})));
}

} // namespace
} // namespace turnmodel
