/**
 * @file
 * Unit tests for negative-first routing on n-dimensional meshes
 * (Sections 3.3 and 4.1).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/routing/negative_first.hpp"
#include "core/turn_set.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

bool
offers(const std::vector<Direction> &dirs, Direction d)
{
    return std::find(dirs.begin(), dirs.end(), d) != dirs.end();
}

TEST(NegativeFirst, NegativePhaseAdaptive)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    NegativeFirstRouting routing(mesh);
    const auto dirs = routing.route(mesh.node({5, 6}), std::nullopt,
                                    mesh.node({2, 2}));
    EXPECT_EQ(dirs.size(), 2u);
    EXPECT_TRUE(offers(dirs, dir2d::West));
    EXPECT_TRUE(offers(dirs, dir2d::South));
}

TEST(NegativeFirst, PositivePhaseAdaptive)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    NegativeFirstRouting routing(mesh);
    const auto dirs = routing.route(mesh.node({2, 2}), std::nullopt,
                                    mesh.node({5, 6}));
    EXPECT_EQ(dirs.size(), 2u);
    EXPECT_TRUE(offers(dirs, dir2d::East));
    EXPECT_TRUE(offers(dirs, dir2d::North));
}

TEST(NegativeFirst, MixedPairsDoNegativeFirst)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    NegativeFirstRouting routing(mesh);
    // Needs west and north: west is the only phase-one move.
    const auto dirs = routing.route(mesh.node({5, 2}), std::nullopt,
                                    mesh.node({2, 6}));
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], dir2d::West);
}

TEST(NegativeFirst, NeverMixesPhases)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    NegativeFirstRouting routing(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            const auto dirs = routing.route(s, std::nullopt, d);
            ASSERT_FALSE(dirs.empty());
            const bool has_neg = std::any_of(
                dirs.begin(), dirs.end(),
                [](Direction x) { return !x.positive; });
            const bool has_pos = std::any_of(
                dirs.begin(), dirs.end(),
                [](Direction x) { return x.positive; });
            EXPECT_FALSE(has_neg && has_pos);
        }
    }
}

TEST(NegativeFirst, ThreeDimensionalPhases)
{
    NDMesh mesh(Shape{4, 4, 4});
    NegativeFirstRouting routing(mesh);
    // Needs -d0, -d2, +d1: phase one offers both negatives.
    const auto dirs = routing.route(mesh.node({3, 0, 3}), std::nullopt,
                                    mesh.node({1, 2, 1}));
    EXPECT_EQ(dirs.size(), 2u);
    EXPECT_TRUE(offers(dirs, Direction(0, false)));
    EXPECT_TRUE(offers(dirs, Direction(2, false)));
}

TEST(NegativeFirst, NeverUsesPositiveToNegativeTurns)
{
    NDMesh mesh(Shape{5, 5, 3});
    NegativeFirstRouting routing(mesh);
    const TurnSet set = TurnSet::negativeFirst(3);
    Rng rng(55);
    for (int trial = 0; trial < 2000; ++trial) {
        const NodeId s = static_cast<NodeId>(
            rng.nextBounded(mesh.numNodes()));
        const NodeId d = static_cast<NodeId>(
            rng.nextBounded(mesh.numNodes()));
        if (s == d)
            continue;
        NodeId at = s;
        std::optional<Direction> in;
        while (at != d) {
            const auto options = routing.route(at, in, d);
            const Direction take =
                options[rng.nextBounded(options.size())];
            if (in && in->dim != take.dim) {
                EXPECT_TRUE(set.isAllowed(Turn(*in, take)))
                    << Turn(*in, take).toString();
            }
            at = *mesh.neighbor(at, take);
            in = take;
        }
    }
}

TEST(NegativeFirst, WorksOn1D)
{
    NDMesh line(Shape{8});
    NegativeFirstRouting routing(line);
    const auto dirs = routing.route(2, std::nullopt, 6);
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_TRUE(dirs[0].positive);
}

} // namespace
} // namespace turnmodel
