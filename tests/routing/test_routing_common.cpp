/**
 * @file
 * Shared routing-contract tests: every algorithm, on every topology
 * it supports, must offer only existing hops, make progress from
 * every reachable state, and deliver every packet. These are the
 * invariants the simulator relies on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/routing/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

TEST(RoutingCommon, MinimalDirections2D)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const auto dirs = minimalDirections(mesh, mesh.node({1, 1}),
                                        mesh.node({3, 3}));
    ASSERT_EQ(dirs.size(), 2u);
    EXPECT_EQ(dirs[0], dir2d::East);
    EXPECT_EQ(dirs[1], dir2d::North);
}

TEST(RoutingCommon, MinimalDirectionsAtDestIsEmpty)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_TRUE(minimalDirections(mesh, 5, 5).empty());
}

TEST(RoutingCommon, IsProfitable)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const NodeId src = mesh.node({1, 1});
    const NodeId dst = mesh.node({3, 1});
    EXPECT_TRUE(isProfitable(mesh, src, dir2d::East, dst));
    EXPECT_FALSE(isProfitable(mesh, src, dir2d::West, dst));
    EXPECT_FALSE(isProfitable(mesh, src, dir2d::North, dst));
    // Hop off the edge is never profitable.
    EXPECT_FALSE(isProfitable(mesh, mesh.node({0, 0}), dir2d::West, dst));
}

/**
 * Walks every (src, dst) pair with a given algorithm, always taking
 * the candidate chosen by a seeded RNG, and checks delivery within
 * the channel-count bound (the livelock-freedom argument of
 * Section 2: strictly ordered channels bound the path length).
 */
void
walkAllPairs(const RoutingAlgorithm &routing, std::uint64_t seed)
{
    const Topology &topo = routing.topology();
    Rng rng(seed);
    const int bound = static_cast<int>(topo.countChannels());
    for (NodeId s = 0; s < topo.numNodes(); ++s) {
        for (NodeId d = 0; d < topo.numNodes(); ++d) {
            if (s == d)
                continue;
            NodeId at = s;
            std::optional<Direction> in;
            int hops = 0;
            while (at != d) {
                const auto options = routing.route(at, in, d);
                ASSERT_FALSE(options.empty())
                    << routing.name() << " stuck at " << at << " for "
                    << s << "->" << d;
                const Direction take =
                    options[rng.nextBounded(options.size())];
                const auto next = topo.neighbor(at, take);
                ASSERT_TRUE(next.has_value())
                    << routing.name() << " offered a missing hop";
                at = *next;
                in = take;
                ASSERT_LE(++hops, bound)
                    << routing.name() << " looped on " << s << "->" << d;
            }
            if (routing.isMinimal()) {
                EXPECT_EQ(hops, topo.distance(s, d))
                    << routing.name() << " non-minimal " << s << "->"
                    << d;
            }
        }
    }
}

class MeshAlgorithms : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MeshAlgorithms, DeliversEverywhereOn2DMesh)
{
    NDMesh mesh = NDMesh::mesh2D(5, 4);
    walkAllPairs(*makeRouting(GetParam(), mesh), 101);
}

TEST_P(MeshAlgorithms, DeliversEverywhereOnSquareMesh)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    walkAllPairs(*makeRouting(GetParam(), mesh), 202);
}

INSTANTIATE_TEST_SUITE_P(
    Mesh2D, MeshAlgorithms,
    ::testing::Values("xy", "west-first", "north-last", "negative-first",
                      "abonf", "abopl", "west-first-nonminimal",
                      "north-last-nonminimal",
                      "negative-first-nonminimal"));

class CubeAlgorithms : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CubeAlgorithms, DeliversEverywhereOnHypercube)
{
    Hypercube cube(5);
    walkAllPairs(*makeRouting(GetParam(), cube), 303);
}

INSTANTIATE_TEST_SUITE_P(Hypercube, CubeAlgorithms,
                         ::testing::Values("e-cube", "p-cube",
                                           "p-cube-nonminimal", "abonf",
                                           "abopl", "negative-first"));

class NDAlgorithms : public ::testing::TestWithParam<const char *>
{
};

TEST_P(NDAlgorithms, DeliversEverywhereOn3DMesh)
{
    NDMesh mesh(Shape{3, 4, 3});
    walkAllPairs(*makeRouting(GetParam(), mesh), 404);
}

INSTANTIATE_TEST_SUITE_P(Mesh3D, NDAlgorithms,
                         ::testing::Values("dimension-order",
                                           "negative-first", "abonf",
                                           "abopl"));

} // namespace
} // namespace turnmodel
