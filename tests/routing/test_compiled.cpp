/**
 * @file
 * Differential tests for CompiledRoutingTable: on every topology in
 * the sweep, every factory algorithm's compiled snapshot must agree
 * bit-for-bit with the live algorithm — through routeSet(), through
 * the raw lookup(), and against the legacy route() vector adapter —
 * for every (current, in_dir, dest) triple.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/routing/compiled.hpp"
#include "core/routing/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace turnmodel {
namespace {

void
expectBitForBitEqual(const RoutingAlgorithm &live,
                     const CompiledRoutingTable &table)
{
    const Topology &topo = live.topology();
    const int num_dirs = topo.numDirs();
    for (NodeId cur = 0; cur < topo.numNodes(); ++cur) {
        for (NodeId dest = 0; dest < topo.numNodes(); ++dest) {
            if (cur == dest)
                continue;
            // Injection state plus every arrival direction.
            for (int state = 0; state <= num_dirs; ++state) {
                const std::optional<Direction> in = state == 0
                    ? std::nullopt
                    : std::make_optional(Direction::fromId(
                          static_cast<DirId>(state - 1)));
                const DirectionSet want = live.routeSet(cur, in, dest);
                const DirectionSet got = table.routeSet(cur, in, dest);
                ASSERT_EQ(got, want)
                    << live.name() << " on " << topo.name() << " at "
                    << cur << " in-state " << state << " dest " << dest
                    << ": table " << toString(got) << " vs live "
                    << toString(want);
                ASSERT_EQ(table.lookup(cur, state, dest), want);
                // The legacy vector adapter sees the same decision in
                // ascending id order.
                ASSERT_EQ(DirectionSet::of(live.route(cur, in, dest)),
                          want);
            }
        }
    }
}

void
sweepTopology(const Topology &topo)
{
    for (const std::string &name : availableRoutingNames(topo)) {
        SCOPED_TRACE(topo.name() + " / " + name);
        const RoutingPtr live = makeRouting(name, topo);
        const CompiledRoutingTable table(*live);
        expectBitForBitEqual(*live, table);
    }
}

TEST(CompiledRouting, MatchesEveryAlgorithmOnMesh8x8)
{
    sweepTopology(NDMesh({8, 8}));
}

TEST(CompiledRouting, MatchesEveryAlgorithmOnTorus8x8)
{
    sweepTopology(KAryNCube(8, 2));
}

TEST(CompiledRouting, MatchesEveryAlgorithmOnSixCube)
{
    sweepTopology(Hypercube(6));
}

TEST(CompiledRouting, FactoryPrefixBuildsTable)
{
    const NDMesh mesh({4, 4});
    const RoutingPtr routing = makeRouting("compiled:odd-even", mesh);
    const auto *table =
        dynamic_cast<const CompiledRoutingTable *>(routing.get());
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->name(), "compiled:odd-even");
    EXPECT_TRUE(table->isMinimal());
    EXPECT_TRUE(table->isInputDependent());
    EXPECT_EQ(&table->topology(), static_cast<const Topology *>(&mesh));
    EXPECT_EQ(table->statesPerNode(), mesh.numDirs() + 1);
    EXPECT_EQ(table->entries(),
              static_cast<std::size_t>(16) * 5 * 16);
    EXPECT_EQ(table->sizeBytes(), table->entries() * 4);
    EXPECT_TRUE(table->allPairsRoutable());
}

TEST(CompiledRouting, InputIndependentSourcesCollapseToOneState)
{
    const NDMesh mesh({5, 5});
    const RoutingPtr xy = makeRouting("xy", mesh);
    ASSERT_FALSE(xy->isInputDependent());
    const CompiledRoutingTable table(*xy);
    EXPECT_EQ(table.statesPerNode(), 1);
    EXPECT_EQ(table.entries(), static_cast<std::size_t>(25) * 25);
    expectBitForBitEqual(*xy, table);
}

TEST(CompiledRouting, CompilingACompiledTableIsExact)
{
    const NDMesh mesh({4, 4});
    const RoutingPtr live = makeRouting("negative-first", mesh);
    const CompiledRoutingTable once(*live);
    // Snapshot through the base interface (a plain `twice(once)`
    // would be the copy constructor instead).
    const RoutingAlgorithm &as_algorithm = once;
    const CompiledRoutingTable twice(as_algorithm);
    EXPECT_EQ(twice.name(), "compiled:compiled:negative-first");
    expectBitForBitEqual(*live, twice);
}

TEST(CompiledRouting, SynthesizedSpecsCompileToo)
{
    const NDMesh mesh({4, 4});
    const RoutingPtr live = makeRouting(
        "compiled:synth:north->west,south->west", mesh);
    const auto *table =
        dynamic_cast<const CompiledRoutingTable *>(live.get());
    ASSERT_NE(table, nullptr);
    EXPECT_TRUE(table->allPairsRoutable());
}

} // namespace
} // namespace turnmodel
