/**
 * @file
 * Unit tests for dimension-order (xy / e-cube) routing.
 */

#include <gtest/gtest.h>

#include "core/routing/dimension_order.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

TEST(DimensionOrder, AlwaysSingleCandidate)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    DimensionOrderRouting routing(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(routing.route(s, std::nullopt, d).size(), 1u);
        }
    }
}

TEST(DimensionOrder, XFirstThenY)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    DimensionOrderRouting routing(mesh);
    const NodeId dst = mesh.node({4, 4});
    // x differs: move in x regardless of y.
    EXPECT_EQ(routing.route(mesh.node({1, 1}), std::nullopt, dst)[0],
              dir2d::East);
    EXPECT_EQ(routing.route(mesh.node({5, 1}), std::nullopt, dst)[0],
              dir2d::West);
    // x matches: move in y.
    EXPECT_EQ(routing.route(mesh.node({4, 1}), std::nullopt, dst)[0],
              dir2d::North);
    EXPECT_EQ(routing.route(mesh.node({4, 5}), std::nullopt, dst)[0],
              dir2d::South);
}

TEST(DimensionOrder, NameDependsOnTopology)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_EQ(DimensionOrderRouting(mesh).name(), "xy");
    NDMesh mesh3(Shape{4, 4, 4});
    EXPECT_EQ(DimensionOrderRouting(mesh3).name(), "dimension-order");
    Hypercube cube(4);
    EXPECT_EQ(DimensionOrderRouting(cube).name(), "e-cube");
}

TEST(DimensionOrder, IgnoresArrivalDirection)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    DimensionOrderRouting routing(mesh);
    EXPECT_FALSE(routing.isInputDependent());
    const NodeId s = mesh.node({2, 2});
    const NodeId d = mesh.node({4, 0});
    EXPECT_EQ(routing.route(s, std::nullopt, d),
              routing.route(s, dir2d::North, d));
}

TEST(DimensionOrder, ECubeOnHypercubeUsesLowestDimension)
{
    Hypercube cube(4);
    DimensionOrderRouting routing(cube);
    // From 0000 to 1010: dimension 1 first, then 3.
    const auto step = routing.route(0b0000, std::nullopt, 0b1010);
    ASSERT_EQ(step.size(), 1u);
    EXPECT_EQ(step[0].dim, 1);
    EXPECT_TRUE(step[0].positive);
}

TEST(DimensionOrder, IsMinimalFlag)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_TRUE(DimensionOrderRouting(mesh).isMinimal());
}

TEST(DimensionOrderDeathTest, RouteAtDestinationPanics)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    DimensionOrderRouting routing(mesh);
    EXPECT_DEATH({ (void)routing.route(3, std::nullopt, 3); },
                 "current == dest");
}

} // namespace
} // namespace turnmodel
