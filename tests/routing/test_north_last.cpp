/**
 * @file
 * Unit tests for north-last routing (Section 3.2).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/routing/north_last.hpp"
#include "core/turn_set.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

bool
offers(const std::vector<Direction> &dirs, Direction d)
{
    return std::find(dirs.begin(), dirs.end(), d) != dirs.end();
}

TEST(NorthLast, NorthOnlyWhenNothingElseRemains)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    NorthLastRouting routing(mesh);
    // North-east destination: east first, north withheld.
    const auto dirs = routing.route(mesh.node({2, 2}), std::nullopt,
                                    mesh.node({5, 6}));
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], dir2d::East);
}

TEST(NorthLast, FinalNorthRun)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    NorthLastRouting routing(mesh);
    const auto dirs = routing.route(mesh.node({5, 2}), std::nullopt,
                                    mesh.node({5, 6}));
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], dir2d::North);
}

TEST(NorthLast, SouthboundFullyAdaptive)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    NorthLastRouting routing(mesh);
    const auto dirs = routing.route(mesh.node({2, 6}), std::nullopt,
                                    mesh.node({5, 2}));
    EXPECT_EQ(dirs.size(), 2u);
    EXPECT_TRUE(offers(dirs, dir2d::East));
    EXPECT_TRUE(offers(dirs, dir2d::South));
}

TEST(NorthLast, WestAndSouthAdaptive)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    NorthLastRouting routing(mesh);
    const auto dirs = routing.route(mesh.node({5, 6}), std::nullopt,
                                    mesh.node({2, 2}));
    EXPECT_EQ(dirs.size(), 2u);
    EXPECT_TRUE(offers(dirs, dir2d::West));
    EXPECT_TRUE(offers(dirs, dir2d::South));
}

TEST(NorthLast, NeverOffersNorthWithOthers)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    NorthLastRouting routing(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            const auto dirs = routing.route(s, std::nullopt, d);
            ASSERT_FALSE(dirs.empty());
            if (offers(dirs, dir2d::North)) {
                EXPECT_EQ(dirs.size(), 1u);
            }
        }
    }
}

TEST(NorthLast, NeverUsesProhibitedTurns)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    NorthLastRouting routing(mesh);
    const TurnSet set = TurnSet::northLast();
    Rng rng(77);
    for (int trial = 0; trial < 2000; ++trial) {
        const NodeId s = static_cast<NodeId>(
            rng.nextBounded(mesh.numNodes()));
        const NodeId d = static_cast<NodeId>(
            rng.nextBounded(mesh.numNodes()));
        if (s == d)
            continue;
        NodeId at = s;
        std::optional<Direction> in;
        while (at != d) {
            const auto options = routing.route(at, in, d);
            const Direction take =
                options[rng.nextBounded(options.size())];
            if (in) {
                EXPECT_TRUE(set.isAllowed(Turn(*in, take)))
                    << Turn(*in, take).toString();
            }
            at = *mesh.neighbor(at, take);
            in = take;
        }
    }
}

TEST(NorthLast, OnlyProfitableHops)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    NorthLastRouting routing(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            for (Direction dir : routing.route(s, std::nullopt, d))
                EXPECT_TRUE(isProfitable(mesh, s, dir, d));
        }
    }
}

TEST(NorthLastDeathTest, Requires2D)
{
    NDMesh mesh(Shape{3, 3, 3});
    EXPECT_DEATH({ NorthLastRouting routing(mesh); }, "2D");
}

} // namespace
} // namespace turnmodel
