/**
 * @file
 * Cross-implementation equivalences: each phase-based algorithm
 * class must offer exactly the candidates of the reachability-
 * guarded turn-table routing built from its allowed-turn set — the
 * two executable readings of the same turn-model prohibitions. (The
 * turn-table form is derived from the turn set alone, so agreement
 * is strong evidence both transcribe the paper correctly.)
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

std::vector<Direction>
sorted(std::vector<Direction> v)
{
    std::sort(v.begin(), v.end());
    return v;
}

void
expectSameCandidates(const RoutingAlgorithm &a, const RoutingAlgorithm &b)
{
    const Topology &topo = a.topology();
    for (NodeId s = 0; s < topo.numNodes(); ++s) {
        for (NodeId d = 0; d < topo.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(sorted(a.route(s, std::nullopt, d)),
                      sorted(b.route(s, std::nullopt, d)))
                << a.name() << " vs " << b.name() << " " << s << "->"
                << d;
        }
    }
}

TEST(Equivalence, NorthLastMatchesItsTurnTable)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr direct = makeRouting("north-last", mesh);
    TurnTableRouting table(mesh, TurnSet::northLast(), true);
    expectSameCandidates(*direct, table);
}

TEST(Equivalence, NegativeFirstMatchesItsTurnTable2D)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr direct = makeRouting("negative-first", mesh);
    TurnTableRouting table(mesh, TurnSet::negativeFirst(2), true);
    expectSameCandidates(*direct, table);
}

TEST(Equivalence, NegativeFirstMatchesItsTurnTable3D)
{
    NDMesh mesh(Shape{3, 4, 3});
    RoutingPtr direct = makeRouting("negative-first", mesh);
    TurnTableRouting table(mesh, TurnSet::negativeFirst(3), true);
    expectSameCandidates(*direct, table);
}

TEST(Equivalence, AbonfMatchesItsTurnTable)
{
    NDMesh mesh(Shape{3, 3, 3});
    RoutingPtr direct = makeRouting("abonf", mesh);
    TurnTableRouting table(mesh, TurnSet::allButOneNegativeFirst(3),
                           true);
    expectSameCandidates(*direct, table);
}

TEST(Equivalence, AboplMatchesItsTurnTable)
{
    NDMesh mesh(Shape{3, 3, 3});
    RoutingPtr direct = makeRouting("abopl", mesh);
    TurnTableRouting table(mesh, TurnSet::allButOnePositiveLast(3),
                           true);
    expectSameCandidates(*direct, table);
}

TEST(Equivalence, PCubeMatchesNegativeFirstTurnTable)
{
    Hypercube cube(5);
    RoutingPtr direct = makeRouting("p-cube", cube);
    TurnTableRouting table(cube, TurnSet::negativeFirst(5), true);
    expectSameCandidates(*direct, table);
}

TEST(Equivalence, XyMatchesDimensionOrderTurnTable)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr direct = makeRouting("xy", mesh);
    TurnTableRouting table(mesh, TurnSet::dimensionOrder(2), true);
    expectSameCandidates(*direct, table);
}

TEST(Equivalence, TurnTableAgreementHoldsMidRoute)
{
    // Beyond injection states: walk routes driven by the class
    // implementation and verify the turn table agrees at every
    // in-transit state too (the class implementations ignore the
    // arrival direction; the turn table must reconstruct the same
    // candidate sets from the turn rules).
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr direct = makeRouting("negative-first", mesh);
    TurnTableRouting table(mesh, TurnSet::negativeFirst(2), true);
    for (NodeId s = 0; s < mesh.numNodes(); s += 3) {
        for (NodeId d = 0; d < mesh.numNodes(); d += 2) {
            if (s == d)
                continue;
            NodeId at = s;
            std::optional<Direction> in;
            while (at != d) {
                const auto from_class = direct->route(at, in, d);
                const auto from_table = table.route(at, in, d);
                EXPECT_EQ(sorted(from_class), sorted(from_table))
                    << s << "->" << d << " at " << at;
                const Direction take = from_class.front();
                at = *mesh.neighbor(at, take);
                in = take;
            }
        }
    }
}

} // namespace
} // namespace turnmodel
