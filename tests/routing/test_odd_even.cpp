/**
 * @file
 * Tests for the odd-even turn model extension (position-dependent
 * turn prohibitions).
 */

#include <gtest/gtest.h>

#include "core/adaptiveness.hpp"
#include "core/channel_dependency.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/odd_even.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

TEST(OddEven, RuleProhibitsByColumnParity)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    const TurnRule rule = oddEvenTurnRule(mesh);
    const NodeId even_col = mesh.node({2, 3});
    const NodeId odd_col = mesh.node({3, 3});
    // EN and ES prohibited only in even columns.
    EXPECT_FALSE(rule(even_col, Turn(dir2d::East, dir2d::North)));
    EXPECT_FALSE(rule(even_col, Turn(dir2d::East, dir2d::South)));
    EXPECT_TRUE(rule(odd_col, Turn(dir2d::East, dir2d::North)));
    EXPECT_TRUE(rule(odd_col, Turn(dir2d::East, dir2d::South)));
    // NW and SW prohibited only in odd columns.
    EXPECT_FALSE(rule(odd_col, Turn(dir2d::North, dir2d::West)));
    EXPECT_FALSE(rule(odd_col, Turn(dir2d::South, dir2d::West)));
    EXPECT_TRUE(rule(even_col, Turn(dir2d::North, dir2d::West)));
    EXPECT_TRUE(rule(even_col, Turn(dir2d::South, dir2d::West)));
    // Straight travel always allowed, reversals never.
    EXPECT_TRUE(rule(even_col, Turn(dir2d::East, dir2d::East)));
    EXPECT_FALSE(rule(even_col, Turn(dir2d::East, dir2d::West)));
}

TEST(OddEven, DeadlockFreeAcrossMeshShapes)
{
    for (auto [m, n] : {std::pair{4, 4}, std::pair{6, 6},
                        std::pair{8, 8}, std::pair{5, 3},
                        std::pair{3, 7}}) {
        NDMesh mesh = NDMesh::mesh2D(m, n);
        OddEvenRouting routing(mesh);
        EXPECT_TRUE(isDeadlockFree(routing)) << m << "x" << n;
    }
}

TEST(OddEven, DeliversEverywhere)
{
    NDMesh mesh = NDMesh::mesh2D(7, 5);
    OddEvenRouting routing(mesh);
    Rng rng(3);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            NodeId at = s;
            std::optional<Direction> in;
            int hops = 0;
            while (at != d) {
                const auto options = routing.route(at, in, d);
                ASSERT_FALSE(options.empty()) << s << "->" << d;
                const Direction take =
                    options[rng.nextBounded(options.size())];
                at = *mesh.neighbor(at, take);
                in = take;
                ASSERT_LE(++hops, mesh.distance(s, d));
            }
        }
    }
}

TEST(OddEven, SpreadsAdaptivenessMoreEvenlyThanWestFirst)
{
    // The design goal of the odd-even model: fewer pairs stuck with
    // a single path than under the original turn-model algorithms.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const auto odd_even =
        summarizeAdaptiveness(*makeRouting("odd-even", mesh));
    const auto west_first =
        summarizeAdaptiveness(*makeRouting("west-first", mesh));
    EXPECT_LT(odd_even.fraction_single, west_first.fraction_single);
    EXPECT_GT(odd_even.mean_ratio, 0.3);
}

TEST(OddEven, NonminimalVariantExists)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    RoutingPtr routing = makeRouting("odd-even-nonminimal", mesh);
    EXPECT_FALSE(routing->isMinimal());
    EXPECT_TRUE(isDeadlockFree(*routing));
}

TEST(OddEven, FactoryNames)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_EQ(makeRouting("odd-even", mesh)->name(), "odd-even");
}

TEST(OddEvenDeathTest, Requires2D)
{
    NDMesh mesh(Shape{3, 3, 3});
    EXPECT_DEATH({ OddEvenRouting routing(mesh); }, "2D");
}

} // namespace
} // namespace turnmodel
