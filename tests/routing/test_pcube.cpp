/**
 * @file
 * Unit tests for e-cube and p-cube routing on hypercubes (Section 5),
 * including the paper's worked 10-cube example.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/routing/negative_first.hpp"
#include "core/routing/pcube.hpp"
#include "topology/hypercube.hpp"

namespace turnmodel {
namespace {

TEST(ECube, LowestDifferingDimensionFirst)
{
    Hypercube cube(6);
    ECubeRouting routing(cube);
    const auto dirs = routing.route(0b000000, std::nullopt, 0b101010);
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0].dim, 1);
}

TEST(ECube, DirectionMatchesBit)
{
    Hypercube cube(4);
    ECubeRouting routing(cube);
    // Bit must go 1 -> 0: negative travel.
    const auto down = routing.route(0b0001, std::nullopt, 0b0000);
    ASSERT_EQ(down.size(), 1u);
    EXPECT_FALSE(down[0].positive);
    // Bit must go 0 -> 1: positive travel.
    const auto up = routing.route(0b0000, std::nullopt, 0b0001);
    ASSERT_EQ(up.size(), 1u);
    EXPECT_TRUE(up[0].positive);
}

TEST(PCube, PhaseOneClearsOnes)
{
    Hypercube cube(6);
    PCubeRouting routing(cube);
    // C = 110100, D = 001100: C & ~D = 110000 -> dims 4, 5.
    const auto dirs = routing.route(0b110100, std::nullopt, 0b001100);
    EXPECT_EQ(dirs.size(), 2u);
    for (Direction d : dirs) {
        EXPECT_FALSE(d.positive);
        EXPECT_TRUE(d.dim == 4 || d.dim == 5);
    }
}

TEST(PCube, PhaseTwoSetsZeros)
{
    Hypercube cube(6);
    PCubeRouting routing(cube);
    // C = 000100, D = 001101: C & ~D = 0 -> phase two, ~C & D =
    // 001001 -> dims 0 and 3.
    const auto dirs = routing.route(0b000100, std::nullopt, 0b001101);
    EXPECT_EQ(dirs.size(), 2u);
    for (Direction d : dirs)
        EXPECT_TRUE(d.positive);
}

TEST(PCube, MatchesNegativeFirstOnHypercube)
{
    // p-cube is the hypercube special case of negative-first; their
    // candidate sets must coincide.
    Hypercube cube(5);
    PCubeRouting pcube(cube);
    NegativeFirstRouting nf(cube);
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s == d)
                continue;
            auto a = pcube.route(s, std::nullopt, d);
            auto b = nf.route(s, std::nullopt, d);
            std::sort(a.begin(), a.end());
            std::sort(b.begin(), b.end());
            EXPECT_EQ(a, b) << s << "->" << d;
        }
    }
}

TEST(PCube, PaperWorkedExampleChoices)
{
    // Section 5 table: src 1011010100 -> dst 0010111001, following
    // the dimensions the paper takes: 2, 9, 6, 5, 0, 3.
    Hypercube cube(10);
    PCubeRouting routing(cube);
    const NodeId dst = 0b0010111001;
    struct Step
    {
        NodeId at;
        std::size_t choices;
        std::size_t nonminimal_extra;
        int dim_taken;
    };
    const Step steps[] = {
        {0b1011010100, 3, 2, 2},
        {0b1011010000, 2, 2, 9},
        {0b0011010000, 1, 2, 6},
        {0b0010010000, 3, 0, 5},
        {0b0010110000, 2, 0, 0},
        {0b0010110001, 1, 0, 3},
    };
    for (const Step &step : steps) {
        const auto ch = routing.choices(step.at, dst);
        EXPECT_EQ(ch.minimal_dims.size(), step.choices)
            << "at " << step.at;
        EXPECT_EQ(ch.nonminimal_dims.size(), step.nonminimal_extra)
            << "at " << step.at;
        // The dimension the paper takes must be on offer.
        EXPECT_NE(std::find(ch.minimal_dims.begin(),
                            ch.minimal_dims.end(), step.dim_taken),
                  ch.minimal_dims.end())
            << "at " << step.at;
    }
    // Following the paper's choices reaches the destination in 6 hops.
    NodeId at = steps[0].at;
    for (const Step &step : steps)
        at = cube.neighborAcross(at, step.dim_taken);
    EXPECT_EQ(at, dst);
}

TEST(PCube, NonminimalAddsPhaseOneOnly)
{
    Hypercube cube(6);
    PCubeRouting minimal(cube, true);
    PCubeRouting nonminimal(cube, false);
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s == d)
                continue;
            const auto base = minimal.route(s, std::nullopt, d);
            const auto extra = nonminimal.route(s, std::nullopt, d);
            EXPECT_GE(extra.size(), base.size());
            // Every minimal candidate survives.
            for (Direction dir : base) {
                EXPECT_NE(std::find(extra.begin(), extra.end(), dir),
                          extra.end());
            }
            // Extra candidates are all negative (1 -> 0) moves.
            for (Direction dir : extra) {
                if (std::find(base.begin(), base.end(), dir) ==
                    base.end()) {
                    EXPECT_FALSE(dir.positive);
                }
            }
        }
    }
}

TEST(PCube, NonminimalTerminates)
{
    // Even taking every nonminimal option greedily, popcount
    // decreases in phase one and rises toward D in phase two, so
    // routes are bounded by 2n hops.
    Hypercube cube(6);
    PCubeRouting routing(cube, false);
    for (NodeId s = 0; s < cube.numNodes(); s += 5) {
        for (NodeId d = 0; d < cube.numNodes(); d += 3) {
            if (s == d)
                continue;
            NodeId at = s;
            int hops = 0;
            while (at != d) {
                const auto dirs = routing.route(at, std::nullopt, d);
                ASSERT_FALSE(dirs.empty());
                // Worst case: always take the last candidate.
                at = *cube.neighbor(at, dirs.back());
                ASSERT_LE(++hops, 12);
            }
        }
    }
}

TEST(PCube, Names)
{
    Hypercube cube(4);
    EXPECT_EQ(PCubeRouting(cube, true).name(), "p-cube");
    EXPECT_EQ(PCubeRouting(cube, false).name(), "p-cube-nonminimal");
    EXPECT_EQ(ECubeRouting(cube).name(), "e-cube");
}

} // namespace
} // namespace turnmodel
