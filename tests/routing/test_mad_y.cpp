/**
 * @file
 * Tests for the mad-y fully adaptive algorithm (the turn model with
 * one extra virtual channel in y — the companion result [18] the
 * paper announces).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/adaptiveness.hpp"
#include "core/channel_dependency.hpp"
#include "core/cycle_analysis.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/mad_y.hpp"
#include "topology/virtual_channels.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

TEST(MadY, TurnSetBreaksEveryAbstractCycle)
{
    const TurnSet set = madYTurnSet();
    EXPECT_TRUE(breaksAllAbstractCycles(set, 3));
}

TEST(MadY, DeadlockFreeOnDoubleYMeshes)
{
    for (auto [m, n] : {std::pair{4, 4}, std::pair{6, 6},
                        std::pair{5, 3}}) {
        VirtualizedMesh mesh = VirtualizedMesh::doubleY(m, n);
        MadYRouting routing(mesh);
        EXPECT_TRUE(isDeadlockFree(routing)) << m << "x" << n;
    }
}

TEST(MadY, Connected)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(5, 5);
    MadYRouting routing(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_FALSE(routing.route(s, std::nullopt, d).empty());
        }
    }
}

/**
 * Full adaptiveness: at every reachable state the physical
 * projection of the offered virtual directions equals the full set
 * of profitable physical directions.
 */
TEST(MadY, FullyAdaptiveAtEveryReachableState)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(6, 6);
    NDMesh physical = NDMesh::mesh2D(6, 6);
    MadYRouting routing(mesh);
    Rng rng(7);
    for (int trial = 0; trial < 500; ++trial) {
        const NodeId s =
            static_cast<NodeId>(rng.nextBounded(mesh.numNodes()));
        const NodeId d =
            static_cast<NodeId>(rng.nextBounded(mesh.numNodes()));
        if (s == d)
            continue;
        NodeId at = s;
        std::optional<Direction> in;
        while (at != d) {
            const auto offers = routing.route(at, in, d);
            ASSERT_FALSE(offers.empty());
            std::set<DirId> projected;
            for (Direction dir : offers)
                projected.insert(mesh.physicalDirection(dir).id());
            std::set<DirId> want;
            for (Direction dir : minimalDirections(physical, at, d))
                want.insert(dir.id());
            EXPECT_EQ(projected, want)
                << "at " << at << " toward " << d;
            const Direction take =
                offers[rng.nextBounded(offers.size())];
            at = *mesh.neighbor(at, take);
            in = take;
        }
    }
}

TEST(MadY, MinimalRoutesHavePhysicalLength)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(6, 6);
    MadYRouting routing(mesh);
    Rng rng(9);
    for (int trial = 0; trial < 300; ++trial) {
        const NodeId s =
            static_cast<NodeId>(rng.nextBounded(mesh.numNodes()));
        const NodeId d =
            static_cast<NodeId>(rng.nextBounded(mesh.numNodes()));
        if (s == d)
            continue;
        NodeId at = s;
        std::optional<Direction> in;
        int hops = 0;
        while (at != d) {
            const auto offers = routing.route(at, in, d);
            const Direction take =
                offers[rng.nextBounded(offers.size())];
            at = *mesh.neighbor(at, take);
            in = take;
            ++hops;
        }
        EXPECT_EQ(hops, mesh.distance(s, d));
    }
}

TEST(MadY, NeverReturnsToASideAfterLeavingIt)
{
    // Once a packet uses E, N2, or S2 it must never use W, N1, or S1
    // again — the prohibition that breaks every cycle.
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(6, 6);
    MadYRouting routing(mesh);
    const auto in_a = [](Direction dir) {
        return (dir.dim == 0 && !dir.positive) || dir.dim == 1;
    };
    Rng rng(11);
    for (int trial = 0; trial < 500; ++trial) {
        const NodeId s =
            static_cast<NodeId>(rng.nextBounded(mesh.numNodes()));
        const NodeId d =
            static_cast<NodeId>(rng.nextBounded(mesh.numNodes()));
        if (s == d)
            continue;
        NodeId at = s;
        std::optional<Direction> in;
        bool left_a = false;
        while (at != d) {
            const auto offers = routing.route(at, in, d);
            const Direction take =
                offers[rng.nextBounded(offers.size())];
            if (left_a) {
                EXPECT_FALSE(in_a(take));
            }
            if (!in_a(take))
                left_a = true;
            at = *mesh.neighbor(at, take);
            in = take;
        }
    }
}

TEST(MadY, FactoryConstructs)
{
    VirtualizedMesh mesh = VirtualizedMesh::doubleY(4, 4);
    EXPECT_EQ(makeRouting("mad-y", mesh)->name(), "mad-y");
    EXPECT_EQ(makeRouting("mad-y-nonminimal", mesh)->name(),
              "mad-y-nonminimal");
    EXPECT_FALSE(makeRouting("mad-y-nonminimal", mesh)->isMinimal());
}

TEST(MadYDeathTest, RequiresDoubleYMesh)
{
    NDMesh plain = NDMesh::mesh2D(4, 4);
    EXPECT_EXIT({ (void)makeRouting("mad-y", plain); },
                ::testing::ExitedWithCode(1), "double-y");
    VirtualizedMesh wrong(Shape{4, 4}, {2, 1});
    EXPECT_DEATH({ MadYRouting routing(wrong); }, "double-y");
}

} // namespace
} // namespace turnmodel
