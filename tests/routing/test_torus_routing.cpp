/**
 * @file
 * Unit tests for the k-ary n-cube routing extensions (Section 4.2).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/channel_dependency.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/torus_adapters.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

TEST(WrapFirstHop, WraparoundOnlyOnFirstHop)
{
    KAryNCube torus(6, 2);
    RoutingPtr routing =
        makeRouting("wrap-first-hop:negative-first", torus);
    // Injected at the east edge with a west-edge destination: the
    // wraparound shortcut is available.
    const NodeId src = torus.node({5, 2});
    const NodeId dst = torus.node({0, 2});
    const auto first = routing->route(src, std::nullopt, dst);
    const bool offers_wrap = std::any_of(
        first.begin(), first.end(), [&](Direction d) {
            return torus.isWraparound(src, d);
        });
    EXPECT_TRUE(offers_wrap);
    // After any hop, wraparound hops are no longer offered from an
    // edge node unless the mesh route uses that channel... the
    // adapter never offers them: verify for an in-transit state.
    const auto later = routing->route(src, dir2d::East, dst);
    for (Direction d : later)
        EXPECT_FALSE(torus.isWraparound(src, d));
}

TEST(WrapFirstHop, DeliversEverywhere)
{
    KAryNCube torus(5, 2);
    RoutingPtr routing =
        makeRouting("wrap-first-hop:negative-first", torus);
    Rng rng(5);
    for (NodeId s = 0; s < torus.numNodes(); ++s) {
        for (NodeId d = 0; d < torus.numNodes(); ++d) {
            if (s == d)
                continue;
            NodeId at = s;
            std::optional<Direction> in;
            int hops = 0;
            while (at != d) {
                const auto dirs = routing->route(at, in, d);
                ASSERT_FALSE(dirs.empty()) << s << "->" << d;
                const Direction take =
                    dirs[rng.nextBounded(dirs.size())];
                at = *torus.neighbor(at, take);
                in = take;
                ASSERT_LE(++hops, 64);
            }
        }
    }
}

TEST(WrapFirstHop, DeadlockFree)
{
    KAryNCube torus(4, 2);
    EXPECT_TRUE(isDeadlockFree(
        *makeRouting("wrap-first-hop:negative-first", torus)));
    EXPECT_TRUE(isDeadlockFree(
        *makeRouting("wrap-first-hop:dimension-order", torus)));
}

TEST(WrapFirstHop, NameCombinesParts)
{
    KAryNCube torus(4, 2);
    EXPECT_EQ(makeRouting("wrap-first-hop:negative-first", torus)->name(),
              "negative-first+wrap-first-hop");
}

TEST(TorusNegativeFirst, OffersWraparoundShortcutInPhaseOne)
{
    KAryNCube torus(8, 2);
    TorusNegativeFirstRouting routing(torus);
    // From x=7 to x=1: around the top (1 + 1 hops) beats 6 mesh hops.
    const auto dirs = routing.route(torus.node({7, 3}), std::nullopt,
                                    torus.node({1, 3}));
    const bool offers_wrap = std::any_of(
        dirs.begin(), dirs.end(),
        [](Direction d) { return d == dir2d::East; });
    EXPECT_TRUE(offers_wrap);
    // The mesh-negative hop is also on offer.
    EXPECT_NE(std::find(dirs.begin(), dirs.end(), dir2d::West),
              dirs.end());
}

TEST(TorusNegativeFirst, NoShortcutWhenMeshIsCloser)
{
    KAryNCube torus(8, 2);
    TorusNegativeFirstRouting routing(torus);
    // From x=7 to x=5: two mesh hops, the wraparound would cost 1+5.
    const auto dirs = routing.route(torus.node({7, 3}), std::nullopt,
                                    torus.node({5, 3}));
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], dir2d::West);
}

TEST(TorusNegativeFirst, PhaseTwoWraparoundOnlyToEdgeDestination)
{
    KAryNCube torus(8, 2);
    TorusNegativeFirstRouting routing(torus);
    // From x=0 to x=7: the -x wraparound lands exactly on the
    // destination column.
    const auto dirs = routing.route(torus.node({0, 3}), std::nullopt,
                                    torus.node({7, 3}));
    EXPECT_NE(std::find(dirs.begin(), dirs.end(), dir2d::West),
              dirs.end());
    // From x=0 to x=6: overshooting to 7 would strand the packet.
    const auto dirs2 = routing.route(torus.node({0, 3}), std::nullopt,
                                     torus.node({6, 3}));
    EXPECT_EQ(std::find(dirs2.begin(), dirs2.end(), dir2d::West),
              dirs2.end());
}

TEST(TorusNegativeFirst, DeliversEverywhere)
{
    KAryNCube torus(5, 2);
    TorusNegativeFirstRouting routing(torus);
    Rng rng(17);
    for (NodeId s = 0; s < torus.numNodes(); ++s) {
        for (NodeId d = 0; d < torus.numNodes(); ++d) {
            if (s == d)
                continue;
            NodeId at = s;
            std::optional<Direction> in;
            int hops = 0;
            while (at != d) {
                const auto dirs = routing.route(at, in, d);
                ASSERT_FALSE(dirs.empty()) << s << "->" << d;
                const Direction take =
                    dirs[rng.nextBounded(dirs.size())];
                at = *torus.neighbor(at, take);
                in = take;
                ASSERT_LE(++hops, 64);
            }
        }
    }
}

TEST(TorusNegativeFirst, DeadlockFreeOnSmallTori)
{
    for (int k : {3, 4, 5}) {
        KAryNCube torus(k, 2);
        EXPECT_TRUE(isDeadlockFree(TorusNegativeFirstRouting(torus)))
            << k << "-ary";
    }
}

TEST(TorusNegativeFirst, StrictlyNonminimalFlag)
{
    KAryNCube torus(4, 2);
    EXPECT_FALSE(TorusNegativeFirstRouting(torus).isMinimal());
    RoutingPtr wrap = makeRouting("wrap-first-hop:negative-first", torus);
    EXPECT_FALSE(wrap->isMinimal());
}

TEST(TorusNegativeFirstDeathTest, RequiresKGreaterTwo)
{
    KAryNCube cube(2, 4);
    EXPECT_DEATH({ TorusNegativeFirstRouting routing(cube); }, "k > 2");
}

} // namespace
} // namespace turnmodel
