/**
 * @file
 * Unit tests for the all-but-one-negative-first and all-but-one-
 * positive-last algorithms (Section 4.1).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/routing/all_but_one.hpp"
#include "core/routing/north_last.hpp"
#include "core/routing/west_first.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace turnmodel {
namespace {

std::vector<Direction>
sorted(std::vector<Direction> v)
{
    std::sort(v.begin(), v.end());
    return v;
}

TEST(AllButOne, AbonfSpecializesToWestFirstIn2D)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    AllButOneNegativeFirstRouting abonf(mesh);
    WestFirstRouting wf(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(sorted(abonf.route(s, std::nullopt, d)),
                      sorted(wf.route(s, std::nullopt, d)))
                << s << "->" << d;
        }
    }
}

TEST(AllButOne, AboplSpecializesToNorthLastIn2D)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    AllButOnePositiveLastRouting abopl(mesh);
    NorthLastRouting nl(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(sorted(abopl.route(s, std::nullopt, d)),
                      sorted(nl.route(s, std::nullopt, d)))
                << s << "->" << d;
        }
    }
}

TEST(AllButOne, AbonfPhaseOneExcludesLastDimension)
{
    NDMesh mesh(Shape{4, 4, 4});
    AllButOneNegativeFirstRouting routing(mesh);
    // Needs -d0, -d2 (last dim): phase one is only -d0.
    const auto dirs = routing.route(mesh.node({3, 1, 3}), std::nullopt,
                                    mesh.node({1, 1, 1}));
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], Direction(0, false));
}

TEST(AllButOne, AbonfPhaseTwoIncludesNegativeLastDim)
{
    NDMesh mesh(Shape{4, 4, 4});
    AllButOneNegativeFirstRouting routing(mesh);
    // Only +d1 and -d2 remain: both offered together in phase two.
    const auto dirs = routing.route(mesh.node({1, 1, 3}), std::nullopt,
                                    mesh.node({1, 3, 1}));
    EXPECT_EQ(dirs.size(), 2u);
    EXPECT_NE(std::find(dirs.begin(), dirs.end(), Direction(1, true)),
              dirs.end());
    EXPECT_NE(std::find(dirs.begin(), dirs.end(), Direction(2, false)),
              dirs.end());
}

TEST(AllButOne, AboplPhaseOneIncludesPositiveDimZero)
{
    NDMesh mesh(Shape{4, 4, 4});
    AllButOnePositiveLastRouting routing(mesh);
    // Needs +d0 and -d1: both are phase-one directions.
    const auto dirs = routing.route(mesh.node({1, 3, 1}), std::nullopt,
                                    mesh.node({3, 1, 1}));
    EXPECT_EQ(dirs.size(), 2u);
    EXPECT_NE(std::find(dirs.begin(), dirs.end(), Direction(0, true)),
              dirs.end());
    EXPECT_NE(std::find(dirs.begin(), dirs.end(), Direction(1, false)),
              dirs.end());
}

TEST(AllButOne, AboplPhaseTwoAdaptiveAmongPositives)
{
    NDMesh mesh(Shape{4, 4, 4});
    AllButOnePositiveLastRouting routing(mesh);
    // Only +d1 and +d2 remain: adaptive phase two.
    const auto dirs = routing.route(mesh.node({2, 1, 1}), std::nullopt,
                                    mesh.node({2, 3, 3}));
    EXPECT_EQ(dirs.size(), 2u);
}

TEST(AllButOne, WorkOnHypercubes)
{
    Hypercube cube(4);
    AllButOneNegativeFirstRouting abonf(cube);
    AllButOnePositiveLastRouting abopl(cube);
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_FALSE(abonf.route(s, std::nullopt, d).empty());
            EXPECT_FALSE(abopl.route(s, std::nullopt, d).empty());
        }
    }
}

TEST(AllButOne, OnlyProfitableHops)
{
    NDMesh mesh(Shape{3, 3, 3});
    AllButOneNegativeFirstRouting abonf(mesh);
    AllButOnePositiveLastRouting abopl(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            for (Direction dir : abonf.route(s, std::nullopt, d))
                EXPECT_TRUE(isProfitable(mesh, s, dir, d));
            for (Direction dir : abopl.route(s, std::nullopt, d))
                EXPECT_TRUE(isProfitable(mesh, s, dir, d));
        }
    }
}

TEST(AllButOneDeathTest, RequireTwoDimensions)
{
    NDMesh line(Shape{8});
    EXPECT_DEATH({ AllButOneNegativeFirstRouting routing(line); },
                 "two dimensions");
    EXPECT_DEATH({ AllButOnePositiveLastRouting routing(line); },
                 "two dimensions");
}

} // namespace
} // namespace turnmodel
