/**
 * @file
 * Unit tests for name-based routing construction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "core/routing/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace turnmodel {
namespace {

TEST(Factory, MeshNames)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_EQ(makeRouting("xy", mesh)->name(), "xy");
    EXPECT_EQ(makeRouting("west-first", mesh)->name(), "west-first");
    EXPECT_EQ(makeRouting("north-last", mesh)->name(), "north-last");
    EXPECT_EQ(makeRouting("negative-first", mesh)->name(),
              "negative-first");
    EXPECT_EQ(makeRouting("abonf", mesh)->name(), "abonf");
    EXPECT_EQ(makeRouting("abopl", mesh)->name(), "abopl");
}

TEST(Factory, AliasesResolve)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_EQ(makeRouting("dimension-order", mesh)->name(), "xy");
    Hypercube cube(4);
    EXPECT_EQ(makeRouting("xy", cube)->name(), "e-cube");
}

TEST(Factory, HypercubeNames)
{
    Hypercube cube(4);
    EXPECT_EQ(makeRouting("e-cube", cube)->name(), "e-cube");
    EXPECT_EQ(makeRouting("p-cube", cube)->name(), "p-cube");
    EXPECT_EQ(makeRouting("p-cube-nonminimal", cube)->name(),
              "p-cube-nonminimal");
}

TEST(Factory, NonminimalVariants)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    for (const char *name :
         {"west-first-nonminimal", "north-last-nonminimal",
          "negative-first-nonminimal"}) {
        RoutingPtr routing = makeRouting(name, mesh);
        EXPECT_EQ(routing->name(), name);
        EXPECT_FALSE(routing->isMinimal());
    }
}

TEST(Factory, TorusNames)
{
    KAryNCube torus(4, 2);
    EXPECT_EQ(makeRouting("torus-negative-first", torus)->name(),
              "torus-negative-first");
    EXPECT_EQ(makeRouting("wrap-first-hop:xy", torus)->name(),
              "xy+wrap-first-hop");
}

TEST(Factory, AvailableNamesAreConstructible)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    for (const std::string &name : availableRoutingNames(mesh))
        EXPECT_NE(makeRouting(name, mesh), nullptr) << name;
    Hypercube cube(4);
    for (const std::string &name : availableRoutingNames(cube))
        EXPECT_NE(makeRouting(name, cube), nullptr) << name;
    KAryNCube torus(4, 2);
    for (const std::string &name : availableRoutingNames(torus))
        EXPECT_NE(makeRouting(name, torus), nullptr) << name;
}

TEST(Factory, HypercubeListsPCube)
{
    Hypercube cube(4);
    const auto names = availableRoutingNames(cube);
    EXPECT_NE(std::find(names.begin(), names.end(), "p-cube"),
              names.end());
    // A plain mesh does not offer p-cube.
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const auto mesh_names = availableRoutingNames(mesh);
    EXPECT_EQ(std::find(mesh_names.begin(), mesh_names.end(), "p-cube"),
              mesh_names.end());
}

TEST(Factory, SynthesizedSpecNamesBuildTurnTableRoutings)
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    RoutingPtr wf = makeRouting("synth:north->west,south->west", mesh);
    ASSERT_NE(wf, nullptr);
    EXPECT_EQ(wf->name(), "synth:north->west,south->west");
    // The spec above is west-first's prohibition set: identical
    // routing decisions.
    RoutingPtr hand = makeRouting("west-first", mesh);
    const auto dir_ids = [](std::vector<Direction> dirs) {
        std::vector<int> ids;
        for (Direction d : dirs)
            ids.push_back(d.id());
        std::sort(ids.begin(), ids.end());
        return ids;
    };
    for (NodeId src = 0; src < mesh.numNodes(); ++src) {
        for (NodeId dst = 0; dst < mesh.numNodes(); ++dst) {
            if (src == dst)
                continue;
            EXPECT_EQ(dir_ids(wf->route(src, std::nullopt, dst)),
                      dir_ids(hand->route(src, std::nullopt, dst)));
        }
    }
}

TEST(Factory, SynthesizedNonMinimalVariantIsSelectable)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    RoutingPtr routing = makeRouting(
        "synth-nonminimal:north->west,south->west", mesh);
    ASSERT_NE(routing, nullptr);
    EXPECT_EQ(routing->name(),
              "synth-nonminimal:north->west,south->west");
}

TEST(FactoryDeathTest, SynthesizedSpecMustParse)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_EXIT({ (void)makeRouting("synth:north->south", mesh); },
                ::testing::ExitedWithCode(1), "spec");
    EXPECT_EXIT({ (void)makeRouting("synth:", mesh); },
                ::testing::ExitedWithCode(1), "spec");
}

TEST(FactoryDeathTest, UnknownNameIsFatal)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_EXIT({ (void)makeRouting("warp-speed", mesh); },
                ::testing::ExitedWithCode(1), "unknown routing");
}

TEST(FactoryDeathTest, PCubeRequiresHypercube)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_EXIT({ (void)makeRouting("p-cube", mesh); },
                ::testing::ExitedWithCode(1), "hypercube");
}

TEST(FactoryDeathTest, TorusAlgorithmsRequireTorus)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_EXIT({ (void)makeRouting("torus-negative-first", mesh); },
                ::testing::ExitedWithCode(1), "k-ary");
}

} // namespace
} // namespace turnmodel
