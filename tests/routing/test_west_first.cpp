/**
 * @file
 * Unit tests for west-first routing (Section 3.1).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/routing/west_first.hpp"
#include "core/turn_set.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace turnmodel {
namespace {

bool
offers(const std::vector<Direction> &dirs, Direction d)
{
    return std::find(dirs.begin(), dirs.end(), d) != dirs.end();
}

TEST(WestFirst, WestboundIsForcedWest)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    WestFirstRouting routing(mesh);
    // Destination to the south-west: only west until the column
    // matches.
    const auto dirs = routing.route(mesh.node({5, 5}), std::nullopt,
                                    mesh.node({2, 1}));
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], dir2d::West);
}

TEST(WestFirst, EastboundIsFullyAdaptive)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    WestFirstRouting routing(mesh);
    const auto dirs = routing.route(mesh.node({1, 5}), std::nullopt,
                                    mesh.node({4, 1}));
    EXPECT_EQ(dirs.size(), 2u);
    EXPECT_TRUE(offers(dirs, dir2d::East));
    EXPECT_TRUE(offers(dirs, dir2d::South));
}

TEST(WestFirst, ThreeWayAdaptiveNever)
{
    // At most two productive directions exist for a 2D minimal
    // route; the set is never empty and never contains west together
    // with others.
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    WestFirstRouting routing(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            const auto dirs = routing.route(s, std::nullopt, d);
            ASSERT_FALSE(dirs.empty());
            EXPECT_LE(dirs.size(), 2u);
            if (offers(dirs, dir2d::West)) {
                EXPECT_EQ(dirs.size(), 1u);
            }
        }
    }
}

TEST(WestFirst, OnlyProfitableHops)
{
    NDMesh mesh = NDMesh::mesh2D(6, 6);
    WestFirstRouting routing(mesh);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            for (Direction dir : routing.route(s, std::nullopt, d))
                EXPECT_TRUE(isProfitable(mesh, s, dir, d));
        }
    }
}

TEST(WestFirst, NeverUsesProhibitedTurns)
{
    // Walk random routes and verify no turn into west ever occurs
    // after a non-west hop — the defining prohibition (Figure 5a).
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    WestFirstRouting routing(mesh);
    const TurnSet set = TurnSet::westFirst();
    Rng rng(99);
    for (int trial = 0; trial < 2000; ++trial) {
        const NodeId s = static_cast<NodeId>(
            rng.nextBounded(mesh.numNodes()));
        const NodeId d = static_cast<NodeId>(
            rng.nextBounded(mesh.numNodes()));
        if (s == d)
            continue;
        NodeId at = s;
        std::optional<Direction> in;
        while (at != d) {
            const auto options = routing.route(at, in, d);
            const Direction take =
                options[rng.nextBounded(options.size())];
            if (in) {
                EXPECT_TRUE(set.isAllowed(Turn(*in, take)))
                    << Turn(*in, take).toString();
            }
            at = *mesh.neighbor(at, take);
            in = take;
        }
    }
}

TEST(WestFirst, PureWestRoute)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    WestFirstRouting routing(mesh);
    NodeId at = mesh.node({7, 3});
    const NodeId dst = mesh.node({0, 3});
    int hops = 0;
    while (at != dst) {
        const auto dirs = routing.route(at, std::nullopt, dst);
        ASSERT_EQ(dirs.size(), 1u);
        EXPECT_EQ(dirs[0], dir2d::West);
        at = *mesh.neighbor(at, dirs[0]);
        ++hops;
    }
    EXPECT_EQ(hops, 7);
}

TEST(WestFirstDeathTest, Requires2D)
{
    NDMesh mesh(Shape{4, 4, 4});
    EXPECT_DEATH({ WestFirstRouting routing(mesh); }, "2D");
}

} // namespace
} // namespace turnmodel
