/**
 * @file
 * Unit tests for the workload generator: the paper's bimodal
 * 10-or-200-flit packets and Poisson message arrivals.
 */

#include <gtest/gtest.h>

#include "traffic/workload.hpp"

namespace turnmodel {
namespace {

TEST(PacketLengthDist, PaperBimodalMean)
{
    const auto dist = PacketLengthDist::paperBimodal();
    EXPECT_DOUBLE_EQ(dist.mean(), 105.0);
}

TEST(PacketLengthDist, PaperBimodalSamples)
{
    const auto dist = PacketLengthDist::paperBimodal();
    Rng rng(1);
    int shorts = 0, longs = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        const auto len = dist.sample(rng);
        ASSERT_TRUE(len == 10 || len == 200);
        (len == 10 ? shorts : longs)++;
    }
    EXPECT_NEAR(shorts, kDraws / 2, kDraws * 0.02);
    EXPECT_NEAR(longs, kDraws / 2, kDraws * 0.02);
}

TEST(PacketLengthDist, Fixed)
{
    const auto dist = PacketLengthDist::fixed(32);
    EXPECT_DOUBLE_EQ(dist.mean(), 32.0);
    Rng rng(2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(dist.sample(rng), 32u);
}

TEST(PacketLengthDist, WeightedMean)
{
    const PacketLengthDist dist({10, 20, 30}, {1.0, 2.0, 1.0});
    EXPECT_DOUBLE_EQ(dist.mean(), 20.0);
}

TEST(PacketLengthDist, WeightedProportions)
{
    const PacketLengthDist dist({1, 2}, {3.0, 1.0});
    Rng rng(3);
    int ones = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        if (dist.sample(rng) == 1)
            ++ones;
    }
    EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.75, 0.01);
}

TEST(PacketLengthDist, ToString)
{
    EXPECT_EQ(PacketLengthDist::paperBimodal().toString(),
              "{10,200} flits");
}

TEST(PacketLengthDistDeathTest, RejectsBadSpecs)
{
    EXPECT_DEATH({ PacketLengthDist dist({}, {}); }, "empty");
    EXPECT_DEATH({ PacketLengthDist dist({1}, {1.0, 2.0}); }, "arity");
    EXPECT_DEATH({ PacketLengthDist dist({0}, {1.0}); }, "positive");
    EXPECT_DEATH({ PacketLengthDist dist({1}, {0.0}); },
                 "positive value");
}

TEST(ArrivalProcess, AchievesConfiguredRate)
{
    // rate 0.2 flits/cycle at mean length 105 flits: about one
    // message per 525 cycles.
    ArrivalProcess proc(0.2, 105.0, Rng(7));
    int messages = 0;
    const double horizon = 500000.0;
    for (double now = 0.0; now < horizon; now += 1.0) {
        while (proc.due(now)) {
            proc.advance();
            ++messages;
        }
    }
    const double expected = horizon * 0.2 / 105.0;
    EXPECT_NEAR(messages, expected, expected * 0.05);
}

TEST(ArrivalProcess, InterarrivalsVary)
{
    // Exponential arrivals: successive gaps should not be constant.
    ArrivalProcess proc(0.5, 10.0, Rng(8));
    std::vector<double> gap_signature;
    double last_count_change = 0.0;
    int messages = 0;
    for (double now = 0.0; now < 2000.0 && messages < 20; now += 1.0) {
        while (proc.due(now)) {
            proc.advance();
            gap_signature.push_back(now - last_count_change);
            last_count_change = now;
            ++messages;
        }
    }
    ASSERT_GE(gap_signature.size(), 5u);
    bool all_equal = true;
    for (std::size_t i = 1; i < gap_signature.size(); ++i)
        all_equal = all_equal && gap_signature[i] == gap_signature[0];
    EXPECT_FALSE(all_equal);
}

TEST(ArrivalProcessDeathTest, RejectsBadRates)
{
    EXPECT_DEATH({ ArrivalProcess proc(0.0, 10.0, Rng(1)); },
                 "positive");
    EXPECT_DEATH({ ArrivalProcess proc(0.1, 0.0, Rng(1)); }, "positive");
}

} // namespace
} // namespace turnmodel
