/**
 * @file
 * Unit tests for the binary injection trace (traffic/trace.hpp):
 * byte-exact save/load round trips and rejection of malformed
 * streams (bad magic, truncation, non-chronological records).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "traffic/trace.hpp"

namespace turnmodel {
namespace {

InjectionTrace
sampleTrace()
{
    InjectionTrace trace;
    trace.append({0, 3, 9, 10});
    trace.append({0, 7, 2, 200});
    trace.append({4, 0, 15, 10});
    trace.append({4, 3, 1, 10});
    trace.append({1000000000ULL, 63, 0, 200});
    return trace;
}

std::string
serialized(const InjectionTrace &trace)
{
    std::ostringstream os;
    EXPECT_TRUE(trace.save(os));
    return os.str();
}

TEST(InjectionTrace, RoundTripPreservesRecords)
{
    const InjectionTrace trace = sampleTrace();
    std::istringstream is(serialized(trace));
    InjectionTrace loaded;
    ASSERT_TRUE(loaded.load(is));
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded.records()[i].cycle, trace.records()[i].cycle);
        EXPECT_EQ(loaded.records()[i].src, trace.records()[i].src);
        EXPECT_EQ(loaded.records()[i].dest, trace.records()[i].dest);
        EXPECT_EQ(loaded.records()[i].length,
                  trace.records()[i].length);
    }
    // Re-serializing reproduces the stream byte for byte — the
    // guarantee tools/validate_trace_format.py checks on disk.
    EXPECT_EQ(serialized(loaded), serialized(trace));
}

TEST(InjectionTrace, EmptyTraceRoundTrips)
{
    const InjectionTrace empty;
    const std::string bytes = serialized(empty);
    // Magic plus a zero count, nothing else.
    EXPECT_EQ(bytes.size(), 16u);
    std::istringstream is(bytes);
    InjectionTrace loaded;
    ASSERT_TRUE(loaded.load(is));
    EXPECT_TRUE(loaded.empty());
}

TEST(InjectionTrace, LoadRejectsBadMagic)
{
    std::string bytes = serialized(sampleTrace());
    bytes[0] = 'X';
    std::istringstream is(bytes);
    InjectionTrace loaded;
    EXPECT_FALSE(loaded.load(is));
    EXPECT_TRUE(loaded.empty());
}

TEST(InjectionTrace, LoadRejectsTruncation)
{
    const std::string bytes = serialized(sampleTrace());
    // Clip mid-record and mid-header.
    for (const std::size_t cut : {bytes.size() - 1, std::size_t{30},
                                  std::size_t{10}}) {
        std::istringstream is(bytes.substr(0, cut));
        InjectionTrace loaded;
        EXPECT_FALSE(loaded.load(is)) << "cut at " << cut;
        EXPECT_TRUE(loaded.empty());
    }
}

TEST(InjectionTrace, LoadRejectsNonChronologicalRecords)
{
    InjectionTrace trace;
    trace.append({10, 0, 1, 5});
    trace.append({10, 1, 2, 5});
    std::string bytes = serialized(trace);
    // Rewrite the second record's cycle (offset 16 + 20) to precede
    // the first.
    bytes[16 + 20] = 1;
    std::istringstream is(bytes);
    InjectionTrace loaded;
    EXPECT_FALSE(loaded.load(is));
    EXPECT_TRUE(loaded.empty());
}

TEST(InjectionTrace, LoadReplacesPriorContents)
{
    InjectionTrace loaded;
    loaded.append({1, 2, 3, 4});
    std::istringstream is(serialized(sampleTrace()));
    ASSERT_TRUE(loaded.load(is));
    EXPECT_EQ(loaded.size(), 5u);
    EXPECT_EQ(loaded.records()[0].src, 3u);
}

} // namespace
} // namespace turnmodel
