/**
 * @file
 * Unit tests for the traffic patterns of Section 6 and the extension
 * patterns, including the paper's average path lengths: 10.61 hops
 * for uniform and 11.34 for transpose on the 16x16 mesh; 4.01 for
 * uniform and 4.27 for reverse-flip on the 8-cube.
 */

#include <gtest/gtest.h>

#include <set>

#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"
#include "traffic/hotspot.hpp"
#include "traffic/pattern.hpp"
#include "traffic/permutation.hpp"
#include "traffic/uniform.hpp"

namespace turnmodel {
namespace {

TEST(Uniform, NeverSelfAndInRange)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    UniformTraffic uniform(mesh);
    Rng rng(1);
    for (NodeId src = 0; src < mesh.numNodes(); ++src) {
        for (int i = 0; i < 100; ++i) {
            const auto d = uniform.destination(src, rng);
            ASSERT_TRUE(d.has_value());
            EXPECT_NE(*d, src);
            EXPECT_LT(*d, mesh.numNodes());
        }
    }
}

TEST(Uniform, CoversAllDestinations)
{
    NDMesh mesh = NDMesh::mesh2D(3, 3);
    UniformTraffic uniform(mesh);
    Rng rng(2);
    std::set<NodeId> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(*uniform.destination(0, rng));
    EXPECT_EQ(seen.size(), mesh.numNodes() - 1);
}

TEST(Uniform, RoughlyEqualProbabilities)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    UniformTraffic uniform(mesh);
    Rng rng(3);
    std::vector<int> counts(mesh.numNodes(), 0);
    constexpr int kDraws = 150000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[*uniform.destination(5, rng)];
    for (NodeId v = 0; v < mesh.numNodes(); ++v) {
        if (v == 5) {
            EXPECT_EQ(counts[v], 0);
            continue;
        }
        const double expected = kDraws / 15.0;
        EXPECT_NEAR(counts[v], expected, expected * 0.1);
    }
}

TEST(MeshTranspose, AntiDiagonalReflection)
{
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    MeshTransposeTraffic transpose(mesh);
    EXPECT_EQ(transpose.map(mesh.node({0, 0})), mesh.node({15, 15}));
    EXPECT_EQ(transpose.map(mesh.node({3, 5})), mesh.node({10, 12}));
    EXPECT_EQ(transpose.map(mesh.node({15, 0})), mesh.node({15, 0}));
}

TEST(MeshTranspose, IsInvolution)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    MeshTransposeTraffic transpose(mesh);
    for (NodeId v = 0; v < mesh.numNodes(); ++v)
        EXPECT_EQ(transpose.map(transpose.map(v)), v);
}

TEST(MeshTranspose, IsBijective)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    EXPECT_TRUE(MeshTransposeTraffic(mesh).isBijective());
}

TEST(MeshTranspose, AntiDiagonalNodesSendNothing)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    MeshTransposeTraffic transpose(mesh);
    Rng rng(1);
    int silent = 0;
    for (NodeId v = 0; v < mesh.numNodes(); ++v) {
        if (!transpose.destination(v, rng))
            ++silent;
    }
    EXPECT_EQ(silent, 8);
}

TEST(MeshTranspose, DeltasShareSign)
{
    // The property that makes negative-first fully adaptive on this
    // pattern (see Figure 14).
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    MeshTransposeTraffic transpose(mesh);
    for (NodeId v = 0; v < mesh.numNodes(); ++v) {
        const Coords s = mesh.coords(v);
        const Coords d = mesh.coords(transpose.map(v));
        const int dx = d[0] - s[0];
        const int dy = d[1] - s[1];
        EXPECT_GE(dx * dy, 0) << "node " << v;
    }
}

TEST(HypercubeTranspose, MatchesPaperFormula)
{
    // (x0..x7) -> (~x4, x5, x6, x7, ~x0, x1, x2, x3).
    Hypercube cube(8);
    HypercubeTransposeTraffic transpose(cube);
    for (NodeId v = 0; v < cube.numNodes(); v += 3) {
        const NodeId d = transpose.map(v);
        for (int i = 0; i < 8; ++i) {
            const bool src_bit = (v >> ((i + 4) % 8)) & 1;
            const bool expect = (i % 4 == 0) ? !src_bit : src_bit;
            EXPECT_EQ(((d >> i) & 1) != 0, expect)
                << "node " << v << " bit " << i;
        }
    }
}

TEST(HypercubeTranspose, IsBijective)
{
    Hypercube cube(8);
    EXPECT_TRUE(HypercubeTransposeTraffic(cube).isBijective());
}

TEST(ReverseFlip, MatchesPaperFormula)
{
    // (x0..x7) -> (~x7 ... ~x0).
    Hypercube cube(8);
    ReverseFlipTraffic flip(cube);
    EXPECT_EQ(flip.map(0b00000000), 0b11111111u);
    EXPECT_EQ(flip.map(0b11111111), 0b00000000u);
    EXPECT_EQ(flip.map(0b10000000), 0b11111110u);
    EXPECT_EQ(flip.map(0b00000001), 0b01111111u);
}

TEST(ReverseFlip, IsInvolutionAndBijective)
{
    Hypercube cube(8);
    ReverseFlipTraffic flip(cube);
    for (NodeId v = 0; v < cube.numNodes(); ++v)
        EXPECT_EQ(flip.map(flip.map(v)), v);
    EXPECT_TRUE(flip.isBijective());
}

TEST(ReverseFlip, SixteenSelfSenders)
{
    // x_i = ~x_{7-i} pairs leave 2^4 fixed points on the 8-cube.
    Hypercube cube(8);
    ReverseFlipTraffic flip(cube);
    int fixed = 0;
    for (NodeId v = 0; v < cube.numNodes(); ++v) {
        if (flip.map(v) == v)
            ++fixed;
    }
    EXPECT_EQ(fixed, 16);
}

TEST(BitComplement, ReflectsAllCoordinates)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    BitComplementTraffic complement(mesh);
    EXPECT_EQ(complement.map(mesh.node({0, 0})), mesh.node({7, 7}));
    EXPECT_EQ(complement.map(mesh.node({2, 5})), mesh.node({5, 2}));
    EXPECT_TRUE(complement.isBijective());
}

TEST(BitReversal, ReversesAddressBits)
{
    Hypercube cube(6);
    BitReversalTraffic reversal(cube);
    EXPECT_EQ(reversal.map(0b000001), 0b100000u);
    EXPECT_EQ(reversal.map(0b110000), 0b000011u);
    EXPECT_TRUE(reversal.isBijective());
}

TEST(Shuffle, RotatesAddress)
{
    Hypercube cube(4);
    ShuffleTraffic shuffle(cube);
    EXPECT_EQ(shuffle.map(0b0001), 0b0010u);
    EXPECT_EQ(shuffle.map(0b1000), 0b0001u);
    EXPECT_TRUE(shuffle.isBijective());
}

TEST(Tornado, HalfwayAroundEachRing)
{
    KAryNCube torus(8, 2);
    TornadoTraffic tornado(torus);
    EXPECT_EQ(tornado.map(torus.node({0, 0})), torus.node({3, 3}));
    EXPECT_EQ(tornado.map(torus.node({6, 1})), torus.node({1, 4}));
    EXPECT_TRUE(tornado.isBijective());
}

TEST(Hotspot, FractionReachesHotspot)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const NodeId spot = mesh.node({4, 4});
    HotspotTraffic hotspot(mesh, {spot}, 0.25);
    Rng rng(9);
    int hits = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        if (*hotspot.destination(0, rng) == spot)
            ++hits;
    }
    // 25% direct plus a uniform share of the remainder.
    const double expected = 0.25 + 0.75 / 63.0;
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, expected, 0.01);
}

TEST(Hotspot, NameIncludesFraction)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    HotspotTraffic hotspot(mesh, {0}, 0.2);
    EXPECT_EQ(hotspot.name(), "hotspot:0.2");
}

TEST(AverageDistance, PaperMeshNumbers)
{
    // Section 6: 10.61 hops uniform vs 11.34 transpose (16x16 mesh).
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    Rng rng(4);
    const double uniform =
        UniformTraffic(mesh).averageDistance(mesh, rng, 128);
    EXPECT_NEAR(uniform, 10.67, 0.15);
    const double transpose =
        MeshTransposeTraffic(mesh).averageDistance(mesh, rng);
    EXPECT_NEAR(transpose, 11.33, 0.01);
    EXPECT_GT(transpose, uniform);
}

TEST(AverageDistance, PaperCubeNumbers)
{
    // Section 6: 4.01 hops uniform vs 4.27 reverse-flip (8-cube).
    Hypercube cube(8);
    Rng rng(5);
    const double uniform =
        UniformTraffic(cube).averageDistance(cube, rng, 128);
    EXPECT_NEAR(uniform, 4.02, 0.05);
    const double flip =
        ReverseFlipTraffic(cube).averageDistance(cube, rng);
    EXPECT_NEAR(flip, 4.27, 0.01);
    EXPECT_GT(flip, uniform);
}

TEST(Factory, MakesEveryAdvertisedPattern)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    for (const auto &name : availablePatternNames(mesh))
        EXPECT_NE(makePattern(name, mesh), nullptr) << name;
    Hypercube cube(8);
    for (const auto &name : availablePatternNames(cube))
        EXPECT_NE(makePattern(name, cube), nullptr) << name;
}

TEST(Factory, TransposeDispatchesByTopology)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    Hypercube cube(8);
    // Both are called "transpose" but dispatch to different
    // implementations; check one discriminating value each.
    auto mesh_t = makePattern("transpose", mesh);
    Rng rng(6);
    EXPECT_EQ(*mesh_t->destination(mesh.node({0, 0}), rng),
              mesh.node({7, 7}));
    auto cube_t = makePattern("transpose", cube);
    // Node 0: bits all zero -> dest has bits 0 and 4 set.
    EXPECT_EQ(*cube_t->destination(0, rng), 0b00010001u);
}

TEST(FactoryDeathTest, UnknownPatternIsFatal)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    EXPECT_EXIT({ (void)makePattern("pathological", mesh); },
                ::testing::ExitedWithCode(1), "unknown traffic");
}

} // namespace
} // namespace turnmodel
