/**
 * @file
 * Unit tests for the per-node workload source (traffic/source.hpp):
 * the open-loop determinism contract against the classic
 * ArrivalProcess loop, MMPP burst modulation, flash-crowd storms,
 * closed-loop reply queuing, and deterministic trace replay.
 */

#include <gtest/gtest.h>

#include <vector>

#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"
#include "traffic/source.hpp"
#include "traffic/trace.hpp"
#include "traffic/workload.hpp"

namespace turnmodel {
namespace {

/** Emit every cycle in [0, cycles) into one flat list. */
std::vector<SourcedPacket>
emitAll(NodeSource &source, std::uint64_t cycles,
        bool arrivals_enabled = true)
{
    std::vector<SourcedPacket> out;
    for (std::uint64_t now = 0; now < cycles; ++now)
        source.emit(now, arrivals_enabled, out);
    return out;
}

TEST(NodeSource, OpenLoopMatchesClassicArrivalProcess)
{
    // The determinism contract: with every workload feature off, the
    // RNG consumption sequence is bit-identical to the inline
    // ArrivalProcess loop the engines used before (advance, then
    // destination draw, then length draw; self-directed destinations
    // skip the length draw).
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const PatternPtr pattern = makePattern("uniform", mesh);
    const auto lengths = PacketLengthDist::paperBimodal();
    const WorkloadConfig workload;
    constexpr double kRate = 0.3;
    constexpr std::uint64_t kSeed = 99;
    constexpr std::uint64_t kCycles = 5000;

    std::vector<NodeSource> sources = buildNodeSources(
        mesh.numNodes(), kRate, lengths, *pattern, workload, kSeed);

    for (NodeId v = 0; v < mesh.numNodes(); ++v) {
        std::vector<SourcedPacket> expected;
        ArrivalProcess classic(kRate, lengths.mean(),
                               Rng::forStream(kSeed, v + 1));
        for (std::uint64_t now = 0; now < kCycles; ++now) {
            while (classic.due(static_cast<double>(now))) {
                classic.advance();
                const auto dest =
                    pattern->destination(v, classic.rng());
                if (!dest)
                    continue;
                expected.push_back(
                    {v, *dest, lengths.sample(classic.rng()), false});
            }
        }

        const std::vector<SourcedPacket> got =
            emitAll(sources[v], kCycles);
        ASSERT_EQ(got.size(), expected.size()) << "node " << v;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].src, expected[i].src);
            EXPECT_EQ(got[i].dest, expected[i].dest);
            EXPECT_EQ(got[i].length, expected[i].length);
            EXPECT_FALSE(got[i].reply);
        }
    }
}

TEST(NodeSource, MmppLongRunRateMatchesConfigured)
{
    // ON-phase scaling keeps the long-run offered load equal to the
    // configured rate even though injection happens in bursts.
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const PatternPtr pattern = makePattern("uniform", mesh);
    const auto lengths = PacketLengthDist::fixed(4);
    WorkloadConfig workload;
    workload.burst_on_cycles = 100.0;
    workload.burst_off_cycles = 300.0;
    constexpr double kRate = 0.2;
    constexpr std::uint64_t kCycles = 400000;

    std::vector<NodeSource> sources = buildNodeSources(
        mesh.numNodes(), kRate, lengths, *pattern, workload, 5);

    // Aggregate over all 16 nodes to shrink burst variance.
    std::uint64_t flits = 0;
    for (NodeSource &s : sources) {
        for (const SourcedPacket &p : emitAll(s, kCycles))
            flits += p.length;
    }
    const double offered = static_cast<double>(flits)
        / static_cast<double>(kCycles * mesh.numNodes());
    EXPECT_NEAR(offered, kRate, kRate * 0.05);
}

TEST(NodeSource, MmppDueCacheNeverMovesEarlier)
{
    // The engines mirror nextDue() into a flat cache refreshed only
    // on emission, so a due time that moved earlier between refreshes
    // would make the cache skip arrivals. Entering an OFF phase
    // shifts both clocks later; the reported due must be monotone.
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const PatternPtr pattern = makePattern("uniform", mesh);
    const auto lengths = PacketLengthDist::fixed(8);
    WorkloadConfig workload;
    workload.burst_on_cycles = 50.0;
    workload.burst_off_cycles = 200.0;

    std::vector<NodeSource> sources = buildNodeSources(
        mesh.numNodes(), 0.25, lengths, *pattern, workload, 21);
    NodeSource &source = sources[3];

    std::vector<SourcedPacket> out;
    double last_due = source.nextDue(true);
    for (std::uint64_t now = 0; now < 100000; ++now) {
        if (static_cast<double>(now) < last_due)
            continue;   // Cache says nothing is due: skip the scan.
        out.clear();
        source.emit(now, true, out);
        const double due = source.nextDue(true);
        EXPECT_GE(due, last_due) << "at cycle " << now;
        EXPECT_GT(due, static_cast<double>(now));
        last_due = due;
    }
}

TEST(NodeSource, StormWindowRedirectsToHotspot)
{
    // fraction 1.0 and duty 1.0: every arrival drawn by every node
    // other than the hotspot is redirected at the hotspot.
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const PatternPtr pattern = makePattern("uniform", mesh);
    const auto lengths = PacketLengthDist::fixed(2);
    WorkloadConfig workload;
    workload.storm_period_cycles = 100;
    workload.storm_duty = 1.0;
    workload.storm_fraction = 1.0;
    workload.storm_hotspot = 5;

    std::vector<NodeSource> sources = buildNodeSources(
        mesh.numNodes(), 0.3, lengths, *pattern, workload, 17);

    for (NodeId v = 0; v < mesh.numNodes(); ++v) {
        const std::vector<SourcedPacket> got =
            emitAll(sources[v], 20000);
        ASSERT_FALSE(got.empty()) << "node " << v;
        for (const SourcedPacket &p : got) {
            if (v == 5)
                EXPECT_NE(p.dest, v);   // Hotspot keeps its pattern.
            else
                EXPECT_EQ(p.dest, 5u) << "node " << v;
        }
    }
}

TEST(NodeSource, StormOutsideWindowLeavesPatternAlone)
{
    // duty 0: the window is empty, so storms never fire even with
    // fraction 1.0.
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const PatternPtr pattern = makePattern("transpose", mesh);
    const auto lengths = PacketLengthDist::fixed(2);
    WorkloadConfig workload;
    workload.storm_period_cycles = 100;
    workload.storm_duty = 0.0;
    workload.storm_fraction = 1.0;
    workload.storm_hotspot = 0;

    std::vector<NodeSource> sources = buildNodeSources(
        mesh.numNodes(), 0.3, lengths, *pattern, workload, 17);
    // Transpose is a fixed permutation: every emission must keep the
    // pattern's destination, never the hotspot's.
    Rng probe(0);
    const NodeId expected = *pattern->destination(7, probe);
    ASSERT_NE(expected, 0u);
    for (const SourcedPacket &p : emitAll(sources[7], 20000))
        EXPECT_EQ(p.dest, expected);
}

TEST(NodeSource, RepliesEmitFirstAndSurviveDrain)
{
    // Replies mature at their due cycle, come before same-cycle
    // arrivals, and keep flowing when stochastic arrivals are
    // disabled — the drain-phase behavior closed-loop runs need.
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const PatternPtr pattern = makePattern("uniform", mesh);
    const auto lengths = PacketLengthDist::fixed(6);
    WorkloadConfig workload;
    workload.request_reply = true;

    std::vector<NodeSource> sources = buildNodeSources(
        mesh.numNodes(), 0.5, lengths, *pattern, workload, 31);
    NodeSource &source = sources[2];

    source.scheduleReply(10, 9, 3);
    source.scheduleReply(12, 11, 3);
    EXPECT_EQ(source.pendingReplies(), 2u);
    EXPECT_DOUBLE_EQ(source.nextDue(false), 10.0);

    std::vector<SourcedPacket> out;
    source.emit(9, false, out);
    EXPECT_TRUE(out.empty());
    source.emit(10, true, out);
    ASSERT_FALSE(out.empty());
    EXPECT_TRUE(out.front().reply);
    EXPECT_EQ(out.front().dest, 9u);
    EXPECT_EQ(out.front().length, 3u);

    out.clear();
    source.emit(12, false, out);   // Arrivals off: replies still flow.
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out.front().reply);
    EXPECT_EQ(out.front().dest, 11u);
    EXPECT_EQ(source.pendingReplies(), 0u);
}

TEST(NodeSource, ReplayEmitsRecordsVerbatim)
{
    NDMesh mesh = NDMesh::mesh2D(4, 4);
    const PatternPtr pattern = makePattern("uniform", mesh);
    const auto lengths = PacketLengthDist::paperBimodal();

    auto trace = std::make_shared<InjectionTrace>();
    trace->append({5, 1, 14, 10});
    trace->append({5, 3, 0, 200});
    trace->append({8, 1, 2, 10});
    WorkloadConfig workload;
    workload.replay = trace;

    std::vector<NodeSource> sources = buildNodeSources(
        mesh.numNodes(), 0.3, lengths, *pattern, workload, 77);

    const std::vector<SourcedPacket> node1 = emitAll(sources[1], 20);
    ASSERT_EQ(node1.size(), 2u);
    EXPECT_EQ(node1[0].dest, 14u);
    EXPECT_EQ(node1[0].length, 10u);
    EXPECT_EQ(node1[1].dest, 2u);
    EXPECT_EQ(node1[1].length, 10u);
    const std::vector<SourcedPacket> node3 = emitAll(sources[3], 20);
    ASSERT_EQ(node3.size(), 1u);
    EXPECT_EQ(node3[0].dest, 0u);
    EXPECT_EQ(node3[0].length, 200u);
    // Nodes without records stay silent: replay replaces stochastic
    // generation wholesale.
    EXPECT_TRUE(emitAll(sources[2], 20).empty());
}

} // namespace
} // namespace turnmodel
