/**
 * @file
 * Command-line traffic study: sweep any set of routing algorithms
 * against any traffic pattern on a mesh, hypercube, or torus and
 * print the latency/throughput series. This is the general-purpose
 * front end to the harness behind the paper's Figures 13-16.
 *
 * Usage:
 *   traffic_study [--topo mesh16x16|cube8|torus8x8|hex8x8|oct8x8|
 *                         doubley16x16]
 *                 [--pattern uniform|transpose|reverse-flip|...]
 *                 [--algos xy,west-first,...] [--rates lo:hi:n]
 *                 [--warmup N] [--measure N] [--seed S] [--jobs N]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/routing/factory.hpp"
#include "exec/runner.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/hex.hpp"
#include "topology/oct.hpp"
#include "topology/torus.hpp"
#include "topology/virtual_channels.hpp"
#include "util/logging.hpp"

using namespace turnmodel;

namespace {

std::pair<int, int>
parseDims(const std::string &spec, std::size_t base)
{
    const std::string dims = spec.substr(base);
    const auto x = dims.find('x');
    TM_ASSERT(x != std::string::npos, "expected <m>x<n> in ", spec);
    return {std::atoi(dims.substr(0, x).c_str()),
            std::atoi(dims.substr(x + 1).c_str())};
}

std::unique_ptr<Topology>
makeTopology(const std::string &spec)
{
    if (spec.rfind("cube", 0) == 0)
        return std::make_unique<Hypercube>(std::atoi(spec.c_str() + 4));
    if (spec.rfind("torus", 0) == 0) {
        const auto [m, n] = parseDims(spec, 5);
        TM_ASSERT(m == n, "tori here are k-ary n-cubes; use k=k");
        return std::make_unique<KAryNCube>(m, 2);
    }
    if (spec.rfind("hex", 0) == 0) {
        const auto [m, n] = parseDims(spec, 3);
        return std::make_unique<HexMesh>(m, n);
    }
    if (spec.rfind("oct", 0) == 0) {
        const auto [m, n] = parseDims(spec, 3);
        return std::make_unique<OctMesh>(m, n);
    }
    if (spec.rfind("doubley", 0) == 0) {
        const auto [m, n] = parseDims(spec, 7);
        return std::make_unique<VirtualizedMesh>(Shape{m, n},
                                                 std::vector<int>{1, 2});
    }
    if (spec.rfind("mesh", 0) == 0) {
        const auto [m, n] = parseDims(spec, 4);
        return std::make_unique<NDMesh>(Shape{m, n});
    }
    TM_FATAL("unknown topology '", spec, "'");
}

std::vector<std::string>
splitList(const std::string &arg)
{
    // Semicolons take priority as the separator so that synthesized
    // routing names ("synth:a->b,c->d"), which contain commas, can
    // be listed: --algos "synth:a->b,c->d;xy".
    const char sep =
        arg.find(';') != std::string::npos ? ';' : ',';
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, sep))
        out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string topo_spec = "mesh16x16";
    std::string pattern_name = "uniform";
    std::string algos;
    double rate_lo = 0.01, rate_hi = 0.5;
    int rate_points = 8;
    unsigned jobs = 0;   // 0 = hardware concurrency.
    ExperimentSpec spec;
    spec.sim.warmup_cycles = 5000;
    spec.sim.measure_cycles = 15000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            TM_ASSERT(i + 1 < argc, arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--topo") {
            topo_spec = next();
        } else if (arg == "--pattern") {
            pattern_name = next();
        } else if (arg == "--algos") {
            algos = next();
        } else if (arg == "--rates") {
            const std::string spec = next();
            std::stringstream ss(spec);
            std::string part;
            std::getline(ss, part, ':');
            rate_lo = std::atof(part.c_str());
            std::getline(ss, part, ':');
            rate_hi = std::atof(part.c_str());
            std::getline(ss, part, ':');
            rate_points = std::atoi(part.c_str());
        } else if (arg == "--warmup") {
            spec.sim.warmup_cycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--measure") {
            spec.sim.measure_cycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            spec.sim.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else {
            TM_FATAL("unknown option '", arg, "'");
        }
    }

    auto topo = makeTopology(topo_spec);
    spec.topology = topo.get();
    spec.pattern = pattern_name;
    spec.algorithms = algos.empty() ? availableRoutingNames(*topo)
                                    : splitList(algos);
    spec.injection_rates =
        SweepConfig::ladder(rate_lo, rate_hi, rate_points);
    spec.name = topo->name() + " / " + pattern_name;

    Runner runner(jobs);
    TM_INFORM("sweeping ", spec.algorithms.size(), " algorithms on ",
              topo->name(), " under ", pattern_name, " across ",
              runner.jobs(), " jobs");
    const ExperimentResult result = runner.run(spec);
    printSeries(std::cout, result.experiment, result.series);
    return 0;
}
