/**
 * @file
 * Tour of the credit-based virtual-channel router (src/router/):
 * sweep the three routing disciplines — dimension-order, the best
 * turn model for the workload, and escape-VC fully adaptive routing
 * — over injection rates on a 16x16 transpose workload, then zoom
 * into one saturated escape-VC run and print the busiest virtual
 * channels with their credit-stall counts from the per-VC
 * observability report (schema turnmodel-obs-v2).
 *
 * Usage: vc_router_study [--quick]
 */

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/routing/factory.hpp"
#include "obs/report.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "topology/virtual_channels.hpp"
#include "traffic/pattern.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    VirtualizedMesh vmesh = VirtualizedMesh::uniform({16, 16}, 2);

    struct Entry
    {
        const char *algorithm;
        const Topology *topo;
    };
    const std::vector<Entry> entries{
        {"xy", &mesh},
        {"negative-first", &mesh},
        {"vc:negative-first", &vmesh},
    };
    const std::vector<double> rates{0.05, 0.10, 0.15, 0.20, 0.30};

    std::cout << "== VC router: transpose on a 16x16 mesh ==\n";
    std::cout << std::setw(20) << "algorithm";
    for (double r : rates)
        std::cout << std::setw(11) << r;
    std::cout << "   (throughput, flits/us)\n";
    for (const Entry &e : entries) {
        RoutingPtr routing = makeRouting(e.algorithm, *e.topo);
        PatternPtr pattern = makePattern("transpose", *e.topo);
        std::cout << std::setw(20) << e.algorithm;
        for (double rate : rates) {
            SimConfig cfg;
            cfg.router_model = RouterModel::VcCredit;
            cfg.injection_rate = rate;
            cfg.warmup_cycles = quick ? 1000 : 4000;
            cfg.measure_cycles = quick ? 3000 : 10000;
            Simulator sim(*routing, *pattern, cfg);
            const SimResult r = sim.run();
            std::cout << std::setw(10) << std::fixed
                      << std::setprecision(1)
                      << r.throughput_flits_per_us
                      << (r.saturated ? "*" : " ");
        }
        std::cout << '\n';
    }
    std::cout << "(* = saturated)\n\n";

    // One saturated escape-VC run with channel counters on, showing
    // how traffic splits between the escape channels (vc 0) and the
    // adaptive ones (vc 1). The deterministic output selection
    // prefers low virtual dimensions, so escape channels carry the
    // base load and the adaptive class absorbs the overflow; the
    // credit-stall column shows where backpressure concentrates.
    RoutingPtr routing = makeRouting("vc:negative-first", vmesh);
    PatternPtr pattern = makePattern("transpose", vmesh);
    SimConfig cfg;
    cfg.router_model = RouterModel::VcCredit;
    cfg.injection_rate = 0.30;
    cfg.warmup_cycles = quick ? 1000 : 4000;
    cfg.measure_cycles = quick ? 3000 : 10000;
    cfg.obs.channel_counters = true;
    Simulator sim(*routing, *pattern, cfg);
    sim.run();
    const ObsReport report = sim.obsReport();

    std::uint64_t busy[2] = {0, 0};
    std::uint64_t stalls[2] = {0, 0};
    std::vector<const ChannelUtilRow *> network;
    for (const ChannelUtilRow &row : report.channels) {
        if (row.vc < 0)
            continue;   // Ejection rows.
        const int cls = row.vc == 0 ? 0 : 1;   // Escape vs adaptive.
        busy[cls] += row.busy_cycles;
        stalls[cls] += row.credit_stall_cycles;
        network.push_back(&row);
    }
    std::cout << "== per-VC totals (escape-vc run at 0.30) ==\n";
    std::cout << "vc 0 (escape):   busy " << busy[0]
              << "  credit-stalls " << stalls[0] << '\n';
    std::cout << "vc 1 (adaptive): busy " << busy[1]
              << "  credit-stalls " << stalls[1] << '\n';

    std::sort(network.begin(), network.end(),
              [](const ChannelUtilRow *a, const ChannelUtilRow *b) {
                  return a->busy_cycles > b->busy_cycles;
              });
    std::cout << "\nbusiest channels:\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(8, network.size());
         ++i) {
        const ChannelUtilRow &row = *network[i];
        std::cout << "  node " << std::setw(3) << row.node << "  "
                  << std::setw(6) << row.dir << "  vc " << row.vc
                  << "  busy " << row.busy_cycles
                  << "  credit-stalls " << row.credit_stall_cycles
                  << '\n';
    }
    return 0;
}
