/**
 * @file
 * Deadlock demonstration (paper Figures 1 and 4).
 *
 * Prohibiting just any two turns does not prevent deadlock: Figure 4
 * prohibits north->west and east->south, leaving six turns that still
 * complete both abstract cycles. This example
 *
 *  - shows the channel dependency graph of that six-turn routing has
 *    a cycle (and prints one),
 *  - simulates it under adversarial ring traffic until the stall
 *    watchdog trips, and
 *  - repeats both checks for west-first, which breaks both cycles
 *    and runs indefinitely.
 */

#include <iostream>

#include "core/channel_dependency.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "sim/network.hpp"
#include "topology/mesh.hpp"

using namespace turnmodel;

namespace {

/**
 * Four-corner ring traffic: every node sends across its quadrant
 * corner-to-corner so packets turn in a ring around the mesh center,
 * the pattern of Figure 1.
 */
class RingTraffic : public TrafficPattern
{
  public:
    explicit RingTraffic(const Topology &topo) : topo_(topo) {}

    std::optional<NodeId>
    destination(NodeId src, Rng &) const override
    {
        const Coords c = topo_.coords(src);
        const int m = topo_.radix(0);
        const int n = topo_.radix(1);
        // Rotate the mesh a quarter turn: (x, y) -> (y, m-1-x),
        // which makes every packet turn the same way.
        Coords d{c[1], m - 1 - c[0]};
        // Shapes must agree; clamp for non-square meshes.
        d[0] = std::min(d[0], m - 1);
        d[1] = std::min(d[1], n - 1);
        const NodeId dest = topo_.node(d);
        if (dest == src)
            return std::nullopt;
        return dest;
    }

    std::string name() const override { return "ring"; }
    bool isDeterministic() const override { return true; }

  private:
    const Topology &topo_;
};

void
analyze(const RoutingAlgorithm &routing, const TrafficPattern &pattern)
{
    std::cout << "=== " << routing.name() << " ===\n";
    ChannelDependencyGraph cdg(routing);
    const auto cycle = cdg.findCycle();
    if (cycle.empty()) {
        std::cout << "channel dependency graph: acyclic "
                  << "(deadlock impossible)\n";
    } else {
        std::cout << "channel dependency graph: CYCLE of "
                  << cycle.size() << " channels:\n";
        for (ChannelId ch : cycle)
            std::cout << "    " << cdg.channels().toString(ch) << '\n';
    }

    // The exact experiment: drive the network hard for a while, then
    // stop generating and let it drain. A deadlock-free network
    // always empties; a deadlocked one holds flits forever, at which
    // point the global stall watchdog fires with certainty.
    SimConfig config;
    config.injection_rate = 0.9;
    config.deadlock_threshold = 2000;
    config.output_selection = OutputSelection::Random;
    Network net(routing, pattern, config);
    while (net.now() < 5000)
        net.step();
    net.setGenerationEnabled(false);
    const std::uint64_t horizon = 300000;
    while (net.now() < horizon &&
           net.stallCycles() < config.deadlock_threshold &&
           (net.counters().flits_in_network > 0 ||
            net.sourceQueuePackets() > 0)) {
        net.step();
    }
    if (net.counters().flits_in_network == 0 &&
        net.sourceQueuePackets() == 0) {
        std::cout << "simulation: network drained completely after "
                  << net.now() << " cycles — no deadlock; delivered "
                  << net.counters().flits_delivered << " flits\n\n";
    } else {
        std::cout << "simulation: DEADLOCK — "
                  << net.counters().flits_in_network
                  << " flits permanently stuck in the network (no flit "
                  << "moved for " << net.stallCycles()
                  << " cycles during drain); "
                  << net.stuckPackets(config.deadlock_threshold).size()
                  << " packets involved\n\n";
    }
}

} // namespace

int
main()
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RingTraffic ring(mesh);

    // No prohibitions at all: minimal fully adaptive routing without
    // extra channels. Every turn is available, so both abstract
    // cycles are intact — the Figure 1 deadlock.
    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting fully_adaptive(mesh, all, true, "fully-adaptive");
    analyze(fully_adaptive, ring);

    // Figure 4: prohibit a turn and its reverse — here north->west
    // (a left turn) and west->north (a right turn). One turn from
    // each abstract cycle is prohibited, yet the three remaining
    // left turns are equivalent to the prohibited right turn and
    // vice versa, so both cycles survive and deadlock is possible.
    TurnSet figure4(2);
    figure4.allowAll90();
    figure4.allowAllStraight();
    figure4.prohibit(Turn(dir2d::North, dir2d::West));
    figure4.prohibit(Turn(dir2d::West, dir2d::North));
    TurnTableRouting bad(mesh, figure4, true, "figure-4-six-turns");
    analyze(bad, ring);

    // West-first prohibits both turns to the west — one from each
    // abstract cycle — and is deadlock free.
    RoutingPtr good = makeRouting("west-first", mesh);
    analyze(*good, ring);
    return 0;
}
