/**
 * @file
 * Adaptiveness report: reproduces the analytical content of the
 * paper's Sections 3.4, 4.1 and 5 —
 *
 *  - S_p / S_f for the three 2D partially adaptive algorithms,
 *    exhaustively over all source/destination pairs of a mesh,
 *    showing the average exceeds 1/2;
 *  - the same for the n-dimensional algorithms on a hypercube,
 *    showing the average exceeds 1/2^{n-1}; and
 *  - the Section 5 worked example: p-cube routing choices hop by hop
 *    from 1011010100 to 0010111001 in a binary 10-cube.
 */

#include <bitset>
#include <iomanip>
#include <iostream>

#include "core/adaptiveness.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/pcube.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

using namespace turnmodel;

namespace {

void
report(const Topology &topo, const std::vector<std::string> &names)
{
    std::cout << "== " << topo.name() << " ==\n";
    std::cout << std::setw(18) << "algorithm" << std::setw(14)
              << "mean S_p/S_f" << std::setw(14) << "frac S_p=1"
              << std::setw(12) << "mean S_p" << '\n';
    for (const std::string &name : names) {
        RoutingPtr routing = makeRouting(name, topo);
        const AdaptivenessSummary s = summarizeAdaptiveness(*routing);
        std::cout << std::setw(18) << name
                  << std::setw(14) << std::fixed << std::setprecision(4)
                  << s.mean_ratio
                  << std::setw(14) << s.fraction_single
                  << std::setw(12) << std::setprecision(2)
                  << s.mean_paths << '\n';
    }
    std::cout << '\n';
}

} // namespace

int
main()
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    report(mesh, {"xy", "west-first", "north-last", "negative-first"});

    Hypercube cube6(6);
    report(cube6, {"e-cube", "p-cube", "abonf", "abopl"});

    // Section 5 worked example in the binary 10-cube.
    Hypercube cube10(10);
    PCubeRouting pcube(cube10);
    const NodeId src = 0b1011010100;
    const NodeId dst = 0b0010111001;
    std::cout << "== p-cube worked example (10-cube) ==\n";
    std::cout << "src " << std::bitset<10>(src) << "  dst "
              << std::bitset<10>(dst) << "\n";
    std::cout << "shortest paths allowed by p-cube: "
              << pcubePathCount(cube10, src, dst) << " (fully adaptive: "
              << factorial(cube10.hammingDistance(src, dst)) << ")\n";
    std::cout << std::setw(14) << "address" << std::setw(10) << "choices"
              << std::setw(12) << "(nonmin)" << std::setw(6) << "dim"
              << '\n';
    NodeId at = src;
    while (at != dst) {
        const auto ch = pcube.choices(at, dst);
        // Follow the paper's table: take the lowest minimal dimension
        // except where it picks a specific one; lowest is fine for
        // illustrating the counts.
        const int dim = ch.minimal_dims.front();
        std::cout << std::setw(14) << std::bitset<10>(at)
                  << std::setw(10) << ch.minimal_dims.size()
                  << std::setw(10) << "(+" << ch.nonminimal_dims.size()
                  << ")" << std::setw(5) << dim << '\n';
        at = cube10.neighborAcross(at, dim);
    }
    std::cout << std::setw(14) << std::bitset<10>(at)
              << "  destination\n";
    return 0;
}
