/**
 * @file
 * Channel-utilization heatmap study: run a set of routing algorithms
 * on a 2D mesh at one injection rate with the observability layer on
 * and show where the traffic actually flows — an ASCII heatmap per
 * algorithm per direction, plus optional JSON/CSV export for real
 * plotting. The canonical use is the paper's transpose workload: xy
 * spreads load evenly while west-first piles it onto the south/east
 * channels of the lower triangle, and the heatmap makes that hotspot
 * asymmetry visible in a way end-of-run aggregates cannot.
 *
 * Usage:
 *   heatmap_study [--mesh WxH] [--pattern NAME] [--algos a,b,...]
 *                 [--rate R] [--warmup N] [--measure N] [--stride N]
 *                 [--trace N] [--json PATH] [--csv PATH] [--jobs N]
 *                 [--seed S]
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "exec/result_sink.hpp"
#include "exec/runner.hpp"
#include "topology/mesh.hpp"
#include "util/logging.hpp"

using namespace turnmodel;

namespace {

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(item);
    return out;
}

/** Utilization of one run's channels in direction @p dir, as a grid. */
std::vector<std::vector<double>>
utilizationGrid(const ObsRun &run, const std::string &dir, int width,
                int height)
{
    std::vector<std::vector<double>> grid(
        static_cast<std::size_t>(height),
        std::vector<double>(static_cast<std::size_t>(width), -1.0));
    for (const ChannelUtilRow &row : run.report.channels) {
        if (row.dir != dir || row.coords.size() != 2)
            continue;
        grid[static_cast<std::size_t>(row.coords[1])]
            [static_cast<std::size_t>(row.coords[0])] = row.utilization;
    }
    return grid;
}

/** Shade 0..9 plus '#' for the top band; '.' for no channel. */
char
shade(double utilization, double peak)
{
    if (utilization < 0.0)
        return '.';
    if (peak <= 0.0)
        return '0';
    const double frac = utilization / peak;
    if (frac >= 0.95)
        return '#';
    return static_cast<char>(
        '0' + std::min(9, static_cast<int>(frac * 10.0)));
}

void
printHeatmaps(const ObsStudy &study, int width, int height)
{
    const std::vector<std::string> dirs = {"east", "west", "north",
                                           "south", "eject"};
    for (const ObsRun &run : study.runs) {
        // Common scale across directions so the asymmetry between
        // them is visible; per-run scale so light algorithms are not
        // washed out by heavy ones.
        double peak = 0.0;
        for (const ChannelUtilRow &row : run.report.channels)
            peak = std::max(peak, row.utilization);

        std::cout << "-- " << run.algorithm << " @ rate "
                  << run.injection_rate
                  << (run.result.saturated ? "  [saturated]" : "")
                  << "  (peak channel utilization "
                  << std::fixed << std::setprecision(3) << peak
                  << " flits/cycle)\n";
        for (const std::string &dir : dirs) {
            const auto grid = utilizationGrid(run, dir, width, height);
            std::cout << "   " << std::setw(6) << dir << "  ";
            // Rows printed top-down: y grows northward.
            for (int y = height - 1; y >= 0; --y) {
                if (y != height - 1)
                    std::cout << "           ";
                for (int x = 0; x < width; ++x)
                    std::cout << shade(
                        grid[static_cast<std::size_t>(y)]
                            [static_cast<std::size_t>(x)], peak);
                std::cout << '\n';
            }
        }
        // Aggregate per direction: the one-line summary of where the
        // algorithm concentrates its traffic.
        std::cout << "   per-direction flits:";
        for (const std::string &dir : dirs) {
            std::uint64_t flits = 0;
            for (const ChannelUtilRow &row : run.report.channels)
                if (row.dir == dir)
                    flits += row.flits_forwarded;
            std::cout << ' ' << dir << '=' << flits;
        }
        std::cout << "\n\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int width = 8, height = 8;
    std::string pattern = "transpose";
    std::string algos = "xy,west-first";
    double rate = 0.08;
    std::string json_path, csv_path;
    unsigned jobs = 0;
    ExperimentSpec spec;
    spec.sim.warmup_cycles = 3000;
    spec.sim.measure_cycles = 10000;
    ObsConfig obs;
    obs.channel_counters = true;
    obs.sample_stride = 0;   // Default set after --measure is known.
    bool stride_given = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            TM_ASSERT(i + 1 < argc, arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--mesh") {
            const std::string dims = next();
            const auto x = dims.find('x');
            TM_ASSERT(x != std::string::npos, "expected WxH, got ",
                      dims);
            width = std::atoi(dims.substr(0, x).c_str());
            height = std::atoi(dims.substr(x + 1).c_str());
        } else if (arg == "--pattern") {
            pattern = next();
        } else if (arg == "--algos") {
            algos = next();
        } else if (arg == "--rate") {
            rate = std::atof(next());
        } else if (arg == "--warmup") {
            spec.sim.warmup_cycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--measure") {
            spec.sim.measure_cycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--stride") {
            obs.sample_stride = std::strtoull(next(), nullptr, 10);
            stride_given = true;
        } else if (arg == "--trace") {
            obs.trace_capacity = static_cast<std::size_t>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--seed") {
            spec.sim.seed = std::strtoull(next(), nullptr, 10);
        } else {
            std::cerr
                << "unknown option '" << arg << "'\n"
                << "usage: " << argv[0]
                << " [--mesh WxH] [--pattern NAME] [--algos a,b,...]"
                   " [--rate R] [--warmup N] [--measure N]"
                   " [--stride N] [--trace N] [--json PATH]"
                   " [--csv PATH] [--jobs N] [--seed S]\n";
            return 2;
        }
    }
    if (!stride_given)
        obs.sample_stride =
            std::max<std::uint64_t>(1, spec.sim.measure_cycles / 50);

    NDMesh mesh(Shape{width, height});
    spec.name = "heatmap " + mesh.name() + " / " + pattern;
    spec.topology = &mesh;
    spec.pattern = pattern;
    spec.algorithms = splitList(algos);

    Runner runner(jobs);
    const ObsStudy study = runner.runObs(spec, rate, obs);

    std::cout << "== " << spec.name << " @ rate " << rate << " ==\n"
              << "   shading: 0-9 = utilization / run peak, # = top"
                 " band, . = no channel; rows top-down, north up\n\n";
    printHeatmaps(study, width, height);

    if (!json_path.empty())
        ResultSink::writeObsJsonFile(json_path, study);
    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out) {
            TM_WARN("cannot write ", csv_path);
        } else {
            ResultSink::writeObsCsv(out, study);
            std::cout << "wrote " << csv_path << '\n';
        }
    }
    return 0;
}
