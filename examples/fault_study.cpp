/**
 * @file
 * Fault-tolerance walkthrough: break channels in a mesh and watch
 * the reachability-guarded nonminimal routing steer around them —
 * the paper's argument (Sections 1, 3.3, 7) that nonminimal routing
 * buys fault tolerance, made concrete.
 *
 * Usage: fault_study [num_faults] [seed] [jobs]
 */

#include <cstdlib>
#include <iostream>

#include "core/channel_dependency.hpp"
#include "core/routing/turn_table.hpp"
#include "exec/runner.hpp"
#include "topology/faults.hpp"
#include "topology/mesh.hpp"

using namespace turnmodel;

namespace {

double
connectivity(const RoutingAlgorithm &routing)
{
    const Topology &topo = routing.topology();
    std::size_t good = 0, total = 0;
    for (NodeId s = 0; s < topo.numNodes(); ++s) {
        for (NodeId d = 0; d < topo.numNodes(); ++d) {
            if (s == d)
                continue;
            ++total;
            if (!routing.route(s, std::nullopt, d).empty())
                ++good;
        }
    }
    return static_cast<double>(good) / static_cast<double>(total);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t num_faults =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;
    const std::uint64_t seed =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
    const unsigned jobs =
        argc > 3 ? static_cast<unsigned>(
                       std::strtoul(argv[3], nullptr, 10))
                 : 0;   // 0 = hardware concurrency.

    NDMesh mesh = NDMesh::mesh2D(8, 8);
    Rng rng(seed);
    FaultyTopology faulty =
        FaultyTopology::withRandomFaults(mesh, num_faults, rng);

    std::cout << faulty.name() << "; failed channels:\n";
    ChannelSpace space(mesh);
    for (ChannelId ch : faulty.faults())
        std::cout << "  " << space.toString(ch) << '\n';

    TurnTableRouting minimal(faulty, TurnSet::westFirst(), true,
                             "west-first (minimal)");
    TurnTableRouting nonminimal(faulty, TurnSet::westFirst(), false,
                                "west-first (nonminimal)");

    for (const RoutingAlgorithm *routing :
         {static_cast<const RoutingAlgorithm *>(&minimal),
          static_cast<const RoutingAlgorithm *>(&nonminimal)}) {
        ChannelDependencyGraph cdg(*routing);
        std::cout << "\n" << routing->name() << ":\n"
                  << "  deadlock free: "
                  << (cdg.isAcyclic() ? "yes" : "NO") << "\n"
                  << "  connected pairs: " << connectivity(*routing) * 100
                  << "%\n";
    }

    // Measure what the faults cost under load: a quick sweep on the
    // degraded mesh, via the thread-parallel runner with a factory
    // that builds turn-table routings directly on the faulty
    // topology. Only meaningful when the nonminimal variant still
    // connects every pair — stranded pairs would make throughput
    // incomparable.
    if (connectivity(nonminimal) == 1.0) {
        ExperimentSpec spec;
        spec.name = faulty.name() + " / uniform";
        spec.topology = &faulty;
        spec.pattern = "uniform";
        spec.algorithms = {"west-first (nonminimal)"};
        spec.injection_rates = SweepConfig::ladder(0.02, 0.20, 4);
        spec.sim.warmup_cycles = 2000;
        spec.sim.measure_cycles = 6000;
        spec.make_routing = [](const std::string &name,
                               const Topology &topo) -> RoutingPtr {
            return std::make_unique<TurnTableRouting>(
                topo, TurnSet::westFirst(), false, name);
        };
        Runner runner(jobs);
        const ExperimentResult result = runner.run(spec);
        std::cout << '\n';
        printSeries(std::cout, result.experiment, result.series);
    } else {
        std::cout << "\n(skipping degraded-network sweep: nonminimal "
                     "routing cannot connect every pair)\n";
    }

    // Show one detour in detail: find a pair the minimal variant
    // lost but the nonminimal one still connects.
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            if (!minimal.route(s, std::nullopt, d).empty() ||
                nonminimal.route(s, std::nullopt, d).empty()) {
                continue;
            }
            std::cout << "\ndetour example "
                      << coordsToString(mesh.coords(s)) << " -> "
                      << coordsToString(mesh.coords(d))
                      << " (minimal routing: stranded):\n ";
            NodeId at = s;
            std::optional<Direction> in;
            int hops = 0;
            while (at != d && hops < 40) {
                const auto options = nonminimal.route(at, in, d);
                const Direction take = options.front();
                std::cout << " " << directionName(take);
                at = *faulty.neighbor(at, take);
                in = take;
                ++hops;
            }
            std::cout << "  (" << hops << " hops, minimal distance "
                      << mesh.distance(s, d) << ")\n";
            return 0;
        }
    }
    std::cout << "\nno stranded pairs under minimal routing with this "
                 "fault draw; rerun with more faults.\n";
    return 0;
}
