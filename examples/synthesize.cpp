/**
 * @file
 * Turn-set synthesis CLI: derive deadlock-free partially adaptive
 * routing algorithms for a topology instead of hand-coding them —
 * enumerate candidate prohibited-turn sets, prune by abstract-cycle
 * coverage, collapse symmetry classes, verify connectivity and
 * deadlock freedom with the channel dependency graph, and rank the
 * survivors by adaptiveness (synthesis/engine.hpp).
 *
 * Usage:
 *   synthesize [--topo=SPEC] [--max-candidates=N] [--no-symmetry]
 *              [--mode=auto|minimal-subsets|one-per-cycle]
 *              [--top=N] [--sweep] [--json=PATH] [--jobs=N]
 *
 * Topology specs: mesh:5x5 (any WxH or WxHxD mesh), hex:4x4,
 * oct:3x3. Default mesh:5x5, which mechanically reproduces the
 * paper's Section 3: 16 two-turn prohibitions, 12 deadlock free,
 * 3 unique maximally adaptive algorithms.
 *
 * With --sweep, the top-ranked synthesized algorithm (and, on 2D
 * meshes, hand-coded west-first as a reference) is run through the
 * wormhole simulator under uniform traffic; --json=PATH writes that
 * sweep machine-readably.
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/routing/factory.hpp"
#include "exec/result_sink.hpp"
#include "exec/runner.hpp"
#include "synthesis/engine.hpp"
#include "topology/hex.hpp"
#include "topology/mesh.hpp"
#include "topology/oct.hpp"
#include "traffic/pattern.hpp"

using namespace turnmodel;

namespace {

/** Parse "4x4" / "3x3x3" into a shape; empty on malformed input. */
Shape
parseShape(const std::string &text)
{
    Shape shape;
    int value = 0;
    bool have_digit = false;
    for (char c : text) {
        if (c >= '0' && c <= '9') {
            value = value * 10 + (c - '0');
            have_digit = true;
        } else if (c == 'x' && have_digit) {
            shape.push_back(value);
            value = 0;
            have_digit = false;
        } else {
            return {};
        }
    }
    if (!have_digit)
        return {};
    shape.push_back(value);
    for (int k : shape) {
        if (k < 2)
            return {};
    }
    return shape;
}

std::unique_ptr<Topology>
makeTopology(const std::string &spec)
{
    const std::size_t colon = spec.find(':');
    const std::string kind =
        colon == std::string::npos ? spec : spec.substr(0, colon);
    const Shape shape = parseShape(
        colon == std::string::npos ? "" : spec.substr(colon + 1));
    if (kind == "mesh" && shape.size() >= 2)
        return std::make_unique<NDMesh>(shape);
    if (kind == "hex" && shape.size() == 2)
        return std::make_unique<HexMesh>(shape[0], shape[1]);
    if (kind == "oct" && shape.size() == 2)
        return std::make_unique<OctMesh>(shape[0], shape[1]);
    return nullptr;
}

int
usage()
{
    std::cerr <<
        "usage: synthesize [--topo=mesh:5x5|mesh:3x3x3|hex:4x4|oct:3x3]\n"
        "                  [--max-candidates=N] [--no-symmetry]\n"
        "                  [--mode=auto|minimal-subsets|one-per-cycle]\n"
        "                  [--top=N] [--sweep] [--json=PATH]\n"
        "                  [--jobs=N]\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string topo_spec = "mesh:5x5";
    std::string json_path;
    SynthesisConfig config;
    std::size_t top = 16;
    bool sweep = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&arg](const char *flag) {
            return arg.substr(std::string(flag).size());
        };
        if (arg.rfind("--topo=", 0) == 0) {
            topo_spec = value("--topo=");
        } else if (arg.rfind("--max-candidates=", 0) == 0) {
            config.max_candidates =
                std::stoull(value("--max-candidates="));
        } else if (arg == "--no-symmetry") {
            config.use_symmetry = false;
        } else if (arg.rfind("--mode=", 0) == 0) {
            const std::string mode = value("--mode=");
            if (mode == "auto")
                config.mode = EnumerationMode::Auto;
            else if (mode == "minimal-subsets")
                config.mode = EnumerationMode::MinimalSubsets;
            else if (mode == "one-per-cycle")
                config.mode = EnumerationMode::OnePerCycle;
            else
                return usage();
        } else if (arg.rfind("--top=", 0) == 0) {
            top = std::stoull(value("--top="));
        } else if (arg == "--sweep") {
            sweep = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = value("--json=");
        } else if (arg.rfind("--jobs=", 0) == 0) {
            config.num_threads = static_cast<unsigned>(
                std::stoul(value("--jobs=")));
        } else {
            return usage();
        }
    }

    const std::unique_ptr<Topology> topo = makeTopology(topo_spec);
    if (!topo) {
        std::cerr << "bad topology spec '" << topo_spec << "'\n";
        return usage();
    }
    if (!json_path.empty() && !sweep) {
        std::cerr << "--json only writes sweep series; "
                     "add --sweep\n";
        return usage();
    }

    const SynthesisReport report = synthesize(*topo, config);
    printSynthesisReport(std::cout, report, top);

    const auto maximal = report.maximallyAdaptive();
    if (!maximal.empty()) {
        std::cout << "  maximally adaptive classes: " << maximal.size()
                  << '\n';
        for (std::size_t index : maximal) {
            std::cout << "    " << report.candidates[index].name
                      << '\n';
        }
    }

    if (!sweep || report.ranking.empty())
        return 0;

    // Run the best synthesized algorithm through the simulator, next
    // to hand-coded west-first on 2D meshes for comparison.
    std::vector<std::string> names{
        report.candidates[report.ranking.front()].name};
    if (topo->numDims() == 2 &&
        topo->numDims() == static_cast<int>(topo->shape().size())) {
        names.push_back("west-first");
    }
    ExperimentSpec spec;
    spec.name = "synthesized sweep on " + topo->name();
    spec.topology = topo.get();
    spec.pattern = "uniform";
    spec.algorithms = names;
    spec.injection_rates = SweepConfig::ladder(0.01, 0.4, 6);
    spec.sim.warmup_cycles = 2000;
    spec.sim.measure_cycles = 6000;
    Runner runner(config.num_threads);
    const ExperimentResult result = runner.run(spec);
    printSeries(std::cout, result.experiment, result.series);
    if (!ResultSink::writeJsonFile(json_path, result))
        return 1;
    return 0;
}
