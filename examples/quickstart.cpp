/**
 * @file
 * Quickstart: the library in five minutes.
 *
 *  1. Build a 2D mesh topology.
 *  2. Construct a turn-model routing algorithm (west-first).
 *  3. Machine-check that it is deadlock free (acyclic channel
 *     dependency graph).
 *  4. Walk a packet's adaptive route hop by hop.
 *  5. Run a small wormhole simulation and print latency/throughput.
 */

#include <iostream>

#include "core/adaptiveness.hpp"
#include "core/channel_dependency.hpp"
#include "core/routing/factory.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"

using namespace turnmodel;

int
main()
{
    // 1. An 8x8 mesh, as in the paper's Figure 5 examples.
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    std::cout << "topology: " << mesh.name() << " ("
              << mesh.numNodes() << " nodes, " << mesh.countChannels()
              << " channels)\n";

    // 2. West-first partially adaptive routing.
    RoutingPtr routing = makeRouting("west-first", mesh);
    std::cout << "routing:  " << routing->name() << "\n";

    // 3. Deadlock freedom, checked rather than assumed: the channel
    //    dependency graph of the algorithm must be acyclic.
    ChannelDependencyGraph cdg(*routing);
    std::cout << "deadlock free: " << (cdg.isAcyclic() ? "yes" : "NO")
              << " (" << cdg.numEdges() << " dependencies analyzed)\n";

    // 4. Route a packet from (6,1) to (2,5). West-first must go west
    //    first; the remaining hops are adaptive.
    const NodeId src = mesh.node({6, 1});
    const NodeId dst = mesh.node({2, 5});
    std::cout << "\nroute " << coordsToString(mesh.coords(src)) << " -> "
              << coordsToString(mesh.coords(dst)) << ":\n";
    NodeId at = src;
    std::optional<Direction> came;
    while (at != dst) {
        const auto options = routing->route(at, came, dst);
        std::cout << "  at " << coordsToString(mesh.coords(at))
                  << " options:";
        for (Direction d : options)
            std::cout << ' ' << directionName(d);
        const Direction take = options.front();
        std::cout << "  -> taking " << directionName(take) << '\n';
        at = *mesh.neighbor(at, take);
        came = take;
    }
    std::cout << "  arrived, " << "shortest paths allowed: "
              << countAllowedShortestPaths(*routing, src, dst)
              << " of " << fullyAdaptivePathCount(mesh, src, dst)
              << " fully adaptive\n";

    // 5. A small simulation: uniform traffic at a moderate load.
    PatternPtr pattern = makePattern("uniform", mesh);
    SimConfig config;
    config.injection_rate = 0.05;   // flits per node per cycle
    config.warmup_cycles = 2000;
    config.measure_cycles = 8000;
    Simulator sim(*routing, *pattern, config);
    const SimResult r = sim.run();
    std::cout << "\nsimulation (uniform traffic, rate "
              << config.injection_rate << " flits/node/cycle):\n"
              << "  throughput: " << r.throughput_flits_per_us
              << " flits/us\n"
              << "  avg latency: " << r.avg_latency_us << " us\n"
              << "  avg hops: " << r.avg_hops << "\n"
              << "  packets measured: " << r.packets_measured << "\n";
    return 0;
}
