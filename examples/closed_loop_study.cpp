/**
 * @file
 * Closed-loop workload study: run a request/reply simulation with
 * injection capture on, save the captured trace in the binary format
 * (traffic/trace.hpp), load it back, replay it as a deterministic
 * workload, and verify the replay reproduces the original run's
 * metrics byte for byte. With --soak N it additionally runs a
 * long-horizon bursty (MMPP + flash-crowd storm) simulation and
 * checks that the engine's packet-pool high-water mark stops growing
 * once the network reaches steady state — the constant-memory
 * property soak runs rely on.
 *
 * Exit status: 0 on success, 1 when the replay diverges or the soak
 * leaks memory, 2 on usage errors.
 */

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/routing/factory.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"
#include "traffic/trace.hpp"

using namespace turnmodel;

namespace {

struct Options
{
    int mesh_w = 8;
    int mesh_h = 8;
    std::string algorithm = "west-first";
    double rate = 0.05;
    std::uint64_t warmup = 2000;
    std::uint64_t measure = 6000;
    std::uint32_t reply_len = 10;
    std::uint64_t think = 4;
    std::string trace_path;
    std::uint64_t soak = 0;
};

void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--mesh WxH] [--algorithm NAME] [--rate R]"
                 " [--warmup N] [--measure N] [--reply-len N]"
                 " [--think N] [--trace PATH] [--soak CYCLES]\n";
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--mesh") {
            const std::string v = value();
            const std::size_t x = v.find('x');
            if (x == std::string::npos)
                usage(argv[0]);
            o.mesh_w = std::atoi(v.substr(0, x).c_str());
            o.mesh_h = std::atoi(v.substr(x + 1).c_str());
            if (o.mesh_w < 2 || o.mesh_h < 2)
                usage(argv[0]);
        } else if (arg == "--algorithm") {
            o.algorithm = value();
        } else if (arg == "--rate") {
            o.rate = std::atof(value().c_str());
        } else if (arg == "--warmup") {
            o.warmup = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--measure") {
            o.measure = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--reply-len") {
            o.reply_len = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--think") {
            o.think = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--trace") {
            o.trace_path = value();
        } else if (arg == "--soak") {
            o.soak = std::strtoull(value().c_str(), nullptr, 10);
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

/**
 * Every SimResult field at full precision: two runs produced the
 * same metrics iff these strings are byte-identical.
 */
std::string
fingerprint(const SimResult &r)
{
    std::ostringstream os;
    os << std::hexfloat << r.offered_flits_per_us << ' '
       << r.throughput_flits_per_us << ' ' << r.avg_latency_us << ' '
       << r.avg_network_latency_us << ' ' << r.p99_latency_us << ' '
       << r.latency_p99_clamped << ' ' << r.avg_hops << ' '
       << r.packets_measured << ' ' << r.saturated << ' '
       << r.deadlocked << ' ' << r.queue_growth_packets << ' '
       << r.delivered_ratio;
    return os.str();
}

void
printResult(const char *label, const SimResult &r)
{
    std::cout << "  " << std::left << std::setw(9) << label
              << std::right << std::fixed << std::setprecision(3)
              << " throughput " << std::setw(9)
              << r.throughput_flits_per_us << " flits/us"
              << "  latency " << std::setw(8) << r.avg_latency_us
              << " us  p99 " << std::setw(8) << r.p99_latency_us
              << " us  packets " << r.packets_measured << "\n";
}

/**
 * Capture a closed-loop run, round-trip the trace (through the file
 * when a path was given), replay it, and demand identical metrics.
 * @return process exit status.
 */
int
replayStudy(const Options &o, const RoutingAlgorithm &routing,
            const TrafficPattern &pattern)
{
    SimConfig config;
    config.injection_rate = o.rate;
    config.warmup_cycles = o.warmup;
    config.measure_cycles = o.measure;
    config.workload.request_reply = true;
    config.workload.reply_length = o.reply_len;
    config.workload.think_cycles = o.think;
    config.obs.capture_injections = true;

    std::cout << "closed-loop capture (" << o.mesh_w << 'x' << o.mesh_h
              << " mesh, " << routing.name() << ", rate " << o.rate
              << ", reply " << o.reply_len << " flits, think "
              << o.think << " cycles):\n";
    Simulator capture_sim(routing, pattern, config);
    const SimResult captured = capture_sim.run();
    printResult("capture", captured);

    const InjectionTrace *log =
        capture_sim.network().observer()->injections();
    if (log == nullptr || log->empty()) {
        std::cerr << "capture produced no injection log\n";
        return 1;
    }
    std::cout << "  captured " << log->size()
              << " injections (requests + replies)\n";

    // Round-trip the binary format. Without --trace the in-memory
    // copy stands in for the file.
    auto replay = std::make_shared<InjectionTrace>();
    if (!o.trace_path.empty()) {
        if (!log->saveFile(o.trace_path)) {
            std::cerr << "cannot write " << o.trace_path << "\n";
            return 1;
        }
        if (!replay->loadFile(o.trace_path)) {
            std::cerr << "cannot parse " << o.trace_path << "\n";
            return 1;
        }
        std::cout << "  trace saved to " << o.trace_path << " and "
                  << "reloaded (" << replay->size() << " records)\n";
    } else {
        *replay = *log;
    }

    // The replay workload consumes no RNG and re-enqueues every
    // record — requests and replies alike — on its captured cycle, so
    // the simulation unfolds identically.
    SimConfig replay_config;
    replay_config.injection_rate = o.rate;
    replay_config.warmup_cycles = o.warmup;
    replay_config.measure_cycles = o.measure;
    replay_config.workload.replay = replay;
    Simulator replay_sim(routing, pattern, replay_config);
    const SimResult replayed = replay_sim.run();
    printResult("replay", replayed);

    if (fingerprint(captured) != fingerprint(replayed)) {
        std::cerr << "REPLAY DIVERGED:\n  capture " << fingerprint(captured)
                  << "\n  replay  " << fingerprint(replayed) << "\n";
        return 1;
    }
    std::cout << "  replay metrics byte-identical to capture\n";
    return 0;
}

/**
 * Long-horizon bursty soak: MMPP on/off modulation plus periodic
 * flash-crowd storms, stepped in checkpointed chunks. The packet
 * pool may grow while the network fills, but its high-water mark
 * must be flat across the second half of the run.
 * @return process exit status.
 */
int
soakStudy(const Options &o, const RoutingAlgorithm &routing,
          const TrafficPattern &pattern)
{
    SimConfig config;
    config.injection_rate = o.rate;
    config.workload.burst_on_cycles = 200.0;
    config.workload.burst_off_cycles = 600.0;
    config.workload.storm_period_cycles = 5000;
    config.workload.storm_duty = 0.2;
    config.workload.storm_fraction = 0.4;

    const std::unique_ptr<NetworkEngine> net =
        makeEngine(routing, pattern, config);
    std::vector<Completion> done;

    constexpr int kCheckpoints = 10;
    const std::uint64_t chunk = o.soak / kCheckpoints;
    std::cout << "\nbursty soak (" << o.soak << " cycles, MMPP "
              << config.workload.burst_on_cycles << "/"
              << config.workload.burst_off_cycles << ", storms every "
              << config.workload.storm_period_cycles << " cycles):\n";
    std::cout << "  " << std::setw(12) << "cycle" << std::setw(16)
              << "pool capacity" << std::setw(16) << "flits moved\n";

    std::size_t caps[kCheckpoints] = {};
    for (int cp = 0; cp < kCheckpoints; ++cp) {
        for (std::uint64_t c = 0; c < chunk; ++c)
            net->step();
        net->drainCompletions(done);
        caps[cp] = net->packetPoolCapacity();
        std::cout << "  " << std::setw(12) << net->now()
                  << std::setw(16) << caps[cp] << std::setw(16)
                  << net->counters().flit_moves << "\n";
    }
    // A leak grows the pool in proportion to cycles run, so a leaky
    // second half would roughly double the midpoint mark. A rare
    // storm burst setting a new high-water mark a few slots above it
    // is steady-state tail behavior, not growth.
    if (caps[kCheckpoints - 1] >= 2 * caps[kCheckpoints / 2 - 1]) {
        std::cerr << "SOAK MEMORY GREW after steady state: pool "
                  << caps[kCheckpoints / 2 - 1] << " -> "
                  << caps[kCheckpoints - 1] << " packets\n";
        return 1;
    }
    std::cout << "  pool high-water mark stable across second half ("
              << caps[kCheckpoints - 1] << " packets)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    NDMesh mesh = NDMesh::mesh2D(o.mesh_w, o.mesh_h);
    const RoutingPtr routing = makeRouting(o.algorithm, mesh);
    const PatternPtr pattern = makePattern("uniform", mesh);

    int status = replayStudy(o, *routing, *pattern);
    if (status == 0 && o.soak > 0)
        status = soakStudy(o, *routing, *pattern);
    return status;
}
