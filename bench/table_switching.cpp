/**
 * @file
 * The Section 1 background claim, regenerated: "In the absence of
 * contention, the latencies for store-and-forward are proportional
 * to the product of packet length and distance to travel. The
 * latencies for wormhole routing ... are proportional to the sum."
 * One lone packet per measurement, across distances and lengths, for
 * both switching techniques.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "sim/network.hpp"
#include "topology/mesh.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

namespace {

class SilentPattern : public TrafficPattern
{
  public:
    std::optional<NodeId> destination(NodeId, Rng &) const override
    {
        return std::nullopt;
    }
    std::string name() const override { return "silent"; }
    bool isDeterministic() const override { return true; }
};

double
lonePacketLatencyCycles(Switching mode, int hops, std::uint32_t length)
{
    NDMesh mesh = NDMesh::mesh2D(16, 2);
    RoutingPtr routing = makeRouting("xy", mesh);
    SilentPattern silent;
    SimConfig cfg;
    cfg.switching = mode;
    cfg.lengths = PacketLengthDist::fixed(length);
    if (mode == Switching::StoreAndForward)
        cfg.buffer_depth = length;
    Network net(*routing, silent, cfg);
    net.post(mesh.node({0, 0}), mesh.node({hops, 0}), length);
    while (net.now() < 1000000) {
        net.step();
        const auto done = net.drainCompletions();
        if (!done.empty())
            return done.front().delivered - done.front().created;
    }
    return -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);

    struct Row
    {
        int hops;
        std::uint32_t length;
        double wormhole;
        double saf;
    };
    const std::vector<int> hop_list{2, 5, 10, 15};
    const std::vector<std::uint32_t> lengths{10, 50, 200};

    // Each cell is two tiny single-packet simulations; run the grid
    // across the pool, one slot per (hops, length) cell.
    std::vector<Row> rows(hop_list.size() * lengths.size());
    ThreadPool pool(fidelity.jobs);
    pool.parallelFor(rows.size(), [&](std::size_t i) {
        const int hops = hop_list[i / lengths.size()];
        const std::uint32_t length = lengths[i % lengths.size()];
        rows[i] = {hops, length,
                   lonePacketLatencyCycles(Switching::Wormhole, hops,
                                           length),
                   lonePacketLatencyCycles(Switching::StoreAndForward,
                                           hops, length)};
    });

    std::cout << "== section-1: switching technique latency, lone "
                 "packet (cycles = flit times) ==\n";
    std::cout << std::setw(6) << "hops" << std::setw(8) << "flits"
              << std::setw(12) << "wormhole" << std::setw(10) << "L+D"
              << std::setw(12) << "SAF" << std::setw(10) << "L*D"
              << '\n';
    for (const Row &row : rows) {
        std::cout << std::setw(6) << row.hops << std::setw(8)
                  << row.length << std::setw(12) << std::fixed
                  << std::setprecision(0) << row.wormhole
                  << std::setw(10) << row.hops + row.length
                  << std::setw(12) << row.saf << std::setw(10)
                  << row.hops * row.length << '\n';
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"hops", "flits", "wormhole_cycles",
                "sum_prediction", "saf_cycles", "product_prediction"});
    for (const Row &row : rows) {
        csv.beginRow()
            .field(row.hops)
            .field(static_cast<std::uint64_t>(row.length))
            .field(row.wormhole)
            .field(static_cast<std::uint64_t>(row.hops + row.length))
            .field(row.saf)
            .field(static_cast<std::uint64_t>(row.hops * row.length));
        csv.endRow();
    }
    return 0;
}
