/**
 * @file
 * The Section 5 table: routing choices at each hop of a p-cube route
 * from 1011010100 to 0010111001 in a binary 10-cube. The paper
 * reports 36 shortest paths, choices of 3(+2), 2(+2), 1(+2) in phase
 * one and 3, 2, 1 in phase two, where (+k) counts the extra
 * nonminimal options.
 */

#include <bitset>
#include <iomanip>
#include <iostream>

#include "core/adaptiveness.hpp"
#include "core/routing/pcube.hpp"
#include "topology/hypercube.hpp"
#include "util/bitops.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

int
main()
{
    Hypercube cube(10);
    PCubeRouting pcube(cube);
    const NodeId src = 0b1011010100;
    const NodeId dst = 0b0010111001;
    // The paper's table takes dimensions 2, 9, 6, 5, 0, 3.
    const int taken[] = {2, 9, 6, 5, 0, 3};

    std::cout << "== section-5 table: p-cube routing choices in a "
                 "10-cube ==\n";
    std::cout << "source      " << std::bitset<10>(src) << '\n';
    std::cout << "destination " << std::bitset<10>(dst) << '\n';
    std::cout << "hamming distance h = "
              << cube.hammingDistance(src, dst) << ", shortest paths "
              << "allowed by p-cube = " << pcubePathCount(cube, src, dst)
              << " (fully adaptive: "
              << factorial(cube.hammingDistance(src, dst)) << ")\n\n";

    std::cout << std::setw(12) << "address" << std::setw(9) << "choices"
              << std::setw(9) << "(nonmin)" << std::setw(11)
              << "dim taken" << std::setw(10) << "phase" << '\n';

    struct Row
    {
        std::string address;
        std::size_t choices;
        std::size_t nonmin;
        int dim;
        const char *phase;
    };
    std::vector<Row> rows;

    NodeId at = src;
    for (int dim : taken) {
        const auto ch = pcube.choices(at, dst);
        const bool phase1 = (at & complementBits(dst, 10)) != 0;
        rows.push_back({std::bitset<10>(at).to_string(),
                        ch.minimal_dims.size(),
                        ch.nonminimal_dims.size(), dim,
                        phase1 ? "phase 1" : "phase 2"});
        at = cube.neighborAcross(at, dim);
    }

    for (const Row &row : rows) {
        std::cout << std::setw(12) << row.address << std::setw(9)
                  << row.choices << std::setw(7) << "(+" << row.nonmin
                  << ")" << std::setw(10) << row.dim << std::setw(10)
                  << row.phase << '\n';
    }
    std::cout << std::setw(12) << std::bitset<10>(at)
              << "  destination\n\n";

    std::cout << "-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"address", "choices", "nonminimal_extra", "dim_taken",
                "phase"});
    for (const Row &row : rows) {
        csv.beginRow()
            .field(row.address)
            .field(static_cast<std::uint64_t>(row.choices))
            .field(static_cast<std::uint64_t>(row.nonmin))
            .field(row.dim)
            .field(row.phase);
        csv.endRow();
    }
    return 0;
}
