/**
 * @file
 * Microbenchmark of the cycle-level wormhole engine itself: how many
 * simulated cycles (and flit-channel traversals) per wall-clock
 * second Network::step() sustains. The figure sweeps (Figs. 13-16)
 * spend essentially all of their time here, so this number bounds
 * every experiment's turnaround. Scenarios cover the regimes that
 * stress different parts of the hot loop: a 16x16 mesh under uniform
 * traffic near saturation (dense move lists, long wormhole chains),
 * the same mesh at light load (idle-skip path), transpose under an
 * adaptive algorithm (multi-candidate routing decisions), and a
 * double-y virtualized mesh (physical-channel arbitration).
 *
 * Self-timed (steady_clock over chunked cycles; no external
 * benchmark dependency). `--json[=PATH]` emits machine-readable
 * results; tools/perf_compare.py diffs two such files and the CI
 * perf smoke job gates on the committed BENCH_sim.json baseline.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <thread>

#include "core/routing/factory.hpp"
#include "select/factory.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"
#include "topology/virtual_channels.hpp"
#include "traffic/pattern.hpp"
#include "util/json.hpp"

using namespace turnmodel;

namespace {

struct Scenario
{
    std::string name;
    const Topology *topo;
    std::string algorithm;
    std::string pattern;
    double rate;
    /** Engine under test; the VC router exercises a different hot
     * loop (VA/SA arbitration, credit returns) than the classic
     * single-buffer router. */
    RouterModel model = RouterModel::Classic;
    /** Shards stepping the network (SimConfig::sim_threads). */
    unsigned threads = 1;
    /** Output-selection policy; empty = engine default. */
    std::string sel;
    /** Closed-loop request/reply workload (traffic/workload.hpp):
     * exercises the reply-scheduling path in the delivery hot loop. */
    bool reqreply = false;
};

struct Timing
{
    std::string name;
    std::string sel;                 ///< Effective selection policy.
    unsigned threads = 1;            ///< Shards stepping the net.
    std::uint64_t cycles = 0;        ///< Timed cycles.
    std::uint64_t flit_moves = 0;    ///< Traversals in the window.
    double wall_seconds = 0.0;
    double cycles_per_sec = 0.0;
    double flit_moves_per_sec = 0.0;
    double flit_moves_per_cycle = 0.0;
};

/**
 * Warm the network into steady state, then time step() in chunks
 * until at least @p min_seconds of wall clock have accumulated.
 * Completions are drained into a reused buffer each chunk, exactly
 * as the measurement driver does.
 */
Timing
benchScenario(const Scenario &s, std::uint64_t warmup,
              double min_seconds)
{
    using Clock = std::chrono::steady_clock;
    const RoutingPtr routing = makeRouting(s.algorithm, *s.topo);
    const PatternPtr pattern = makePattern(s.pattern, *s.topo);
    SimConfig cfg;
    cfg.injection_rate = s.rate;
    cfg.router_model = s.model;
    cfg.sim_threads = s.threads;
    cfg.selection_policy = s.sel;
    cfg.workload.request_reply = s.reqreply;
    const std::unique_ptr<NetworkEngine> net =
        makeEngine(*routing, *pattern, cfg);
    std::vector<Completion> done;

    for (std::uint64_t c = 0; c < warmup; ++c)
        net->step();
    net->drainCompletions(done);

    constexpr std::uint64_t kChunk = 2000;
    const std::uint64_t moves_before = net->counters().flit_moves;
    Timing t;
    t.name = s.name;
    t.sel = s.sel.empty() ? toString(cfg.output_selection) : s.sel;
    t.threads = s.threads;
    auto elapsed = Clock::duration::zero();
    while (elapsed < std::chrono::duration<double>(min_seconds)) {
        const auto t0 = Clock::now();
        for (std::uint64_t c = 0; c < kChunk; ++c)
            net->step();
        net->drainCompletions(done);
        elapsed += Clock::now() - t0;
        t.cycles += kChunk;
    }
    t.flit_moves = net->counters().flit_moves - moves_before;
    t.wall_seconds =
        std::chrono::duration<double>(elapsed).count();
    t.cycles_per_sec =
        static_cast<double>(t.cycles) / t.wall_seconds;
    t.flit_moves_per_sec =
        static_cast<double>(t.flit_moves) / t.wall_seconds;
    t.flit_moves_per_cycle = static_cast<double>(t.flit_moves)
        / static_cast<double>(t.cycles);
    return t;
}

void
printText(const std::vector<Timing> &rows)
{
    std::cout << "== simulator hot-loop microbenchmark ==\n";
    std::cout << std::left << std::setw(24) << "scenario"
              << std::right << std::setw(14) << "cycles/sec"
              << std::setw(16) << "flit-moves/sec"
              << std::setw(13) << "moves/cycle\n";
    for (const Timing &t : rows) {
        std::cout << std::left << std::setw(24) << t.name
                  << std::right << std::fixed << std::setprecision(0)
                  << std::setw(14) << t.cycles_per_sec
                  << std::setw(16) << t.flit_moves_per_sec
                  << std::setprecision(2) << std::setw(13)
                  << t.flit_moves_per_cycle << "\n";
    }
}

void
writeJson(std::ostream &os, const std::vector<Timing> &rows)
{
    // host_cpus lets the comparator judge scaling results: thread
    // scaling is only meaningful where the hardware can supply the
    // parallelism (see tools/perf_compare.py).
    os << "{\n  \"benchmark\": \"micro_sim\",\n  \"host_cpus\": "
       << std::thread::hardware_concurrency() << ",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Timing &t = rows[i];
        os << "    {\"name\": \"" << jsonEscape(t.name)
           << "\", \"selection_policy\": \"" << jsonEscape(t.sel)
           << "\", \"threads\": " << t.threads
           << ", \"cycles\": " << t.cycles
           << ", \"flit_moves\": " << t.flit_moves
           << ", \"wall_seconds\": ";
        writeJsonNumber(os, t.wall_seconds);
        os << ", \"cycles_per_sec\": ";
        writeJsonNumber(os, t.cycles_per_sec);
        os << ", \"flit_moves_per_sec\": ";
        writeJsonNumber(os, t.flit_moves_per_sec);
        os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::string json_path;
    std::string only;
    std::string sel_override;
    std::uint64_t warmup = 3000;
    double min_seconds = 1.0;
    int sim_threads_override = -1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_path = arg.substr(7);
        } else if (arg == "--quick") {
            warmup = 1000;
            min_seconds = 0.25;
        } else if (arg.rfind("--only=", 0) == 0) {
            only = arg.substr(7);
        } else if (arg.rfind("--sim-threads=", 0) == 0) {
            char *end = nullptr;
            const char *val =
                arg.c_str() + std::string("--sim-threads=").size();
            const unsigned long n = std::strtoul(val, &end, 10);
            if (end == val || *end != '\0' || n == 0) {
                std::cerr << "--sim-threads needs a positive "
                             "integer, got '" << val << "'\n";
                return 2;
            }
            sim_threads_override = static_cast<int>(n);
        } else if (arg.rfind("--sel=", 0) == 0) {
            sel_override = arg.substr(std::string("--sel=").size());
            const auto names = availableSelectionPolicyNames();
            if (std::find(names.begin(), names.end(),
                          sel_override) == names.end()) {
                std::cerr << "unknown selection policy '"
                          << sel_override << "' (available:";
                for (const std::string &n : names)
                    std::cerr << ' ' << n;
                std::cerr << ")\n";
                return 2;
            }
        } else {
            std::cerr << "usage: micro_sim [--quick] "
                         "[--only=NAME] [--sim-threads=N] "
                         "[--sel=NAME] [--json[=PATH]]\n";
            return 2;
        }
    }

    NDMesh mesh16 = NDMesh::mesh2D(16, 16);
    VirtualizedMesh vmesh = VirtualizedMesh::doubleY(8, 8);
    VirtualizedMesh vmesh16 = VirtualizedMesh::uniform({16, 16}, 2);
    // Large-network scaling trio: big enough that each shard owns
    // thousands of ports and the barrier cost amortizes.
    NDMesh mesh64 = NDMesh::mesh2D(64, 64);
    KAryNCube cube16(16, 3);
    VirtualizedMesh vmesh32 = VirtualizedMesh::uniform({32, 32}, 2);
    const std::vector<Scenario> scenarios = {
        {"mesh16_uniform_sat", &mesh16, "xy", "uniform", 0.22},
        {"mesh16_uniform_low", &mesh16, "xy", "uniform", 0.05},
        {"mesh16_transpose_wf", &mesh16, "west-first", "transpose",
         0.12},
        {"vmesh8_mady_uniform", &vmesh, "mad-y", "uniform", 0.20},
        {"vc16_escape_uniform", &vmesh16, "vc:xy", "uniform", 0.20,
         RouterModel::VcCredit},
        {"mesh64_uniform_sat_t1", &mesh64, "xy", "uniform", 0.06,
         RouterModel::Classic, 1},
        {"mesh64_uniform_sat_t4", &mesh64, "xy", "uniform", 0.06,
         RouterModel::Classic, 4},
        {"mesh64_uniform_sat_t8", &mesh64, "xy", "uniform", 0.06,
         RouterModel::Classic, 8},
        {"cube16_uniform_t1", &cube16,
         "wrap-first-hop:dimension-order", "uniform", 0.10,
         RouterModel::Classic, 1},
        {"cube16_uniform_t4", &cube16,
         "wrap-first-hop:dimension-order", "uniform", 0.10,
         RouterModel::Classic, 4},
        {"cube16_uniform_t8", &cube16,
         "wrap-first-hop:dimension-order", "uniform", 0.10,
         RouterModel::Classic, 8},
        {"vc32_escape_t1", &vmesh32, "vc:xy", "uniform", 0.12,
         RouterModel::VcCredit, 1},
        {"vc32_escape_t4", &vmesh32, "vc:xy", "uniform", 0.12,
         RouterModel::VcCredit, 4},
        {"vc32_escape_t8", &vmesh32, "vc:xy", "uniform", 0.12,
         RouterModel::VcCredit, 8},
        // Selection-policy dispatch overhead on the hot path: the
        // free-slot snapshot under saturated uniform traffic, and
        // the regional EWMA pipeline under adaptive transpose.
        {"sel_uniform", &mesh16, "negative-first", "uniform", 0.22,
         RouterModel::Classic, 1, "local-congestion"},
        {"sel_transpose", &mesh16, "negative-first", "transpose",
         0.12, RouterModel::Classic, 1, "regional"},
        // Closed-loop request/reply: every delivery schedules a reply
        // at its destination's source, doubling generation work and
        // exercising the reply queue in the delivery path. Offered
        // rate is kept moderate since replies add their own load.
        {"reqreply_16x16", &mesh16, "xy", "uniform", 0.08,
         RouterModel::Classic, 1, "", true},
    };

    std::vector<Timing> rows;
    rows.reserve(scenarios.size());
    for (Scenario s : scenarios) {
        if (!only.empty() && s.name != only)
            continue;
        if (sim_threads_override > 0)
            s.threads = static_cast<unsigned>(sim_threads_override);
        if (!sel_override.empty())
            s.sel = sel_override;
        rows.push_back(benchScenario(s, warmup, min_seconds));
    }
    if (rows.empty()) {
        std::cerr << "no scenario matches --only=" << only << "\n";
        return 2;
    }

    printText(rows);
    if (json) {
        if (json_path.empty()) {
            writeJson(std::cout, rows);
        } else {
            std::ofstream out(json_path);
            if (!out) {
                std::cerr << "cannot open " << json_path << "\n";
                return 1;
            }
            writeJson(out, rows);
            std::cout << "json written to " << json_path << "\n";
        }
    }
    return 0;
}
