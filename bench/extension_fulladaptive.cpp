/**
 * @file
 * The paper's announced follow-up ([18], Section 2: "Adding extra
 * physical or virtual channels to the topologies allows the model to
 * produce fully adaptive routing algorithms"): the mad-y algorithm
 * on a 16x16 mesh whose y channels are doubled, against the
 * partially adaptive and nonadaptive algorithms on the plain mesh.
 * The virtual channels share physical wire bandwidth, so the
 * comparison is at equal wiring.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/adaptiveness.hpp"
#include "topology/mesh.hpp"
#include "topology/virtual_channels.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);

    // Analytic preface: mad-y is *fully* adaptive (mean S/S_f = 1 on
    // the physical mesh) while the single-channel algorithms are
    // not.
    {
        NDMesh physical = NDMesh::mesh2D(8, 8);
        VirtualizedMesh vmesh = VirtualizedMesh::doubleY(8, 8);
        RoutingPtr mady = makeRouting("mad-y", vmesh);
        RoutingPtr wf = makeRouting("west-first", physical);
        std::cout << "adaptiveness on an 8x8 mesh (physical shortest "
                     "paths):\n";
        std::size_t full = 0, pairs = 0;
        for (NodeId s = 0; s < physical.numNodes(); ++s) {
            for (NodeId d = 0; d < physical.numNodes(); ++d) {
                if (s == d)
                    continue;
                ++pairs;
                // mad-y offers every profitable physical direction
                // at the source iff the projection matches.
                const auto offers = mady->route(s, std::nullopt, d);
                std::vector<bool> seen(4, false);
                for (Direction dir : offers)
                    seen[vmesh.physicalDirection(dir).id()] = true;
                bool all = true;
                for (Direction dir : minimalDirections(physical, s, d))
                    all = all && seen[dir.id()];
                if (all)
                    ++full;
            }
        }
        std::cout << "  mad-y fully adaptive pairs: " << full << "/"
                  << pairs << "\n";
        const auto s = summarizeAdaptiveness(*wf);
        std::cout << "  west-first mean S/S_f: " << std::fixed
                  << std::setprecision(3) << s.mean_ratio << "\n\n";
    }

    VirtualizedMesh vmesh = VirtualizedMesh::doubleY(16, 16);
    for (const char *pattern : {"uniform", "transpose"}) {
        bench::runFigure(
            bench::figureSpec(
                std::string(
                    "fully-adaptive extension: double-y 16x16 / ")
                    + pattern,
                vmesh, pattern, {"mad-y"}, "mad-y", 0.02, 0.40,
                fidelity),
            fidelity);
    }
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    for (const char *pattern : {"uniform", "transpose"}) {
        bench::runFigure(
            bench::figureSpec(
                std::string("baseline: plain 16x16 / ") + pattern,
                mesh, pattern,
                {"xy", "west-first", "negative-first"}, "xy",
                0.02, 0.40, fidelity),
            fidelity);
    }
    return 0;
}
