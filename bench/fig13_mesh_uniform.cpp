/**
 * @file
 * Figure 13: latency vs. throughput for uniform traffic in a 16x16
 * mesh, comparing the nonadaptive xy algorithm with the partially
 * adaptive west-first, north-last, and negative-first algorithms.
 *
 * Paper's finding: at low throughput all algorithms perform about
 * the same; at high throughput the nonadaptive algorithm has the
 * lower latencies and the highest sustainable throughput, because
 * dimension-order routing happens to preserve the global evenness of
 * uniform traffic while adaptive choices based on local information
 * disturb it.
 */

#include "bench_common.hpp"
#include "topology/mesh.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    const ExperimentSpec spec = bench::figureSpec(
        "figure-13: 16x16 mesh / uniform", mesh, "uniform",
        {"xy", "west-first", "north-last", "negative-first"},
        "xy", 0.02, 0.30, fidelity);
    bench::runFigure(spec, fidelity);
    return 0;
}
