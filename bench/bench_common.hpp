/**
 * @file
 * Shared scaffolding for the figure benchmarks: a standard sweep
 * configuration (the paper's Section 6 setup), command-line fidelity
 * control, and the ratio summary each figure's caption states.
 */

#ifndef TURNMODEL_BENCH_COMMON_HPP
#define TURNMODEL_BENCH_COMMON_HPP

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/routing/factory.hpp"
#include "sim/sweep.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {
namespace bench {

/** Fidelity presets selectable with --quick / --full. */
struct Fidelity
{
    std::uint64_t warmup = 8000;
    std::uint64_t measure = 20000;
    int rate_points = 8;
    /** With --json=PATH, also write the series as JSON there. */
    std::string json_path;
};

inline Fidelity
parseFidelity(int argc, char **argv)
{
    Fidelity f;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            f.warmup = 2000;
            f.measure = 6000;
            f.rate_points = 5;
        } else if (arg == "--full") {
            f.warmup = 20000;
            f.measure = 60000;
            f.rate_points = 12;
        } else if (arg.rfind("--json=", 0) == 0) {
            f.json_path = arg.substr(std::string("--json=").size());
        }
    }
    return f;
}

/** Write sweep series to fidelity.json_path when set. */
inline void
maybeWriteJson(const Fidelity &fidelity, const std::string &experiment,
               const std::vector<SweepSeries> &series)
{
    if (fidelity.json_path.empty())
        return;
    std::ofstream out(fidelity.json_path);
    if (!out) {
        std::cerr << "cannot write " << fidelity.json_path << '\n';
        return;
    }
    writeSeriesJson(out, experiment, series);
    std::cout << "wrote " << fidelity.json_path << '\n';
}

/**
 * Run one figure: sweep every named algorithm against the pattern
 * and print the latency/throughput series plus the sustainable-
 * throughput ratios relative to the named baseline.
 */
inline void
runFigure(const std::string &title, const Topology &topo,
          const std::string &pattern_name,
          const std::vector<std::string> &algorithms,
          const std::string &baseline, double rate_lo, double rate_hi,
          const Fidelity &fidelity)
{
    PatternPtr pattern = makePattern(pattern_name, topo);
    SweepConfig sweep;
    sweep.injection_rates =
        SweepConfig::ladder(rate_lo, rate_hi, fidelity.rate_points);
    sweep.sim.warmup_cycles = fidelity.warmup;
    sweep.sim.measure_cycles = fidelity.measure;

    std::vector<SweepSeries> all;
    for (const std::string &name : algorithms) {
        RoutingPtr routing = makeRouting(name, topo);
        all.push_back(runSweep(*routing, *pattern, sweep));
    }
    printSeries(std::cout, title, all);
    maybeWriteJson(fidelity, title, all);

    double base = 0.0;
    for (const SweepSeries &s : all) {
        if (s.algorithm == baseline)
            base = s.maxSustainableThroughput();
    }
    std::cout << "-- summary (max sustainable throughput vs "
              << baseline << ") --\n";
    for (const SweepSeries &s : all) {
        const double t = s.maxSustainableThroughput();
        std::cout << "  " << s.algorithm << ": " << t << " flits/us";
        if (base > 0.0)
            std::cout << "  (" << t / base << "x)";
        std::cout << '\n';
    }
    std::cout << std::endl;
}

} // namespace bench
} // namespace turnmodel

#endif // TURNMODEL_BENCH_COMMON_HPP
