/**
 * @file
 * Shared scaffolding for the figure benchmarks, reduced to spec
 * parsing: a standard fidelity preset (the paper's Section 6 setup)
 * selected on the command line, and helpers that turn a figure's
 * parameters into a declarative ExperimentSpec executed by the
 * thread-parallel runner (exec/runner.hpp).
 */

#ifndef TURNMODEL_BENCH_COMMON_HPP
#define TURNMODEL_BENCH_COMMON_HPP

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/routing/factory.hpp"
#include "exec/experiment.hpp"
#include "exec/result_sink.hpp"
#include "exec/runner.hpp"
#include "select/factory.hpp"

namespace turnmodel {
namespace bench {

/** Fidelity presets selectable with --quick / --full. */
struct Fidelity
{
    std::uint64_t warmup = 8000;
    std::uint64_t measure = 20000;
    int rate_points = 8;
    /** With --json=PATH, also write the series as JSON there. */
    std::string json_path;
    /** Sweep-point jobs run in parallel; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Shards stepping each network (SimConfig::sim_threads). The
     * runner clamps this back to 1 whenever jobs > 1 — sweep points
     * already saturate the pool. */
    unsigned sim_threads = 1;
    /** With --obs=PATH, also run an observability study (channel
     * counters + time-series sampler) and write it there. */
    std::string obs_path;
    /** --trace=N: retain the last N packet events in the obs study. */
    std::size_t trace_capacity = 0;
    /** --obs-rate=R: injection rate of the obs study; 0 picks the
     * middle of the figure's rate ladder. */
    double obs_rate = 0.0;
    /** --sel=NAME: output-selection policy (select/factory.hpp);
     * empty keeps each benchmark's configured default. */
    std::string sel;
    /** Workload shape (traffic/workload.hpp): --reqreply,
     * --reply-len=N, --think=N, --mmpp=ON,OFF and
     * --storm=PERIOD,DUTY,FRAC[,HOTSPOT] fill this in; defaults keep
     * the classic open-loop Poisson workload. */
    WorkloadConfig workload;
};

/**
 * Exit with a strict unknown-name error unless @p name is a
 * registered selection policy (same idiom as the routing factory,
 * but diagnosable before any engine is built).
 */
inline void
requireSelectionPolicy(const std::string &name, const char *argv0)
{
    const std::vector<std::string> names =
        availableSelectionPolicyNames();
    if (std::find(names.begin(), names.end(), name) != names.end())
        return;
    std::cerr << argv0 << ": unknown selection policy '" << name
              << "' (available:";
    for (const std::string &n : names)
        std::cerr << ' ' << n;
    std::cerr << ")\n";
    std::exit(2);
}

/**
 * Parse the standard benchmark flags. Unknown flags are an error:
 * a usage message is printed and the process exits, so a typo like
 * --ful cannot silently run at default fidelity.
 */
inline Fidelity
parseFidelity(int argc, char **argv)
{
    Fidelity f;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            f.warmup = 2000;
            f.measure = 6000;
            f.rate_points = 5;
        } else if (arg == "--full") {
            f.warmup = 20000;
            f.measure = 60000;
            f.rate_points = 12;
        } else if (arg.rfind("--json=", 0) == 0) {
            f.json_path = arg.substr(std::string("--json=").size());
        } else if (arg.rfind("--jobs=", 0) == 0) {
            f.jobs = static_cast<unsigned>(std::strtoul(
                arg.c_str() + std::string("--jobs=").size(),
                nullptr, 10));
        } else if (arg.rfind("--sim-threads=", 0) == 0) {
            char *end = nullptr;
            const char *val =
                arg.c_str() + std::string("--sim-threads=").size();
            const unsigned long n = std::strtoul(val, &end, 10);
            if (end == val || *end != '\0' || n == 0) {
                std::cerr << "--sim-threads needs a positive "
                             "integer, got '" << val << "'\n";
                std::exit(2);
            }
            f.sim_threads = static_cast<unsigned>(n);
        } else if (arg.rfind("--obs=", 0) == 0) {
            f.obs_path = arg.substr(std::string("--obs=").size());
        } else if (arg.rfind("--trace=", 0) == 0) {
            f.trace_capacity = static_cast<std::size_t>(std::strtoul(
                arg.c_str() + std::string("--trace=").size(),
                nullptr, 10));
        } else if (arg.rfind("--obs-rate=", 0) == 0) {
            f.obs_rate = std::strtod(
                arg.c_str() + std::string("--obs-rate=").size(),
                nullptr);
        } else if (arg.rfind("--sel=", 0) == 0) {
            f.sel = arg.substr(std::string("--sel=").size());
            requireSelectionPolicy(f.sel, argv[0]);
        } else if (arg == "--reqreply") {
            f.workload.request_reply = true;
        } else if (arg.rfind("--reply-len=", 0) == 0) {
            const unsigned long n = std::strtoul(
                arg.c_str() + std::string("--reply-len=").size(),
                nullptr, 10);
            if (n == 0) {
                std::cerr << "--reply-len needs a positive integer\n";
                std::exit(2);
            }
            f.workload.reply_length = static_cast<std::uint32_t>(n);
        } else if (arg.rfind("--think=", 0) == 0) {
            f.workload.think_cycles = std::strtoull(
                arg.c_str() + std::string("--think=").size(),
                nullptr, 10);
        } else if (arg.rfind("--mmpp=", 0) == 0) {
            const char *val =
                arg.c_str() + std::string("--mmpp=").size();
            char *end = nullptr;
            f.workload.burst_on_cycles = std::strtod(val, &end);
            if (end == val || *end != ',') {
                std::cerr << "--mmpp needs ON,OFF mean dwell cycles\n";
                std::exit(2);
            }
            f.workload.burst_off_cycles = std::strtod(end + 1, nullptr);
            if (f.workload.burst_on_cycles <= 0.0 ||
                f.workload.burst_off_cycles <= 0.0) {
                std::cerr << "--mmpp dwell times must be positive\n";
                std::exit(2);
            }
        } else if (arg.rfind("--storm=", 0) == 0) {
            const char *val =
                arg.c_str() + std::string("--storm=").size();
            char *end = nullptr;
            f.workload.storm_period_cycles = std::strtoull(val, &end, 10);
            if (end == val || *end != ',' ||
                f.workload.storm_period_cycles == 0) {
                std::cerr << "--storm needs PERIOD,DUTY,FRAC"
                             "[,HOTSPOT]\n";
                std::exit(2);
            }
            val = end + 1;
            f.workload.storm_duty = std::strtod(val, &end);
            if (end == val || *end != ',') {
                std::cerr << "--storm needs PERIOD,DUTY,FRAC"
                             "[,HOTSPOT]\n";
                std::exit(2);
            }
            val = end + 1;
            f.workload.storm_fraction = std::strtod(val, &end);
            if (*end == ',')
                f.workload.storm_hotspot =
                    std::strtoll(end + 1, nullptr, 10);
        } else {
            std::cerr << "unknown option '" << arg << "'\n"
                      << "usage: " << argv[0]
                      << " [--quick|--full] [--json=PATH] [--jobs=N]"
                         " [--sim-threads=N] [--sel=NAME]"
                         " [--obs=PATH] [--obs-rate=R] [--trace=N]"
                         " [--reqreply] [--reply-len=N] [--think=N]"
                         " [--mmpp=ON,OFF]"
                         " [--storm=PERIOD,DUTY,FRAC[,HOTSPOT]]\n";
            std::exit(2);
        }
    }
    return f;
}

/**
 * Build the spec of one figure sweep: every named algorithm against
 * the pattern over a geometric rate ladder, at the given fidelity.
 */
inline ExperimentSpec
figureSpec(const std::string &title, const Topology &topo,
           const std::string &pattern_name,
           std::vector<std::string> algorithms,
           const std::string &baseline, double rate_lo, double rate_hi,
           const Fidelity &fidelity)
{
    ExperimentSpec spec;
    spec.name = title;
    spec.topology = &topo;
    spec.pattern = pattern_name;
    spec.algorithms = std::move(algorithms);
    spec.baseline = baseline;
    spec.injection_rates =
        SweepConfig::ladder(rate_lo, rate_hi, fidelity.rate_points);
    spec.sim.warmup_cycles = fidelity.warmup;
    spec.sim.measure_cycles = fidelity.measure;
    spec.sim.sim_threads = fidelity.sim_threads;
    spec.sim.selection_policy = fidelity.sel;
    spec.sim.workload = fidelity.workload;
    return spec;
}

/**
 * Run one figure spec through the parallel runner and report it:
 * the latency/throughput series, the optional JSON file, and the
 * sustainable-throughput ratios against the spec's baseline.
 */
inline ExperimentResult
runFigure(const ExperimentSpec &spec, const Fidelity &fidelity)
{
    Runner runner(fidelity.jobs);
    const ExperimentResult result = runner.run(spec);
    ResultSink::writeText(std::cout, result);
    ResultSink::writeJsonFile(fidelity.json_path, result);
    ResultSink::writeSummary(std::cout, result, spec.baseline);
    std::cout << std::endl;

    if (!fidelity.obs_path.empty()) {
        // One observed run per algorithm at a single rate — by
        // default the middle of the figure's ladder, a loaded but
        // typically unsaturated operating point.
        const double rate = fidelity.obs_rate > 0.0
            ? fidelity.obs_rate
            : spec.injection_rates[spec.injection_rates.size() / 2];
        ObsConfig obs;
        obs.channel_counters = true;
        obs.sample_stride =
            std::max<std::uint64_t>(1, fidelity.measure / 50);
        obs.trace_capacity = fidelity.trace_capacity;
        const ObsStudy study = runner.runObs(spec, rate, obs);
        ResultSink::writeObsJsonFile(fidelity.obs_path, study);
    }
    return result;
}

} // namespace bench
} // namespace turnmodel

#endif // TURNMODEL_BENCH_COMMON_HPP
