/**
 * @file
 * The Section 3 enumeration and Theorem 1/6 counts:
 *
 *  - all sixteen ways of prohibiting one turn from each abstract
 *    cycle of a 2D mesh, with the CDG verdict for each (twelve are
 *    deadlock free; the four failures pair a turn with its reverse,
 *    Figure 4);
 *  - the three unique algorithms under the square's symmetries;
 *  - the turn/cycle counts 4n(n-1) and n(n-1) for n up to 8.
 */

#include <iomanip>
#include <iostream>

#include "core/channel_dependency.hpp"
#include "core/cycle_analysis.hpp"
#include "core/routing/turn_table.hpp"
#include "topology/mesh.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

int
main()
{
    NDMesh mesh = NDMesh::mesh2D(5, 5);
    const auto cycles = abstractCycles(2);

    std::cout << "== section-3: the sixteen two-turn prohibitions ==\n";
    std::cout << std::setw(26) << "prohibited pair" << std::setw(16)
              << "deadlock-free" << '\n';

    struct Entry
    {
        Turn a, b;
        bool deadlock_free;
        TurnSet set;
    };
    std::vector<Entry> entries;
    int free_count = 0;
    for (const Turn &a : cycles[0].turns) {
        for (const Turn &b : cycles[1].turns) {
            const TurnSet set = TurnSet::twoProhibited2D(a, b);
            TurnTableRouting routing(mesh, set, true);
            const bool ok = isDeadlockFree(routing);
            free_count += ok ? 1 : 0;
            entries.push_back({a, b, ok, set});
            std::cout << std::setw(12) << a.toString() << " + "
                      << std::setw(12) << b.toString() << std::setw(14)
                      << (ok ? "yes" : "NO (fig.4)") << '\n';
        }
    }
    std::cout << "deadlock-free prohibitions: " << free_count
              << " of 16 (paper: 12)\n\n";

    std::vector<TurnSet> good;
    for (const Entry &e : entries) {
        if (e.deadlock_free)
            good.push_back(e.set);
    }
    const auto reps = symmetryOrbitRepresentatives(good);
    std::cout << "unique algorithms under square symmetry: "
              << reps.size() << " (paper: 3)\n";
    for (std::size_t rep : reps)
        std::cout << "  representative: " << good[rep].toString()
                  << '\n';

    std::cout << "\n== theorem-1/6: turn and cycle counts ==\n";
    std::cout << std::setw(4) << "n" << std::setw(12) << "turns"
              << std::setw(12) << "cycles" << std::setw(16)
              << "min prohibited" << '\n';
    for (int n = 2; n <= 8; ++n) {
        std::cout << std::setw(4) << n << std::setw(12)
                  << count90DegreeTurns(n) << std::setw(12)
                  << countAbstractCycles(n) << std::setw(16)
                  << minimumProhibitedTurns(n) << '\n';
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"prohibited_a", "prohibited_b", "deadlock_free"});
    for (const Entry &e : entries) {
        csv.beginRow()
            .field(e.a.toString())
            .field(e.b.toString())
            .field(e.deadlock_free ? 1 : 0);
        csv.endRow();
    }
    return 0;
}
