/**
 * @file
 * The turn model on an octagonal mesh (Section 7 future work):
 * eight-neighbor connectivity along four axes. CDG verdicts,
 * adaptiveness, and a latency/throughput sweep — the diagonal
 * channels halve typical distances and negative-first keeps most of
 * the enlarged path diversity.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/adaptiveness.hpp"
#include "core/channel_dependency.hpp"
#include "core/routing/turn_table.hpp"
#include "topology/oct.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    OctMesh oct(8, 8);

    std::cout << "== oct extension: turn analysis on " << oct.name()
              << " ==\n";
    std::cout << std::setw(26) << "routing" << std::setw(10) << "CDG"
              << std::setw(14) << "mean S_p/S_f" << std::setw(13)
              << "frac S_p=1" << '\n';
    TurnSet all(4);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting fully(oct, all, true, "fully-adaptive");
    {
        ChannelDependencyGraph cdg(fully);
        std::cout << std::setw(26) << "fully-adaptive"
                  << std::setw(10)
                  << (cdg.isAcyclic() ? "acyclic" : "CYCLIC")
                  << std::setw(14) << "1.0000" << std::setw(13) << "-"
                  << '\n';
    }
    for (const char *name : {"axis-order", "negative-first"}) {
        RoutingPtr routing = makeRouting(name, oct);
        ChannelDependencyGraph cdg(*routing);
        double ratio_sum = 0.0;
        std::uint64_t singles = 0, pairs = 0;
        for (NodeId s = 0; s < oct.numNodes(); ++s) {
            for (NodeId d = 0; d < oct.numNodes(); ++d) {
                if (s == d)
                    continue;
                const auto sp =
                    countAllowedShortestPaths(*routing, s, d);
                const auto sf =
                    countAllowedShortestPaths(fully, s, d);
                ratio_sum += static_cast<double>(sp)
                    / static_cast<double>(sf);
                singles += sp == 1 ? 1 : 0;
                ++pairs;
            }
        }
        std::cout << std::setw(26) << name << std::setw(10)
                  << (cdg.isAcyclic() ? "acyclic" : "CYCLIC")
                  << std::setw(14) << std::fixed
                  << std::setprecision(4)
                  << ratio_sum / static_cast<double>(pairs)
                  << std::setw(13)
                  << static_cast<double>(singles)
                         / static_cast<double>(pairs)
                  << '\n';
    }
    std::cout << '\n';

    bench::runFigure(
        bench::figureSpec("oct extension: 8x8 octagonal / uniform",
                          oct, "uniform",
                          {"axis-order", "negative-first"},
                          "axis-order", 0.02, 0.40, fidelity),
        fidelity);
    bench::runFigure(
        bench::figureSpec("oct extension: 8x8 octagonal / transpose",
                          oct, "transpose",
                          {"axis-order", "negative-first"},
                          "axis-order", 0.02, 0.50, fidelity),
        fidelity);
    return 0;
}
