/**
 * @file
 * Figure 15: latency vs. throughput for matrix-transpose traffic in
 * a binary 8-cube, comparing nonadaptive e-cube with the partially
 * adaptive p-cube (the hypercube negative-first), ABONF, and ABOPL.
 *
 * Paper's finding: the partially adaptive algorithms sustain about
 * twice the throughput of e-cube.
 */

#include "bench_common.hpp"
#include "topology/hypercube.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    Hypercube cube(8);
    const ExperimentSpec spec = bench::figureSpec(
        "figure-15: 8-cube / matrix-transpose", cube, "transpose",
        {"e-cube", "p-cube", "abonf", "abopl"}, "e-cube",
        0.02, 0.50, fidelity);
    bench::runFigure(spec, fidelity);
    return 0;
}
