/**
 * @file
 * Section 6's average path lengths: analytic expectations of the
 * traffic patterns and the hop counts actually measured in
 * simulation. The paper quotes 10.61 hops (uniform) vs 11.34
 * (transpose) in the 16x16 mesh, and 4.01 (uniform) vs 4.27
 * (reverse-flip) in the 8-cube — the point being that the adaptive
 * algorithms win on the nonuniform patterns *despite* their longer
 * paths.
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

namespace {

struct Row
{
    std::string topology;
    std::string pattern;
    double analytic;
    double measured;
};

Row
measure(const Topology &topo, const std::string &pattern_name,
        const std::string &algo, const bench::Fidelity &fidelity)
{
    PatternPtr pattern = makePattern(pattern_name, topo);
    Rng rng(11);
    const double analytic = pattern->averageDistance(topo, rng, 256);

    RoutingPtr routing = makeRouting(algo, topo);
    SimConfig cfg;
    cfg.injection_rate = 0.03;   // Light load: no adaptive detours.
    cfg.warmup_cycles = fidelity.warmup;
    cfg.measure_cycles = fidelity.measure;
    Simulator sim(*routing, *pattern, cfg);
    const SimResult r = sim.run();
    return {topo.name(), pattern_name, analytic, r.avg_hops};
}

} // namespace

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    Hypercube cube(8);

    struct Cell
    {
        const Topology *topo;
        const char *pattern;
        const char *algo;
    };
    const std::vector<Cell> cells{
        {&mesh, "uniform", "xy"},
        {&mesh, "transpose", "negative-first"},
        {&cube, "uniform", "e-cube"},
        {&cube, "transpose", "p-cube"},
        {&cube, "reverse-flip", "p-cube"},
    };

    std::vector<Row> rows(cells.size());
    ThreadPool pool(fidelity.jobs);
    pool.parallelFor(cells.size(), [&](std::size_t i) {
        rows[i] = measure(*cells[i].topo, cells[i].pattern,
                          cells[i].algo, fidelity);
    });

    std::cout << "== section-6: average path lengths ==\n";
    std::cout << "(paper: mesh uniform 10.61, mesh transpose 11.34, "
                 "cube uniform 4.01, cube reverse-flip 4.27)\n";
    std::cout << std::setw(16) << "topology" << std::setw(16)
              << "pattern" << std::setw(14) << "analytic"
              << std::setw(14) << "measured" << '\n';
    for (const Row &row : rows) {
        std::cout << std::setw(16) << row.topology << std::setw(16)
                  << row.pattern << std::setw(14) << std::fixed
                  << std::setprecision(3) << row.analytic
                  << std::setw(14) << row.measured << '\n';
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"topology", "pattern", "analytic_hops",
                "measured_hops"});
    for (const Row &row : rows) {
        csv.beginRow()
            .field(row.topology)
            .field(row.pattern)
            .field(row.analytic)
            .field(row.measured);
        csv.endRow();
    }
    return 0;
}
