/**
 * @file
 * The Figure 1 / Figure 4 deadlock experiments as a table: for each
 * routing configuration, saturate an 8x8 mesh with rotational
 * traffic, stop generation, and report whether the network drains
 * (deadlock free) or holds flits forever (deadlocked), alongside the
 * CDG verdict. The two columns must agree: a cyclic dependency graph
 * is what makes the simulated deadlock possible.
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "core/channel_dependency.hpp"
#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "sim/network.hpp"
#include "topology/mesh.hpp"
#include "traffic/permutation.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

namespace {

/** Quarter-rotation permutation: every packet turns the same way. */
class RotationPattern : public PermutationTraffic
{
  public:
    explicit RotationPattern(const Topology &topo)
        : PermutationTraffic(topo)
    {
    }

    NodeId map(NodeId src) const override
    {
        const Coords c = topo_.coords(src);
        const int m = topo_.radix(0);
        return topo_.node({c[1], m - 1 - c[0]});
    }

    std::string name() const override { return "rotation"; }
};

struct Verdict
{
    bool drained;
    std::uint64_t cycles;
    std::uint64_t stuck_flits;
};

Verdict
drainExperiment(const RoutingAlgorithm &routing,
                const TrafficPattern &pattern)
{
    SimConfig cfg;
    cfg.injection_rate = 0.9;
    cfg.output_selection = OutputSelection::Random;
    Network net(routing, pattern, cfg);
    while (net.now() < 5000)
        net.step();
    net.setGenerationEnabled(false);
    while (net.now() < 300000 && net.stallCycles() < 2000 &&
           (net.counters().flits_in_network > 0 ||
            net.sourceQueuePackets() > 0)) {
        net.step();
    }
    return {net.counters().flits_in_network == 0 &&
                net.sourceQueuePackets() == 0,
            net.now(), net.counters().flits_in_network};
}

} // namespace

int
main()
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RotationPattern rotation(mesh);

    struct Config
    {
        std::string name;
        std::unique_ptr<RoutingAlgorithm> routing;
    };
    std::vector<Config> configs;

    TurnSet all(2);
    all.allowAll90();
    all.allowAllStraight();
    configs.push_back({"fully-adaptive (no prohibitions)",
                       std::make_unique<TurnTableRouting>(
                           mesh, all, true, "fully-adaptive")});
    configs.push_back(
        {"figure-4 (prohibit north->west + west->north)",
         std::make_unique<TurnTableRouting>(
             mesh,
             TurnSet::twoProhibited2D(Turn(dir2d::North, dir2d::West),
                                      Turn(dir2d::West, dir2d::North)),
             true, "figure-4")});
    for (const char *name :
         {"xy", "west-first", "north-last", "negative-first"}) {
        configs.push_back({name, makeRouting(name, mesh)});
    }

    std::cout << "== figure-1/4: deadlock drain experiments "
                 "(8x8 mesh, rotation traffic) ==\n";
    std::cout << std::setw(46) << "configuration" << std::setw(12)
              << "CDG" << std::setw(12) << "simulation" << std::setw(14)
              << "stuck flits" << '\n';

    struct Row
    {
        std::string name;
        bool acyclic;
        Verdict verdict;
    };
    std::vector<Row> rows;
    for (const Config &config : configs) {
        ChannelDependencyGraph cdg(*config.routing);
        const bool acyclic = cdg.isAcyclic();
        const Verdict verdict =
            drainExperiment(*config.routing, rotation);
        rows.push_back({config.name, acyclic, verdict});
        std::cout << std::setw(46) << config.name << std::setw(12)
                  << (acyclic ? "acyclic" : "CYCLIC") << std::setw(12)
                  << (verdict.drained ? "drained" : "DEADLOCK")
                  << std::setw(14) << verdict.stuck_flits << '\n';
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"configuration", "cdg_acyclic", "drained",
                "stuck_flits", "cycles"});
    for (const Row &row : rows) {
        csv.beginRow()
            .field(row.name)
            .field(row.acyclic ? 1 : 0)
            .field(row.verdict.drained ? 1 : 0)
            .field(row.verdict.stuck_flits)
            .field(row.verdict.cycles);
        csv.endRow();
    }
    return 0;
}
