/**
 * @file
 * Ablation: input buffer depth. The paper fixes single-flit buffers
 * (one of wormhole routing's selling points); this sweep shows what
 * deeper buffers buy on the paper's hardest mesh workload, for the
 * nonadaptive and the most adaptive algorithm.
 */

#include <iomanip>
#include <iostream>

#include "core/routing/factory.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    PatternPtr pattern = makePattern("transpose", mesh);

    std::cout << "== ablation: buffer depth (16x16 mesh, transpose) "
                 "==\n";
    std::cout << std::setw(18) << "algorithm" << std::setw(8) << "depth"
              << std::setw(14) << "thruput" << std::setw(13)
              << "latency(us)" << std::setw(6) << "sat" << '\n';

    struct Row
    {
        std::string algorithm;
        std::uint32_t depth;
        SimResult result;
    };
    std::vector<Row> rows;
    for (const char *algo : {"xy", "negative-first"}) {
        RoutingPtr routing = makeRouting(algo, mesh);
        for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
            SimConfig cfg;
            cfg.injection_rate = 0.12;
            cfg.warmup_cycles = quick ? 2000 : 8000;
            cfg.measure_cycles = quick ? 6000 : 20000;
            cfg.buffer_depth = depth;
            Simulator sim(*routing, *pattern, cfg);
            rows.push_back({algo, depth, sim.run()});
            const SimResult &r = rows.back().result;
            std::cout << std::setw(18) << algo << std::setw(8) << depth
                      << std::setw(14) << std::fixed
                      << std::setprecision(2)
                      << r.throughput_flits_per_us << std::setw(13)
                      << r.avg_latency_us << std::setw(6)
                      << (r.saturated ? "yes" : "no") << '\n';
        }
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"algorithm", "buffer_depth",
                "throughput_flits_per_us", "latency_us", "saturated"});
    for (const Row &row : rows) {
        csv.beginRow()
            .field(row.algorithm)
            .field(static_cast<std::uint64_t>(row.depth))
            .field(row.result.throughput_flits_per_us)
            .field(row.result.avg_latency_us)
            .field(row.result.saturated ? 1 : 0);
        csv.endRow();
    }
    return 0;
}
