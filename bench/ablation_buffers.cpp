/**
 * @file
 * Ablation: input buffer depth x virtual-channel organization x
 * routing discipline, all on the credit-based VC router engine. The
 * paper fixes single-flit buffers and one channel per wire; this grid
 * shows what deeper buffers and extra VCs buy on the hardest mesh
 * workload (transpose, offered past saturation), and reproduces the
 * expected throughput ordering at saturation:
 *
 *     escape-VC fully adaptive >= turn model >= dimension-order
 *
 * Dimension-order and the turn model (negative-first, the paper's
 * strongest on transpose) route physical channels (one VC per wire;
 * a VirtualizedMesh keeps coordinates physical, so only VC-aware
 * algorithms can use the extra channels). The escape-VC discipline
 * owns the VC axis: two and three channels per wire, one escape plus
 * one or two fully adaptive.
 */

#include <fstream>
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "topology/virtual_channels.hpp"
#include "traffic/pattern.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"

using namespace turnmodel;

namespace {

struct Cell
{
    const char *discipline;   ///< Row label: the routing family.
    const char *algorithm;    ///< Factory name on the chosen mesh.
    int vcs;                  ///< Virtual channels per wire.
};

struct Row
{
    Cell cell;
    std::uint32_t depth;
    SimResult result;
};

void
writeJson(std::ostream &os, const std::vector<Row> &rows)
{
    os << "{\n  \"benchmark\": \"ablation_buffers\",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        os << "    {\"discipline\": \"" << jsonEscape(row.cell.discipline)
           << "\", \"algorithm\": \"" << jsonEscape(row.cell.algorithm)
           << "\", \"vcs\": " << row.cell.vcs
           << ", \"buffer_depth\": " << row.depth
           << ", \"throughput_flits_per_us\": ";
        writeJsonNumber(os, row.result.throughput_flits_per_us);
        os << ", \"latency_us\": ";
        writeJsonNumber(os, row.result.avg_latency_us);
        os << ", \"saturated\": "
           << (row.result.saturated ? "true" : "false") << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    VirtualizedMesh vmesh2 = VirtualizedMesh::uniform({16, 16}, 2);
    VirtualizedMesh vmesh3 = VirtualizedMesh::uniform({16, 16}, 3);

    const std::vector<Cell> cells{
        {"dimension-order", "xy", 1},
        {"turn-model", "negative-first", 1},
        {"escape-vc", "vc:negative-first", 2},
        {"escape-vc", "vc:negative-first", 3},
    };
    const std::vector<std::uint32_t> depths{1, 2, 4, 8};

    // Grid cells are independent simulations; run them across the
    // pool, each writing its own slot. Every job builds a private
    // routing instance (turn-table caches are not thread safe).
    std::vector<Row> rows(cells.size() * depths.size());
    ThreadPool pool(fidelity.jobs);
    pool.parallelFor(rows.size(), [&](std::size_t i) {
        const Cell &cell = cells[i / depths.size()];
        const std::uint32_t depth = depths[i % depths.size()];
        const Topology &topo = cell.vcs == 3
            ? static_cast<const Topology &>(vmesh3)
            : cell.vcs == 2 ? static_cast<const Topology &>(vmesh2)
                            : static_cast<const Topology &>(mesh);
        RoutingPtr routing = makeRouting(cell.algorithm, topo);
        PatternPtr pattern = makePattern("transpose", topo);
        SimConfig cfg;
        cfg.router_model = RouterModel::VcCredit;
        cfg.injection_rate = 0.30;   // Past transpose saturation.
        cfg.warmup_cycles = fidelity.warmup;
        cfg.measure_cycles = fidelity.measure;
        cfg.buffer_depth = depth;
        Simulator sim(*routing, *pattern, cfg);
        rows[i] = {cell, depth, sim.run()};
    });

    std::cout << "== ablation: buffer depth x VCs x discipline "
                 "(16x16 mesh, transpose, VC router) ==\n";
    std::cout << std::setw(18) << "discipline" << std::setw(20)
              << "algorithm" << std::setw(5) << "vcs" << std::setw(7)
              << "depth" << std::setw(14) << "thruput"
              << std::setw(13) << "latency(us)" << std::setw(6)
              << "sat" << '\n';
    for (const Row &row : rows) {
        const SimResult &r = row.result;
        std::cout << std::setw(18) << row.cell.discipline
                  << std::setw(20) << row.cell.algorithm
                  << std::setw(5) << row.cell.vcs << std::setw(7)
                  << row.depth << std::setw(14) << std::fixed
                  << std::setprecision(2) << r.throughput_flits_per_us
                  << std::setw(13) << r.avg_latency_us << std::setw(6)
                  << (r.saturated ? "yes" : "no") << '\n';
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"discipline", "algorithm", "vcs", "buffer_depth",
                "throughput_flits_per_us", "latency_us", "saturated"});
    for (const Row &row : rows) {
        csv.beginRow()
            .field(row.cell.discipline)
            .field(row.cell.algorithm)
            .field(static_cast<std::uint64_t>(row.cell.vcs))
            .field(static_cast<std::uint64_t>(row.depth))
            .field(row.result.throughput_flits_per_us)
            .field(row.result.avg_latency_us)
            .field(row.result.saturated ? 1 : 0);
        csv.endRow();
    }

    if (!fidelity.json_path.empty()) {
        std::ofstream out(fidelity.json_path);
        if (!out) {
            std::cerr << "cannot open " << fidelity.json_path << "\n";
            return 1;
        }
        writeJson(out, rows);
        std::cout << "json written to " << fidelity.json_path << "\n";
    }
    return 0;
}
