/**
 * @file
 * Ablation: input buffer depth. The paper fixes single-flit buffers
 * (one of wormhole routing's selling points); this sweep shows what
 * deeper buffers buy on the paper's hardest mesh workload, for the
 * nonadaptive and the most adaptive algorithm.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    PatternPtr pattern = makePattern("transpose", mesh);

    const std::vector<std::string> algos{"xy", "negative-first"};
    const std::vector<std::uint32_t> depths{1, 2, 4, 8};

    struct Row
    {
        std::string algorithm;
        std::uint32_t depth;
        SimResult result;
    };
    // Grid cells are independent simulations; run them across the
    // pool, each writing its own slot. Every job builds a private
    // routing instance (turn-table caches are not thread safe).
    std::vector<Row> rows(algos.size() * depths.size());
    ThreadPool pool(fidelity.jobs);
    pool.parallelFor(rows.size(), [&](std::size_t i) {
        const std::string &algo = algos[i / depths.size()];
        const std::uint32_t depth = depths[i % depths.size()];
        RoutingPtr routing = makeRouting(algo, mesh);
        SimConfig cfg;
        cfg.injection_rate = 0.12;
        cfg.warmup_cycles = fidelity.warmup;
        cfg.measure_cycles = fidelity.measure;
        cfg.buffer_depth = depth;
        Simulator sim(*routing, *pattern, cfg);
        rows[i] = {algo, depth, sim.run()};
    });

    std::cout << "== ablation: buffer depth (16x16 mesh, transpose) "
                 "==\n";
    std::cout << std::setw(18) << "algorithm" << std::setw(8) << "depth"
              << std::setw(14) << "thruput" << std::setw(13)
              << "latency(us)" << std::setw(6) << "sat" << '\n';
    for (const Row &row : rows) {
        const SimResult &r = row.result;
        std::cout << std::setw(18) << row.algorithm << std::setw(8)
                  << row.depth << std::setw(14) << std::fixed
                  << std::setprecision(2) << r.throughput_flits_per_us
                  << std::setw(13) << r.avg_latency_us << std::setw(6)
                  << (r.saturated ? "yes" : "no") << '\n';
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"algorithm", "buffer_depth",
                "throughput_flits_per_us", "latency_us", "saturated"});
    for (const Row &row : rows) {
        csv.beginRow()
            .field(row.algorithm)
            .field(static_cast<std::uint64_t>(row.depth))
            .field(row.result.throughput_flits_per_us)
            .field(row.result.avg_latency_us)
            .field(row.result.saturated ? 1 : 0);
        csv.endRow();
    }
    return 0;
}
