/**
 * @file
 * Figure 16: latency vs. throughput for reverse-flip traffic in a
 * binary 8-cube.
 *
 * Paper's finding: the partially adaptive algorithms sustain about
 * four times the throughput of e-cube, and these are the highest
 * sustainable throughputs observed anywhere in the hypercube (about
 * 50% above e-cube on uniform traffic) despite reverse-flip's longer
 * average paths (4.27 vs 4.01 hops).
 */

#include "bench_common.hpp"
#include "topology/hypercube.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    Hypercube cube(8);
    const ExperimentSpec spec = bench::figureSpec(
        "figure-16: 8-cube / reverse-flip", cube, "reverse-flip",
        {"e-cube", "p-cube", "abonf", "abopl"}, "e-cube",
        0.02, 0.85, fidelity);
    bench::runFigure(spec, fidelity);
    return 0;
}
