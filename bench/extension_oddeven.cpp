/**
 * @file
 * Extension study: the odd-even turn model (Chiu 2000), the
 * best-known descendant of the turn model, against the original
 * partially adaptive algorithms and xy on the paper's mesh
 * workloads plus a hotspot pattern. Odd-even's position-dependent
 * prohibitions spread the surviving adaptiveness evenly across
 * pairs, which shows up under nonuniform loads.
 */

#include "bench_common.hpp"
#include "topology/mesh.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    const std::vector<std::string> algos{"xy", "west-first",
                                         "negative-first", "odd-even"};
    bench::runFigure(
        bench::figureSpec("odd-even extension: 16x16 mesh / uniform",
                          mesh, "uniform", algos, "xy", 0.02, 0.30,
                          fidelity),
        fidelity);
    bench::runFigure(
        bench::figureSpec("odd-even extension: 16x16 mesh / transpose",
                          mesh, "transpose", algos, "xy", 0.02, 0.40,
                          fidelity),
        fidelity);
    bench::runFigure(
        bench::figureSpec(
            "odd-even extension: 16x16 mesh / hotspot 10%", mesh,
            "hotspot:0.1", algos, "xy", 0.01, 0.20, fidelity),
        fidelity);
    return 0;
}
