/**
 * @file
 * Figure 14: latency vs. throughput for matrix-transpose traffic in
 * a 16x16 mesh.
 *
 * Paper's finding: the partially adaptive algorithms sustain about
 * twice the throughput of xy, with negative-first the best — on
 * transpose pairs both coordinate deltas share a sign, so
 * negative-first is fully adaptive for every packet, and its
 * sustainable throughput here is the highest observed in the mesh
 * (about 30% above xy on uniform traffic).
 */

#include "bench_common.hpp"
#include "topology/mesh.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    const ExperimentSpec spec = bench::figureSpec(
        "figure-14: 16x16 mesh / matrix-transpose", mesh, "transpose",
        {"xy", "west-first", "north-last", "negative-first"},
        "xy", 0.02, 0.40, fidelity);
    bench::runFigure(spec, fidelity);
    return 0;
}
