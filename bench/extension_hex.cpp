/**
 * @file
 * The turn model on a hexagonal mesh (Section 7 future work). The
 * orthogonal-mesh cycle catalog does not transfer — hexagonal cycles
 * can close in three turns — but the machinery does: the channel
 * dependency graph decides deadlock freedom exactly, negative-first
 * generalizes (positive directions alone cannot form a loop), and
 * the reachability-guarded turn-table routing yields complete
 * routing functions. This bench reports the CDG verdicts, the
 * adaptiveness each algorithm retains, and a latency/throughput
 * sweep under uniform and transpose traffic on an 8x8 hex mesh.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/adaptiveness.hpp"
#include "core/channel_dependency.hpp"
#include "core/routing/turn_table.hpp"
#include "topology/hex.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    HexMesh hex(8, 8);

    std::cout << "== hex extension: turn analysis on " << hex.name()
              << " ==\n";
    std::cout << std::setw(26) << "routing" << std::setw(10) << "CDG"
              << std::setw(14) << "mean S_p/S_f" << std::setw(13)
              << "frac S_p=1" << '\n';
    // The fully adaptive reference for S_f: every turn allowed. The
    // orthogonal-mesh multinomial does not apply to hex paths, so
    // S_f is counted exhaustively like S_p.
    TurnSet all(3);
    all.allowAll90();
    all.allowAllStraight();
    TurnTableRouting fully(hex, all, true, "fully-adaptive");
    {
        ChannelDependencyGraph cdg(fully);
        std::cout << std::setw(26) << "fully-adaptive"
                  << std::setw(10)
                  << (cdg.isAcyclic() ? "acyclic" : "CYCLIC")
                  << std::setw(14) << "1.0000" << std::setw(13) << "-"
                  << '\n';
    }
    for (const char *name : {"axis-order", "negative-first"}) {
        RoutingPtr routing = makeRouting(name, hex);
        ChannelDependencyGraph cdg(*routing);
        double ratio_sum = 0.0;
        std::uint64_t singles = 0, pairs = 0;
        for (NodeId s = 0; s < hex.numNodes(); ++s) {
            for (NodeId d = 0; d < hex.numNodes(); ++d) {
                if (s == d)
                    continue;
                const auto sp =
                    countAllowedShortestPaths(*routing, s, d);
                const auto sf =
                    countAllowedShortestPaths(fully, s, d);
                ratio_sum += static_cast<double>(sp)
                    / static_cast<double>(sf);
                singles += sp == 1 ? 1 : 0;
                ++pairs;
            }
        }
        std::cout << std::setw(26) << name << std::setw(10)
                  << (cdg.isAcyclic() ? "acyclic" : "CYCLIC")
                  << std::setw(14) << std::fixed
                  << std::setprecision(4)
                  << ratio_sum / static_cast<double>(pairs)
                  << std::setw(13)
                  << static_cast<double>(singles)
                         / static_cast<double>(pairs)
                  << '\n';
    }
    std::cout << '\n';

    bench::runFigure(
        bench::figureSpec("hex extension: 8x8 hex / uniform", hex,
                          "uniform", {"axis-order", "negative-first"},
                          "axis-order", 0.02, 0.30, fidelity),
        fidelity);
    bench::runFigure(
        bench::figureSpec("hex extension: 8x8 hex / transpose", hex,
                          "transpose",
                          {"axis-order", "negative-first"},
                          "axis-order", 0.02, 0.40, fidelity),
        fidelity);
    return 0;
}
