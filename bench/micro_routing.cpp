/**
 * @file
 * Microbenchmark of routing-decision cost across the three decision
 * paths: the legacy route() vector adapter (one heap allocation per
 * call), the allocation-free routeSet() virtual, and the compiled
 * table's raw lookup(). Section 7 notes that adaptive routing "can
 * require more complex control logic for route selection" — in a
 * software router that cost is this call, so the three paths bound
 * what the DirectionSet refactor and table compilation buy. The
 * analytical machinery (CDG construction, path counting) is timed
 * too, live vs precompiled.
 *
 * Self-timed (steady_clock over batched iterations; no external
 * benchmark dependency). `--json[=PATH]` emits machine-readable
 * results for EXPERIMENTS.md.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptiveness.hpp"
#include "core/channel_dependency.hpp"
#include "core/routing/compiled.hpp"
#include "core/routing/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

using namespace turnmodel;

namespace {

/** Pre-drawn random (node, dest) pairs to keep rng out of the loop. */
std::vector<std::pair<NodeId, NodeId>>
samplePairs(const Topology &topo, std::size_t count)
{
    Rng rng(1234);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(count);
    while (pairs.size() < count) {
        const auto a = static_cast<NodeId>(
            rng.nextBounded(topo.numNodes()));
        const auto b = static_cast<NodeId>(
            rng.nextBounded(topo.numNodes()));
        if (a != b)
            pairs.emplace_back(a, b);
    }
    return pairs;
}

/**
 * Time @p fn (which runs `batch` operations per call) until at least
 * ~50 ms have elapsed, and return nanoseconds per operation.
 */
template <typename Fn>
double
nsPerOp(std::size_t batch, Fn &&fn)
{
    using Clock = std::chrono::steady_clock;
    // Warm caches and get a first estimate.
    fn();
    std::uint64_t ops = batch;
    auto elapsed = Clock::duration::zero();
    while (elapsed < std::chrono::milliseconds(50)) {
        const auto t0 = Clock::now();
        fn();
        elapsed += Clock::now() - t0;
        ops += batch;
    }
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    return ns / static_cast<double>(ops - batch);
}

/** Defeat dead-code elimination without an external dependency. */
std::uint64_t g_sink = 0;

struct PathTimes
{
    std::string topology;
    std::string algorithm;
    double legacy_ns;     ///< route(): vector adapter.
    double route_set_ns;  ///< routeSet(): virtual, allocation free.
    double compiled_ns;   ///< CompiledRoutingTable::lookup().
};

PathTimes
benchDecisionPaths(const Topology &topo, const std::string &name)
{
    const RoutingPtr routing = makeRouting(name, topo);
    const CompiledRoutingTable table(*routing);
    const auto pairs = samplePairs(topo, 1024);

    PathTimes t;
    t.topology = topo.name();
    t.algorithm = name;
    t.legacy_ns = nsPerOp(pairs.size(), [&] {
        std::uint64_t acc = 0;
        for (const auto &[src, dst] : pairs)
            acc += routing->route(src, std::nullopt, dst).size();
        g_sink += acc;
    });
    t.route_set_ns = nsPerOp(pairs.size(), [&] {
        std::uint64_t acc = 0;
        for (const auto &[src, dst] : pairs)
            acc += static_cast<std::uint64_t>(
                routing->routeSet(src, std::nullopt, dst).raw());
        g_sink += acc;
    });
    t.compiled_ns = nsPerOp(pairs.size(), [&] {
        std::uint64_t acc = 0;
        for (const auto &[src, dst] : pairs)
            acc += static_cast<std::uint64_t>(
                table.lookup(src, 0, dst).raw());
        g_sink += acc;
    });
    return t;
}

struct AnalysisTimes
{
    double cdg_live_ns;        ///< CDG straight from the algorithm.
    double cdg_precompiled_ns; ///< CDG from an existing table.
    double count_live_ns;      ///< Path counting via virtual dispatch.
    double count_compiled_ns;  ///< Path counting via the table.
};

AnalysisTimes
benchAnalysis()
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const RoutingPtr routing = makeRouting("west-first", mesh);
    const CompiledRoutingTable table(*routing);
    AnalysisTimes t;
    t.cdg_live_ns = nsPerOp(1, [&] {
        ChannelDependencyGraph cdg(*routing);
        g_sink += cdg.numEdges();
    });
    t.cdg_precompiled_ns = nsPerOp(1, [&] {
        ChannelDependencyGraph cdg(table);
        g_sink += cdg.numEdges();
    });
    const auto pairs = samplePairs(mesh, 64);
    t.count_live_ns = nsPerOp(pairs.size(), [&] {
        for (const auto &[src, dst] : pairs)
            g_sink += countAllowedShortestPaths(*routing, src, dst);
    });
    t.count_compiled_ns = nsPerOp(pairs.size(), [&] {
        for (const auto &[src, dst] : pairs)
            g_sink += countAllowedShortestPaths(table, src, dst);
    });
    return t;
}

void
printText(const std::vector<PathTimes> &rows, const AnalysisTimes &a)
{
    std::cout << "== routing-decision microbenchmark ==\n";
    std::cout << std::left << std::setw(16) << "topology"
              << std::setw(24) << "algorithm" << std::right
              << std::setw(12) << "route() ns" << std::setw(14)
              << "routeSet() ns" << std::setw(13) << "lookup() ns"
              << std::setw(10) << "speedup\n";
    for (const PathTimes &t : rows) {
        std::cout << std::left << std::setw(16) << t.topology
                  << std::setw(24) << t.algorithm << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(12) << t.legacy_ns << std::setw(14)
                  << t.route_set_ns << std::setw(13) << t.compiled_ns
                  << std::setw(9) << t.legacy_ns / t.compiled_ns
                  << "x\n";
    }
    std::cout << "== analysis machinery (8x8 mesh west-first) ==\n"
              << std::setprecision(0)
              << "  CDG build:     " << a.cdg_live_ns
              << " ns live, " << a.cdg_precompiled_ns
              << " ns precompiled\n"
              << "  path counting: " << a.count_live_ns
              << " ns live, " << a.count_compiled_ns
              << " ns compiled (per pair)\n";
}

void
writeJson(std::ostream &os, const std::vector<PathTimes> &rows,
          const AnalysisTimes &a)
{
    os << "{\n  \"benchmark\": \"micro_routing\",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const PathTimes &t = rows[i];
        os << "    {\"topology\": \"" << jsonEscape(t.topology)
           << "\", \"algorithm\": \"" << jsonEscape(t.algorithm)
           << "\", \"route_ns\": ";
        writeJsonNumber(os, t.legacy_ns);
        os << ", \"route_set_ns\": ";
        writeJsonNumber(os, t.route_set_ns);
        os << ", \"compiled_ns\": ";
        writeJsonNumber(os, t.compiled_ns);
        os << ", \"speedup_compiled_vs_route\": ";
        writeJsonNumber(os, t.legacy_ns / t.compiled_ns);
        os << ", \"speedup_route_set_vs_route\": ";
        writeJsonNumber(os, t.legacy_ns / t.route_set_ns);
        os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"analysis\": {\"cdg_live_ns\": ";
    writeJsonNumber(os, a.cdg_live_ns);
    os << ", \"cdg_precompiled_ns\": ";
    writeJsonNumber(os, a.cdg_precompiled_ns);
    os << ", \"path_count_live_ns\": ";
    writeJsonNumber(os, a.count_live_ns);
    os << ", \"path_count_compiled_ns\": ";
    writeJsonNumber(os, a.count_compiled_ns);
    os << "}\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_path = arg.substr(7);
        } else {
            std::cerr << "usage: micro_routing [--json[=PATH]]\n";
            return 2;
        }
    }

    NDMesh mesh = NDMesh::mesh2D(8, 8);
    Hypercube cube(6);
    std::vector<PathTimes> rows;
    for (const char *name :
         {"xy", "west-first", "north-last", "negative-first",
          "west-first-nonminimal"}) {
        rows.push_back(benchDecisionPaths(mesh, name));
    }
    for (const char *name : {"e-cube", "p-cube"})
        rows.push_back(benchDecisionPaths(cube, name));
    const AnalysisTimes analysis = benchAnalysis();

    printText(rows, analysis);
    if (json) {
        if (json_path.empty()) {
            writeJson(std::cout, rows, analysis);
        } else {
            std::ofstream out(json_path);
            if (!out) {
                std::cerr << "cannot open " << json_path << "\n";
                return 1;
            }
            writeJson(out, rows, analysis);
            std::cout << "json written to " << json_path << "\n";
        }
    }
    // The sink keeps the measured calls observable.
    return g_sink == 0xdeadbeef ? 1 : 0;
}
