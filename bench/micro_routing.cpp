/**
 * @file
 * Microbenchmarks of routing-decision cost (google-benchmark).
 * Section 7 notes that adaptive routing "can require more complex
 * control logic for route selection" — in a software router that
 * cost is the route() call. Measured over a fixed mix of
 * source/destination pairs per algorithm, plus the analytical
 * machinery (CDG construction, path counting).
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/adaptiveness.hpp"
#include "core/channel_dependency.hpp"
#include "core/routing/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

using namespace turnmodel;

namespace {

/** Pre-drawn random (node, dest) pairs to keep rng out of the loop. */
std::vector<std::pair<NodeId, NodeId>>
samplePairs(const Topology &topo, std::size_t count)
{
    Rng rng(1234);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(count);
    while (pairs.size() < count) {
        const auto a = static_cast<NodeId>(
            rng.nextBounded(topo.numNodes()));
        const auto b = static_cast<NodeId>(
            rng.nextBounded(topo.numNodes()));
        if (a != b)
            pairs.emplace_back(a, b);
    }
    return pairs;
}

void
benchMeshRouting(benchmark::State &state, const char *name)
{
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    RoutingPtr routing = makeRouting(name, mesh);
    const auto pairs = samplePairs(mesh, 1024);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &[src, dst] = pairs[i++ & 1023];
        benchmark::DoNotOptimize(
            routing->route(src, std::nullopt, dst));
    }
}

void
benchCubeRouting(benchmark::State &state, const char *name)
{
    Hypercube cube(8);
    RoutingPtr routing = makeRouting(name, cube);
    const auto pairs = samplePairs(cube, 1024);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &[src, dst] = pairs[i++ & 1023];
        benchmark::DoNotOptimize(
            routing->route(src, std::nullopt, dst));
    }
}

} // namespace

BENCHMARK_CAPTURE(benchMeshRouting, xy, "xy");
BENCHMARK_CAPTURE(benchMeshRouting, west_first, "west-first");
BENCHMARK_CAPTURE(benchMeshRouting, north_last, "north-last");
BENCHMARK_CAPTURE(benchMeshRouting, negative_first, "negative-first");
BENCHMARK_CAPTURE(benchMeshRouting, west_first_nonminimal,
                  "west-first-nonminimal");
BENCHMARK_CAPTURE(benchCubeRouting, e_cube, "e-cube");
BENCHMARK_CAPTURE(benchCubeRouting, p_cube, "p-cube");
BENCHMARK_CAPTURE(benchCubeRouting, abonf, "abonf");

static void
benchCdgConstruction(benchmark::State &state)
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    RoutingPtr routing = makeRouting("west-first", mesh);
    for (auto _ : state) {
        ChannelDependencyGraph cdg(*routing);
        benchmark::DoNotOptimize(cdg.isAcyclic());
    }
}
BENCHMARK(benchCdgConstruction);

static void
benchPathCounting(benchmark::State &state)
{
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    RoutingPtr routing = makeRouting("negative-first", mesh);
    const auto pairs = samplePairs(mesh, 64);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &[src, dst] = pairs[i++ & 63];
        benchmark::DoNotOptimize(
            countAllowedShortestPaths(*routing, src, dst));
    }
}
BENCHMARK(benchPathCounting);

BENCHMARK_MAIN();
