/**
 * @file
 * Synthesis summary table: run the turn-set synthesis engine across
 * the repertoire of topologies and tabulate the pipeline counts —
 * enumerated candidates, cycle-coverage pruning, symmetry classes,
 * CDG-verified deadlock-free survivors, and the best adaptiveness
 * found. On the 2D mesh the row reproduces the paper's Section 3
 * (16 candidates, 12 deadlock free, 3 unique algorithms); the other
 * rows go beyond the paper (3D mesh, hexagonal and octagonal
 * meshes, Section 7 future work).
 *
 * The 4-axis octagonal space (4^12 ~ 16.7M one-per-cycle sets) is
 * sampled, not exhausted; its counts are lower bounds and the row
 * is marked.
 *
 * A latency/throughput sweep then runs the top synthesized 2D
 * algorithm (by factory name) next to its hand-coded equivalent,
 * and the series are written to BENCH_synthesis.json (--json=PATH
 * overrides; --json= disables).
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "synthesis/engine.hpp"
#include "topology/hex.hpp"
#include "topology/mesh.hpp"
#include "topology/oct.hpp"

using namespace turnmodel;

namespace {

struct Row
{
    std::string topology;
    SynthesisReport report;
};

void
printTable(const std::vector<Row> &rows)
{
    std::cout << "== turn-set synthesis across topologies ==\n";
    std::cout << std::setw(16) << "topology" << std::setw(12)
              << "enumerated" << std::setw(9) << "pruned"
              << std::setw(9) << "kept" << std::setw(9) << "classes"
              << std::setw(10) << "dl-free" << std::setw(9)
              << "classes" << std::setw(12) << "best S_p/S_f"
              << "  top algorithm\n";
    for (const Row &row : rows) {
        const SynthesisReport &r = row.report;
        std::cout << std::setw(16) << row.topology << std::setw(12)
                  << r.enumerated << std::setw(9) << r.pruned_by_cycles
                  << std::setw(9) << r.candidates.size() << std::setw(9)
                  << r.classes.size() << std::setw(10)
                  << r.deadlockFreeCandidates() << std::setw(9)
                  << r.deadlockFreeClasses();
        if (!r.ranking.empty()) {
            const SynthesizedCandidate &best =
                r.candidates[r.ranking.front()];
            std::cout << std::setw(12) << std::fixed
                      << std::setprecision(4)
                      << best.adaptiveness.mean_ratio << "  "
                      << best.name;
        } else {
            std::cout << std::setw(12) << "-" << "  -";
        }
        if (r.sampled)
            std::cout << "  [sampled]";
        std::cout << '\n';
    }
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Fidelity fidelity = bench::parseFidelity(argc, argv);
    bool json_given = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--json", 0) == 0)
            json_given = true;
    }
    if (!json_given)
        fidelity.json_path = "BENCH_synthesis.json";

    const bool full = fidelity.measure > 20000;

    // Candidate verification and ranking fan out across
    // fidelity.jobs worker threads inside the engine.
    std::vector<Row> rows;
    {
        NDMesh mesh = NDMesh::mesh2D(5, 5);
        SynthesisConfig config;
        config.num_threads = fidelity.jobs;
        rows.push_back({"mesh 5x5", synthesize(mesh, config)});
    }
    {
        NDMesh mesh(Shape{3, 3, 3});
        SynthesisConfig config;
        config.num_threads = fidelity.jobs;
        rows.push_back({"mesh 3x3x3", synthesize(mesh, config)});
    }
    {
        HexMesh hex(full ? 4 : 3, full ? 4 : 3);
        SynthesisConfig config;
        config.num_threads = fidelity.jobs;
        if (!full)
            config.max_candidates = 1024;
        rows.push_back({hex.name(), synthesize(hex, config)});
    }
    {
        OctMesh oct(3, 3);
        SynthesisConfig config;
        config.num_threads = fidelity.jobs;
        config.max_candidates = full ? 4096 : 512;
        rows.push_back({oct.name(), synthesize(oct, config)});
    }
    printTable(rows);
    for (const Row &row : rows)
        printSynthesisReport(std::cout, row.report, 4);
    std::cout << '\n';

    // Sweep the top synthesized 2D algorithm against its hand-coded
    // equivalent. The best 2D class ties west-first / north-last /
    // negative-first, so the named baselines are the right yardstick.
    const SynthesisReport &mesh_report = rows.front().report;
    if (!mesh_report.ranking.empty()) {
        NDMesh mesh = NDMesh::mesh2D(8, 8);
        const std::string winner =
            mesh_report.candidates[mesh_report.ranking.front()].name;
        bench::runFigure(
            bench::figureSpec(
                "synthesized vs hand-coded (8x8 mesh, uniform)", mesh,
                "uniform", {winner, "west-first", "negative-first"},
                "west-first", 0.01, 0.6, fidelity),
            fidelity);
    }
    return 0;
}
