/**
 * @file
 * Fault-tolerance experiment (Sections 1, 3.3 and 7): the paper
 * argues nonminimal routing "provides better fault tolerance". For
 * increasing numbers of failed channels in an 8x8 mesh, measure the
 * fraction of ordered node pairs each routing flavor can still
 * connect: minimal vs nonminimal west-first and negative-first, and
 * the odd-even extension. Averaged over several random fault draws.
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/routing/turn_table.hpp"
#include "exec/thread_pool.hpp"
#include "topology/faults.hpp"
#include "topology/mesh.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

namespace {

double
connectivity(const RoutingAlgorithm &routing)
{
    const Topology &topo = routing.topology();
    std::size_t good = 0, total = 0;
    for (NodeId s = 0; s < topo.numNodes(); ++s) {
        for (NodeId d = 0; d < topo.numNodes(); ++d) {
            if (s == d)
                continue;
            ++total;
            if (!routing.route(s, std::nullopt, d).empty())
                ++good;
        }
    }
    return static_cast<double>(good) / static_cast<double>(total);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const int draws = 5;
    const std::vector<std::size_t> fault_counts{0, 1, 2, 4, 8, 16};

    struct Flavor
    {
        std::string name;
        TurnSet set;
        bool minimal;
        bool odd_even;   ///< Position-dependent; built via factory.
    };
    const std::vector<Flavor> flavors{
        {"west-first (minimal)", TurnSet::westFirst(), true, false},
        {"west-first (nonminimal)", TurnSet::westFirst(), false, false},
        {"negative-first (minimal)", TurnSet::negativeFirst(2), true,
         false},
        {"negative-first (nonminimal)", TurnSet::negativeFirst(2),
         false, false},
        {"xy (minimal)", TurnSet::dimensionOrder(2), true, false},
        {"odd-even (minimal)", TurnSet(2), true, true},
    };

    // One cell per (flavor, fault count), each averaging over all
    // draws. Fault draws are seeded by (draw, fault count) alone, so
    // the cells are fully independent and the grid fans out over the
    // pool deterministically.
    std::vector<std::vector<double>> fractions(
        flavors.size(), std::vector<double>(fault_counts.size(), 0.0));
    ThreadPool pool(fidelity.jobs);
    pool.parallelFor(
        flavors.size() * fault_counts.size(), [&](std::size_t i) {
            const Flavor &flavor = flavors[i / fault_counts.size()];
            const std::size_t faults =
                fault_counts[i % fault_counts.size()];
            double sum = 0.0;
            for (int d = 0; d < draws; ++d) {
                Rng rng(1000 * d + faults);
                const FaultyTopology faulty =
                    FaultyTopology::withRandomFaults(mesh, faults, rng);
                if (flavor.odd_even) {
                    RoutingPtr routing = makeRouting("odd-even", faulty);
                    sum += connectivity(*routing);
                } else {
                    TurnTableRouting routing(faulty, flavor.set,
                                             flavor.minimal,
                                             flavor.name);
                    sum += connectivity(routing);
                }
            }
            fractions[i / fault_counts.size()]
                     [i % fault_counts.size()] = sum / draws;
        });

    std::cout << "== fault tolerance: connected pair fraction "
                 "(8x8 mesh, avg of " << draws << " fault draws) ==\n";
    std::cout << std::setw(30) << "algorithm";
    for (std::size_t f : fault_counts)
        std::cout << std::setw(9) << f << "f";
    std::cout << '\n';
    for (std::size_t a = 0; a < flavors.size(); ++a) {
        std::cout << std::setw(30) << flavors[a].name;
        for (double f : fractions[a])
            std::cout << std::setw(10) << std::fixed
                      << std::setprecision(4) << f;
        std::cout << '\n';
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    std::vector<std::string> header{"algorithm"};
    for (std::size_t f : fault_counts)
        header.push_back("faults_" + std::to_string(f));
    csv.header(header);
    for (std::size_t a = 0; a < flavors.size(); ++a) {
        csv.beginRow().field(flavors[a].name);
        for (double f : fractions[a])
            csv.field(f);
        csv.endRow();
    }
    return 0;
}
