/**
 * @file
 * Fault-tolerance experiment (Sections 1, 3.3 and 7): the paper
 * argues nonminimal routing "provides better fault tolerance". For
 * increasing numbers of failed channels in an 8x8 mesh, measure the
 * fraction of ordered node pairs each routing flavor can still
 * connect: minimal vs nonminimal west-first and negative-first, and
 * the odd-even extension. Averaged over several random fault draws.
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "core/routing/factory.hpp"
#include "core/routing/turn_table.hpp"
#include "topology/faults.hpp"
#include "topology/mesh.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

namespace {

double
connectivity(const RoutingAlgorithm &routing)
{
    const Topology &topo = routing.topology();
    std::size_t good = 0, total = 0;
    for (NodeId s = 0; s < topo.numNodes(); ++s) {
        for (NodeId d = 0; d < topo.numNodes(); ++d) {
            if (s == d)
                continue;
            ++total;
            if (!routing.route(s, std::nullopt, d).empty())
                ++good;
        }
    }
    return static_cast<double>(good) / static_cast<double>(total);
}

} // namespace

int
main()
{
    NDMesh mesh = NDMesh::mesh2D(8, 8);
    const int draws = 5;
    const std::vector<std::size_t> fault_counts{0, 1, 2, 4, 8, 16};

    struct Flavor
    {
        std::string name;
        TurnSet set;
        bool minimal;
    };
    const std::vector<Flavor> flavors{
        {"west-first (minimal)", TurnSet::westFirst(), true},
        {"west-first (nonminimal)", TurnSet::westFirst(), false},
        {"negative-first (minimal)", TurnSet::negativeFirst(2), true},
        {"negative-first (nonminimal)", TurnSet::negativeFirst(2),
         false},
        {"xy (minimal)", TurnSet::dimensionOrder(2), true},
    };

    std::cout << "== fault tolerance: connected pair fraction "
                 "(8x8 mesh, avg of " << draws << " fault draws) ==\n";
    std::cout << std::setw(30) << "algorithm";
    for (std::size_t f : fault_counts)
        std::cout << std::setw(9) << f << "f";
    std::cout << '\n';

    struct Row
    {
        std::string name;
        std::vector<double> fractions;
    };
    std::vector<Row> rows;
    for (const Flavor &flavor : flavors) {
        Row row{flavor.name, {}};
        for (std::size_t faults : fault_counts) {
            double sum = 0.0;
            for (int d = 0; d < draws; ++d) {
                Rng rng(1000 * d + faults);
                const FaultyTopology faulty =
                    FaultyTopology::withRandomFaults(mesh, faults, rng);
                TurnTableRouting routing(faulty, flavor.set,
                                         flavor.minimal, flavor.name);
                sum += connectivity(routing);
            }
            row.fractions.push_back(sum / draws);
        }
        rows.push_back(row);
        std::cout << std::setw(30) << row.name;
        for (double f : row.fractions)
            std::cout << std::setw(10) << std::fixed
                      << std::setprecision(4) << f;
        std::cout << '\n';
    }

    // Odd-even is position-dependent, so it does not reduce to a
    // single TurnSet; measure it via the factory.
    {
        Row row{"odd-even (minimal)", {}};
        for (std::size_t faults : fault_counts) {
            double sum = 0.0;
            for (int d = 0; d < draws; ++d) {
                Rng rng(1000 * d + faults);
                const FaultyTopology faulty =
                    FaultyTopology::withRandomFaults(mesh, faults, rng);
                RoutingPtr routing = makeRouting("odd-even", faulty);
                sum += connectivity(*routing);
            }
            row.fractions.push_back(sum / draws);
        }
        rows.push_back(row);
        std::cout << std::setw(30) << row.name;
        for (double f : row.fractions)
            std::cout << std::setw(10) << std::fixed
                      << std::setprecision(4) << f;
        std::cout << '\n';
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    std::vector<std::string> header{"algorithm"};
    for (std::size_t f : fault_counts)
        header.push_back("faults_" + std::to_string(f));
    csv.header(header);
    for (const Row &row : rows) {
        csv.beginRow().field(row.name);
        for (double f : row.fractions)
            csv.field(f);
        csv.endRow();
    }
    return 0;
}
