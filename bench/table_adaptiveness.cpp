/**
 * @file
 * Adaptiveness tables (Sections 3.4 and 4.1): exhaustive S_p / S_f
 * over every source-destination pair, for the 2D algorithms on the
 * paper's 16x16 mesh and the n-dimensional algorithms on the 8-cube.
 * Verifies the paper's bounds: mean ratio above 1/2 in 2D and above
 * 1/2^{n-1} on the hypercube, with S_p = 1 for at least half of the
 * 2D pairs.
 */

#include <iomanip>
#include <iostream>

#include "core/adaptiveness.hpp"
#include "core/routing/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

namespace {

struct Row
{
    std::string topology;
    std::string algorithm;
    AdaptivenessSummary summary;
};

void
collect(const Topology &topo, const std::vector<std::string> &names,
        std::vector<Row> &rows)
{
    for (const auto &name : names) {
        RoutingPtr routing = makeRouting(name, topo);
        rows.push_back({topo.name(), name,
                        summarizeAdaptiveness(*routing)});
    }
}

} // namespace

int
main()
{
    std::vector<Row> rows;
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    collect(mesh, {"xy", "west-first", "north-last", "negative-first"},
            rows);
    Hypercube cube(8);
    collect(cube, {"e-cube", "p-cube", "abonf", "abopl"}, rows);

    std::cout << "== adaptiveness: S_p / S_f over all pairs ==\n";
    std::cout << std::setw(16) << "topology" << std::setw(16)
              << "algorithm" << std::setw(14) << "mean S_p/S_f"
              << std::setw(13) << "frac S_p=1" << std::setw(12)
              << "mean S_p" << '\n';
    for (const Row &row : rows) {
        std::cout << std::setw(16) << row.topology << std::setw(16)
                  << row.algorithm << std::setw(14) << std::fixed
                  << std::setprecision(4) << row.summary.mean_ratio
                  << std::setw(13) << row.summary.fraction_single
                  << std::setw(12) << std::setprecision(2)
                  << row.summary.mean_paths << '\n';
    }
    std::cout << "\npaper bounds: 2D partially adaptive mean ratio > "
                 "0.5; hypercube > 1/2^(n-1) = "
              << 1.0 / 128.0 << " for n = 8\n\n";

    std::cout << "-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"topology", "algorithm", "mean_ratio",
                "fraction_single", "mean_paths", "pairs"});
    for (const Row &row : rows) {
        csv.beginRow()
            .field(row.topology)
            .field(row.algorithm)
            .field(row.summary.mean_ratio)
            .field(row.summary.fraction_single)
            .field(row.summary.mean_paths)
            .field(row.summary.pairs);
        csv.endRow();
    }
    return 0;
}
