/**
 * @file
 * Ablation: input and output selection policies (the knob the
 * paper's companion study [19] investigates and Section 7 flags as
 * future work). Negative-first on 16x16 mesh transpose at a
 * moderately high load, across all policy combinations.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const auto fidelity = bench::parseFidelity(argc, argv);
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    PatternPtr pattern = makePattern("transpose", mesh);

    const std::vector<InputSelection> inputs{
        InputSelection::Fcfs, InputSelection::Random,
        InputSelection::FixedPriority};
    const std::vector<OutputSelection> outputs{
        OutputSelection::LowestDim, OutputSelection::HighestDim,
        OutputSelection::Random, OutputSelection::StraightFirst};

    struct Row
    {
        InputSelection in;
        OutputSelection out;
        SimResult result;
    };
    // Each policy combination is an independent simulation: fan the
    // grid out over the pool, one slot per cell, with a private
    // routing instance per job.
    std::vector<Row> rows(inputs.size() * outputs.size());
    ThreadPool pool(fidelity.jobs);
    pool.parallelFor(rows.size(), [&](std::size_t i) {
        const InputSelection in_sel = inputs[i / outputs.size()];
        const OutputSelection out_sel = outputs[i % outputs.size()];
        RoutingPtr routing = makeRouting("negative-first", mesh);
        SimConfig cfg;
        cfg.injection_rate = 0.12;
        cfg.warmup_cycles = fidelity.warmup;
        cfg.measure_cycles = fidelity.measure;
        cfg.input_selection = in_sel;
        cfg.output_selection = out_sel;
        Simulator sim(*routing, *pattern, cfg);
        rows[i] = {in_sel, out_sel, sim.run()};
    });

    std::cout << "== ablation: selection policies (negative-first, "
                 "16x16 mesh, transpose) ==\n";
    std::cout << std::setw(16) << "input" << std::setw(16) << "output"
              << std::setw(14) << "thruput" << std::setw(13)
              << "latency(us)" << std::setw(6) << "sat" << '\n';
    for (const Row &row : rows) {
        const SimResult &r = row.result;
        std::cout << std::setw(16) << toString(row.in) << std::setw(16)
                  << toString(row.out) << std::setw(14) << std::fixed
                  << std::setprecision(2) << r.throughput_flits_per_us
                  << std::setw(13) << r.avg_latency_us << std::setw(6)
                  << (r.saturated ? "yes" : "no") << '\n';
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"input_selection", "output_selection",
                "throughput_flits_per_us", "latency_us", "saturated"});
    for (const Row &row : rows) {
        csv.beginRow()
            .field(toString(row.in))
            .field(toString(row.out))
            .field(row.result.throughput_flits_per_us)
            .field(row.result.avg_latency_us)
            .field(row.result.saturated ? 1 : 0);
        csv.endRow();
    }
    return 0;
}
