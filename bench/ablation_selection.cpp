/**
 * @file
 * Ablation: input and output selection policies (the knob the
 * paper's companion study [19] investigates and Section 7 flags as
 * future work). Negative-first on 16x16 mesh transpose at a
 * moderately high load, across all policy combinations.
 */

#include <iomanip>
#include <iostream>

#include "core/routing/factory.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh.hpp"
#include "traffic/pattern.hpp"
#include "util/csv.hpp"

using namespace turnmodel;

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    NDMesh mesh = NDMesh::mesh2D(16, 16);
    RoutingPtr routing = makeRouting("negative-first", mesh);
    PatternPtr pattern = makePattern("transpose", mesh);

    std::cout << "== ablation: selection policies (negative-first, "
                 "16x16 mesh, transpose) ==\n";
    std::cout << std::setw(16) << "input" << std::setw(16) << "output"
              << std::setw(14) << "thruput" << std::setw(13)
              << "latency(us)" << std::setw(6) << "sat" << '\n';

    struct Row
    {
        InputSelection in;
        OutputSelection out;
        SimResult result;
    };
    std::vector<Row> rows;
    for (auto in_sel : {InputSelection::Fcfs, InputSelection::Random,
                        InputSelection::FixedPriority}) {
        for (auto out_sel :
             {OutputSelection::LowestDim, OutputSelection::HighestDim,
              OutputSelection::Random,
              OutputSelection::StraightFirst}) {
            SimConfig cfg;
            cfg.injection_rate = 0.12;
            cfg.warmup_cycles = quick ? 2000 : 8000;
            cfg.measure_cycles = quick ? 6000 : 20000;
            cfg.input_selection = in_sel;
            cfg.output_selection = out_sel;
            Simulator sim(*routing, *pattern, cfg);
            rows.push_back({in_sel, out_sel, sim.run()});
            const SimResult &r = rows.back().result;
            std::cout << std::setw(16) << toString(in_sel)
                      << std::setw(16) << toString(out_sel)
                      << std::setw(14) << std::fixed
                      << std::setprecision(2)
                      << r.throughput_flits_per_us << std::setw(13)
                      << r.avg_latency_us << std::setw(6)
                      << (r.saturated ? "yes" : "no") << '\n';
        }
    }

    std::cout << "\n-- csv --\n";
    CsvWriter csv(std::cout);
    csv.header({"input_selection", "output_selection",
                "throughput_flits_per_us", "latency_us", "saturated"});
    for (const Row &row : rows) {
        csv.beginRow()
            .field(toString(row.in))
            .field(toString(row.out))
            .field(row.result.throughput_flits_per_us)
            .field(row.result.avg_latency_us)
            .field(row.result.saturated ? 1 : 0);
        csv.endRow();
    }
    return 0;
}
