/**
 * @file
 * Selection-policy ablation: the full policies x algorithms x
 * traffic-patterns grid on the paper's 16x16 mesh, at one saturated
 * operating point per pattern — the regime where output selection
 * among the legal DirectionSet decides whether partially adaptive
 * routing earns its adaptiveness (the knob the paper's companion
 * study [19] investigates and Section 7 flags as future work). xy
 * rides along as the deterministic control: its DirectionSet is
 * always a singleton, so every policy must produce the same numbers.
 *
 * Every cell runs through the thread-parallel exec runner, so the
 * grid is bit-identical at any --jobs; --sel=NAME restricts it to
 * one policy. The JSON document ("turnmodel-sel-ablation-v1",
 * validated by tools/validate_selection_schema.py) declares the grid
 * axes and carries one row per cell.
 */

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <utility>

#include "bench_common.hpp"
#include "topology/mesh.hpp"
#include "util/json.hpp"

using namespace turnmodel;

namespace {

struct Cell
{
    std::string pattern;
    std::string algorithm;
    std::string policy;
    double injection_rate = 0.0;
    SimResult result;
};

void
writeNameList(std::ostream &os, const std::vector<std::string> &names)
{
    for (std::size_t i = 0; i < names.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(names[i]) << '"';
}

void
writeGridJson(std::ostream &os,
              const std::vector<std::string> &patterns,
              const std::vector<std::string> &algorithms,
              const std::vector<std::string> &policies,
              const std::vector<Cell> &cells)
{
    os << "{\"schema\": \"turnmodel-sel-ablation-v1\", "
          "\"topology\": \"mesh-16x16\", \"patterns\": [";
    writeNameList(os, patterns);
    os << "], \"algorithms\": [";
    writeNameList(os, algorithms);
    os << "], \"policies\": [";
    writeNameList(os, policies);
    os << "], \"rows\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        if (i)
            os << ", ";
        os << "{\"pattern\": \"" << jsonEscape(c.pattern)
           << "\", \"algorithm\": \"" << jsonEscape(c.algorithm)
           << "\", \"selection_policy\": \"" << jsonEscape(c.policy)
           << "\", \"injection_rate\": ";
        writeJsonNumber(os, c.injection_rate);
        os << ", \"throughput_flits_per_us\": ";
        writeJsonNumber(os, c.result.throughput_flits_per_us);
        os << ", \"avg_latency_us\": ";
        writeJsonNumber(os, c.result.avg_latency_us);
        os << ", \"delivered_ratio\": ";
        writeJsonNumber(os, c.result.delivered_ratio);
        os << ", \"saturated\": "
           << (c.result.saturated ? "true" : "false") << "}";
    }
    os << "]}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Fidelity fidelity = bench::parseFidelity(argc, argv);
    const NDMesh mesh = NDMesh::mesh2D(16, 16);

    // One operating point per pattern, past the adaptive algorithms'
    // saturation knee: under saturation the delivered throughput
    // separates the policies instead of echoing the offered load.
    const std::vector<std::pair<std::string, double>> patterns = {
        {"uniform", 0.30},
        {"transpose", 0.20},
    };
    const std::vector<std::string> algorithms = {
        "xy", "west-first", "negative-first"};
    std::vector<std::string> policies = {
        "lowest-dim",       "straight-first", "hashed",
        "local-congestion", "regional",       "lookahead"};
    if (!fidelity.sel.empty())
        policies = {fidelity.sel};

    std::vector<Cell> cells;
    Runner runner(fidelity.jobs);
    for (const auto &[pattern, rate] : patterns) {
        for (const std::string &policy : policies) {
            ExperimentSpec spec;
            spec.name = "ablation-selection/" + pattern + "/" + policy;
            spec.topology = &mesh;
            spec.pattern = pattern;
            spec.algorithms = algorithms;
            spec.injection_rates = {rate};
            spec.stop_after_saturated = 0;
            spec.sim.warmup_cycles = fidelity.warmup;
            spec.sim.measure_cycles = fidelity.measure;
            spec.sim.sim_threads = fidelity.sim_threads;
            spec.sim.selection_policy = policy;
            const ExperimentResult result = runner.run(spec);
            for (std::size_t a = 0; a < result.series.size(); ++a) {
                for (const SweepPoint &p : result.series[a].points) {
                    cells.push_back({pattern, spec.algorithms[a],
                                     policy, p.injection_rate,
                                     p.result});
                }
            }
        }
    }

    std::cout << "== ablation: selection policies (16x16 mesh) ==\n"
              << std::left << std::setw(11) << "pattern"
              << std::setw(16) << "algorithm" << std::setw(18)
              << "policy" << std::right << std::setw(9) << "thruput"
              << std::setw(11) << "lat(us)" << std::setw(11)
              << "delivered" << std::setw(5) << "sat" << '\n';
    for (const Cell &c : cells) {
        std::cout << std::left << std::setw(11) << c.pattern
                  << std::setw(16) << c.algorithm << std::setw(18)
                  << c.policy << std::right << std::fixed
                  << std::setprecision(1) << std::setw(9)
                  << c.result.throughput_flits_per_us
                  << std::setprecision(2) << std::setw(11)
                  << c.result.avg_latency_us << std::setw(11)
                  << c.result.delivered_ratio << std::setw(5)
                  << (c.result.saturated ? "yes" : "no") << '\n';
    }

    std::ostringstream doc;
    std::vector<std::string> pattern_names;
    pattern_names.reserve(patterns.size());
    for (const auto &[pattern, rate] : patterns)
        pattern_names.push_back(pattern);
    writeGridJson(doc, pattern_names, algorithms, policies, cells);
    if (fidelity.json_path.empty()) {
        std::cout << "\n-- json --\n" << doc.str();
    } else {
        std::ofstream out(fidelity.json_path);
        if (!out) {
            std::cerr << "cannot open " << fidelity.json_path << '\n';
            return 1;
        }
        out << doc.str();
        std::cout << "wrote " << fidelity.json_path << '\n';
    }
    return 0;
}
