/**
 * @file
 * The classic enum-based selection kernels (declared in
 * sim/selection.hpp). They live in the select library so the adapter
 * policies can delegate to them for exact behavioral equivalence;
 * input selection stays enum-based — the policy layer governs output
 * selection only, where the adaptiveness lives.
 */

#include "sim/selection.hpp"

#include "util/logging.hpp"

namespace turnmodel {

Direction
selectOutput(OutputSelection policy, DirectionSet candidates,
             std::optional<Direction> in_dir, Rng &rng)
{
    TM_ASSERT(!candidates.empty(), "output selection needs candidates");
    switch (policy) {
      case OutputSelection::LowestDim:
        return candidates.first();
      case OutputSelection::HighestDim:
        return candidates.last();
      case OutputSelection::Random:
        if (candidates.size() == 1)
            return candidates.first();
        return candidates.nth(static_cast<int>(
            rng.nextBounded(static_cast<std::size_t>(
                candidates.size()))));
      case OutputSelection::StraightFirst:
        // "Straight" is only defined relative to an arrival
        // direction. At the injection port (in_dir == nullopt) —
        // and whenever continuing straight is illegal or busy —
        // the policy degrades to LowestDim: the lowest direction
        // id among the candidates.
        if (in_dir && candidates.contains(*in_dir))
            return *in_dir;
        return candidates.first();
    }
    return candidates.first();
}

std::size_t
selectInput(InputSelection policy,
            const std::vector<InputRequest> &requests, Rng &rng)
{
    TM_ASSERT(!requests.empty(), "input selection needs requests");
    if (requests.size() == 1)
        return 0;
    switch (policy) {
      case InputSelection::Fcfs: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < requests.size(); ++i) {
            const auto &r = requests[i];
            const auto &b = requests[best];
            if (r.header_arrival < b.header_arrival ||
                (r.header_arrival == b.header_arrival &&
                 r.in_port < b.in_port)) {
                best = i;
            }
        }
        return best;
      }
      case InputSelection::Random:
        return static_cast<std::size_t>(
            rng.nextBounded(requests.size()));
      case InputSelection::FixedPriority: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < requests.size(); ++i) {
            if (requests[i].in_port < requests[best].in_port)
                best = i;
        }
        return best;
      }
    }
    return 0;
}

} // namespace turnmodel
