#include "select/lookahead.hpp"

#include "topology/topology.hpp"

namespace turnmodel {

LookaheadCostTable::LookaheadCostTable(const RoutingAlgorithm &routing)
    : nodes_(routing.topology().numNodes()),
      cost_(nodes_ * nodes_, kUnreachable)
{
    const Topology &topo = routing.topology();
    const NodeId n = static_cast<NodeId>(nodes_);

    // Per destination: collect the reverse adjacency of the legal
    // route edges (v -> neighbor(v, d) for d in the injection-state
    // routeSet), then BFS outward from the destination. All edges
    // cost one hop, so BFS levels are exact minima.
    std::vector<std::vector<NodeId>> preds(nodes_);
    std::vector<NodeId> queue;
    queue.reserve(nodes_);
    for (NodeId dest = 0; dest < n; ++dest) {
        for (std::vector<NodeId> &p : preds)
            p.clear();
        for (NodeId v = 0; v < n; ++v) {
            if (v == dest)
                continue;
            for (Direction d :
                 routing.routeSet(v, std::nullopt, dest)) {
                const auto w = topo.neighbor(v, d);
                if (w)
                    preds[*w].push_back(v);
            }
        }
        std::uint16_t *row =
            &cost_[static_cast<std::size_t>(dest) * nodes_];
        row[dest] = 0;
        queue.clear();
        queue.push_back(dest);
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const NodeId w = queue[head];
            const std::uint16_t c = row[w];
            for (const NodeId v : preds[w]) {
                if (row[v] == kUnreachable) {
                    row[v] = static_cast<std::uint16_t>(c + 1);
                    queue.push_back(v);
                }
            }
        }
    }
}

LookaheadPolicy::LookaheadPolicy(const RoutingAlgorithm &routing)
    : topo_(routing.topology()), table_(routing)
{
}

Direction
LookaheadPolicy::pick(const SelectionQuery &q) const
{
    std::uint32_t best = 0xffffffffu;
    DirectionSet tied;
    for (Direction d : q.candidates) {
        const auto w = topo_.neighbor(q.here, d);
        const std::uint32_t c = w
            ? table_.cost(*w, q.dest)
            : LookaheadCostTable::kUnreachable;
        if (c < best) {
            best = c;
            tied = DirectionSet{};
            tied.insert(d);
        } else if (c == best) {
            tied.insert(d);
        }
    }
    return pickHashed(tied, q);
}

} // namespace turnmodel
