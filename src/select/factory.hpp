/**
 * @file
 * Construct selection policies by name (SimConfig::selection_policy,
 * bench --sel=<name>), mirroring the routing-algorithm factory.
 *
 * Registered names:
 *   lowest-dim, highest-dim, random, straight-first
 *       — adapters for the classic OutputSelection enums (exact
 *         behavioral no-ops; `random` draws the shared router RNG
 *         and therefore pins the engine to one shard)
 *   hashed
 *       — deterministic "random-like" spread via the VTR
 *         hash_combine scheme; shards freely
 *   local-congestion
 *       — most free buffer slots / credits on the candidate outputs
 *   regional
 *       — lowest blocked-EWMA congestion over the output channel
 *         plus its 1-hop downstream neighborhood
 *   lookahead
 *       — smallest precompiled residual cost at the downstream
 *         router (select/lookahead.hpp)
 */

#ifndef TURNMODEL_SELECT_FACTORY_HPP
#define TURNMODEL_SELECT_FACTORY_HPP

#include <string>
#include <vector>

#include "core/routing.hpp"
#include "select/policy.hpp"

namespace turnmodel {

/**
 * Build the named policy. @p routing is the engine's route decider
 * (the lookahead table is compiled against it); adapters ignore it.
 * Unknown names are fatal, listing every registered policy.
 */
SelectionPolicyPtr makeSelectionPolicy(const std::string &name,
                                       const RoutingAlgorithm &routing);

/** Every name makeSelectionPolicy accepts, in listing order. */
std::vector<std::string> availableSelectionPolicyNames();

} // namespace turnmodel

#endif // TURNMODEL_SELECT_FACTORY_HPP
