/**
 * @file
 * The output-selection policy layer: a virtual policy object both
 * engines consult when a routed header has more than one free legal
 * output. Policies are pure functions of the query plus cycle-start
 * congestion snapshots the engines maintain, so every policy except
 * the `random` adapter is deterministic at any --jobs and any
 * --sim-threads shard count.
 *
 * Tie-breaking borrows VTR's NoC router idiom: a hash_combine fold
 * over the selection identity (router, destination, packet id),
 * scrambled murmur-style, picks among equal-score candidates. That
 * gives a "random-like" spread without consuming the shared router
 * RNG stream — the property that lets congestion policies run
 * sharded where OutputSelection::Random must serialize.
 */

#ifndef TURNMODEL_SELECT_POLICY_HPP
#define TURNMODEL_SELECT_POLICY_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/direction_set.hpp"
#include "topology/coordinates.hpp"
#include "topology/direction.hpp"
#include "util/rng.hpp"

namespace turnmodel {

/**
 * What engine-maintained congestion state a policy reads. The
 * engines size and fill the snapshot arrays only when asked, so the
 * adapter policies keep the hot loop exactly as cheap as the enums
 * they replace.
 */
struct SelectionNeeds
{
    /** Cycle-start free buffer slots / credits per output port. */
    bool free_slots = false;

    /** Blocked-EWMA regional congestion per output port. */
    bool regional = false;
};

/**
 * One selection decision. The engines fill every field they have;
 * snapshot pointers are null unless the policy's needs() asked for
 * them. Output port ids are router-local: the output for direction d
 * at the query's router is `port_base + d.id()`.
 */
struct SelectionQuery
{
    /** Legal outputs whose channel is free. Never empty. */
    DirectionSet candidates;

    /** Arrival direction; nullopt at the injection port. */
    std::optional<Direction> in_dir;

    NodeId here = 0;   ///< Router making the decision.
    NodeId dest = 0;   ///< Packet destination.

    /** Deterministic packet id (hash salt for tie-breaking). */
    std::uint64_t packet = 0;

    /** Output port id of direction 0 at `here`. */
    std::uint32_t port_base = 0;

    /** Cycle-start free slots per port, or null (needs.free_slots). */
    const std::uint16_t *free_slots = nullptr;

    /** Cycle-start regional congestion, or null (needs.regional). */
    const std::uint32_t *congestion = nullptr;

    /** Shared router RNG; only the `random` adapter may draw. */
    Rng *rng = nullptr;
};

/** A named output-selection policy, built by makeSelectionPolicy. */
class SelectionPolicy
{
  public:
    virtual ~SelectionPolicy() = default;

    /** Factory name (matches makeSelectionPolicy's argument). */
    virtual std::string name() const = 0;

    /** Which engine-maintained snapshots pick() reads. */
    virtual SelectionNeeds needs() const { return {}; }

    /**
     * True when pick() draws from the shared router RNG stream in
     * visit order — a serial artifact that pins the engine to one
     * shard (only the `random` adapter does).
     */
    virtual bool consumesGlobalRng() const { return false; }

    /** Choose one direction from q.candidates. */
    virtual Direction pick(const SelectionQuery &q) const = 0;
};

using SelectionPolicyPtr = std::unique_ptr<SelectionPolicy>;

/** hash_combine fold step (boost/VTR scheme, 64-bit golden ratio). */
constexpr std::uint64_t
selectionHashCombine(std::uint64_t seed, std::uint64_t value)
{
    return seed ^
        (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/** Murmur-style finalizer so nearby identities spread apart. */
constexpr std::uint32_t
selectionHashScramble(std::uint32_t k)
{
    k *= 0xcc9e2d51u;
    k = (k << 15) | (k >> 17);
    k *= 0x1b873593u;
    return k;
}

/**
 * Deterministic tie-break hash over the selection identity: same
 * (here, dest, packet) always hashes the same, independent of shard
 * layout, job count, or visit order.
 */
constexpr std::uint32_t
selectionHash(std::uint64_t here, std::uint64_t dest,
              std::uint64_t packet)
{
    std::uint64_t seed = 0;
    seed = selectionHashCombine(seed, here);
    seed = selectionHashCombine(seed, dest);
    seed = selectionHashCombine(seed, packet);
    return selectionHashScramble(
        static_cast<std::uint32_t>(seed ^ (seed >> 32)));
}

/** Hashed pick among @p set (used by every tie-breaking policy). */
inline Direction
pickHashed(DirectionSet set, const SelectionQuery &q)
{
    if (set.size() == 1)
        return set.first();
    const std::uint32_t h = selectionHash(q.here, q.dest, q.packet);
    return set.nth(static_cast<int>(
        h % static_cast<std::uint32_t>(set.size())));
}

} // namespace turnmodel

#endif // TURNMODEL_SELECT_POLICY_HPP
