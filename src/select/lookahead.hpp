/**
 * @file
 * Precompiled per-(node, dest) residual-cost table for the
 * `lookahead` selection policy — the VTR NoC router's cost-map idiom
 * applied to turn-model routing. Like CompiledRoutingTable, the
 * table is a dense immutable snapshot built once per engine: entry
 * (v, dest) is the minimum hop count from v to dest along moves the
 * routing algorithm actually permits (injection-state routeSet
 * edges), so the policy steers headers toward the shortest remaining
 * legal path rather than the raw geometric distance.
 */

#ifndef TURNMODEL_SELECT_LOOKAHEAD_HPP
#define TURNMODEL_SELECT_LOOKAHEAD_HPP

#include <cstdint>
#include <vector>

#include "core/routing.hpp"
#include "select/policy.hpp"

namespace turnmodel {

/** Dense residual-cost snapshot: cost(node, dest) in hops. */
class LookaheadCostTable
{
  public:
    /** Cost marker for (node, dest) pairs no legal path connects. */
    static constexpr std::uint16_t kUnreachable = 0xffff;

    /**
     * Build by reverse BFS per destination over the algorithm's
     * injection-state route edges: O(nodes^2 * dirs) once, O(1)
     * lookups forever after.
     */
    explicit LookaheadCostTable(const RoutingAlgorithm &routing);

    /** Minimum legal hops from @p node to @p dest. */
    std::uint16_t
    cost(NodeId node, NodeId dest) const
    {
        return cost_[static_cast<std::size_t>(dest) * nodes_ + node];
    }

    std::size_t numNodes() const { return nodes_; }

  private:
    std::size_t nodes_;
    std::vector<std::uint16_t> cost_;
};

/**
 * Selection policy minimizing the residual cost at the downstream
 * router: for each candidate direction d, score the neighbor's
 * cost-to-dest and take the minimum; hashed tie-break.
 */
class LookaheadPolicy : public SelectionPolicy
{
  public:
    explicit LookaheadPolicy(const RoutingAlgorithm &routing);

    std::string name() const override { return "lookahead"; }
    Direction pick(const SelectionQuery &q) const override;

  private:
    const Topology &topo_;
    LookaheadCostTable table_;
};

} // namespace turnmodel

#endif // TURNMODEL_SELECT_LOOKAHEAD_HPP
