/**
 * @file
 * The built-in selection policies and their factory. The enum
 * adapters delegate to the classic selectOutput kernel so their
 * behavior (including RNG consumption order) is bit-identical to the
 * pre-policy-layer engines; the congestion policies read only the
 * cycle-start snapshots the engines publish, so they stay
 * deterministic at any shard or job count.
 */

#include "select/factory.hpp"

#include <sstream>

#include "select/lookahead.hpp"
#include "sim/selection.hpp"
#include "util/logging.hpp"

namespace turnmodel {
namespace {

/** Exact adapter for one classic OutputSelection enum. */
class EnumAdapterPolicy : public SelectionPolicy
{
  public:
    explicit EnumAdapterPolicy(OutputSelection policy)
        : policy_(policy)
    {
    }

    std::string
    name() const override
    {
        // Mirrors toString(OutputSelection) without pulling the sim
        // library into select (sim links select, not the reverse).
        switch (policy_) {
          case OutputSelection::LowestDim:
            return "lowest-dim";
          case OutputSelection::HighestDim:
            return "highest-dim";
          case OutputSelection::Random:
            return "random";
          case OutputSelection::StraightFirst:
            return "straight-first";
        }
        return "lowest-dim";
    }

    bool
    consumesGlobalRng() const override
    {
        return policy_ == OutputSelection::Random;
    }

    Direction
    pick(const SelectionQuery &q) const override
    {
        return selectOutput(policy_, q.candidates, q.in_dir, *q.rng);
    }

  private:
    OutputSelection policy_;
};

/** Hashed tie-break over the whole candidate set: pure, shardable. */
class HashedPolicy : public SelectionPolicy
{
  public:
    std::string name() const override { return "hashed"; }

    Direction
    pick(const SelectionQuery &q) const override
    {
        return pickHashed(q.candidates, q);
    }
};

/** Most free downstream slots (credits) wins; hashed tie-break. */
class LocalCongestionPolicy : public SelectionPolicy
{
  public:
    std::string name() const override { return "local-congestion"; }

    SelectionNeeds
    needs() const override
    {
        SelectionNeeds n;
        n.free_slots = true;
        return n;
    }

    Direction
    pick(const SelectionQuery &q) const override
    {
        int best = -1;
        DirectionSet tied;
        for (Direction d : q.candidates) {
            const int free = q.free_slots[q.port_base + d.id()];
            if (free > best) {
                best = free;
                tied = DirectionSet{};
                tied.insert(d);
            } else if (free == best) {
                tied.insert(d);
            }
        }
        return pickHashed(tied, q);
    }
};

/**
 * Lowest regional congestion (own channel's blocked EWMA plus the
 * 1-hop downstream router's total) wins; ties fall back to the most
 * free slots, then to the hash.
 */
class RegionalPolicy : public SelectionPolicy
{
  public:
    std::string name() const override { return "regional"; }

    SelectionNeeds
    needs() const override
    {
        SelectionNeeds n;
        n.free_slots = true;
        n.regional = true;
        return n;
    }

    Direction
    pick(const SelectionQuery &q) const override
    {
        std::uint32_t best_c = 0xffffffffu;
        int best_f = -1;
        DirectionSet tied;
        for (Direction d : q.candidates) {
            const std::uint32_t idx = q.port_base + d.id();
            const std::uint32_t c = q.congestion[idx];
            const int f = q.free_slots[idx];
            if (c < best_c || (c == best_c && f > best_f)) {
                best_c = c;
                best_f = f;
                tied = DirectionSet{};
                tied.insert(d);
            } else if (c == best_c && f == best_f) {
                tied.insert(d);
            }
        }
        return pickHashed(tied, q);
    }
};

} // namespace

SelectionPolicyPtr
makeSelectionPolicy(const std::string &name,
                    const RoutingAlgorithm &routing)
{
    if (name == "lowest-dim" || name == "highest-dim" ||
        name == "random" || name == "straight-first") {
        const OutputSelection policy = name == "lowest-dim"
            ? OutputSelection::LowestDim
            : name == "highest-dim" ? OutputSelection::HighestDim
            : name == "random"      ? OutputSelection::Random
                                    : OutputSelection::StraightFirst;
        return std::make_unique<EnumAdapterPolicy>(policy);
    }
    if (name == "hashed")
        return std::make_unique<HashedPolicy>();
    if (name == "local-congestion")
        return std::make_unique<LocalCongestionPolicy>();
    if (name == "regional")
        return std::make_unique<RegionalPolicy>();
    if (name == "lookahead")
        return std::make_unique<LookaheadPolicy>(routing);

    std::ostringstream known;
    for (const std::string &n : availableSelectionPolicyNames())
        known << (known.tellp() > 0 ? ", " : "") << n;
    TM_FATAL("unknown selection policy '", name,
             "' (available: ", known.str(), ")");
}

std::vector<std::string>
availableSelectionPolicyNames()
{
    return {"lowest-dim",      "highest-dim", "random",
            "straight-first",  "hashed",      "local-congestion",
            "regional",        "lookahead"};
}

} // namespace turnmodel
