/**
 * @file
 * Assembled observability data of one finished run, in exportable
 * form: channel-utilization heatmap rows keyed by node coordinates
 * and direction, the time-series sample windows, and the retained
 * packet event trace. The JSON schema ("turnmodel-obs-v1", or
 * "turnmodel-obs-v2" when the engine reports per-virtual-channel
 * rows) is documented in DESIGN.md and validated in CI by
 * tools/validate_obs_schema.py.
 */

#ifndef TURNMODEL_OBS_REPORT_HPP
#define TURNMODEL_OBS_REPORT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "topology/coordinates.hpp"

namespace turnmodel {

/**
 * One heatmap row: the counters of one channel, keyed by the source
 * router's coordinates and the travel direction ("eject" for the
 * local delivery channel).
 */
struct ChannelUtilRow
{
    NodeId node = 0;
    Coords coords;
    std::string dir;
    int vc = -1;                        ///< VC index; -1 = eject/classic.
    std::uint64_t flits_forwarded = 0;
    std::uint64_t busy_cycles = 0;
    std::uint64_t blocked_cycles = 0;
    std::uint64_t credit_stall_cycles = 0;   ///< v2 engines only.
    std::uint32_t peak_occupancy = 0;   ///< Downstream input buffer.
    double utilization = 0.0;           ///< Flits per observed cycle.
};

/** Everything one run's observers collected. */
struct ObsReport
{
    /**
     * 1 = classic per-physical-channel rows; 2 adds per-VC rows with
     * "vc" and "credit_stall_cycles" keys (the VC router). Selects
     * the "turnmodel-obs-vN" schema string writeJson() emits.
     */
    int schema_version = 1;
    std::string topology;
    std::uint64_t observed_cycles = 0;
    std::vector<ChannelUtilRow> channels;
    std::vector<WindowSample> samples;
    std::vector<TraceEvent> trace;
    std::uint64_t trace_dropped = 0;

    bool empty() const
    {
        return channels.empty() && samples.empty() && trace.empty();
    }

    /**
     * Emit this report as one JSON object:
     * {"schema": "turnmodel-obs-vN", "topology": ...,
     *  "observed_cycles": N, "channels": [...], "samples": [...],
     *  "trace": {"dropped": N, "events": [...]}}.
     * Version 2 channel rows additionally carry "vc" and
     * "credit_stall_cycles".
     */
    void writeJson(std::ostream &os) const;
};

} // namespace turnmodel

#endif // TURNMODEL_OBS_REPORT_HPP
