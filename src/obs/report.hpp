/**
 * @file
 * Assembled observability data of one finished run, in exportable
 * form: channel-utilization heatmap rows keyed by node coordinates
 * and direction, the time-series sample windows, and the retained
 * packet event trace. The JSON schema ("turnmodel-obs-v1") is
 * documented in DESIGN.md and validated in CI by
 * tools/validate_obs_schema.py.
 */

#ifndef TURNMODEL_OBS_REPORT_HPP
#define TURNMODEL_OBS_REPORT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "topology/coordinates.hpp"

namespace turnmodel {

/**
 * One heatmap row: the counters of one channel, keyed by the source
 * router's coordinates and the travel direction ("eject" for the
 * local delivery channel).
 */
struct ChannelUtilRow
{
    NodeId node = 0;
    Coords coords;
    std::string dir;
    std::uint64_t flits_forwarded = 0;
    std::uint64_t busy_cycles = 0;
    std::uint64_t blocked_cycles = 0;
    std::uint32_t peak_occupancy = 0;   ///< Downstream input buffer.
    double utilization = 0.0;           ///< Flits per observed cycle.
};

/** Everything one run's observers collected. */
struct ObsReport
{
    std::string topology;
    std::uint64_t observed_cycles = 0;
    std::vector<ChannelUtilRow> channels;
    std::vector<WindowSample> samples;
    std::vector<TraceEvent> trace;
    std::uint64_t trace_dropped = 0;

    bool empty() const
    {
        return channels.empty() && samples.empty() && trace.empty();
    }

    /**
     * Emit this report as one JSON object:
     * {"schema": "turnmodel-obs-v1", "topology": ...,
     *  "observed_cycles": N, "channels": [...], "samples": [...],
     *  "trace": {"dropped": N, "events": [...]}}.
     */
    void writeJson(std::ostream &os) const;
};

} // namespace turnmodel

#endif // TURNMODEL_OBS_REPORT_HPP
