/**
 * @file
 * The network-side observer: owns whichever collectors the ObsConfig
 * enables (per-channel counters, packet event trace, injection
 * capture log). A Network with
 * observability off holds no observer at all, so the default hot
 * path pays only null pointer checks and allocates nothing.
 */

#ifndef TURNMODEL_OBS_OBSERVER_HPP
#define TURNMODEL_OBS_OBSERVER_HPP

#include <optional>

#include "obs/channel_stats.hpp"
#include "obs/config.hpp"
#include "obs/trace.hpp"
#include "traffic/trace.hpp"

namespace turnmodel {

/** Bundle of the enabled network-side collectors. */
class NetworkObserver
{
  public:
    /**
     * @param config    Which collectors to enable.
     * @param num_ports Total network ports (for the counter arrays).
     */
    NetworkObserver(const ObsConfig &config, std::size_t num_ports);

    ChannelStats *channels()
    {
        return channels_ ? &*channels_ : nullptr;
    }
    const ChannelStats *channels() const
    {
        return channels_ ? &*channels_ : nullptr;
    }

    PacketTrace *trace() { return trace_ ? &*trace_ : nullptr; }
    const PacketTrace *trace() const
    {
        return trace_ ? &*trace_ : nullptr;
    }

    /** The injection capture log, or nullptr when capture is off. */
    InjectionTrace *injections()
    {
        return injections_ ? &*injections_ : nullptr;
    }
    const InjectionTrace *injections() const
    {
        return injections_ ? &*injections_ : nullptr;
    }

  private:
    std::optional<ChannelStats> channels_;
    std::optional<PacketTrace> trace_;
    std::optional<InjectionTrace> injections_;
};

} // namespace turnmodel

#endif // TURNMODEL_OBS_OBSERVER_HPP
