#include "obs/channel_stats.hpp"

#include <numeric>

namespace turnmodel {

ChannelStats::ChannelStats(std::size_t num_ports)
    : flits_(num_ports, 0), busy_(num_ports, 0),
      blocked_(num_ports, 0), last_forward_(num_ports, ~0ULL),
      peak_occupancy_(num_ports, 0)
{
}

std::uint64_t
ChannelStats::totalFlitsForwarded() const
{
    return std::accumulate(flits_.begin(), flits_.end(),
                           std::uint64_t{0});
}

} // namespace turnmodel
