#include "obs/report.hpp"

#include <ostream>

#include "util/json.hpp"

namespace turnmodel {

namespace {

void
writeCoords(std::ostream &os, const Coords &coords)
{
    os << '[';
    for (std::size_t i = 0; i < coords.size(); ++i) {
        if (i > 0)
            os << ',';
        os << coords[i];
    }
    os << ']';
}

void
writeChannelRow(std::ostream &os, const ChannelUtilRow &row,
                int schema_version)
{
    os << "{\"node\": " << row.node << ", \"coords\": ";
    writeCoords(os, row.coords);
    os << ", \"dir\": \"" << jsonEscape(row.dir) << "\"";
    if (schema_version >= 2) {
        os << ", \"vc\": " << row.vc
           << ", \"credit_stall_cycles\": " << row.credit_stall_cycles;
    }
    os << ", \"flits_forwarded\": " << row.flits_forwarded
       << ", \"busy_cycles\": " << row.busy_cycles
       << ", \"blocked_cycles\": " << row.blocked_cycles
       << ", \"peak_occupancy\": " << row.peak_occupancy
       << ", \"utilization\": ";
    writeJsonNumber(os, row.utilization);
    os << "}";
}

void
writeSample(std::ostream &os, const WindowSample &sample)
{
    os << "{\"start_cycle\": " << sample.start_cycle
       << ", \"end_cycle\": " << sample.end_cycle
       << ", \"flits_delivered\": " << sample.flits_delivered
       << ", \"packets_completed\": " << sample.packets_completed
       << ", \"latency_mean_cycles\": ";
    writeJsonNumber(os, sample.latency_mean_cycles);
    os << ", \"latency_max_cycles\": ";
    writeJsonNumber(os, sample.latency_max_cycles);
    os << ", \"latency_p99_cycles\": ";
    writeJsonNumber(os, sample.latency_p99_cycles);
    os << ", \"latency_p99_clamped\": "
       << (sample.latency_p99_clamped ? "true" : "false")
       << ", \"source_queue_packets\": " << sample.source_queue_packets
       << "}";
}

void
writeTraceEvent(std::ostream &os, const TraceEvent &event)
{
    os << "{\"cycle\": " << event.cycle
       << ", \"packet\": " << event.packet
       << ", \"kind\": \"" << toString(event.kind) << "\""
       << ", \"node\": " << event.node << ", \"dir\": \"";
    if (event.kind == TraceEventKind::Route)
        os << jsonEscape(directionName(Direction::fromId(event.dir)));
    else
        os << "local";
    os << "\"}";
}

} // namespace

void
ObsReport::writeJson(std::ostream &os) const
{
    os << "{\"schema\": \"turnmodel-obs-v"
       << (schema_version >= 2 ? 2 : 1) << "\", \"topology\": \""
       << jsonEscape(topology)
       << "\", \"observed_cycles\": " << observed_cycles
       << ", \"channels\": [";
    for (std::size_t i = 0; i < channels.size(); ++i) {
        if (i > 0)
            os << ", ";
        writeChannelRow(os, channels[i], schema_version);
    }
    os << "], \"samples\": [";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (i > 0)
            os << ", ";
        writeSample(os, samples[i]);
    }
    os << "], \"trace\": {\"dropped\": " << trace_dropped
       << ", \"events\": [";
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i > 0)
            os << ", ";
        writeTraceEvent(os, trace[i]);
    }
    os << "]}}";
}

} // namespace turnmodel
