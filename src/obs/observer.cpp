#include "obs/observer.hpp"

namespace turnmodel {

NetworkObserver::NetworkObserver(const ObsConfig &config,
                                 std::size_t num_ports)
{
    if (config.channel_counters)
        channels_.emplace(num_ports);
    if (config.trace_capacity > 0)
        trace_.emplace(config.trace_capacity);
    if (config.capture_injections)
        injections_.emplace();
}

} // namespace turnmodel
