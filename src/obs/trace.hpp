/**
 * @file
 * Bounded packet event trace: a fixed-capacity ring buffer of
 * inject/route/deliver events. Once full, new events overwrite the
 * oldest, so after a run (or a deadlock) the buffer holds the most
 * recent history — exactly what a post-mortem needs to see which
 * packets stopped making progress and where.
 */

#ifndef TURNMODEL_OBS_TRACE_HPP
#define TURNMODEL_OBS_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/coordinates.hpp"
#include "topology/direction.hpp"

namespace turnmodel {

/** What happened to a packet. */
enum class TraceEventKind : std::uint8_t
{
    Inject,   ///< Header flit entered the network at its source.
    Route,    ///< Header flit crossed a network channel.
    Deliver,  ///< Tail flit consumed at the destination.
};

const char *toString(TraceEventKind kind);

/** One traced packet event. */
struct TraceEvent
{
    std::uint64_t cycle = 0;
    std::int64_t packet = -1;  ///< PacketId of the subject packet.
    NodeId node = 0;           ///< Router where the event happened.
    DirId dir = 0;             ///< Travel direction (Route only).
    TraceEventKind kind = TraceEventKind::Inject;
};

/** Fixed-capacity ring buffer of TraceEvents. */
class PacketTrace
{
  public:
    /** @param capacity Maximum retained events; must be >= 1. */
    explicit PacketTrace(std::size_t capacity);

    /** Append @p event, overwriting the oldest once full. */
    void record(const TraceEvent &event)
    {
        if (ring_.size() < capacity_) {
            ring_.push_back(event);
        } else {
            ring_[head_] = event;
            head_ = (head_ + 1) % capacity_;
            ++dropped_;
        }
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return ring_.size(); }

    /** Events overwritten because the buffer was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Retained events in chronological order (oldest first). */
    std::vector<TraceEvent> chronological() const;

  private:
    std::size_t capacity_;
    std::size_t head_ = 0;  ///< Oldest element once the ring is full.
    std::uint64_t dropped_ = 0;
    std::vector<TraceEvent> ring_;
};

} // namespace turnmodel

#endif // TURNMODEL_OBS_TRACE_HPP
