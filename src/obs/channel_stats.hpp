/**
 * @file
 * Per-channel counters for the simulation hot path: flits forwarded,
 * cycles the channel was held by a packet (busy), cycles it was held
 * without a flit crossing (blocked on the downstream buffer), and
 * the peak occupancy of each input buffer. Storage is flat arrays
 * indexed by the network's port id, so every recording call is a
 * couple of array writes — cheap enough to leave on for whole
 * sweeps, and completely absent (null observer) by default.
 */

#ifndef TURNMODEL_OBS_CHANNEL_STATS_HPP
#define TURNMODEL_OBS_CHANNEL_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace turnmodel {

/** Flat per-port counter arrays; ports are the Network's port ids. */
class ChannelStats
{
  public:
    /** @param num_ports Total ports (output and input ids coincide). */
    explicit ChannelStats(std::size_t num_ports);

    /** Count one observed cycle (call once per Network::step). */
    void tick() { ++observed_cycles_; }

    /** A flit crossed @p out_port on @p cycle. */
    void recordForward(std::uint32_t out_port, std::uint64_t cycle)
    {
        ++flits_[out_port];
        last_forward_[out_port] = cycle;
    }

    /**
     * @p out_port is held by a packet this @p cycle. Counts busy, and
     * blocked when no flit crossed the channel this cycle (waiting on
     * downstream buffer space or an upstream bubble).
     */
    void recordHeld(std::uint32_t out_port, std::uint64_t cycle)
    {
        ++busy_[out_port];
        if (last_forward_[out_port] != cycle)
            ++blocked_[out_port];
    }

    /** Input buffer @p in_port now holds @p depth flits. */
    void recordOccupancy(std::uint32_t in_port, std::size_t depth)
    {
        if (depth > peak_occupancy_[in_port])
            peak_occupancy_[in_port] =
                static_cast<std::uint32_t>(depth);
    }

    std::size_t numPorts() const { return flits_.size(); }
    std::uint64_t observedCycles() const { return observed_cycles_; }
    std::uint64_t flitsForwarded(std::uint32_t port) const
    {
        return flits_[port];
    }
    std::uint64_t busyCycles(std::uint32_t port) const
    {
        return busy_[port];
    }
    std::uint64_t blockedCycles(std::uint32_t port) const
    {
        return blocked_[port];
    }
    std::uint32_t peakOccupancy(std::uint32_t port) const
    {
        return peak_occupancy_[port];
    }

    /** Sum of flits forwarded over a set of ports is common enough in
     * conservation checks to warrant a helper. */
    std::uint64_t totalFlitsForwarded() const;

  private:
    std::vector<std::uint64_t> flits_;
    std::vector<std::uint64_t> busy_;
    std::vector<std::uint64_t> blocked_;
    std::vector<std::uint64_t> last_forward_;
    std::vector<std::uint32_t> peak_occupancy_;
    std::uint64_t observed_cycles_ = 0;
};

} // namespace turnmodel

#endif // TURNMODEL_OBS_CHANNEL_STATS_HPP
