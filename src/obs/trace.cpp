#include "obs/trace.hpp"

#include "util/logging.hpp"

namespace turnmodel {

const char *
toString(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Inject:  return "inject";
      case TraceEventKind::Route:   return "route";
      case TraceEventKind::Deliver: return "deliver";
    }
    return "?";
}

PacketTrace::PacketTrace(std::size_t capacity) : capacity_(capacity)
{
    TM_ASSERT(capacity >= 1, "trace ring needs capacity");
    ring_.reserve(capacity);
}

std::vector<TraceEvent>
PacketTrace::chronological() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

} // namespace turnmodel
