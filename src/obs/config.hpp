/**
 * @file
 * Observability knobs. All collection is off by default, and the
 * simulator's default path stays allocation-free: a Network only
 * constructs an observer when one of the knobs is set, and the hot
 * loop guards every recording call behind a null pointer check.
 */

#ifndef TURNMODEL_OBS_CONFIG_HPP
#define TURNMODEL_OBS_CONFIG_HPP

#include <cstddef>
#include <cstdint>

namespace turnmodel {

/** What one simulation run should record beyond SimResult. */
struct ObsConfig
{
    /**
     * Per-channel counters (flits forwarded, cycles busy, cycles
     * blocked while holding the channel, peak downstream buffer
     * occupancy), accumulated in flat arrays indexed by channel id.
     */
    bool channel_counters = false;

    /**
     * Periodic time-series sampling stride in cycles: every stride
     * cycles of the measurement window the driver closes one sample
     * window recording throughput, latency mean/p99, and source
     * queue depth. Zero disables the sampler.
     */
    std::uint64_t sample_stride = 0;

    /**
     * Capacity (events) of the bounded packet event trace ring
     * buffer; older events are overwritten once full, keeping the
     * most recent history for post-mortem deadlock analysis. Zero
     * disables tracing.
     */
    std::size_t trace_capacity = 0;

    /**
     * Record every packet enqueued at a source — stochastic
     * arrivals, closed-loop replies, and post()ed packets — into an
     * unbounded injection log (traffic/trace.hpp) for binary trace
     * capture and deterministic replay. Capture order is the global
     * generation order, a serial artifact, so enabling this pins the
     * engine to one shard (like the packet trace).
     */
    bool capture_injections = false;

    /** Whether the network needs an observer at all. */
    bool networkEnabled() const
    {
        return channel_counters || trace_capacity > 0
            || capture_injections;
    }

    /** Whether any collection (network or driver side) is on. */
    bool any() const { return networkEnabled() || sample_stride > 0; }
};

} // namespace turnmodel

#endif // TURNMODEL_OBS_CONFIG_HPP
