/**
 * @file
 * Periodic time-series sampler for the measurement driver: every
 * stride cycles it closes one sample window recording throughput
 * (flits delivered), completion count, latency mean/max/p99, and the
 * source queue population at the window boundary. The resulting
 * series shows *when* a run degrades (queues ramping, latency tail
 * exploding), which the end-of-run aggregates cannot.
 */

#ifndef TURNMODEL_OBS_SAMPLER_HPP
#define TURNMODEL_OBS_SAMPLER_HPP

#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace turnmodel {

/** One closed sample window. */
struct WindowSample
{
    std::uint64_t start_cycle = 0;
    std::uint64_t end_cycle = 0;            ///< Exclusive.
    std::uint64_t flits_delivered = 0;      ///< Within the window.
    std::uint64_t packets_completed = 0;    ///< Completions counted.
    double latency_mean_cycles = 0.0;
    double latency_max_cycles = 0.0;
    double latency_p99_cycles = 0.0;
    bool latency_p99_clamped = false;       ///< p99 hit the histogram bound.
    std::uint64_t source_queue_packets = 0; ///< At window close.
};

/** Accumulates completions and closes windows on stride boundaries. */
class TimeSeriesSampler
{
  public:
    /**
     * @param start_cycle First cycle of the measurement window.
     * @param stride      Cycles per sample window; must be >= 1.
     * @param latency_hi  Upper bound of the per-window latency
     *                    histogram (cycles); p99 beyond it is clamped
     *                    and flagged.
     * @param bins        Histogram bins per window.
     */
    TimeSeriesSampler(std::uint64_t start_cycle, std::uint64_t stride,
                      double latency_hi, std::size_t bins = 256);

    /** One measured completion with the given latency in cycles. */
    void onCompletion(double latency_cycles);

    /**
     * Advance to @p now (cycles); closes a window when the stride is
     * reached. @p flits_delivered_total and @p source_queue_packets
     * are the driver's running totals at @p now.
     */
    void onCycle(std::uint64_t now, std::uint64_t flits_delivered_total,
                 std::uint64_t source_queue_packets);

    /** Close any partial final window (end of run or deadlock). */
    void finish(std::uint64_t now, std::uint64_t flits_delivered_total,
                std::uint64_t source_queue_packets);

    const std::vector<WindowSample> &samples() const
    {
        return samples_;
    }

  private:
    void closeWindow(std::uint64_t now,
                     std::uint64_t flits_delivered_total,
                     std::uint64_t source_queue_packets);

    std::uint64_t stride_;
    std::uint64_t window_start_;
    std::uint64_t window_flits_base_ = 0;
    RunningStats window_latency_;
    Histogram window_hist_;
    std::vector<WindowSample> samples_;
};

} // namespace turnmodel

#endif // TURNMODEL_OBS_SAMPLER_HPP
