#include "obs/sampler.hpp"

#include "util/logging.hpp"

namespace turnmodel {

TimeSeriesSampler::TimeSeriesSampler(std::uint64_t start_cycle,
                                     std::uint64_t stride,
                                     double latency_hi,
                                     std::size_t bins)
    : stride_(stride), window_start_(start_cycle),
      window_hist_(0.0, latency_hi > 0.0 ? latency_hi : 1.0, bins)
{
    TM_ASSERT(stride >= 1, "sampler stride must be positive");
}

void
TimeSeriesSampler::onCompletion(double latency_cycles)
{
    window_latency_.add(latency_cycles);
    window_hist_.add(latency_cycles);
}

void
TimeSeriesSampler::onCycle(std::uint64_t now,
                           std::uint64_t flits_delivered_total,
                           std::uint64_t source_queue_packets)
{
    if (now - window_start_ >= stride_)
        closeWindow(now, flits_delivered_total, source_queue_packets);
}

void
TimeSeriesSampler::finish(std::uint64_t now,
                          std::uint64_t flits_delivered_total,
                          std::uint64_t source_queue_packets)
{
    if (now > window_start_)
        closeWindow(now, flits_delivered_total, source_queue_packets);
}

void
TimeSeriesSampler::closeWindow(std::uint64_t now,
                               std::uint64_t flits_delivered_total,
                               std::uint64_t source_queue_packets)
{
    WindowSample sample;
    sample.start_cycle = window_start_;
    sample.end_cycle = now;
    sample.flits_delivered = flits_delivered_total - window_flits_base_;
    sample.packets_completed = window_latency_.count();
    sample.latency_mean_cycles = window_latency_.mean();
    sample.latency_max_cycles = window_latency_.max();
    sample.latency_p99_cycles =
        window_hist_.quantile(0.99, &sample.latency_p99_clamped);
    sample.source_queue_packets = source_queue_packets;
    samples_.push_back(sample);

    window_start_ = now;
    window_flits_base_ = flits_delivered_total;
    window_latency_.reset();
    window_hist_.reset();
}

} // namespace turnmodel
