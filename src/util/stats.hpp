/**
 * @file
 * Lightweight statistics accumulators used by the simulator's metrics
 * layer: running mean/variance (Welford), min/max tracking, a
 * fixed-width histogram for latency distributions, and a streaming
 * constant-memory quantile estimator (extended P²) for long-horizon
 * soak runs where a fixed-range histogram would either overflow or
 * report meaningless bin widths.
 */

#ifndef TURNMODEL_UTIL_STATS_HPP
#define TURNMODEL_UTIL_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace turnmodel {

/**
 * Single-pass mean/variance/min/max accumulator using Welford's
 * algorithm, numerically stable for long simulations.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel sweeps). */
    void merge(const RunningStats &other);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;
    /** Unbiased sample variance; zero with fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fixed-bin histogram over [lo, hi); samples outside the range land
 * in saturating under/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo   Inclusive lower bound of the tracked range.
     * @param hi   Exclusive upper bound of the tracked range.
     * @param bins Number of equal-width bins.
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    void reset();

    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Lower edge of bin i. */
    double binLow(std::size_t i) const;

    /**
     * Approximate quantile (0 <= q <= 1) by linear interpolation
     * within the containing bin. When the quantile falls in an
     * under/overflow bin the true value lies outside [lo, hi) and
     * only the range bound can be returned; @p clamped (when
     * non-null) is set so callers can distinguish that sentinel from
     * a genuine measurement instead of reporting a plausible-looking
     * number.
     */
    double quantile(double q, bool *clamped = nullptr) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Streaming quantile estimator: the P² algorithm (Jain & Chlamtac,
 * CACM 1985) extended with extra markers clustered around the target
 * quantile for tail resolution. Memory and per-sample cost are
 * constant regardless of the sample count — the property a 10^8-cycle
 * soak run needs — and the estimate is a pure function of the sample
 * sequence, so it preserves the simulator's bit-reproducibility.
 *
 * Nine markers track the quantiles {0, q/4, q/2, 3q/4, q,
 * q+(1-q)/4, q+(1-q)/2, q+3(1-q)/4, 1}: the four inner markers above
 * q sit inside the tail, which keeps the parabolic interpolation
 * local to the region that matters for a p99. Until the marker array
 * is filled the exact nearest-rank order statistic of the buffered
 * samples is returned, so small runs lose no accuracy.
 */
class P2Quantile
{
  public:
    /** @param q Target quantile in (0, 1), e.g. 0.99. */
    explicit P2Quantile(double q);

    void add(double x);
    void reset();

    std::uint64_t count() const { return count_; }

    /** Current estimate of the q-quantile; 0 with no samples. */
    double value() const;

  private:
    static constexpr std::size_t kMarkers = 9;

    double q_;
    /** Quantile each marker tracks (kMarkers entries, 0 .. 1). */
    double target_[kMarkers];
    /** Marker heights (sample-value estimates), ascending. */
    double height_[kMarkers];
    /** Actual marker positions (1-based sample ranks). */
    double pos_[kMarkers];
    /** Desired marker positions, advanced by target_ per sample. */
    double desired_[kMarkers];
    std::uint64_t count_ = 0;
};

} // namespace turnmodel

#endif // TURNMODEL_UTIL_STATS_HPP
