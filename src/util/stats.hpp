/**
 * @file
 * Lightweight statistics accumulators used by the simulator's metrics
 * layer: running mean/variance (Welford), min/max tracking, and a
 * fixed-width histogram for latency distributions.
 */

#ifndef TURNMODEL_UTIL_STATS_HPP
#define TURNMODEL_UTIL_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace turnmodel {

/**
 * Single-pass mean/variance/min/max accumulator using Welford's
 * algorithm, numerically stable for long simulations.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel sweeps). */
    void merge(const RunningStats &other);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;
    /** Unbiased sample variance; zero with fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fixed-bin histogram over [lo, hi); samples outside the range land
 * in saturating under/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo   Inclusive lower bound of the tracked range.
     * @param hi   Exclusive upper bound of the tracked range.
     * @param bins Number of equal-width bins.
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    void reset();

    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Lower edge of bin i. */
    double binLow(std::size_t i) const;

    /**
     * Approximate quantile (0 <= q <= 1) by linear interpolation
     * within the containing bin. When the quantile falls in an
     * under/overflow bin the true value lies outside [lo, hi) and
     * only the range bound can be returned; @p clamped (when
     * non-null) is set so callers can distinguish that sentinel from
     * a genuine measurement instead of reporting a plausible-looking
     * number.
     */
    double quantile(double q, bool *clamped = nullptr) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace turnmodel

#endif // TURNMODEL_UTIL_STATS_HPP
