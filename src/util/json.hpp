/**
 * @file
 * Minimal JSON emission helpers shared by the result sinks. JSON has
 * no NaN/Inf literals and requires control characters to be escaped,
 * so hand-rolled emitters must route strings and doubles through
 * these two functions to stay standards-valid.
 */

#ifndef TURNMODEL_UTIL_JSON_HPP
#define TURNMODEL_UTIL_JSON_HPP

#include <iosfwd>
#include <string>

namespace turnmodel {

/**
 * Escape @p text for embedding inside a JSON string literal: quotes,
 * backslashes, and every control character U+0000..U+001F (short
 * forms \b \t \n \f \r where they exist, \u00XX otherwise).
 */
std::string jsonEscape(const std::string &text);

/**
 * Write @p value as a JSON number, or "null" when it is NaN or
 * infinite. Finite values are emitted with max_digits10 significant
 * digits so they round-trip to the exact same double regardless of
 * the stream's own precision. Does not disturb the stream's
 * formatting state.
 */
void writeJsonNumber(std::ostream &os, double value);

} // namespace turnmodel

#endif // TURNMODEL_UTIL_JSON_HPP
