#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace turnmodel {
namespace detail {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n",
                 levelName(level), msg.c_str(), file, line);
    std::fflush(stderr);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", levelName(level), msg.c_str());
}

} // namespace detail
} // namespace turnmodel
