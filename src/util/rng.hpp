/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * A xoshiro256++ generator with a SplitMix64 seeder gives fast,
 * high-quality, reproducible streams. Each traffic source in the
 * simulator owns its own stream derived from (seed, node id), so
 * results are independent of the order in which nodes are stepped.
 */

#ifndef TURNMODEL_UTIL_RNG_HPP
#define TURNMODEL_UTIL_RNG_HPP

#include <cstdint>
#include <limits>

namespace turnmodel {

/**
 * xoshiro256++ pseudo-random generator (Blackman & Vigna).
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can be
 * used with <random> distributions, though the helpers below are the
 * intended interface.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 so that nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Build the stream for one traffic source. */
    static Rng forStream(std::uint64_t seed, std::uint64_t stream);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound), bias-free via rejection. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /**
     * Exponentially distributed variate with the given mean
     * (inter-arrival times of a Poisson process).
     */
    double nextExponential(double mean);

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t state_[4];
};

} // namespace turnmodel

#endif // TURNMODEL_UTIL_RNG_HPP
