#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

namespace turnmodel {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\t': out += "\\t"; break;
          case '\n': out += "\\n"; break;
          case '\f': out += "\\f"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJsonNumber(std::ostream &os, double value)
{
    if (!std::isfinite(value)) {
        os << "null";
        return;
    }
    // max_digits10 significant digits guarantee the emitted decimal
    // parses back to the exact same double; the stream's own
    // precision (default 6) silently truncates latencies.
    const std::ios::fmtflags flags = os.flags(std::ios::dec);
    const std::streamsize precision =
        os.precision(std::numeric_limits<double>::max_digits10);
    os << value;
    os.flags(flags);
    os.precision(precision);
}

} // namespace turnmodel
