#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace turnmodel {

void
RunningStats::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    sum_ += other.sum_;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStats::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    TM_ASSERT(hi > lo, "histogram range must be non-empty");
    TM_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto i = static_cast<std::size_t>((x - lo_) / width_);
        i = std::min(i, counts_.size() - 1);
        ++counts_[i];
    }
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::quantile(double q, bool *clamped) const
{
    TM_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    if (clamped)
        *clamped = false;
    if (total_ == 0)
        return lo_;
    const double target = q * static_cast<double>(total_);
    double cum = static_cast<double>(underflow_);
    if (cum >= target && underflow_ > 0) {
        // The true value is below lo_; lo_ is only a bound.
        if (clamped)
            *clamped = true;
        return lo_;
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = cum + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            const double frac =
                (target - cum) / static_cast<double>(counts_[i]);
            return binLow(i) + frac * width_;
        }
        cum = next;
    }
    // The quantile landed in the overflow bin: the true value is at
    // least hi_ and was not measured.
    if (clamped)
        *clamped = overflow_ > 0;
    return hi_;
}

} // namespace turnmodel
