#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace turnmodel {

void
RunningStats::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    sum_ += other.sum_;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStats::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    TM_ASSERT(hi > lo, "histogram range must be non-empty");
    TM_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto i = static_cast<std::size_t>((x - lo_) / width_);
        i = std::min(i, counts_.size() - 1);
        ++counts_[i];
    }
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::quantile(double q, bool *clamped) const
{
    TM_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    if (clamped)
        *clamped = false;
    if (total_ == 0)
        return lo_;
    const double target = q * static_cast<double>(total_);
    double cum = static_cast<double>(underflow_);
    if (cum >= target && underflow_ > 0) {
        // The true value is below lo_; lo_ is only a bound.
        if (clamped)
            *clamped = true;
        return lo_;
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = cum + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            const double frac =
                (target - cum) / static_cast<double>(counts_[i]);
            return binLow(i) + frac * width_;
        }
        cum = next;
    }
    // The quantile landed in the overflow bin: the true value is at
    // least hi_ and was not measured.
    if (clamped)
        *clamped = overflow_ > 0;
    return hi_;
}

P2Quantile::P2Quantile(double q)
    : q_(q)
{
    TM_ASSERT(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
    // Markers at 0, three quarters below q, q itself, three quarters
    // inside the tail above q, and 1.
    target_[0] = 0.0;
    for (std::size_t i = 1; i <= 3; ++i)
        target_[i] = q * static_cast<double>(i) / 4.0;
    target_[4] = q;
    for (std::size_t i = 5; i <= 7; ++i)
        target_[i] =
            q + (1.0 - q) * static_cast<double>(i - 4) / 4.0;
    target_[kMarkers - 1] = 1.0;
    reset();
}

void
P2Quantile::reset()
{
    count_ = 0;
    for (std::size_t i = 0; i < kMarkers; ++i) {
        height_[i] = 0.0;
        pos_[i] = static_cast<double>(i + 1);
        desired_[i] = static_cast<double>(i + 1);
    }
}

void
P2Quantile::add(double x)
{
    if (count_ < kMarkers) {
        // Warm-up: buffer the first kMarkers samples in the height
        // array, kept sorted by insertion.
        std::size_t i = count_;
        while (i > 0 && height_[i - 1] > x) {
            height_[i] = height_[i - 1];
            --i;
        }
        height_[i] = x;
        ++count_;
        if (count_ == kMarkers) {
            // Warm-up complete: markers sit at ranks 1..kMarkers;
            // anchor the desired positions to the classic formula
            // n'_i = 1 + t_i (n - 1) so the non-uniform targets
            // start consistent with their long-run trajectory.
            for (std::size_t j = 0; j < kMarkers; ++j)
                desired_[j] = 1.0
                    + target_[j] * static_cast<double>(kMarkers - 1);
        }
        return;
    }

    // Locate the cell [height_[k], height_[k+1]) containing x,
    // extending the extreme markers when x falls outside.
    std::size_t k;
    if (x < height_[0]) {
        height_[0] = x;
        k = 0;
    } else if (x >= height_[kMarkers - 1]) {
        height_[kMarkers - 1] = std::max(height_[kMarkers - 1], x);
        k = kMarkers - 2;
    } else {
        k = 0;
        while (k + 1 < kMarkers - 1 && x >= height_[k + 1])
            ++k;
    }
    for (std::size_t i = k + 1; i < kMarkers; ++i)
        pos_[i] += 1.0;
    for (std::size_t i = 0; i < kMarkers; ++i)
        desired_[i] += target_[i];
    ++count_;

    // Adjust the interior markers toward their desired positions,
    // moving each by at most one rank per sample: parabolic (P²)
    // interpolation when the result stays strictly between the
    // neighboring heights, linear otherwise.
    for (std::size_t i = 1; i + 1 < kMarkers; ++i) {
        const double d = desired_[i] - pos_[i];
        const bool up = d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0;
        const bool down = d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0;
        if (!up && !down)
            continue;
        const double s = up ? 1.0 : -1.0;
        const double np = pos_[i + 1];
        const double pp = pos_[i - 1];
        const double cp = pos_[i];
        double h = height_[i]
            + s / (np - pp)
                * ((cp - pp + s) * (height_[i + 1] - height_[i])
                       / (np - cp)
                   + (np - cp - s) * (height_[i] - height_[i - 1])
                       / (cp - pp));
        if (h <= height_[i - 1] || h >= height_[i + 1]) {
            // Parabolic prediction left the bracket: fall back to
            // linear interpolation toward the neighbor in s's
            // direction.
            const std::size_t j = up ? i + 1 : i - 1;
            h = height_[i]
                + s * (height_[j] - height_[i]) / (pos_[j] - cp);
        }
        height_[i] = h;
        pos_[i] += s;
    }
}

double
P2Quantile::value() const
{
    if (count_ == 0)
        return 0.0;
    if (count_ <= kMarkers) {
        // Exact nearest-rank order statistic of the warm-up buffer.
        const auto n = static_cast<double>(count_);
        auto rank = static_cast<std::size_t>(
            std::ceil(q_ * n));
        if (rank == 0)
            rank = 1;
        return height_[rank - 1];
    }
    return height_[4];   // The marker tracking q itself.
}

} // namespace turnmodel
