/**
 * @file
 * Minimal CSV emission for benchmark output. Every bench binary prints
 * its table both human-readably and as CSV so figures can be re-plotted
 * directly from the captured output.
 */

#ifndef TURNMODEL_UTIL_CSV_HPP
#define TURNMODEL_UTIL_CSV_HPP

#include <ostream>
#include <string>
#include <vector>

namespace turnmodel {

/**
 * Streams rows of comma-separated values with RFC-4180-style quoting
 * of fields that contain commas, quotes, or newlines.
 */
class CsvWriter
{
  public:
    /** @param os Destination stream; must outlive the writer. */
    explicit CsvWriter(std::ostream &os);

    /** Emit the header row. */
    void header(const std::vector<std::string> &names);

    /** Begin a new row; fields are appended with field(). */
    CsvWriter &beginRow();

    CsvWriter &field(const std::string &value);
    CsvWriter &field(const char *value);
    CsvWriter &field(double value);
    CsvWriter &field(std::uint64_t value);
    CsvWriter &field(std::int64_t value);
    CsvWriter &field(int value);

    /** Terminate the current row. */
    void endRow();

    /** Number of completed data rows (header excluded). */
    std::size_t rowCount() const { return rows_; }

  private:
    void rawField(const std::string &value);
    static std::string escape(const std::string &value);

    std::ostream &os_;
    bool row_open_ = false;
    bool first_in_row_ = true;
    std::size_t rows_ = 0;
};

} // namespace turnmodel

#endif // TURNMODEL_UTIL_CSV_HPP
