#include "util/rng.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace turnmodel {

namespace {

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

Rng
Rng::forStream(std::uint64_t seed, std::uint64_t stream)
{
    // Mix the stream id through SplitMix64 before combining so that
    // consecutive stream ids do not produce correlated seeds.
    std::uint64_t s = stream + 0x632be59bd9b4e019ULL;
    return Rng(seed ^ splitMix64(s));
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    TM_ASSERT(bound > 0, "nextBounded requires a positive bound");
    // Lemire-style rejection to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    // 53 random bits into [0, 1).
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::nextExponential(double mean)
{
    TM_ASSERT(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace turnmodel
