#include "util/bitops.hpp"

#include <bit>

#include "util/logging.hpp"

namespace turnmodel {

int
popcount(std::uint64_t x)
{
    return std::popcount(x);
}

int
lowestSetBit(std::uint64_t x)
{
    if (x == 0)
        return -1;
    return std::countr_zero(x);
}

bool
bitOf(std::uint64_t x, int i)
{
    return (x >> i) & 1ULL;
}

std::uint64_t
withBit(std::uint64_t x, int i, bool v)
{
    const std::uint64_t mask = 1ULL << i;
    return v ? (x | mask) : (x & ~mask);
}

std::uint64_t
flipBit(std::uint64_t x, int i)
{
    return x ^ (1ULL << i);
}

std::uint64_t
lowMask(int width)
{
    TM_ASSERT(width >= 0 && width <= 64, "mask width out of range");
    if (width == 64)
        return ~0ULL;
    return (1ULL << width) - 1;
}

std::uint64_t
reverseBits(std::uint64_t x, int width)
{
    TM_ASSERT(width >= 0 && width <= 64, "reverse width out of range");
    std::uint64_t out = 0;
    for (int i = 0; i < width; ++i) {
        if (bitOf(x, i))
            out |= 1ULL << (width - 1 - i);
    }
    return out;
}

std::uint64_t
complementBits(std::uint64_t x, int width)
{
    return (~x) & lowMask(width);
}

} // namespace turnmodel
