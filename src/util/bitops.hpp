/**
 * @file
 * Bit-manipulation helpers for hypercube addressing: population count,
 * bit reversal over an n-bit field, and bit extraction, as used by the
 * p-cube routing algorithm and the reverse-flip traffic pattern.
 */

#ifndef TURNMODEL_UTIL_BITOPS_HPP
#define TURNMODEL_UTIL_BITOPS_HPP

#include <cstdint>

namespace turnmodel {

/** Number of set bits. */
int popcount(std::uint64_t x);

/** Index of the lowest set bit; -1 when x == 0. */
int lowestSetBit(std::uint64_t x);

/** Value of bit i of x. */
bool bitOf(std::uint64_t x, int i);

/** x with bit i set to v. */
std::uint64_t withBit(std::uint64_t x, int i, bool v);

/** x with bit i flipped. */
std::uint64_t flipBit(std::uint64_t x, int i);

/**
 * Reverse the low @p width bits of x (bit 0 swaps with bit width-1);
 * bits at or above @p width are cleared.
 */
std::uint64_t reverseBits(std::uint64_t x, int width);

/** Complement the low @p width bits of x; higher bits are cleared. */
std::uint64_t complementBits(std::uint64_t x, int width);

/** Mask with the low @p width bits set. */
std::uint64_t lowMask(int width);

} // namespace turnmodel

#endif // TURNMODEL_UTIL_BITOPS_HPP
