/**
 * @file
 * Status-message and error-handling helpers in the spirit of gem5's
 * logging facility: fatal() for user errors that prevent the program
 * from continuing, panic() for internal invariant violations, and
 * warn()/inform() for non-fatal status messages.
 */

#ifndef TURNMODEL_UTIL_LOGGING_HPP
#define TURNMODEL_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace turnmodel {

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail {

/**
 * Emit a formatted log line; Fatal exits with status 1 and Panic
 * aborts, matching the gem5 fatal/panic distinction.
 *
 * @param level Message severity.
 * @param file  Source file of the call site.
 * @param line  Source line of the call site.
 * @param msg   Already-formatted message body.
 */
[[noreturn]] void logAndDie(LogLevel level, const char *file, int line,
                            const std::string &msg);

/** Emit a non-fatal log line to stderr. */
void logMessage(LogLevel level, const std::string &msg);

} // namespace detail

/** Stream-compose a message from variadic arguments. */
template <typename... Args>
std::string
composeMessage([[maybe_unused]] Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return {};
    } else {
        std::ostringstream os;
        (os << ... << args);
        return os.str();
    }
}

/** Report a user-caused error and exit(1). */
#define TM_FATAL(...)                                                     \
    ::turnmodel::detail::logAndDie(::turnmodel::LogLevel::Fatal,          \
        __FILE__, __LINE__, ::turnmodel::composeMessage(__VA_ARGS__))

/** Report an internal invariant violation and abort(). */
#define TM_PANIC(...)                                                     \
    ::turnmodel::detail::logAndDie(::turnmodel::LogLevel::Panic,          \
        __FILE__, __LINE__, ::turnmodel::composeMessage(__VA_ARGS__))

/** Warn about suspicious but survivable conditions. */
#define TM_WARN(...)                                                      \
    ::turnmodel::detail::logMessage(::turnmodel::LogLevel::Warn,          \
        ::turnmodel::composeMessage(__VA_ARGS__))

/** Informational status message. */
#define TM_INFORM(...)                                                    \
    ::turnmodel::detail::logMessage(::turnmodel::LogLevel::Inform,        \
        ::turnmodel::composeMessage(__VA_ARGS__))

/** Panic unless an internal invariant holds. */
#define TM_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            TM_PANIC("assertion failed: " #cond " ",                     \
                     ::turnmodel::composeMessage(__VA_ARGS__));           \
        }                                                                 \
    } while (false)

} // namespace turnmodel

#endif // TURNMODEL_UTIL_LOGGING_HPP
