#include "util/csv.hpp"

#include <cstdint>
#include <sstream>

#include "util/logging.hpp"

namespace turnmodel {

CsvWriter::CsvWriter(std::ostream &os) : os_(os)
{
}

void
CsvWriter::header(const std::vector<std::string> &names)
{
    beginRow();
    for (const auto &name : names)
        field(name);
    // The header is not a data row.
    os_ << '\n';
    row_open_ = false;
    first_in_row_ = true;
}

CsvWriter &
CsvWriter::beginRow()
{
    TM_ASSERT(!row_open_, "previous CSV row not terminated");
    row_open_ = true;
    first_in_row_ = true;
    return *this;
}

void
CsvWriter::rawField(const std::string &value)
{
    TM_ASSERT(row_open_, "field() outside of a row");
    if (!first_in_row_)
        os_ << ',';
    os_ << value;
    first_in_row_ = false;
}

std::string
CsvWriter::escape(const std::string &value)
{
    if (value.find_first_of(",\"\n") == std::string::npos)
        return value;
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

CsvWriter &
CsvWriter::field(const std::string &value)
{
    rawField(escape(value));
    return *this;
}

CsvWriter &
CsvWriter::field(const char *value)
{
    return field(std::string(value));
}

CsvWriter &
CsvWriter::field(double value)
{
    std::ostringstream os;
    os.precision(10);
    os << value;
    rawField(os.str());
    return *this;
}

CsvWriter &
CsvWriter::field(std::uint64_t value)
{
    rawField(std::to_string(value));
    return *this;
}

CsvWriter &
CsvWriter::field(std::int64_t value)
{
    rawField(std::to_string(value));
    return *this;
}

CsvWriter &
CsvWriter::field(int value)
{
    rawField(std::to_string(value));
    return *this;
}

void
CsvWriter::endRow()
{
    TM_ASSERT(row_open_, "endRow() without beginRow()");
    os_ << '\n';
    row_open_ = false;
    ++rows_;
}

} // namespace turnmodel
