/**
 * @file
 * Input and output selection policies (Glass & Ni, Section 6). When
 * a header flit can use several available output channels, the
 * output selection policy picks one; when several header flits wait
 * for the same output channel, the input selection policy arbitrates.
 * The paper uses local first-come-first-served input selection (fair,
 * so indefinite postponement is impossible) and the "xy" lowest-
 * dimension output selection; the alternatives here support the
 * selection-policy ablation of the companion study [19].
 */

#ifndef TURNMODEL_SIM_SELECTION_HPP
#define TURNMODEL_SIM_SELECTION_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "core/direction_set.hpp"
#include "sim/config.hpp"
#include "topology/direction.hpp"
#include "util/rng.hpp"

namespace turnmodel {

/**
 * Pick one output direction among the available candidates.
 *
 * @param policy     Output selection policy.
 * @param candidates Non-empty set of available profitable outputs
 *                   (passed by value: a DirectionSet is one word).
 * @param in_dir     Arrival direction (for StraightFirst).
 * @param rng        Randomness for the Random policy.
 */
Direction selectOutput(OutputSelection policy, DirectionSet candidates,
                       std::optional<Direction> in_dir, Rng &rng);

/** One input port's bid for an output channel. */
struct InputRequest
{
    std::uint32_t in_port;          ///< Global input-port id.
    std::uint64_t header_arrival;   ///< Cycle the header arrived.
};

/**
 * Pick the winning request for one output channel.
 *
 * @param policy   Input selection policy.
 * @param requests Non-empty competing requests.
 * @param rng      Randomness for the Random policy.
 * @return Index into @p requests of the winner.
 */
std::size_t selectInput(InputSelection policy,
                        const std::vector<InputRequest> &requests,
                        Rng &rng);

} // namespace turnmodel

#endif // TURNMODEL_SIM_SELECTION_HPP
