/**
 * @file
 * Simulation configuration. Defaults reproduce the paper's setup
 * (Glass & Ni, Section 6): unidirectional channel pairs between
 * neighboring routers and between each router and its local
 * processor, all channels at 20 flits/us, single-flit input buffers,
 * local first-come-first-served input selection, lowest-dimension
 * ("xy") output selection, minimal routing, Poisson message
 * generation, and 10-or-200-flit packets with equal probability.
 */

#ifndef TURNMODEL_SIM_CONFIG_HPP
#define TURNMODEL_SIM_CONFIG_HPP

#include <cstdint>

#include "obs/config.hpp"
#include "traffic/workload.hpp"

namespace turnmodel {

/** Arbitration among header flits competing for one output channel. */
enum class InputSelection
{
    Fcfs,           ///< Paper default: earliest header arrival wins.
    Random,         ///< Uniformly random among requesters.
    FixedPriority,  ///< Lowest input-port index wins (unfair).
};

/** Choice among multiple available output channels for one header. */
enum class OutputSelection
{
    LowestDim,      ///< Paper default ("xy"): lowest dimension first.
    HighestDim,     ///< Highest dimension first.
    Random,         ///< Uniformly random among candidates.
    StraightFirst,  ///< Prefer continuing in the current dimension.
};

/**
 * Switching technique. Wormhole pipelines flits with per-hop buffers
 * of a few flits; store-and-forward holds the entire packet at every
 * intermediate router (buffers must fit a whole packet), giving the
 * classic latency contrast of the paper's Section 1: wormhole
 * latency grows with (length + distance), store-and-forward with
 * (length x distance). Virtual cut-through is wormhole with deep
 * buffers (set buffer_depth accordingly).
 */
enum class Switching
{
    Wormhole,
    StoreAndForward,
};

const char *toString(InputSelection policy);
const char *toString(OutputSelection policy);
const char *toString(Switching mode);

/** All knobs of one simulation run. */
struct SimConfig
{
    /** Offered load in flits per node per cycle (one cycle = one
     * flit time). */
    double injection_rate = 0.1;

    /** Input buffer capacity per channel, in flits. */
    std::uint32_t buffer_depth = 1;

    /** Switching technique; StoreAndForward requires buffer_depth to
     * fit the longest packet. */
    Switching switching = Switching::Wormhole;

    InputSelection input_selection = InputSelection::Fcfs;
    OutputSelection output_selection = OutputSelection::LowestDim;

    /** Packet length distribution. */
    PacketLengthDist lengths = PacketLengthDist::paperBimodal();

    /** Channel bandwidth, used only to convert cycles to time. */
    double channel_flits_per_us = 20.0;

    /** Cycles before measurement starts. */
    std::uint64_t warmup_cycles = 10000;

    /** Cycles measured. */
    std::uint64_t measure_cycles = 30000;

    /**
     * Cycles without progress before declaring deadlock. The default
     * is conservative: under extreme overload a packet can
     * legitimately wait thousands of cycles behind chains of
     * 200-flit packets, so short thresholds are only appropriate in
     * controlled scenarios (see examples/deadlock_demo.cpp, which
     * uses the exact drain criterion instead).
     */
    std::uint64_t deadlock_threshold = 30000;

    /**
     * Snapshot the routing algorithm into a compiled lookup table at
     * network construction (see core/routing/compiled.hpp), making
     * every hot-loop routing decision a branch-free table load. The
     * snapshot is bit-for-bit equivalent, so results are identical
     * either way; disable only to exercise the virtual-dispatch path.
     */
    bool compiled_routing = true;

    /**
     * Observability collection (per-channel counters, time-series
     * sampler, packet trace). All off by default; purely passive, so
     * enabling it never changes a run's SimResult.
     */
    ObsConfig obs;

    /** Master seed; per-node streams derive from it. */
    std::uint64_t seed = 1;

    /** Cycle duration in microseconds. */
    double cycleUs() const { return 1.0 / channel_flits_per_us; }
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_CONFIG_HPP
