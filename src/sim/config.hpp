/**
 * @file
 * Simulation configuration. Defaults reproduce the paper's setup
 * (Glass & Ni, Section 6): unidirectional channel pairs between
 * neighboring routers and between each router and its local
 * processor, all channels at 20 flits/us, single-flit input buffers,
 * local first-come-first-served input selection, lowest-dimension
 * ("xy") output selection, minimal routing, Poisson message
 * generation, and 10-or-200-flit packets with equal probability.
 */

#ifndef TURNMODEL_SIM_CONFIG_HPP
#define TURNMODEL_SIM_CONFIG_HPP

#include <cstdint>
#include <string>

#include "obs/config.hpp"
#include "traffic/workload.hpp"

namespace turnmodel {

/** Arbitration among header flits competing for one output channel. */
enum class InputSelection
{
    Fcfs,           ///< Paper default: earliest header arrival wins.
    Random,         ///< Uniformly random among requesters.
    FixedPriority,  ///< Lowest input-port index wins (unfair).
};

/** Choice among multiple available output channels for one header. */
enum class OutputSelection
{
    LowestDim,      ///< Paper default ("xy"): lowest dimension first.
    HighestDim,     ///< Highest dimension first.
    Random,         ///< Uniformly random among candidates.
    StraightFirst,  ///< Prefer continuing in the current dimension.
};

/**
 * Switching technique. Wormhole pipelines flits with per-hop buffers
 * of a few flits; store-and-forward holds the entire packet at every
 * intermediate router (buffers must fit a whole packet), giving the
 * classic latency contrast of the paper's Section 1: wormhole
 * latency grows with (length + distance), store-and-forward with
 * (length x distance). Virtual cut-through is wormhole with deep
 * buffers (set buffer_depth accordingly).
 */
enum class Switching
{
    Wormhole,
    StoreAndForward,
};

/** Which cycle-accurate engine simulates the network. */
enum class RouterModel
{
    Classic,   ///< Single-buffer wormhole router (the paper's model).
    VcCredit,  ///< Pipelined VC router with credit flow control.
};

/**
 * Switch-allocation organization of the VC router's separable
 * allocator: which resource class arbitrates first. Both stages use
 * deterministic round-robin priority (see router/arbiter.hpp), so
 * either choice yields bit-reproducible runs.
 */
enum class SwitchArbiter
{
    InputFirst,   ///< Per input port first, then per output wire.
    OutputFirst,  ///< Per output wire first, then per input port.
};

/** Knobs specific to RouterModel::VcCredit (see router/vc_network.hpp). */
struct VcRouterConfig
{
    /** Cycles for a credit (or a VC-free signal) to travel back
     * upstream after a flit leaves a downstream buffer (>= 1). */
    std::uint32_t credit_delay = 1;

    /**
     * Model infinite downstream credits: backpressure degenerates to
     * the classic engine's instantaneous occupancy check with
     * same-cycle chained refills, and output VCs free the moment the
     * tail is sent. This is the degenerate configuration the
     * differential test uses to pin the VC engine to the classic
     * engine's semantics.
     */
    bool ideal_credits = false;

    /**
     * Charge the route-compute and VC-allocation pipeline stages one
     * cycle each (the canonical RC/VA/SA/LT pipeline). When false
     * both collapse into the header-arrival cycle and switch
     * allocation may fire the same cycle a VC is granted, matching
     * the classic engine's per-hop timing.
     */
    bool pipelined = true;

    SwitchArbiter arbiter = SwitchArbiter::InputFirst;
};

const char *toString(InputSelection policy);
const char *toString(OutputSelection policy);
const char *toString(Switching mode);
const char *toString(RouterModel model);
const char *toString(SwitchArbiter arbiter);

/** All knobs of one simulation run. */
struct SimConfig
{
    /** Offered load in flits per node per cycle (one cycle = one
     * flit time). */
    double injection_rate = 0.1;

    /** Input buffer capacity per channel, in flits. */
    std::uint32_t buffer_depth = 1;

    /** Switching technique; StoreAndForward requires buffer_depth to
     * fit the longest packet. */
    Switching switching = Switching::Wormhole;

    InputSelection input_selection = InputSelection::Fcfs;
    OutputSelection output_selection = OutputSelection::LowestDim;

    /**
     * Output-selection policy by factory name (see
     * select/factory.hpp): adapters for the classic enums plus the
     * congestion-aware policies (hashed, local-congestion, regional,
     * lookahead). Empty (the default) derives the adapter matching
     * output_selection, so existing configurations are untouched.
     */
    std::string selection_policy;

    /** Packet length distribution. */
    PacketLengthDist lengths = PacketLengthDist::paperBimodal();

    /** Channel bandwidth, used only to convert cycles to time. */
    double channel_flits_per_us = 20.0;

    /** Cycles before measurement starts. */
    std::uint64_t warmup_cycles = 10000;

    /** Cycles measured. */
    std::uint64_t measure_cycles = 30000;

    /**
     * Cycles without progress before declaring deadlock. The default
     * is conservative: under extreme overload a packet can
     * legitimately wait thousands of cycles behind chains of
     * 200-flit packets, so short thresholds are only appropriate in
     * controlled scenarios (see examples/deadlock_demo.cpp, which
     * uses the exact drain criterion instead).
     */
    std::uint64_t deadlock_threshold = 30000;

    /**
     * Snapshot the routing algorithm into a compiled lookup table at
     * network construction (see core/routing/compiled.hpp), making
     * every hot-loop routing decision a branch-free table load. The
     * snapshot is bit-for-bit equivalent, so results are identical
     * either way; disable only to exercise the virtual-dispatch path.
     */
    bool compiled_routing = true;

    /**
     * Router microarchitecture simulating the network: the classic
     * single-buffer wormhole model (default, the paper's Section 6
     * setup) or the credit-based virtual-channel router under
     * src/router/. Every layer above the engine (driver, execution,
     * observability) is model-agnostic.
     */
    RouterModel router_model = RouterModel::Classic;

    /** VC-router knobs; read only when router_model == VcCredit. */
    VcRouterConfig vc_router;

    /**
     * Workload shape beyond open-loop Poisson: closed-loop
     * request/reply, MMPP bursts, hotspot storms, and trace replay
     * (see traffic/workload.hpp). Defaults leave the classic
     * open-loop path bit-identical to earlier versions.
     */
    WorkloadConfig workload;

    /**
     * Worker threads stepping one network: the engine partitions the
     * router array into that many contiguous shards and runs each
     * cycle as barrier-separated gather/commit phases across a
     * persistent worker team. 1 (the default) steps serially on the
     * calling thread; 0 selects the hardware concurrency. Output is
     * bit-identical at every value — the engines force a single
     * shard for the configurations whose behavior depends on a
     * global visit order (Random input/output selection, which
     * consumes one shared RNG stream, and the bounded packet trace,
     * whose overwrite order is global).
     */
    unsigned sim_threads = 1;

    /**
     * Observability collection (per-channel counters, time-series
     * sampler, packet trace). All off by default; purely passive, so
     * enabling it never changes a run's SimResult.
     */
    ObsConfig obs;

    /** Master seed; per-node streams derive from it. */
    std::uint64_t seed = 1;

    /** Cycle duration in microseconds. */
    double cycleUs() const { return 1.0 / channel_flits_per_us; }
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_CONFIG_HPP
