/**
 * @file
 * A flat ring-buffer FIFO. std::deque allocates and frees fixed-size
 * blocks as its ends cross block boundaries, so a source queue that
 * cycles between empty and a few packets keeps touching the heap
 * forever; this queue doubles its power-of-two backing store on
 * overflow and never gives memory back, so steady-state push/pop is
 * allocation-free once the high-water capacity is reached.
 */

#ifndef TURNMODEL_SIM_FLAT_QUEUE_HPP
#define TURNMODEL_SIM_FLAT_QUEUE_HPP

#include <cstddef>
#include <vector>

#include "util/logging.hpp"

namespace turnmodel {

/** Grow-only ring-buffer FIFO for trivially copyable elements. */
template <typename T>
class FlatQueue
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    const T &front() const
    {
        TM_ASSERT(count_ > 0, "front() of an empty FlatQueue");
        return buf_[head_];
    }

    void push_back(const T &value)
    {
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_) & (buf_.size() - 1)] = value;
        ++count_;
    }

    void pop_front()
    {
        TM_ASSERT(count_ > 0, "pop_front() of an empty FlatQueue");
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

  private:
    void grow()
    {
        const std::size_t new_cap =
            buf_.empty() ? 8 : buf_.size() * 2;
        std::vector<T> next(new_cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
        buf_.swap(next);
        head_ = 0;
    }

    std::vector<T> buf_;     ///< Power-of-two capacity.
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_FLAT_QUEUE_HPP
