/**
 * @file
 * Results of one simulation run: the paper's two figures of merit —
 * average communication latency (microseconds) and network throughput
 * (flits delivered per microsecond) — plus the supporting measures
 * used to decide whether the throughput is *sustainable* (bounded
 * source queues, Glass & Ni Section 6).
 */

#ifndef TURNMODEL_SIM_METRICS_HPP
#define TURNMODEL_SIM_METRICS_HPP

#include <cstdint>

namespace turnmodel {

/** Aggregated measurement of one run at one injection rate. */
struct SimResult
{
    double offered_flits_per_us = 0.0;   ///< Offered network load.
    double throughput_flits_per_us = 0.0;///< Delivered during window.
    double avg_latency_us = 0.0;         ///< Creation to tail delivery.
    double avg_network_latency_us = 0.0; ///< Injection to tail delivery.
    double p99_latency_us = 0.0;         ///< Tail of the distribution.
    /**
     * True when the p99 fell in the latency histogram's overflow bin:
     * the reported p99_latency_us is only the measurement-window
     * bound, not a measurement, and must not be plotted as one.
     */
    bool latency_p99_clamped = false;
    double avg_hops = 0.0;               ///< Header channel crossings.
    std::uint64_t packets_measured = 0;  ///< Completions in the window.
    bool saturated = false;              ///< Load not sustainable.
    bool deadlocked = false;             ///< Stall watchdog tripped.
    double queue_growth_packets = 0.0;   ///< Per node over the window.
    /** Delivered / offered load over the window; well below 1.0 means
     * the network could not accept the offered traffic. */
    double delivered_ratio = 0.0;
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_METRICS_HPP
