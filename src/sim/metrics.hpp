/**
 * @file
 * Results of one simulation run: the paper's two figures of merit —
 * average communication latency (microseconds) and network throughput
 * (flits delivered per microsecond) — plus the supporting measures
 * used to decide whether the throughput is *sustainable* (bounded
 * source queues, Glass & Ni Section 6).
 */

#ifndef TURNMODEL_SIM_METRICS_HPP
#define TURNMODEL_SIM_METRICS_HPP

#include <cstdint>

namespace turnmodel {

/** Aggregated measurement of one run at one injection rate. */
struct SimResult
{
    double offered_flits_per_us = 0.0;   ///< Offered network load.
    double throughput_flits_per_us = 0.0;///< Delivered during window.
    double avg_latency_us = 0.0;         ///< Creation to tail delivery.
    double avg_network_latency_us = 0.0; ///< Injection to tail delivery.
    /**
     * Tail of the latency distribution, estimated by a streaming P²
     * quantile (util/stats.hpp) — constant memory at any window
     * length, so 10^8-cycle soak runs report a real p99 instead of a
     * histogram whose range must be guessed up front.
     */
    double p99_latency_us = 0.0;
    /**
     * Retired: the fixed-range histogram the P² estimator replaced
     * could clamp its p99 into the overflow bin; the streaming
     * estimator never clamps, so this stays false. Kept so downstream
     * schema consumers (sweep JSON) see an unchanged shape.
     */
    bool latency_p99_clamped = false;
    double avg_hops = 0.0;               ///< Header channel crossings.
    std::uint64_t packets_measured = 0;  ///< Completions in the window.
    bool saturated = false;              ///< Load not sustainable.
    bool deadlocked = false;             ///< Stall watchdog tripped.
    double queue_growth_packets = 0.0;   ///< Per node over the window.
    /** Delivered / offered load over the window, clamped to [0, 1]:
     * warmup backlog draining inside the window (and closed-loop
     * replies, which are delivered but never offered) can push the
     * raw quotient above 1.0, which is measurement spillover, not
     * super-unit throughput. Well below 1.0 means the network could
     * not accept the offered traffic. */
    double delivered_ratio = 0.0;
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_METRICS_HPP
