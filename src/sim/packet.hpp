/**
 * @file
 * Packets and flits. A message is one packet; a packet is a header
 * flit, body flits, and a tail flit. The header carries the routing
 * information and leads the packet through the network; the tail
 * releases the channels the packet holds (wormhole switching).
 *
 * In-flight packet state lives in a dense slot-recycling pool
 * (sim/packet_pool.hpp). A flit therefore carries its packet's pool
 * slot, not its PacketId: every per-flit state lookup in the hot
 * loop is a direct array index, no hashing. The externally visible
 * PacketId (sequential, unique over the run) is stored inside the
 * PacketState and used for completions, traces, and reports only.
 */

#ifndef TURNMODEL_SIM_PACKET_HPP
#define TURNMODEL_SIM_PACKET_HPP

#include <cstdint>

#include "topology/coordinates.hpp"

namespace turnmodel {

/** Packet identifier; sequential and unique over a simulation run. */
using PacketId = std::int64_t;

/** Sentinel for "no packet". */
inline constexpr PacketId kNoPacket = -1;

/** Index of a packet's state in the dense pool; recycled on
 * delivery, so only meaningful while the packet is live. */
using PacketSlot = std::uint32_t;

/** Sentinel for "no slot". */
inline constexpr PacketSlot kNoSlot = 0xffffffffu;

/** One flow-control digit of a packet. */
struct Flit
{
    PacketSlot slot = kNoSlot;  ///< Pool slot of the owning packet.
    bool head = false;          ///< Leading (routing) flit.
    bool tail = false;          ///< Releases held channels as it passes.
};

/** Book-keeping for one packet in flight. */
struct PacketState
{
    PacketId id = kNoPacket;           ///< Run-unique external id.
    NodeId src = 0;
    NodeId dest = 0;
    std::uint32_t length = 0;          ///< Total flits.
    double created = 0.0;              ///< Generation time, cycles.
    double injected = -1.0;            ///< Header entered the network.
    std::uint32_t flits_injected = 0;  ///< Left the source queue.
    std::uint32_t flits_delivered = 0; ///< Consumed at the destination.
    std::uint32_t hops = 0;            ///< Channels the header crossed.
    bool reply = false;                ///< Closed-loop reply (no re-reply).
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_PACKET_HPP
