/**
 * @file
 * Packets and flits. A message is one packet; a packet is a header
 * flit, body flits, and a tail flit. The header carries the routing
 * information and leads the packet through the network; the tail
 * releases the channels the packet holds (wormhole switching).
 */

#ifndef TURNMODEL_SIM_PACKET_HPP
#define TURNMODEL_SIM_PACKET_HPP

#include <cstdint>

#include "topology/coordinates.hpp"

namespace turnmodel {

/** Packet identifier; unique over a simulation run. */
using PacketId = std::int64_t;

/** Sentinel for "no packet". */
inline constexpr PacketId kNoPacket = -1;

/** One flow-control digit of a packet. */
struct Flit
{
    PacketId packet = kNoPacket;
    bool head = false;   ///< Leading (routing) flit.
    bool tail = false;   ///< Releases held channels as it passes.
};

/** Book-keeping for one packet in flight. */
struct PacketState
{
    NodeId src = 0;
    NodeId dest = 0;
    std::uint32_t length = 0;          ///< Total flits.
    double created = 0.0;              ///< Generation time, cycles.
    double injected = -1.0;            ///< Header entered the network.
    std::uint32_t flits_injected = 0;  ///< Left the source queue.
    std::uint32_t flits_delivered = 0; ///< Consumed at the destination.
    std::uint32_t hops = 0;            ///< Channels the header crossed.
    std::uint64_t last_progress = 0;   ///< Cycle a flit last moved.
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_PACKET_HPP
