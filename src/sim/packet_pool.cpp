#include "sim/packet_pool.hpp"

#include "util/logging.hpp"

namespace turnmodel {

PacketSlot
PacketPool::allocate()
{
    PacketSlot slot;
    if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
        slots_[slot] = PacketState{};
    } else {
        slot = static_cast<PacketSlot>(slots_.size());
        slots_.emplace_back();
        live_.push_back(0);
    }
    live_[slot] = 1;
    ++live_count_;
    return slot;
}

void
PacketPool::release(PacketSlot slot)
{
    TM_ASSERT(isLive(slot), "releasing a dead packet slot");
    live_[slot] = 0;
    --live_count_;
    free_.push_back(slot);
}

} // namespace turnmodel
