#include "sim/packet_pool.hpp"

#include "util/logging.hpp"

namespace turnmodel {

void
PacketPool::configureArenas(std::uint32_t count)
{
    TM_ASSERT(count >= 1, "the pool needs at least one arena");
    TM_ASSERT(slots_.empty(),
              "arenas must be configured before any allocation");
    arenas_.assign(count, Arena{});
}

void
PacketPool::reserveExtra(std::uint32_t arena, std::size_t count)
{
    if (count == 0)
        return;
    Arena &a = arenas_[arena];
    const std::size_t from_free = a.free.size();
    if (count <= from_free)
        return;
    const std::size_t fresh_needed = count - from_free;
    // Highest slot value the arena would mint: interleaved encoding
    // index * numArenas() + arena.
    const std::size_t top =
        (static_cast<std::size_t>(a.fresh) + fresh_needed - 1) *
            numArenas() +
        arena;
    if (top >= slots_.size()) {
        slots_.resize(top + 1);
        live_.resize(top + 1, 0);
    }
}

PacketSlot
PacketPool::allocate(std::uint32_t arena)
{
    Arena &a = arenas_[arena];
    PacketSlot slot;
    if (!a.free.empty()) {
        slot = a.free.back();
        a.free.pop_back();
        slots_[slot] = PacketState{};
    } else {
        slot = a.fresh++ * numArenas() + arena;
        if (slot >= slots_.size()) {
            // Serial-context growth (post(), un-reserved paths).
            slots_.resize(slot + 1);
            live_.resize(slot + 1, 0);
        } else {
            slots_[slot] = PacketState{};
        }
    }
    live_[slot] = 1;
    ++a.live;
    return slot;
}

void
PacketPool::release(PacketSlot slot)
{
    TM_ASSERT(isLive(slot), "releasing a dead packet slot");
    Arena &a = arenas_[arenaOf(slot)];
    live_[slot] = 0;
    --a.live;
    a.free.push_back(slot);
}

} // namespace turnmodel
