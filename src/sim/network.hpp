/**
 * @file
 * The flit-level wormhole network engine.
 *
 * Model (matching Glass & Ni, Section 6): every router has one input
 * buffer per incoming channel plus one for the local injection
 * channel; each buffer holds buffer_depth flits (one in the paper).
 * A channel moves at most one flit per cycle. A packet's header flit
 * requests an output channel from the routing algorithm; on a grant
 * the channel is held by that packet until its tail flit passes —
 * this channel holding while blocked is what makes wormhole routing
 * deadlock prone and the turn model relevant. Destination routers
 * consume flits immediately (one per cycle over the ejection
 * channel). Messages blocked from entering the network queue at the
 * source processor.
 *
 * Within one cycle, flit movement is evaluated against the
 * cycle-start state, with chained movement resolved so a full buffer
 * whose head departs this cycle can be refilled in the same cycle
 * (full streaming bandwidth through single-flit buffers). A cyclic
 * wait — true deadlock — is detected and reported by the stall
 * watchdog.
 *
 * Sharded stepping (SimConfig::sim_threads): the router array is
 * partitioned into contiguous shards (sim/shard.hpp), each owning
 * its routers' ports, buffers, source queues, and one packet arena.
 * Every cycle runs as barrier-separated phases on a persistent
 * WorkerTeam: arrival sampling; a serial slot/id reservation; VC-free
 * generation commit plus output allocation (router-local by
 * construction); move decision (reads any shard's cycle-start state,
 * each shard memoizing privately — the granted-target graph is
 * functional, so movability is order-independent); an optional
 * serial physical-wire arbitration; a pop commit (writes shard-owned
 * state, exporting boundary-crossing flits and slot releases to
 * mailboxes); and a push commit draining inbound mailboxes in
 * canonical sender order. Every observable is bit-identical at any
 * shard count; with one shard the same phase code runs inline on the
 * caller with no team and no barriers.
 *
 * Hot-loop storage discipline: steady-state step() performs zero
 * heap allocations. Packet state lives in a dense slot-recycling
 * pool (PacketPool) indexed by the slot each Flit carries; all input
 * buffers share one flat flit slab (per-port ring spans); source
 * queues are flat ring FIFOs; and every per-cycle working set
 * (bids, moves, in-flight flits, staged arrivals, mailboxes,
 * arbitration bookkeeping) is a persistent member cleared and
 * refilled in place each cycle. Containers grow only while a new
 * high-water mark is being set.
 */

#ifndef TURNMODEL_SIM_NETWORK_HPP
#define TURNMODEL_SIM_NETWORK_HPP

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/routing.hpp"
#include "core/routing/compiled.hpp"
#include "exec/thread_pool.hpp"
#include "obs/observer.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/flat_queue.hpp"
#include "sim/packet.hpp"
#include "sim/packet_pool.hpp"
#include "select/factory.hpp"
#include "sim/selection.hpp"
#include "sim/shard.hpp"
#include "traffic/pattern.hpp"
#include "traffic/source.hpp"
#include "traffic/workload.hpp"

namespace turnmodel {

struct ObsReport;

/** The simulated network: routers, buffers, channels, sources. */
class Network : public NetworkEngine
{
  public:
    /**
     * @param routing Routing algorithm (also supplies the topology);
     *                must outlive this object.
     * @param pattern Traffic pattern; must outlive this object.
     * @param config  Run configuration (copied).
     */
    Network(const RoutingAlgorithm &routing, const TrafficPattern &pattern,
            const SimConfig &config);

    /** Advance one flit cycle. */
    void step() override;

    /** Current cycle count. */
    std::uint64_t now() const override { return cycle_; }

    const NetworkCounters &counters() const override
    {
        return counters_;
    }

    /**
     * Completions recorded since the last drain, in ascending
     * PacketId order; the driver takes ownership and the internal
     * list is cleared.
     */
    std::vector<Completion> drainCompletions();

    /**
     * Allocation-free drain: clear @p out, swap it with the internal
     * completion list, and sort by packet id. A caller that drains
     * every cycle into the same buffer ping-pongs two allocations
     * forever instead of making one per cycle.
     */
    void drainCompletions(std::vector<Completion> &out) override;

    /**
     * Cycles since the last time any flit moved while packets were
     * in flight — the deadlock watchdog. Zero while traffic flows.
     */
    std::uint64_t stallCycles() const override { return stall_cycles_; }

    /** Whether the stall watchdog has tripped. */
    bool deadlockDetected() const override;

    /**
     * Packets that are in the network (at least one flit injected,
     * not yet delivered) and have made no progress for at least
     * @p age cycles, in ascending PacketId order. A non-empty result
     * at a large age indicates a (possibly partial) deadlock that
     * the global stall watchdog cannot see because unrelated traffic
     * still moves.
     */
    std::vector<PacketId> stuckPackets(std::uint64_t age)
        const override;

    /** Age in cycles of the longest-stalled in-network packet. */
    std::uint64_t oldestPacketStall() const override;

    /**
     * Turn stochastic message generation on or off (for drain
     * phases). Closed-loop replies keep flowing while generation is
     * off — a drain must honor the message-dependency chain — so the
     * per-node due-time cache is refreshed for the new mode.
     */
    void setGenerationEnabled(bool enabled) override;

    /**
     * Queue one packet directly at a source, bypassing the stochastic
     * generator — the hook for trace-driven workloads and for
     * controlled tests.
     *
     * @return The new packet's id.
     */
    PacketId post(NodeId src, NodeId dest,
                  std::uint32_t length) override;

    /** Total packets queued at all sources right now. */
    std::uint64_t sourceQueuePackets() const override;

    const Topology &topology() const override { return topo_; }

    /** The observer, or nullptr when observability is off. */
    const NetworkObserver *observer() const override
    {
        return obs_.get();
    }

    /**
     * Append what this network's observer collected — channel
     * heatmap rows (keyed by router coordinates and direction, with
     * "eject" rows for the delivery channels) and the packet event
     * trace — to @p report. No-op when observability is off.
     */
    void fillObsReport(ObsReport &report) const override;

    /** Shards step() executes across (after serialization gates). */
    unsigned shardCount() const override { return num_shards_; }

    /** In-flight packet pool capacity (soak memory high-water mark). */
    std::size_t packetPoolCapacity() const override
    {
        return packets_.capacity();
    }

  private:
    // ----- port indexing ---------------------------------------------
    /** Ports per router: 2n channel ports plus the local port. */
    int portsPerRouter() const { return ports_per_router_; }
    std::uint32_t inPortId(NodeId router, int local) const;
    NodeId routerOf(std::uint32_t port) const
    {
        return port_router_[port];
    }
    int localOf(std::uint32_t port) const { return port_local_[port]; }
    /** Local index of the injection (input) / ejection (output) port. */
    int localPort() const { return ports_per_router_ - 1; }

    /** One pending flit transfer this cycle. */
    struct Move
    {
        std::uint32_t from;
        std::int32_t to;   ///< Downstream input port; -1 for ejection.
        std::uint32_t out; ///< Output port crossed (decided once).
    };

    /** A header flit's request for one output channel this cycle. */
    struct Bid
    {
        std::uint32_t out_port;
        InputRequest request;
    };

    /** One flit popped from its buffer, awaiting delivery downstream. */
    struct InFlight
    {
        Flit flit;
        std::uint32_t from;
        std::int32_t to;
        std::uint32_t out;   ///< Output port the flit crossed.
    };

    /**
     * Everything one shard owns or scribbles on during a cycle. The
     * persistent lists (active, waiting) and the counters partition
     * the global state by owner; the rest is per-cycle scratch that
     * would be write-contended if shared. With one shard this is
     * simply the engine's former global working set.
     */
    struct Shard
    {
        NodeId node_begin = 0;
        NodeId node_end = 0;
        std::uint32_t port_begin = 0;
        std::uint32_t port_end = 0;

        /** Ports holding flits or bound to a packet (own ports). */
        std::vector<std::uint32_t> active_ports;
        /** Own head-waiting ports, compact (see waiting_pos_). */
        std::vector<std::uint32_t> waiting_list;
        /** Private movability memo over ALL ports: the decide phase
         * reads other shards' frozen state, so each shard memoizes
         * the closure it explores without sharing stamps. */
        std::vector<std::uint64_t> move_memo;

        // Per-cycle scratch.
        std::vector<Bid> bids;
        std::vector<InputRequest> bid_group;
        std::vector<Move> moves;
        std::vector<InFlight> in_flight;
        std::vector<SourcedPacket> staged;
        PacketId id_base = 0;

        /** Cumulative, owner-written; merged into the engine totals
         * in the serial tail. Fields may wrap individually (a shard
         * can eject more than it injects); unsigned modular addition
         * makes the merged sums exact. */
        NetworkCounters counters;
        std::vector<Completion> completions;
        std::uint32_t freed_candidates = 0;
        bool moved = false;
    };

    // ----- per-port flit rings (shared slab) -------------------------
    std::uint32_t fifoSize(std::uint32_t port) const
    {
        return in_ports_[port].fifo_size;
    }
    const Flit &fifoFront(std::uint32_t port) const
    {
        return flit_slab_[port * buffer_depth_
                          + in_ports_[port].fifo_head];
    }
    void fifoPush(Shard &sh, std::uint32_t port, const Flit &flit);
    Flit fifoPop(std::uint32_t port);

    // ----- cycle phases (see step()) ----------------------------------
    void stepShard(std::uint32_t s);
    /** Barrier between phases; no-op with one shard. */
    void sync()
    {
        if (team_)
            team_->barrier();
    }
    void generateSample(Shard &sh);
    /** Serial: packet-id bases, arena pre-growth, progress_ sizing. */
    void prepareGeneration();
    void commitGeneration(Shard &sh, std::uint32_t s);
    void allocateOutputs(Shard &sh);
    /** Append @p port's output-channel request (if any) to sh.bids. */
    void gatherBid(Shard &sh, std::uint32_t port);
    void decideMoves(Shard &sh);
    void popMoves(Shard &sh, std::uint32_t s);
    void pushMoves(Shard &sh, std::uint32_t s);
    void pushOne(Shard &sh, std::uint32_t s, const InFlight &f);
    void injectFlits(Shard &sh);
    void compactActive(Shard &sh);
    void recordHeldPorts(Shard &sh);
    void drainReleases(std::uint32_t s);
    /** Publish cycle-start congestion snapshots for the policy. */
    void snapshotCongestion(Shard &sh);
    /** Fold this cycle's channel outcomes into the blocked EWMAs. */
    void updateCongestion(Shard &sh);
    void serialTail();
    void mergeCounters();

    /**
     * Enforce one flit per physical channel per cycle when virtual
     * channels share wires, cancelling losing moves and any chained
     * refills that depended on them. Serial phase: operates on the
     * concatenation of every shard's moves, with group members in
     * canonical (wire, from-port) order so the rotating priority is
     * shard-count-invariant, then compacts each shard's list.
     */
    void arbitratePhysicalChannels();

    /** Movability of the head flit of @p port this cycle (memoized
     * privately per shard). The memo hit is the hot case — blocked
     * wormhole chains query the same ports over and over — so it
     * stays inline; the actual evaluation lives in
     * headCanMoveCompute(). */
    bool headCanMove(Shard &sh, std::uint32_t port)
    {
        const std::uint64_t memo = sh.move_memo[port];
        if ((memo >> 2) == cycle_)
            return (memo & 3) == 2;   // 1 (cyclic) and 3: no.
        return headCanMoveCompute(sh, port);
    }
    bool headCanMoveCompute(Shard &sh, std::uint32_t port);

    void markActive(Shard &sh, std::uint32_t port);

    /** Last-move stamp; relaxed atomic store because several shards
     * may stamp different flits of one packet in the same cycle (all
     * writing the same value). */
    void stampProgress(PacketSlot slot);

    // ----- state -------------------------------------------------------
    struct InPort
    {
        std::uint32_t fifo_head = 0;   ///< Offset in this port's span.
        std::uint32_t fifo_size = 0;
        PacketSlot cur_slot = kNoSlot; ///< Packet bound to the buffer.
        int granted_out = -1;   ///< Local output index at this router.
        std::uint64_t header_arrival = 0;
    };

    struct OutPort
    {
        PacketSlot owner = kNoSlot;
    };

    const RoutingAlgorithm &routing_;
    /** Compiled snapshot of routing_ (when config.compiled_routing
     * and routing_ is not already a table). */
    std::optional<CompiledRoutingTable> compiled_;
    /** The routing actually consulted in the hot loop: &*compiled_
     * when a snapshot was taken, otherwise &routing_. */
    const RoutingAlgorithm *decider_;
    const Topology &topo_;
    const TrafficPattern &pattern_;
    SimConfig config_;

    int ports_per_router_;
    std::uint32_t buffer_depth_;   ///< config_.buffer_depth, hoisted.
    std::vector<InPort> in_ports_;
    std::vector<OutPort> out_ports_;
    /** All input buffers, one ring span of buffer_depth_ per port. */
    std::vector<Flit> flit_slab_;
    /** Downstream input port of each output port; -1 for ejection. */
    std::vector<std::int32_t> out_to_in_;
    /** port -> router / local index (replaces div/mod in the loop). */
    std::vector<NodeId> port_router_;
    std::vector<std::uint8_t> port_local_;

    std::vector<FlatQueue<PacketSlot>> source_queues_;
    /** 1 when source_queues_[v] is non-empty: the injection scan
     * reads 1 byte per idle node instead of a FlatQueue record. */
    std::vector<std::uint8_t> source_pending_;
    std::vector<NodeSource> sources_;
    /** Flat mirror of each source's next due time, so the generation
     * scan touches 8 contiguous bytes per idle node. */
    std::vector<double> arrival_due_;
    Rng router_rng_;

    PacketPool packets_;
    PacketId next_packet_id_ = 0;
    /** Last cycle each live packet (by slot) moved any flit, kept
     * outside PacketState: it is written once per flit move, and a
     * dense 8-byte-per-slot array keeps that hot write-set an order
     * of magnitude smaller than the full packet records. */
    std::vector<std::uint64_t> progress_;

    /** active_ports membership, one byte per port (owner-written). */
    std::vector<std::uint8_t> is_active_;
    /** 1 while the port's front flit is an ungranted header — the
     * only ports the allocation scan must actually inspect. Set when
     * a head flit is buffered, cleared when its bid wins a grant. */
    std::vector<std::uint8_t> head_waiting_;
    /** Each head-waiting port's position in its owning shard's
     * waiting_list, for O(1) removal. The lists replace scanning
     * active ports whenever the output-selection policy is
     * deterministic: bids are sorted before use, so gather order is
     * only observable through RNG consumption. */
    std::vector<std::uint32_t> waiting_pos_;
    bool ordered_bid_scan_ = false;  ///< Rng policy: exact order.
    /** Output-selection policy consulted by every gatherBid. */
    SelectionPolicyPtr sel_;
    SelectionNeeds sel_needs_;   ///< Which snapshots to maintain.
    /** Cycle-start free slots of each output's downstream buffer
     * (sized only when the policy asks; see snapshotCongestion). */
    std::vector<std::uint16_t> free_snap_;
    /** Cycle-start regional congestion per output: own blocked EWMA
     * plus the downstream router's EWMA total. */
    std::vector<std::uint32_t> regional_snap_;
    /** Q16 fixed-point blocked EWMA per output channel. */
    std::vector<std::int32_t> blocked_ewma_;
    /** Per-router sum of its network outputs' blocked EWMAs. */
    std::vector<std::uint32_t> router_blocked_;
    /** Last cycle each output channel forwarded a flit. */
    std::vector<std::uint64_t> fwd_stamp_;
    /** Cycle of the port's last bid attempt that found every usable
     * output channel busy (0 = none). Until an output at its router
     * is released the retry must fail the same way, so the gather
     * skips it: grants only shrink the candidate set, and a fruitless
     * attempt consumes no randomness under any policy. */
    std::vector<std::uint64_t> bid_blocked_at_;
    /** Cycle an output channel at this router was last released. */
    std::vector<std::uint64_t> out_freed_at_;
    /** granted_out != -1, as one byte per port: the move-decide scan
     * reads this instead of pulling in whole InPort records. */
    std::vector<std::uint8_t> granted_;
    /** While a port is granted: the global output-port id it holds
     * and that output's downstream input port (-1 for ejection).
     * A grant is immutable until the tail releases it, so caching
     * these at grant time spares every movability check and move
     * the router/local/id arithmetic. */
    std::vector<std::uint32_t> granted_out_port_;
    std::vector<std::int32_t> granted_target_;
    /** Ports whose buffer may have emptied this cycle (tail popped);
     * the only candidates the active-list compaction must inspect. */
    std::vector<std::uint8_t> maybe_free_;
    /** Physical-wire arbitration key of each non-local output port:
     * router * 256 + physical channel group (hoists the virtual
     * physicalChannelGroup() call out of the arbitration loop). */
    std::vector<std::uint64_t> arb_key_;

    // ----- sharding ----------------------------------------------------
    ShardPlan plan_;
    std::uint32_t num_shards_ = 1;
    std::vector<Shard> shards_;
    /** Gang team (null when num_shards_ == 1). */
    std::unique_ptr<WorkerTeam> team_;
    /** Boundary-crossing flit handoffs, drained in sender order. */
    ShardMailboxes<InFlight> flit_mail_;
    /** Delivered packets' slots going home to their arenas. */
    ShardMailboxes<PacketSlot> release_mail_;

    // ----- wire-arbitration scratch (serial phase; persistent) -------
    std::vector<Move> all_moves_;
    std::vector<std::size_t> arb_shard_base_;
    /** (wire key, (from port << 32) | move index): sorting forms the
     * per-wire groups with members in canonical from-port order. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> arb_groups_;
    std::vector<std::uint8_t> arb_cancelled_;
    std::vector<std::uint32_t> arb_worklist_;
    /** Move index entering each input port this cycle, or -1; only
     * populated (and reset) when arbitration has to propagate. */
    std::vector<std::int32_t> arb_move_into_;

    std::uint64_t cycle_ = 0;
    bool generate_ = true;
    /** Hoisted workload knobs: closed loop active, reply length, and
     * delivery-to-reply-due offset (1 + think_cycles: a reply is
     * never due before the cycle after its request's delivery). */
    bool closed_loop_ = false;
    std::uint32_t reply_length_ = 0;
    std::uint64_t reply_delay_ = 1;
    bool moved_this_cycle_ = false;
    std::uint64_t stall_cycles_ = 0;
    bool packet_stall_flag_ = false;

    /** Merged view of the per-shard counters (serial tail). */
    NetworkCounters counters_;
    std::vector<Completion> completions_;

    /** Null when observability is off (the default). The raw
     * collector pointers are cached so the hot loop pays one branch,
     * not two indirections, per recording site. */
    std::unique_ptr<NetworkObserver> obs_;
    ChannelStats *chan_stats_ = nullptr;
    PacketTrace *trace_sink_ = nullptr;
    InjectionTrace *inj_log_ = nullptr;
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_NETWORK_HPP
