/**
 * @file
 * The flit-level wormhole network engine.
 *
 * Model (matching Glass & Ni, Section 6): every router has one input
 * buffer per incoming channel plus one for the local injection
 * channel; each buffer holds buffer_depth flits (one in the paper).
 * A channel moves at most one flit per cycle. A packet's header flit
 * requests an output channel from the routing algorithm; on a grant
 * the channel is held by that packet until its tail flit passes —
 * this channel holding while blocked is what makes wormhole routing
 * deadlock prone and the turn model relevant. Destination routers
 * consume flits immediately (one per cycle over the ejection
 * channel). Messages blocked from entering the network queue at the
 * source processor.
 *
 * Within one cycle, flit movement is evaluated against the
 * cycle-start state, with chained movement resolved so a full buffer
 * whose head departs this cycle can be refilled in the same cycle
 * (full streaming bandwidth through single-flit buffers). A cyclic
 * wait — true deadlock — is detected and reported by the stall
 * watchdog.
 */

#ifndef TURNMODEL_SIM_NETWORK_HPP
#define TURNMODEL_SIM_NETWORK_HPP

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/routing.hpp"
#include "core/routing/compiled.hpp"
#include "obs/observer.hpp"
#include "sim/config.hpp"
#include "sim/packet.hpp"
#include "sim/selection.hpp"
#include "traffic/pattern.hpp"
#include "traffic/workload.hpp"

namespace turnmodel {

struct ObsReport;

/** Running counters exposed to the measurement driver. */
struct NetworkCounters
{
    std::uint64_t packets_generated = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t flits_generated = 0;
    std::uint64_t flits_delivered = 0;
    std::uint64_t header_hops = 0;
    std::uint64_t source_queue_flits = 0;  ///< Flits waiting at sources.
    std::uint64_t flits_in_network = 0;
};

/** A completed packet, reported to the driver for latency stats. */
struct Completion
{
    PacketId id;
    NodeId src;
    NodeId dest;
    std::uint32_t length;
    std::uint32_t hops;
    double created;     ///< Cycles.
    double injected;    ///< Cycles.
    double delivered;   ///< Cycles (tail consumed).
};

/** The simulated network: routers, buffers, channels, sources. */
class Network
{
  public:
    /**
     * @param routing Routing algorithm (also supplies the topology);
     *                must outlive this object.
     * @param pattern Traffic pattern; must outlive this object.
     * @param config  Run configuration (copied).
     */
    Network(const RoutingAlgorithm &routing, const TrafficPattern &pattern,
            const SimConfig &config);

    /** Advance one flit cycle. */
    void step();

    /** Current cycle count. */
    std::uint64_t now() const { return cycle_; }

    const NetworkCounters &counters() const { return counters_; }

    /**
     * Completions recorded since the last drain; the driver takes
     * ownership and the internal list is cleared.
     */
    std::vector<Completion> drainCompletions();

    /**
     * Cycles since the last time any flit moved while packets were
     * in flight — the deadlock watchdog. Zero while traffic flows.
     */
    std::uint64_t stallCycles() const { return stall_cycles_; }

    /** Whether the stall watchdog has tripped. */
    bool deadlockDetected() const;

    /**
     * Packets that are in the network (at least one flit injected,
     * not yet delivered) and have made no progress for at least
     * @p age cycles. A non-empty result at a large age indicates a
     * (possibly partial) deadlock that the global stall watchdog
     * cannot see because unrelated traffic still moves.
     */
    std::vector<PacketId> stuckPackets(std::uint64_t age) const;

    /** Age in cycles of the longest-stalled in-network packet. */
    std::uint64_t oldestPacketStall() const;

    /** Turn message generation on or off (for drain phases). */
    void setGenerationEnabled(bool enabled) { generate_ = enabled; }

    /**
     * Queue one packet directly at a source, bypassing the stochastic
     * generator — the hook for trace-driven workloads and for
     * controlled tests.
     *
     * @return The new packet's id.
     */
    PacketId post(NodeId src, NodeId dest, std::uint32_t length);

    /** Total packets queued at all sources right now. */
    std::uint64_t sourceQueuePackets() const;

    const Topology &topology() const { return topo_; }

    /** The observer, or nullptr when observability is off. */
    const NetworkObserver *observer() const { return obs_.get(); }

    /**
     * Append what this network's observer collected — channel
     * heatmap rows (keyed by router coordinates and direction, with
     * "eject" rows for the delivery channels) and the packet event
     * trace — to @p report. No-op when observability is off.
     */
    void fillObsReport(ObsReport &report) const;

  private:
    // ----- port indexing ---------------------------------------------
    /** Ports per router: 2n channel ports plus the local port. */
    int portsPerRouter() const { return ports_per_router_; }
    std::uint32_t inPortId(NodeId router, int local) const;
    NodeId routerOf(std::uint32_t port) const;
    int localOf(std::uint32_t port) const;
    /** Local index of the injection (input) / ejection (output) port. */
    int localPort() const { return ports_per_router_ - 1; }

    /** One pending flit transfer this cycle. */
    struct Move
    {
        std::uint32_t from;
        std::int32_t to;   ///< Downstream input port; -1 for ejection.
    };

    // ----- cycle phases ----------------------------------------------
    void generateMessages();
    void allocateOutputs();
    void traverseFlits();
    void injectFlits();

    /**
     * Enforce one flit per physical channel per cycle when virtual
     * channels share wires, cancelling losing moves and any chained
     * refills that depended on them.
     */
    void arbitratePhysicalChannels(std::vector<Move> &moves);

    /** Movability of the head flit of @p port this cycle (memoized). */
    bool headCanMove(std::uint32_t port);

    void markActive(std::uint32_t port);

    // ----- state -------------------------------------------------------
    struct InPort
    {
        std::deque<Flit> fifo;
        PacketId cur_packet = kNoPacket;
        int granted_out = -1;   ///< Local output index at this router.
        std::uint64_t header_arrival = 0;
    };

    struct OutPort
    {
        PacketId owner = kNoPacket;
    };

    const RoutingAlgorithm &routing_;
    /** Compiled snapshot of routing_ (when config.compiled_routing
     * and routing_ is not already a table). */
    std::optional<CompiledRoutingTable> compiled_;
    /** The routing actually consulted in the hot loop: &*compiled_
     * when a snapshot was taken, otherwise &routing_. */
    const RoutingAlgorithm *decider_;
    const Topology &topo_;
    const TrafficPattern &pattern_;
    SimConfig config_;

    int ports_per_router_;
    std::vector<InPort> in_ports_;
    std::vector<OutPort> out_ports_;
    /** Downstream input port of each output port; -1 for ejection. */
    std::vector<std::int32_t> out_to_in_;

    std::vector<std::deque<PacketId>> source_queues_;
    std::vector<ArrivalProcess> arrivals_;
    Rng router_rng_;

    std::unordered_map<PacketId, PacketState> packets_;
    PacketId next_packet_id_ = 0;

    std::vector<std::uint32_t> active_ports_;
    std::vector<bool> is_active_;

    /** Per-cycle movability memo: 0 unknown, 1 in progress, 2 yes,
     * 3 no. Reset lazily via a stamp per cycle. */
    std::vector<std::uint8_t> move_state_;
    std::vector<std::uint64_t> move_stamp_;

    std::uint64_t cycle_ = 0;
    bool generate_ = true;
    bool moved_this_cycle_ = false;
    std::uint64_t stall_cycles_ = 0;
    bool packet_stall_flag_ = false;

    NetworkCounters counters_;
    std::vector<Completion> completions_;

    /** Null when observability is off (the default). The raw
     * collector pointers are cached so the hot loop pays one branch,
     * not two indirections, per recording site. */
    std::unique_ptr<NetworkObserver> obs_;
    ChannelStats *chan_stats_ = nullptr;
    PacketTrace *trace_sink_ = nullptr;
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_NETWORK_HPP
