/**
 * @file
 * Spatial sharding scaffolding shared by the two network engines.
 *
 * A ShardPlan partitions the router array into contiguous node
 * ranges; a shard owns the routers of its range, every port of those
 * routers, their source queues and arrival processes, and one packet
 * arena (sim/packet_pool.hpp) whose slots carry its index. The
 * two-phase stepping contract (sim/engine.hpp) lets any shard READ
 * any other shard's cycle-start state during a gather phase, while
 * every WRITE stays inside the owning shard; effects that must land
 * in foreign state — a flit crossing into a neighboring shard's
 * input buffer, a credit returning to an upstream output VC, a
 * delivered packet's slot going home to its arena — travel through
 * ShardMailboxes and are applied by the owner, in canonical
 * ascending-sender order, in the next commit phase.
 */

#ifndef TURNMODEL_SIM_SHARD_HPP
#define TURNMODEL_SIM_SHARD_HPP

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"
#include "util/logging.hpp"

namespace turnmodel {

/** Contiguous partition of the router array into shards. */
class ShardPlan
{
  public:
    /** Trivial plan: one shard owning everything. */
    ShardPlan() = default;

    /**
     * Split @p num_nodes routers (with @p ports_per_router ports
     * each) into @p shards contiguous ranges of near-equal size;
     * the first (num_nodes % shards) ranges hold one extra router.
     * @p shards is clamped to [1, num_nodes].
     */
    static ShardPlan build(NodeId num_nodes, int ports_per_router,
                           std::uint32_t shards)
    {
        TM_ASSERT(num_nodes > 0, "a network has at least one router");
        ShardPlan plan;
        if (shards < 1)
            shards = 1;
        if (shards > static_cast<std::uint32_t>(num_nodes))
            shards = static_cast<std::uint32_t>(num_nodes);
        plan.num_shards_ = shards;
        plan.ports_per_router_ = ports_per_router;
        plan.node_begin_.resize(shards + 1);
        const NodeId base = num_nodes / static_cast<NodeId>(shards);
        const NodeId extra = num_nodes % static_cast<NodeId>(shards);
        NodeId next = 0;
        for (std::uint32_t s = 0; s < shards; ++s) {
            plan.node_begin_[s] = next;
            next += base + (static_cast<NodeId>(s) < extra ? 1 : 0);
        }
        plan.node_begin_[shards] = num_nodes;
        plan.shard_of_node_.resize(
            static_cast<std::size_t>(num_nodes));
        for (std::uint32_t s = 0; s < shards; ++s) {
            for (NodeId v = plan.node_begin_[s];
                 v < plan.node_begin_[s + 1]; ++v) {
                plan.shard_of_node_[static_cast<std::size_t>(v)] =
                    static_cast<std::uint16_t>(s);
            }
        }
        return plan;
    }

    std::uint32_t numShards() const { return num_shards_; }

    NodeId nodeBegin(std::uint32_t shard) const
    {
        return node_begin_[shard];
    }
    NodeId nodeEnd(std::uint32_t shard) const
    {
        return node_begin_[shard + 1];
    }

    std::uint32_t portBegin(std::uint32_t shard) const
    {
        return static_cast<std::uint32_t>(node_begin_[shard]) *
            static_cast<std::uint32_t>(ports_per_router_);
    }
    std::uint32_t portEnd(std::uint32_t shard) const
    {
        return static_cast<std::uint32_t>(node_begin_[shard + 1]) *
            static_cast<std::uint32_t>(ports_per_router_);
    }

    std::uint32_t shardOfNode(NodeId node) const
    {
        return shard_of_node_[static_cast<std::size_t>(node)];
    }
    std::uint32_t shardOfPort(std::uint32_t port) const
    {
        return shard_of_node_[port /
            static_cast<std::uint32_t>(ports_per_router_)];
    }

  private:
    std::uint32_t num_shards_ = 1;
    int ports_per_router_ = 1;
    std::vector<NodeId> node_begin_{0};
    std::vector<std::uint16_t> shard_of_node_;
};

/**
 * A dense matrix of per-(sender, receiver) message queues. During a
 * commit phase, shard s appends to box(s, d) without synchronization
 * (each box has exactly one writer per phase); after the barrier the
 * receiver drains its column in ascending sender order — the
 * canonical order that makes the merged effect stream independent of
 * the shard count. Buffers are persistent: clear() keeps capacity,
 * so steady-state traffic allocates nothing.
 */
template <typename T>
class ShardMailboxes
{
  public:
    void configure(std::uint32_t shards)
    {
        num_shards_ = shards;
        boxes_.resize(static_cast<std::size_t>(shards) * shards);
    }

    std::vector<T> &box(std::uint32_t from, std::uint32_t to)
    {
        return boxes_[static_cast<std::size_t>(from) * num_shards_ +
                      to];
    }

    /**
     * Apply fn to every message addressed to @p to, senders in
     * ascending order, clearing the boxes as they drain.
     */
    template <typename Fn>
    void drainTo(std::uint32_t to, Fn &&fn)
    {
        for (std::uint32_t s = 0; s < num_shards_; ++s) {
            std::vector<T> &b = box(s, to);
            for (const T &msg : b)
                fn(msg);
            b.clear();
        }
    }

  private:
    std::uint32_t num_shards_ = 0;
    std::vector<std::vector<T>> boxes_;
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_SHARD_HPP
