/**
 * @file
 * Compatibility forwarder: the sweep harness moved to exec/sweep.hpp
 * when the experiment-runner layer (exec/) absorbed it. Include that
 * directly in new code.
 */

#ifndef TURNMODEL_SIM_SWEEP_HPP
#define TURNMODEL_SIM_SWEEP_HPP

#include "exec/sweep.hpp"

#endif // TURNMODEL_SIM_SWEEP_HPP
