#include "sim/selection.hpp"

#include "util/logging.hpp"

namespace turnmodel {

Direction
selectOutput(OutputSelection policy,
             const std::vector<Direction> &candidates,
             std::optional<Direction> in_dir, Rng &rng)
{
    TM_ASSERT(!candidates.empty(), "output selection needs candidates");
    if (candidates.size() == 1)
        return candidates.front();
    switch (policy) {
      case OutputSelection::LowestDim: {
        Direction best = candidates.front();
        for (Direction d : candidates) {
            if (d.id() < best.id())
                best = d;
        }
        return best;
      }
      case OutputSelection::HighestDim: {
        Direction best = candidates.front();
        for (Direction d : candidates) {
            if (d.id() > best.id())
                best = d;
        }
        return best;
      }
      case OutputSelection::Random:
        return candidates[rng.nextBounded(candidates.size())];
      case OutputSelection::StraightFirst: {
        if (in_dir) {
            for (Direction d : candidates) {
                if (d.dim == in_dir->dim && d.positive == in_dir->positive)
                    return d;
            }
        }
        Direction best = candidates.front();
        for (Direction d : candidates) {
            if (d.id() < best.id())
                best = d;
        }
        return best;
      }
    }
    return candidates.front();
}

std::size_t
selectInput(InputSelection policy,
            const std::vector<InputRequest> &requests, Rng &rng)
{
    TM_ASSERT(!requests.empty(), "input selection needs requests");
    if (requests.size() == 1)
        return 0;
    switch (policy) {
      case InputSelection::Fcfs: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < requests.size(); ++i) {
            const auto &r = requests[i];
            const auto &b = requests[best];
            if (r.header_arrival < b.header_arrival ||
                (r.header_arrival == b.header_arrival &&
                 r.in_port < b.in_port)) {
                best = i;
            }
        }
        return best;
      }
      case InputSelection::Random:
        return static_cast<std::size_t>(
            rng.nextBounded(requests.size()));
      case InputSelection::FixedPriority: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < requests.size(); ++i) {
            if (requests[i].in_port < requests[best].in_port)
                best = i;
        }
        return best;
      }
    }
    return 0;
}

} // namespace turnmodel
