/**
 * @file
 * Measurement driver: runs a Network through a warmup phase and a
 * measurement window, collects latency over packets created after
 * warmup, computes throughput over the window, and applies the
 * paper's sustainability criterion (source-queue population small
 * and bounded).
 */

#ifndef TURNMODEL_SIM_SIMULATOR_HPP
#define TURNMODEL_SIM_SIMULATOR_HPP

#include <memory>
#include <optional>

#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace turnmodel {

/** Runs one configured simulation to completion. */
class Simulator
{
  public:
    /**
     * @param routing Routing algorithm; must outlive this object.
     * @param pattern Traffic pattern; must outlive this object.
     * @param config  Run configuration (copied).
     */
    Simulator(const RoutingAlgorithm &routing,
              const TrafficPattern &pattern, const SimConfig &config);

    /** Run warmup plus measurement and return the aggregated result. */
    SimResult run();

    /** The underlying network engine (inspectable after run()). */
    const NetworkEngine &network() const { return *network_; }

    /**
     * Everything the run's observers collected (per SimConfig::obs):
     * channel heatmap rows, time-series samples, packet trace.
     * Empty when observability was off or run() has not executed.
     */
    ObsReport obsReport() const;

  private:
    SimConfig config_;
    /** Engine picked by config.router_model (see sim/engine.hpp). */
    std::unique_ptr<NetworkEngine> network_;
    /** Engaged during run() when config.obs.sample_stride > 0. */
    std::optional<TimeSeriesSampler> sampler_;
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_SIMULATOR_HPP
