/**
 * @file
 * The engine interface between the measurement driver and a concrete
 * cycle-accurate network model. Two engines implement it: the classic
 * single-buffer wormhole router of the paper (sim/network.hpp) and
 * the credit-based virtual-channel router microarchitecture
 * (router/vc_network.hpp). The driver (sim/simulator.hpp) and the
 * execution layer above it are engine-agnostic; SimConfig::router_model
 * selects the implementation through makeEngine().
 */

#ifndef TURNMODEL_SIM_ENGINE_HPP
#define TURNMODEL_SIM_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/packet.hpp"

namespace turnmodel {

class NetworkObserver;
class RoutingAlgorithm;
class Topology;
class TrafficPattern;
struct ObsReport;
struct SimConfig;

/** Running counters exposed to the measurement driver. */
struct NetworkCounters
{
    std::uint64_t packets_generated = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t flits_generated = 0;
    std::uint64_t flits_delivered = 0;
    std::uint64_t header_hops = 0;
    std::uint64_t source_queue_flits = 0;  ///< Flits waiting at sources.
    std::uint64_t flits_in_network = 0;
    /** Every flit-channel traversal: injections, hops, ejections.
     * The work metric of the engine (micro_sim's flit-moves/sec). */
    std::uint64_t flit_moves = 0;
};

/** A completed packet, reported to the driver for latency stats. */
struct Completion
{
    PacketId id;
    NodeId src;
    NodeId dest;
    std::uint32_t length;
    std::uint32_t hops;
    double created;     ///< Cycles.
    double injected;    ///< Cycles.
    double delivered;   ///< Cycles (tail consumed).
};

/**
 * Abstract cycle-accurate network engine.
 *
 * Contract shared by all implementations: step() advances exactly one
 * flit cycle; completions accumulate until drained and are reported
 * in ascending PacketId order; the stall watchdog reports deadlock
 * once no flit has moved for the configured threshold while packets
 * are in flight; and a fixed configuration plus seed fully determines
 * every observable, so runs are bit-reproducible regardless of
 * scheduling (the execution layer relies on this for --jobs
 * determinism).
 *
 * Sharded stepping: an engine may execute step() across
 * SimConfig::sim_threads worker threads by partitioning the router
 * array into shardCount() contiguous shards, each cycle running as
 * barrier-separated phases — gather phases may read any shard's
 * cycle-start state but write only shard-owned state; commit phases
 * hand flits, credits, and packet-slot releases across shard
 * boundaries through per-boundary mailboxes drained in canonical
 * sender order. The determinism clause above extends over the shard
 * count: every observable (counters, completions, stall state, obs
 * reports) is bit-identical at any sim_threads value, so callers may
 * treat the knob purely as a throughput lever.
 */
class NetworkEngine
{
  public:
    virtual ~NetworkEngine() = default;

    /** Advance one flit cycle. */
    virtual void step() = 0;

    /** Current cycle count. */
    virtual std::uint64_t now() const = 0;

    virtual const NetworkCounters &counters() const = 0;

    /**
     * Allocation-free drain: clear @p out and swap it with the
     * internal completion list.
     */
    virtual void drainCompletions(std::vector<Completion> &out) = 0;

    /**
     * Cycles since the last time any flit moved while packets were
     * in flight — the deadlock watchdog. Zero while traffic flows.
     */
    virtual std::uint64_t stallCycles() const = 0;

    /** Whether the stall watchdog has tripped. */
    virtual bool deadlockDetected() const = 0;

    /**
     * Packets in the network with no progress for at least @p age
     * cycles, in ascending PacketId order.
     */
    virtual std::vector<PacketId> stuckPackets(std::uint64_t age)
        const = 0;

    /** Age in cycles of the longest-stalled in-network packet. */
    virtual std::uint64_t oldestPacketStall() const = 0;

    /** Turn message generation on or off (for drain phases). */
    virtual void setGenerationEnabled(bool enabled) = 0;

    /**
     * Queue one packet directly at a source, bypassing the stochastic
     * generator. @return The new packet's id.
     */
    virtual PacketId post(NodeId src, NodeId dest,
                          std::uint32_t length) = 0;

    /** Total packets queued at all sources right now. */
    virtual std::uint64_t sourceQueuePackets() const = 0;

    virtual const Topology &topology() const = 0;

    /** The observer, or nullptr when observability is off. */
    virtual const NetworkObserver *observer() const = 0;

    /** Append collected observability data to @p report. */
    virtual void fillObsReport(ObsReport &report) const = 0;

    /**
     * Shards step() actually executes across — sim_threads after the
     * engine's serialization gates (see SimConfig::sim_threads) and
     * clamping to the router count. 1 means fully serial stepping.
     */
    virtual unsigned shardCount() const { return 1; }

    /**
     * Capacity (slots) of the in-flight packet pool — the engine's
     * memory high-water mark for packet state. Long-horizon soak
     * tests assert this stays constant once the network reaches
     * steady state.
     */
    virtual std::size_t packetPoolCapacity() const = 0;
};

/**
 * Construct the engine selected by @p config.router_model. Defined in
 * src/router/engine.cpp so the classic-only core library stays free
 * of the VC router; every binary that links the simulator links the
 * router library too.
 */
std::unique_ptr<NetworkEngine> makeEngine(const RoutingAlgorithm &routing,
                                          const TrafficPattern &pattern,
                                          const SimConfig &config);

} // namespace turnmodel

#endif // TURNMODEL_SIM_ENGINE_HPP
