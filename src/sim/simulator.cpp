#include "sim/simulator.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace turnmodel {

Simulator::Simulator(const RoutingAlgorithm &routing,
                     const TrafficPattern &pattern,
                     const SimConfig &config)
    : config_(config), network_(makeEngine(routing, pattern, config))
{
}

SimResult
Simulator::run()
{
    SimResult result;
    const double cycle_us = config_.cycleUs();

    // One completion buffer for the whole run, drained into every
    // cycle: the buffer and the network's internal list ping-pong
    // their storage, so the measurement loop never allocates.
    std::vector<Completion> batch;

    // Warmup: run and discard.
    for (std::uint64_t c = 0; c < config_.warmup_cycles; ++c) {
        network_->step();
        if (network_->deadlockDetected())
            break;
    }
    network_->drainCompletions(batch);

    // A deadlock during warmup means there is no steady state to
    // measure: entering the measurement loop anyway would report a
    // window of frozen-network cycles as if it were data. Report a
    // zero-width window instead.
    if (network_->deadlockDetected()) {
        result.offered_flits_per_us = config_.injection_rate
            * static_cast<double>(network_->topology().numNodes())
            * config_.channel_flits_per_us;
        result.deadlocked = true;
        result.saturated = true;
        return result;
    }

    const double measure_start = static_cast<double>(network_->now());
    const std::uint64_t flits_delivered_before =
        network_->counters().flits_delivered;
    const std::uint64_t queue_before = network_->sourceQueuePackets();

    RunningStats latency;
    RunningStats net_latency;
    RunningStats hops;
    // Streaming P² estimator: constant memory at any window length
    // (the fixed-range histogram it replaced clamped long-horizon
    // soak runs into its overflow bin).
    P2Quantile latency_p99(0.99);

    if (config_.obs.sample_stride > 0) {
        sampler_.emplace(network_->now(), config_.obs.sample_stride,
                         static_cast<double>(config_.measure_cycles));
    }

    const auto absorb = [&](const std::vector<Completion> &batch) {
        for (const Completion &done : batch) {
            // Only packets created after warmup contribute to the
            // latency statistics; throughput counts every flit.
            if (done.created < measure_start)
                continue;
            const double lat = done.delivered - done.created;
            latency.add(lat);
            latency_p99.add(lat);
            net_latency.add(done.delivered - done.injected);
            hops.add(static_cast<double>(done.hops));
            if (sampler_)
                sampler_->onCompletion(lat);
        }
    };

    for (std::uint64_t c = 0; c < config_.measure_cycles; ++c) {
        network_->step();
        if (network_->deadlockDetected())
            break;
        network_->drainCompletions(batch);
        absorb(batch);
        if (sampler_) {
            sampler_->onCycle(network_->now(),
                              network_->counters().flits_delivered,
                              network_->sourceQueuePackets());
        }
    }
    // The deadlock break above skips the in-loop drain, losing any
    // completions the tripping cycle produced; collect them here.
    network_->drainCompletions(batch);
    absorb(batch);
    if (sampler_) {
        sampler_->finish(network_->now(),
                         network_->counters().flits_delivered,
                         network_->sourceQueuePackets());
    }

    const double measured_cycles =
        static_cast<double>(network_->now()) - measure_start;
    const double window_us = measured_cycles * cycle_us;
    const std::uint64_t delivered =
        network_->counters().flits_delivered - flits_delivered_before;

    // rate is flits per node per cycle; one cycle is 1/channel-rate us.
    result.offered_flits_per_us = config_.injection_rate
        * static_cast<double>(network_->topology().numNodes())
        * config_.channel_flits_per_us;
    result.throughput_flits_per_us =
        window_us > 0.0 ? static_cast<double>(delivered) / window_us : 0.0;
    result.avg_latency_us = latency.mean() * cycle_us;
    result.avg_network_latency_us = net_latency.mean() * cycle_us;
    result.p99_latency_us = latency_p99.value() * cycle_us;
    result.avg_hops = hops.mean();
    result.packets_measured = latency.count();
    result.deadlocked = network_->deadlockDetected();

    const std::uint64_t queue_after = network_->sourceQueuePackets();
    const double growth = queue_after > queue_before
        ? static_cast<double>(queue_after - queue_before)
        : 0.0;
    result.queue_growth_packets = growth
        / static_cast<double>(network_->topology().numNodes());
    const double num_nodes =
        static_cast<double>(network_->topology().numNodes());
    const double offered_flits =
        config_.injection_rate * num_nodes * measured_cycles;
    // Clamp to 1.0: the window's delivered count includes flits
    // injected during warmup (backlog draining inside the window) and
    // closed-loop replies, neither of which the offered-load
    // denominator counts, so the raw quotient can exceed 1.0 without
    // the network ever delivering more than was sent. The saturation
    // criterion below uses the unclamped shortfall, which is immune:
    // spillover only makes the shortfall negative, never saturated.
    result.delivered_ratio = offered_flits > 0.0
        ? std::min(static_cast<double>(delivered) / offered_flits, 1.0)
        : 1.0;
    // Sustainable while the backlog stays small and bounded: flag
    // saturation when the average source queue grew by more than two
    // packets per node over the window, or when the network delivered
    // well below the offered load (catches short windows where the
    // absolute queue growth has not yet crossed the threshold). The
    // ratio criterion only applies once the shortfall exceeds one
    // average packet per node — at light loads a few packets still in
    // flight at the window boundary dominate the ratio.
    const double shortfall =
        offered_flits - static_cast<double>(delivered);
    result.saturated = result.queue_growth_packets > 2.0
        || (result.delivered_ratio < 0.75
            && shortfall > num_nodes * config_.lengths.mean())
        || result.deadlocked;
    return result;
}

ObsReport
Simulator::obsReport() const
{
    ObsReport report;
    report.topology = network_->topology().name();
    network_->fillObsReport(report);
    if (sampler_)
        report.samples = sampler_->samples();
    return report;
}

} // namespace turnmodel
