#include "sim/simulator.hpp"

#include "util/stats.hpp"

namespace turnmodel {

Simulator::Simulator(const RoutingAlgorithm &routing,
                     const TrafficPattern &pattern,
                     const SimConfig &config)
    : config_(config), network_(routing, pattern, config)
{
}

SimResult
Simulator::run()
{
    SimResult result;
    const double cycle_us = config_.cycleUs();

    // Warmup: run and discard.
    for (std::uint64_t c = 0; c < config_.warmup_cycles; ++c) {
        network_.step();
        if (network_.deadlockDetected())
            break;
    }
    (void)network_.drainCompletions();

    const double measure_start = static_cast<double>(network_.now());
    const std::uint64_t flits_delivered_before =
        network_.counters().flits_delivered;
    const std::uint64_t queue_before = network_.sourceQueuePackets();

    RunningStats latency;
    RunningStats net_latency;
    RunningStats hops;
    Histogram latency_hist(0.0,
                           static_cast<double>(config_.measure_cycles),
                           2048);

    for (std::uint64_t c = 0; c < config_.measure_cycles; ++c) {
        network_.step();
        if (network_.deadlockDetected())
            break;
        for (const Completion &done : network_.drainCompletions()) {
            // Only packets created after warmup contribute to the
            // latency statistics; throughput counts every flit.
            if (done.created < measure_start)
                continue;
            const double lat = done.delivered - done.created;
            latency.add(lat);
            latency_hist.add(lat);
            net_latency.add(done.delivered - done.injected);
            hops.add(static_cast<double>(done.hops));
        }
    }

    const double measured_cycles =
        static_cast<double>(network_.now()) - measure_start;
    const double window_us = measured_cycles * cycle_us;
    const std::uint64_t delivered =
        network_.counters().flits_delivered - flits_delivered_before;

    // rate is flits per node per cycle; one cycle is 1/channel-rate us.
    result.offered_flits_per_us = config_.injection_rate
        * static_cast<double>(network_.topology().numNodes())
        * config_.channel_flits_per_us;
    result.throughput_flits_per_us =
        window_us > 0.0 ? static_cast<double>(delivered) / window_us : 0.0;
    result.avg_latency_us = latency.mean() * cycle_us;
    result.avg_network_latency_us = net_latency.mean() * cycle_us;
    result.p99_latency_us = latency_hist.quantile(0.99) * cycle_us;
    result.avg_hops = hops.mean();
    result.packets_measured = latency.count();
    result.deadlocked = network_.deadlockDetected();

    const std::uint64_t queue_after = network_.sourceQueuePackets();
    const double growth = queue_after > queue_before
        ? static_cast<double>(queue_after - queue_before)
        : 0.0;
    result.queue_growth_packets = growth
        / static_cast<double>(network_.topology().numNodes());
    // Sustainable while the backlog stays small and bounded: flag
    // saturation when the average source queue grew by more than two
    // packets per node over the window, or when hardly anything was
    // delivered relative to the offered load.
    result.saturated = result.queue_growth_packets > 2.0
        || result.deadlocked;
    return result;
}

} // namespace turnmodel
