#include "sim/config.hpp"

namespace turnmodel {

const char *
toString(InputSelection policy)
{
    switch (policy) {
      case InputSelection::Fcfs:          return "fcfs";
      case InputSelection::Random:        return "random";
      case InputSelection::FixedPriority: return "fixed-priority";
    }
    return "?";
}

const char *
toString(Switching mode)
{
    switch (mode) {
      case Switching::Wormhole:        return "wormhole";
      case Switching::StoreAndForward: return "store-and-forward";
    }
    return "?";
}

const char *
toString(RouterModel model)
{
    switch (model) {
      case RouterModel::Classic:  return "classic";
      case RouterModel::VcCredit: return "vc-credit";
    }
    return "?";
}

const char *
toString(SwitchArbiter arbiter)
{
    switch (arbiter) {
      case SwitchArbiter::InputFirst:  return "input-first";
      case SwitchArbiter::OutputFirst: return "output-first";
    }
    return "?";
}

const char *
toString(OutputSelection policy)
{
    switch (policy) {
      case OutputSelection::LowestDim:     return "lowest-dim";
      case OutputSelection::HighestDim:    return "highest-dim";
      case OutputSelection::Random:        return "random";
      case OutputSelection::StraightFirst: return "straight-first";
    }
    return "?";
}

} // namespace turnmodel
