/**
 * @file
 * Dense slot-recycling store for in-flight packet state. The seed
 * engine kept PacketStates in an unordered_map keyed by PacketId,
 * paying a hash lookup on every flit move and scattering state
 * across the heap; the pool keeps them in one flat vector indexed by
 * PacketSlot (carried inside each Flit), with a LIFO free list so a
 * delivered packet's slot — still cache-warm — is the next one
 * reused. Steady state allocates nothing: the backing vector grows
 * only while the live population sets a new high-water mark.
 *
 * Sharded stepping partitions the slot space into arenas, one per
 * shard: arena a owns the slots congruent to a modulo the arena
 * count, so slot % numArenas() names the owner without a lookup.
 * Each arena has a private free list and fresh-slot counter — during
 * a parallel phase every shard allocates from its own arena with no
 * shared state, provided the backing vectors were pre-grown by
 * reserveExtra() in a serial phase (the one place the shared vectors
 * may reallocate). With one arena (the default) the slot sequence is
 * exactly the classic dense pool's. Slot values never influence
 * simulation output — every observable is keyed by PacketId — so
 * the interleaved numbering is invisible outside the pool.
 */

#ifndef TURNMODEL_SIM_PACKET_POOL_HPP
#define TURNMODEL_SIM_PACKET_POOL_HPP

#include <cstddef>
#include <vector>

#include "sim/packet.hpp"

namespace turnmodel {

/** Flat vector of PacketStates plus per-arena free lists. */
class PacketPool
{
  public:
    PacketPool() : arenas_(1) {}

    /**
     * Partition the slot space into @p count arenas. Must be called
     * before any slot is allocated (the modulus bakes into every
     * outstanding slot value).
     */
    void configureArenas(std::uint32_t count);

    std::uint32_t numArenas() const
    {
        return static_cast<std::uint32_t>(arenas_.size());
    }

    /** Owning arena of @p slot. */
    std::uint32_t arenaOf(PacketSlot slot) const
    {
        return slot % numArenas();
    }

    /**
     * Grow the backing vectors so @p arena can allocate() @p count
     * slots without touching shared state. Serial phases only (may
     * reallocate the vectors every arena indexes).
     */
    void reserveExtra(std::uint32_t arena, std::size_t count);

    /**
     * Claim a slot of @p arena holding a default-constructed
     * PacketState (stale state from the slot's previous tenant is
     * fully reset). Safe to call concurrently from distinct arenas
     * once reserveExtra() has pre-grown the backing; an un-reserved
     * allocation grows the shared vectors and is serial-only.
     */
    PacketSlot allocate(std::uint32_t arena = 0);

    /**
     * Return @p slot to its owning arena's free list; it must be
     * live. Only the owner may call this concurrently (cross-shard
     * releases travel through a mailbox to the owner).
     */
    void release(PacketSlot slot);

    PacketState &operator[](PacketSlot slot) { return slots_[slot]; }
    const PacketState &operator[](PacketSlot slot) const
    {
        return slots_[slot];
    }

    /** Packets currently live (allocated and not released). */
    std::size_t liveCount() const
    {
        std::size_t total = 0;
        for (const Arena &a : arenas_)
            total += a.live;
        return total;
    }

    /** High-water slot count (live plus free plus never-used). */
    std::size_t capacity() const { return slots_.size(); }

    bool isLive(PacketSlot slot) const
    {
        return slot < live_.size() && live_[slot] != 0;
    }

    /**
     * Visit every live packet in ascending slot order — the pool's
     * one deterministic iteration order. @p fn receives
     * (PacketSlot, const PacketState &).
     */
    template <typename Fn>
    void forEachLive(Fn &&fn) const
    {
        const PacketSlot n = static_cast<PacketSlot>(slots_.size());
        for (PacketSlot s = 0; s < n; ++s) {
            if (live_[s])
                fn(s, slots_[s]);
        }
    }

  private:
    struct Arena
    {
        std::vector<PacketSlot> free;  ///< LIFO: reuse warm slots.
        PacketSlot fresh = 0;   ///< Next never-used index.
        std::size_t live = 0;
    };

    std::vector<Arena> arenas_;
    std::vector<PacketState> slots_;
    std::vector<std::uint8_t> live_;
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_PACKET_POOL_HPP
