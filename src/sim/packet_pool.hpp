/**
 * @file
 * Dense slot-recycling store for in-flight packet state. The seed
 * engine kept PacketStates in an unordered_map keyed by PacketId,
 * paying a hash lookup on every flit move and scattering state
 * across the heap; the pool keeps them in one flat vector indexed by
 * PacketSlot (carried inside each Flit), with a LIFO free list so a
 * delivered packet's slot — still cache-warm — is the next one
 * reused. Steady state allocates nothing: the backing vector grows
 * only while the live population sets a new high-water mark.
 */

#ifndef TURNMODEL_SIM_PACKET_POOL_HPP
#define TURNMODEL_SIM_PACKET_POOL_HPP

#include <cstddef>
#include <vector>

#include "sim/packet.hpp"

namespace turnmodel {

/** Flat vector of PacketStates plus a free list. */
class PacketPool
{
  public:
    /**
     * Claim a slot holding a default-constructed PacketState (stale
     * state from the slot's previous tenant is fully reset).
     */
    PacketSlot allocate();

    /** Return @p slot to the free list; it must be live. */
    void release(PacketSlot slot);

    PacketState &operator[](PacketSlot slot) { return slots_[slot]; }
    const PacketState &operator[](PacketSlot slot) const
    {
        return slots_[slot];
    }

    /** Packets currently live (allocated and not released). */
    std::size_t liveCount() const { return live_count_; }

    /** High-water slot count (live plus free). */
    std::size_t capacity() const { return slots_.size(); }

    bool isLive(PacketSlot slot) const
    {
        return slot < live_.size() && live_[slot] != 0;
    }

    /**
     * Visit every live packet in ascending slot order — the pool's
     * one deterministic iteration order. @p fn receives
     * (PacketSlot, const PacketState &).
     */
    template <typename Fn>
    void forEachLive(Fn &&fn) const
    {
        const PacketSlot n = static_cast<PacketSlot>(slots_.size());
        for (PacketSlot s = 0; s < n; ++s) {
            if (live_[s])
                fn(s, slots_[s]);
        }
    }

  private:
    std::vector<PacketState> slots_;
    std::vector<std::uint8_t> live_;
    std::vector<PacketSlot> free_;  ///< LIFO: reuse cache-warm slots.
    std::size_t live_count_ = 0;
};

} // namespace turnmodel

#endif // TURNMODEL_SIM_PACKET_POOL_HPP
