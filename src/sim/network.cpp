#include "sim/network.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/report.hpp"
#include "util/logging.hpp"

namespace turnmodel {

Network::Network(const RoutingAlgorithm &routing,
                 const TrafficPattern &pattern, const SimConfig &config)
    : routing_(routing), decider_(&routing), topo_(routing.topology()),
      pattern_(pattern), config_(config),
      router_rng_(Rng::forStream(config.seed, 0xabcdef))
{
    TM_ASSERT(config_.buffer_depth >= 1, "buffers hold at least one flit");
    if (config_.compiled_routing &&
        dynamic_cast<const CompiledRoutingTable *>(&routing) == nullptr) {
        compiled_.emplace(routing);
        decider_ = &*compiled_;
    }
    if (config_.switching == Switching::StoreAndForward) {
        TM_ASSERT(config_.buffer_depth >= config_.lengths.maxLength(),
                  "store-and-forward buffers must fit a whole packet");
    }
    ports_per_router_ = topo_.numDirs() + 1;
    buffer_depth_ = config_.buffer_depth;
    const std::size_t total_ports =
        static_cast<std::size_t>(topo_.numNodes()) *
        static_cast<std::size_t>(ports_per_router_);
    in_ports_.resize(total_ports);
    out_ports_.resize(total_ports);
    flit_slab_.resize(total_ports * buffer_depth_);
    out_to_in_.assign(total_ports, -1);
    is_active_.assign(total_ports, 0);
    head_waiting_.assign(total_ports, 0);
    waiting_pos_.assign(total_ports, 0);
    granted_.assign(total_ports, 0);
    granted_out_port_.assign(total_ports, 0);
    granted_target_.assign(total_ports, -1);
    maybe_free_.assign(total_ports, 0);
    bid_blocked_at_.assign(total_ports, 0);
    out_freed_at_.assign(topo_.numNodes(), 0);
    arb_move_into_.assign(total_ports, -1);

    port_router_.resize(total_ports);
    port_local_.resize(total_ports);
    for (std::uint32_t p = 0; p < total_ports; ++p) {
        port_router_[p] =
            p / static_cast<std::uint32_t>(ports_per_router_);
        port_local_[p] = static_cast<std::uint8_t>(
            p % static_cast<std::uint32_t>(ports_per_router_));
    }

    // Wire each output channel to the matching downstream input port:
    // a packet leaving router v in direction d arrives at neighbor w
    // on w's input port for direction d.
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        for (Direction d : allDirections(topo_.numDims())) {
            const auto w = topo_.neighbor(v, d);
            if (!w)
                continue;
            out_to_in_[inPortId(v, d.id())] =
                static_cast<std::int32_t>(inPortId(*w, d.id()));
        }
    }

    if (topo_.hasSharedPhysicalChannels()) {
        arb_key_.resize(total_ports);
        for (std::uint32_t p = 0; p < total_ports; ++p) {
            const int local = localOf(p);
            if (local == localPort())
                continue;   // Delivery channels are not multiplexed.
            arb_key_[p] =
                static_cast<std::uint64_t>(routerOf(p)) * 256u +
                topo_.physicalChannelGroup(static_cast<DirId>(local));
        }
    }

    if (config_.obs.networkEnabled()) {
        obs_ = std::make_unique<NetworkObserver>(config_.obs,
                                                 total_ports);
        chan_stats_ = obs_->channels();
        trace_sink_ = obs_->trace();
        inj_log_ = obs_->injections();
    }

    closed_loop_ = config_.workload.closedLoop();
    reply_length_ = config_.workload.reply_length;
    reply_delay_ = 1 + config_.workload.think_cycles;

    // Output-selection policy: explicit name, or the adapter for the
    // classic enum. Built against the active route decider so the
    // lookahead table compiles from the same snapshot the hot loop
    // routes with. The congestion snapshots are sized only on
    // demand, keeping the adapter path free of extra state.
    sel_ = makeSelectionPolicy(config_.selection_policy.empty()
                                   ? toString(config_.output_selection)
                                   : config_.selection_policy,
                               *decider_);
    sel_needs_ = sel_->needs();
    ordered_bid_scan_ = sel_->consumesGlobalRng();
    if (sel_needs_.free_slots)
        free_snap_.assign(total_ports, 0);
    if (sel_needs_.regional) {
        regional_snap_.assign(total_ports, 0);
        blocked_ewma_.assign(total_ports, 0);
        router_blocked_.assign(topo_.numNodes(), 0);
        fwd_stamp_.assign(total_ports, ~0ULL);
    }

    // Shard plan. Serialization gates: a policy drawing from the
    // single router_rng_ stream does so in gather order, the packet
    // trace records events in global push order, and the injection
    // capture log records the global generation order — all serial
    // artifacts by definition, so they pin the engine to one shard
    // rather than weaken the determinism contract.
    unsigned requested = config_.sim_threads != 0
        ? config_.sim_threads
        : std::thread::hardware_concurrency();
    if (requested == 0)
        requested = 1;
    if (sel_->consumesGlobalRng() ||
        config_.input_selection == InputSelection::Random) {
        requested = 1;
    }
    if (trace_sink_ || inj_log_)
        requested = 1;
    plan_ = ShardPlan::build(topo_.numNodes(), ports_per_router_,
                             requested);
    num_shards_ = plan_.numShards();
    packets_.configureArenas(num_shards_);
    flit_mail_.configure(num_shards_);
    release_mail_.configure(num_shards_);
    shards_.resize(num_shards_);
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
        Shard &sh = shards_[s];
        sh.node_begin = plan_.nodeBegin(s);
        sh.node_end = plan_.nodeEnd(s);
        sh.port_begin = plan_.portBegin(s);
        sh.port_end = plan_.portEnd(s);
        sh.move_memo.assign(total_ports, ~0ULL);
    }
    if (num_shards_ > 1)
        team_ = std::make_unique<WorkerTeam>(num_shards_);

    source_queues_.resize(topo_.numNodes());
    source_pending_.assign(topo_.numNodes(), 0);
    sources_ = buildNodeSources(topo_.numNodes(),
                                config_.injection_rate,
                                config_.lengths, pattern_,
                                config_.workload, config_.seed);
    arrival_due_.reserve(topo_.numNodes());
    for (NodeId v = 0; v < topo_.numNodes(); ++v)
        arrival_due_.push_back(sources_[v].nextDue(generate_));
}

std::uint32_t
Network::inPortId(NodeId router, int local) const
{
    return router * static_cast<std::uint32_t>(ports_per_router_)
        + static_cast<std::uint32_t>(local);
}

void
Network::fifoPush(Shard &sh, std::uint32_t port, const Flit &flit)
{
    InPort &in = in_ports_[port];
    std::uint32_t idx = in.fifo_head + in.fifo_size;
    if (idx >= buffer_depth_)
        idx -= buffer_depth_;
    flit_slab_[port * buffer_depth_ + idx] = flit;
    ++in.fifo_size;
    // A header only ever enters an empty, unbound buffer (one packet
    // per buffer), so it is at the front and unrouted right now.
    if (flit.head) {
        head_waiting_[port] = 1;
        waiting_pos_[port] =
            static_cast<std::uint32_t>(sh.waiting_list.size());
        sh.waiting_list.push_back(port);
    }
}

Flit
Network::fifoPop(std::uint32_t port)
{
    InPort &in = in_ports_[port];
    const Flit flit = flit_slab_[port * buffer_depth_ + in.fifo_head];
    ++in.fifo_head;
    if (in.fifo_head >= buffer_depth_)
        in.fifo_head = 0;
    --in.fifo_size;
    return flit;
}

void
Network::markActive(Shard &sh, std::uint32_t port)
{
    if (!is_active_[port]) {
        is_active_[port] = 1;
        sh.active_ports.push_back(port);
    }
}

void
Network::stampProgress(PacketSlot slot)
{
    // Several shards may move flits of the same packet in one cycle;
    // every stamp writes the same value, so relaxed is enough.
    std::atomic_ref<std::uint64_t>(progress_[slot])
        .store(cycle_, std::memory_order_relaxed);
}

void
Network::step()
{
    if (team_)
        team_->run([this](unsigned rank) { stepShard(rank); });
    else
        stepShard(0);
    serialTail();
}

void
Network::stepShard(std::uint32_t s)
{
    Shard &sh = shards_[s];
    sh.moved = false;

    // Snapshot cycle-start congestion for the selection policy. The
    // sources (downstream buffer sizes, last cycle's EWMA totals)
    // are frozen until the pop/push phases several barriers away,
    // and the snapshot arrays are written and read by the owning
    // shard only, so no extra barrier is needed.
    if (sel_needs_.free_slots || sel_needs_.regional)
        snapshotCongestion(sh);

    // Phase: sample arrivals (own RNG streams, staged locally). With
    // a closed loop, matured replies must be staged even while
    // stochastic generation is off (drain phases honor the
    // message-dependency chain).
    if (generate_ || closed_loop_) {
        generateSample(sh);
        sync();
        // Serial slot/id reservation so the commit below allocates
        // without touching shared state.
        if (s == 0)
            prepareGeneration();
        sync();
        commitGeneration(sh, s);
    }

    // Phase: output allocation. Router-local by construction — every
    // bid for an output channel comes from an input port of the same
    // router — so it shares a phase with the generation commit.
    allocateOutputs(sh);
    sync();

    // Phase: decide moves against the frozen cycle-start state. Reads
    // cross shard boundaries (chained-refill recursion); writes stay
    // in sh's scratch.
    decideMoves(sh);
    sync();

    if (!arb_key_.empty()) {
        // Serial mini-phase: one flit per physical wire per cycle.
        if (s == 0)
            arbitratePhysicalChannels();
        sync();
    }

    // Phase: pop commit. Writes shard-owned buffers and channel
    // state; boundary-crossing flits go to mailboxes.
    popMoves(sh, s);
    sync();

    // Phase: push commit. Owners apply local then mailboxed arrivals,
    // compact their active lists, and inject from their sources.
    pushMoves(sh, s);
    compactActive(sh);
    injectFlits(sh);
    recordHeldPorts(sh);
    if (sel_needs_.regional)
        updateCongestion(sh);
    sync();

    // Phase: slot releases. Ejections during the push commit mail
    // foreign slots home, so the owners may only drain once every
    // shard's push commit is complete.
    drainReleases(s);
}

void
Network::generateSample(Shard &sh)
{
    sh.staged.clear();
    const double now = static_cast<double>(cycle_);
    for (NodeId v = sh.node_begin; v < sh.node_end; ++v) {
        // The flat due-time mirror keeps the every-cycle scan off
        // the (much larger) NodeSource records.
        if (arrival_due_[v] > now)
            continue;
        sources_[v].emit(cycle_, generate_, sh.staged);
        arrival_due_[v] = sources_[v].nextDue(generate_);
    }
}

void
Network::prepareGeneration()
{
    // Packet ids are assigned serially in node order — shard ranges
    // are contiguous and ascending, so handing each shard a base from
    // the prefix sum reproduces the serial id sequence exactly.
    PacketId base = next_packet_id_;
    for (Shard &sh : shards_) {
        sh.id_base = base;
        base += static_cast<PacketId>(sh.staged.size());
    }
    next_packet_id_ = base;
    for (std::uint32_t s = 0; s < num_shards_; ++s)
        packets_.reserveExtra(s, shards_[s].staged.size());
    if (packets_.capacity() > progress_.size())
        progress_.resize(packets_.capacity());
}

void
Network::commitGeneration(Shard &sh, std::uint32_t s)
{
    const double now = static_cast<double>(cycle_);
    PacketId id = sh.id_base;
    for (const SourcedPacket &sp : sh.staged) {
        const PacketSlot slot = packets_.allocate(s);
        PacketState &pkt = packets_[slot];
        pkt.id = id++;
        pkt.src = sp.src;
        pkt.dest = sp.dest;
        pkt.length = sp.length;
        pkt.created = now;
        pkt.reply = sp.reply;
        source_queues_[sp.src].push_back(slot);
        source_pending_[sp.src] = 1;
        ++sh.counters.packets_generated;
        sh.counters.flits_generated += sp.length;
        sh.counters.source_queue_flits += sp.length;
        if (inj_log_)
            inj_log_->append({cycle_, sp.src, sp.dest, sp.length});
    }
}

void
Network::gatherBid(Shard &sh, std::uint32_t port)
{
    const InPort &in = in_ports_[port];
    const Flit &flit = fifoFront(port);
    TM_ASSERT(in.fifo_size > 0 && in.granted_out == -1 && flit.head,
              "head_waiting_ flag out of sync");
    const PacketState &pkt = packets_[flit.slot];
    // Store-and-forward: the header may not request an output
    // until every flit of the packet sits in this buffer.
    if (config_.switching == Switching::StoreAndForward &&
        in.fifo_size < pkt.length) {
        return;
    }
    const NodeId here = routerOf(port);
    const int local = localOf(port);

    std::uint32_t preferred;
    if (pkt.dest == here) {
        // Eject through the local delivery channel.
        const std::uint32_t eject = inPortId(here, localPort());
        if (out_ports_[eject].owner != kNoSlot) {
            bid_blocked_at_[port] = cycle_ + 1;
            return;
        }
        preferred = eject;
    } else {
        const std::optional<Direction> in_dir =
            local == localPort()
                ? std::nullopt
                : std::make_optional(
                      Direction::fromId(static_cast<DirId>(local)));
        DirectionSet candidates;
        for (Direction d : decider_->routeSet(here, in_dir,
                                              pkt.dest)) {
            const std::uint32_t out = inPortId(here, d.id());
            if (out_ports_[out].owner == kNoSlot)
                candidates.insert(d);
        }
        if (candidates.empty()) {
            bid_blocked_at_[port] = cycle_ + 1;
            return;
        }
        SelectionQuery q;
        q.candidates = candidates;
        q.in_dir = in_dir;
        q.here = here;
        q.dest = pkt.dest;
        q.packet = static_cast<std::uint64_t>(pkt.id);
        q.port_base = inPortId(here, 0);
        q.free_slots =
            free_snap_.empty() ? nullptr : free_snap_.data();
        q.congestion =
            regional_snap_.empty() ? nullptr : regional_snap_.data();
        q.rng = &router_rng_;
        preferred = inPortId(here, sel_->pick(q).id());
    }
    sh.bids.push_back({preferred, {port, in.header_arrival}});
}

void
Network::allocateOutputs(Shard &sh)
{
    // Gather, per output port, the requests of unrouted header flits.
    // One allocation round per cycle: each header bids for the single
    // output its output-selection policy prefers among the free
    // candidates; the input-selection policy then picks one winner
    // per output. Every bid targets an output of the bidder's own
    // router, so the whole round is shard-local.
    // A header whose last attempt found every usable output busy is
    // skipped until an output channel at its router is released.
    const auto worthTrying = [this](std::uint32_t port) {
        return out_freed_at_[port_router_[port]] >=
            bid_blocked_at_[port];
    };
    sh.bids.clear();
    if (ordered_bid_scan_) {
        // Random output selection draws from router_rng_ per bid, so
        // the gather must walk ports in the canonical active order
        // (the Random policies force a single shard).
        for (std::uint32_t port : sh.active_ports) {
            if (head_waiting_[port] && worthTrying(port))
                gatherBid(sh, port);
        }
    } else {
        // Deterministic policies consume no randomness while
        // gathering, and bids are sorted before anything reads them,
        // so the compact waiting list's order is unobservable.
        for (std::uint32_t port : sh.waiting_list) {
            if (worthTrying(port))
                gatherBid(sh, port);
        }
    }

    // Group bids by output port and arbitrate. Sorting keeps the
    // pass deterministic whatever order the gather produced.
    std::sort(sh.bids.begin(), sh.bids.end(),
              [](const Bid &a, const Bid &b) {
                  if (a.out_port != b.out_port)
                      return a.out_port < b.out_port;
                  return a.request.in_port < b.request.in_port;
              });
    std::size_t i = 0;
    while (i < sh.bids.size()) {
        sh.bid_group.clear();
        const std::uint32_t out = sh.bids[i].out_port;
        while (i < sh.bids.size() && sh.bids[i].out_port == out)
            sh.bid_group.push_back(sh.bids[i++].request);
        const std::size_t win =
            selectInput(config_.input_selection, sh.bid_group,
                        router_rng_);
        const std::uint32_t in_port = sh.bid_group[win].in_port;
        InPort &in = in_ports_[in_port];
        out_ports_[out].owner = fifoFront(in_port).slot;
        in.granted_out = localOf(out);
        granted_[in_port] = 1;
        granted_out_port_[in_port] = out;
        granted_target_[in_port] = out_to_in_[out];
        head_waiting_[in_port] = 0;
        const std::uint32_t pos = waiting_pos_[in_port];
        const std::uint32_t last = sh.waiting_list.back();
        sh.waiting_list[pos] = last;
        waiting_pos_[last] = pos;
        sh.waiting_list.pop_back();
    }
}

bool
Network::headCanMoveCompute(Shard &sh, std::uint32_t port)
{
    // A dependency cycle (true deadlock among the flits trying to
    // move) resolves to "cannot move": a port found on the recursion
    // stack (state 1) reads as "no" through the inline memo check.
    // The memo is the exploring shard's own — the chain may wander
    // into other shards' (frozen) state, and the granted-target graph
    // is functional, so every shard computes the same answers.
    sh.move_memo[port] = (cycle_ << 2) | 1;

    bool result = false;
    const InPort &in = in_ports_[port];
    if (in.fifo_size > 0 && in.granted_out != -1) {
        const std::int32_t target = granted_target_[port];
        if (target < 0) {
            // Ejection: the destination consumes immediately.
            result = true;
        } else {
            const auto target_port = static_cast<std::uint32_t>(target);
            const InPort &next = in_ports_[target_port];
            const Flit &flit = fifoFront(port);
            if (next.fifo_size < buffer_depth_) {
                // Space available now. Buffers hold one packet at a
                // time, so a different packet may enter only an
                // empty, unbound buffer.
                result = next.cur_slot == kNoSlot
                    || next.cur_slot == flit.slot;
            } else if (headCanMove(sh, target_port)) {
                // The slot freed this cycle can be used, subject to
                // the same single-packet rule.
                result = next.cur_slot == flit.slot
                    || next.fifo_size == 1;
            }
        }
    }
    sh.move_memo[port] = (cycle_ << 2) | (result ? 2u : 3u);
    return result;
}

void
Network::decideMoves(Shard &sh)
{
    sh.moves.clear();
    for (std::uint32_t port : sh.active_ports) {
        // Ports without a grant can never move; one byte skips them
        // without touching their InPort record or the (always-false)
        // memo bookkeeping. A chained refill that needs an ungranted
        // port's answer still computes it inside its own recursion.
        if (!granted_[port])
            continue;
        if (!headCanMove(sh, port))
            continue;
        sh.moves.push_back({port, granted_target_[port],
                            granted_out_port_[port]});
    }
}

void
Network::arbitratePhysicalChannels()
{
    // Virtual channels multiplex one physical wire: at most one flit
    // per (router, physical direction) per cycle. Conflicts keep the
    // move whose turn it is under a rotating priority; cancelling a
    // move also cancels, transitively, any move that was counting on
    // the slot it would have vacated. Runs serially over the
    // concatenation of every shard's moves.
    all_moves_.clear();
    arb_shard_base_.clear();
    for (Shard &sh : shards_) {
        arb_shard_base_.push_back(all_moves_.size());
        all_moves_.insert(all_moves_.end(), sh.moves.begin(),
                          sh.moves.end());
    }
    arb_shard_base_.push_back(all_moves_.size());

    arb_groups_.clear();
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(all_moves_.size()); ++i) {
        if (all_moves_[i].to < 0)
            continue;   // Delivery channels are not multiplexed.
        // Members carry their from-port ahead of the move index, so
        // sorting puts each wire's contenders in canonical from-port
        // order — the rotating priority then picks the same winner
        // at every shard count.
        arb_groups_.emplace_back(
            arb_key_[all_moves_[i].out],
            (static_cast<std::uint64_t>(all_moves_[i].from) << 32) |
                i);
    }
    std::sort(arb_groups_.begin(), arb_groups_.end());

    arb_cancelled_.assign(all_moves_.size(), 0);
    arb_worklist_.clear();
    std::size_t i = 0;
    while (i < arb_groups_.size()) {
        std::size_t j = i;
        while (j < arb_groups_.size() &&
               arb_groups_[j].first == arb_groups_[i].first) {
            ++j;
        }
        const std::size_t members = j - i;
        if (members > 1) {
            const std::size_t keep =
                static_cast<std::size_t>(cycle_ % members);
            for (std::size_t k = 0; k < members; ++k) {
                if (k == keep)
                    continue;
                const auto idx = static_cast<std::uint32_t>(
                    arb_groups_[i + k].second & 0xffffffffu);
                arb_cancelled_[idx] = 1;
                arb_worklist_.push_back(idx);
            }
        }
        i = j;
    }

    if (arb_worklist_.empty())
        return;

    // Index moves by the buffer they enter, so cancellations can
    // chase the chain upstream. The flat index is reset after use,
    // so its cost is O(moves), not O(ports).
    for (const Move &m : all_moves_) {
        if (m.to >= 0)
            arb_move_into_[m.to] = static_cast<std::int32_t>(
                &m - all_moves_.data());
    }
    for (std::size_t head = 0; head < arb_worklist_.size(); ++head) {
        const std::uint32_t dead = arb_worklist_[head];
        // The move entering the buffer `dead` was leaving needed
        // its slot only if that buffer was full at cycle start.
        const std::uint32_t buffer = all_moves_[dead].from;
        if (in_ports_[buffer].fifo_size < buffer_depth_)
            continue;   // The incoming move still has room.
        const std::int32_t feeder = arb_move_into_[buffer];
        if (feeder < 0 || arb_cancelled_[feeder])
            continue;
        arb_cancelled_[feeder] = 1;
        arb_worklist_.push_back(static_cast<std::uint32_t>(feeder));
    }
    for (const Move &m : all_moves_) {
        if (m.to >= 0)
            arb_move_into_[m.to] = -1;
    }

    // Hand each shard back its surviving moves, order preserved.
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
        Shard &sh = shards_[s];
        sh.moves.clear();
        for (std::size_t m = arb_shard_base_[s];
             m < arb_shard_base_[s + 1]; ++m) {
            if (!arb_cancelled_[m])
                sh.moves.push_back(all_moves_[m]);
        }
    }
}

void
Network::popMoves(Shard &sh, std::uint32_t s)
{
    // Pop all moving flits first so same-cycle chained refills see
    // consistent state, then push them downstream (next phase). Every
    // write here lands in sh's own routers: m.from and m.out are at
    // the same router, and an ejection's delivery port likewise.
    sh.in_flight.clear();
    for (const Move &m : sh.moves) {
        InPort &in = in_ports_[m.from];
        const Flit flit = fifoPop(m.from);
        if (chan_stats_)
            chan_stats_->recordForward(m.out, cycle_);
        if (!fwd_stamp_.empty())
            fwd_stamp_[m.out] = cycle_;
        if (flit.tail) {
            // The tail releases the channel and the buffer binding.
            out_ports_[m.out].owner = kNoSlot;
            in.cur_slot = kNoSlot;
            in.granted_out = -1;
            granted_[m.from] = 0;
            out_freed_at_[routerOf(m.from)] = cycle_ + 1;
            // Only a departing tail can leave a port empty and
            // unbound; remember the candidates so the active-list
            // compaction can skip everything else. (A chained
            // refill may still re-fill this port before then.)
            if (in.fifo_size == 0 && !maybe_free_[m.from]) {
                maybe_free_[m.from] = 1;
                ++sh.freed_candidates;
            }
        }
        if (m.to >= 0) {
            const std::uint32_t owner =
                plan_.shardOfPort(static_cast<std::uint32_t>(m.to));
            if (owner != s) {
                flit_mail_.box(s, owner).push_back(
                    {flit, m.from, m.to, m.out});
                continue;
            }
        }
        sh.in_flight.push_back({flit, m.from, m.to, m.out});
    }
}

void
Network::pushOne(Shard &sh, std::uint32_t s, const InFlight &f)
{
    sh.moved = true;
    ++sh.counters.flit_moves;
    stampProgress(f.flit.slot);
    if (f.to < 0) {
        // Consumed at the destination.
        PacketState &pkt = packets_[f.flit.slot];
        ++pkt.flits_delivered;
        ++sh.counters.flits_delivered;
        --sh.counters.flits_in_network;
        if (f.flit.tail) {
            ++sh.counters.packets_delivered;
            if (trace_sink_)
                trace_sink_->record({cycle_, pkt.id, pkt.dest, 0,
                                     TraceEventKind::Deliver});
            sh.completions.push_back({pkt.id, pkt.src, pkt.dest,
                                      pkt.length, pkt.hops, pkt.created,
                                      pkt.injected,
                                      static_cast<double>(cycle_)});
            // Closed loop: a delivered request schedules its reply at
            // the destination node. Shard-safe without a mailbox —
            // ejections are never mailboxed, so pkt.dest's source
            // belongs to this shard, and one ejection channel per
            // node means at most one reply per node per cycle.
            if (closed_loop_ && !pkt.reply) {
                sources_[pkt.dest].scheduleReply(
                    cycle_ + reply_delay_, pkt.src, reply_length_);
                arrival_due_[pkt.dest] =
                    sources_[pkt.dest].nextDue(generate_);
            }
            // The slot goes home to its arena's free list; a foreign
            // slot travels by mailbox so only the owner touches it.
            const std::uint32_t arena = packets_.arenaOf(f.flit.slot);
            if (arena == s)
                packets_.release(f.flit.slot);
            else
                release_mail_.box(s, arena).push_back(f.flit.slot);
        }
        return;
    }
    const auto to = static_cast<std::uint32_t>(f.to);
    InPort &next = in_ports_[to];
    TM_ASSERT(next.fifo_size < buffer_depth_,
              "flit pushed into a full buffer");
    TM_ASSERT(next.cur_slot == kNoSlot ||
                  next.cur_slot == f.flit.slot,
              "two packets interleaved in one buffer");
    fifoPush(sh, to, f.flit);
    if (chan_stats_)
        chan_stats_->recordOccupancy(to, next.fifo_size);
    if (f.flit.head) {
        PacketState &pkt = packets_[f.flit.slot];
        next.cur_slot = f.flit.slot;
        next.header_arrival = cycle_;
        ++pkt.hops;
        ++sh.counters.header_hops;
        if (trace_sink_)
            trace_sink_->record({cycle_, pkt.id, routerOf(f.from),
                                 static_cast<DirId>(localOf(to)),
                                 TraceEventKind::Route});
    }
    markActive(sh, to);
}

void
Network::pushMoves(Shard &sh, std::uint32_t s)
{
    for (const InFlight &f : sh.in_flight)
        pushOne(sh, s, f);
    sh.in_flight.clear();
    if (num_shards_ > 1) {
        flit_mail_.drainTo(
            s, [&](const InFlight &f) { pushOne(sh, s, f); });
    }
}

void
Network::compactActive(Shard &sh)
{
    // Compact the active list: keep ports that still hold flits or
    // are bound to a packet mid-stream. Every port was in one of
    // those states at cycle start, so only the tail-departure
    // candidates recorded in the pop phase can drop out; most cycles
    // the scan is a byte sweep (or nothing at all).
    if (sh.freed_candidates == 0)
        return;
    sh.freed_candidates = 0;
    std::size_t keep = 0;
    for (std::uint32_t port : sh.active_ports) {
        if (!maybe_free_[port]) {
            sh.active_ports[keep++] = port;
            continue;
        }
        maybe_free_[port] = 0;
        const InPort &in = in_ports_[port];
        if (in.fifo_size > 0 || in.cur_slot != kNoSlot) {
            sh.active_ports[keep++] = port;
        } else {
            is_active_[port] = 0;
        }
    }
    sh.active_ports.resize(keep);
}

void
Network::injectFlits(Shard &sh)
{
    // Runs after traversal so a single-flit injection buffer sustains
    // one flit per cycle, the injection channel's full bandwidth.
    for (NodeId v = sh.node_begin; v < sh.node_end; ++v) {
        if (!source_pending_[v])
            continue;
        auto &queue = source_queues_[v];
        const std::uint32_t port = inPortId(v, localPort());
        InPort &in = in_ports_[port];
        if (in.fifo_size >= buffer_depth_)
            continue;
        const PacketSlot slot = queue.front();
        PacketState &pkt = packets_[slot];
        if (in.cur_slot != kNoSlot && in.cur_slot != slot)
            continue;   // Previous packet's tail still in the buffer.
        Flit flit;
        flit.slot = slot;
        flit.head = pkt.flits_injected == 0;
        flit.tail = pkt.flits_injected + 1 == pkt.length;
        fifoPush(sh, port, flit);
        ++pkt.flits_injected;
        stampProgress(slot);
        --sh.counters.source_queue_flits;
        ++sh.counters.flits_in_network;
        ++sh.counters.flit_moves;
        sh.moved = true;
        if (flit.head) {
            in.cur_slot = slot;
            in.header_arrival = cycle_;
            pkt.injected = static_cast<double>(cycle_);
            if (trace_sink_)
                trace_sink_->record({cycle_, pkt.id, v, 0,
                                     TraceEventKind::Inject});
        }
        if (flit.tail) {
            queue.pop_front();
            if (queue.empty())
                source_pending_[v] = 0;
        }
        markActive(sh, port);
    }
}

void
Network::drainReleases(std::uint32_t s)
{
    if (num_shards_ > 1) {
        release_mail_.drainTo(
            s, [this](PacketSlot slot) { packets_.release(slot); });
    }
}

void
Network::recordHeldPorts(Shard &sh)
{
    if (!chan_stats_)
        return;
    // Busy/blocked accounting against this cycle's outcome: a held
    // channel either forwarded a flit this cycle or spent the cycle
    // blocked (downstream full or upstream bubble).
    for (std::uint32_t p = sh.port_begin; p < sh.port_end; ++p) {
        if (out_ports_[p].owner != kNoSlot)
            chan_stats_->recordHeld(p, cycle_);
    }
}

void
Network::snapshotCongestion(Shard &sh)
{
    // Own output ports only — the policy is consulted exclusively
    // for bids at this shard's routers, and a bid's candidate
    // outputs sit at the bidding port's own router.
    for (std::uint32_t p = sh.port_begin; p < sh.port_end; ++p) {
        const std::int32_t down = out_to_in_[p];
        if (!free_snap_.empty()) {
            free_snap_[p] = static_cast<std::uint16_t>(
                down >= 0 ? buffer_depth_ -
                        in_ports_[static_cast<std::uint32_t>(down)]
                            .fifo_size
                          : buffer_depth_);
        }
        if (!regional_snap_.empty()) {
            std::uint32_t r =
                static_cast<std::uint32_t>(blocked_ewma_[p]);
            if (down >= 0)
                r += router_blocked_[port_router_[
                    static_cast<std::uint32_t>(down)]];
            regional_snap_[p] = r;
        }
    }
}

void
Network::updateCongestion(Shard &sh)
{
    // Mirror the observer's held-channel accounting: an owned output
    // either forwarded a flit this cycle or sat blocked. The EWMA is
    // Q16 fixed point with a 1/64 step; the arithmetic right shift
    // keeps the decay exact for negative deltas.
    constexpr std::int32_t kOne = 1 << 16;
    constexpr int kShift = 6;
    for (std::uint32_t p = sh.port_begin; p < sh.port_end; ++p) {
        const bool blocked = out_ports_[p].owner != kNoSlot &&
            fwd_stamp_[p] != cycle_;
        blocked_ewma_[p] +=
            ((blocked ? kOne : 0) - blocked_ewma_[p]) >> kShift;
    }
    for (NodeId v = sh.node_begin; v < sh.node_end; ++v) {
        std::uint32_t sum = 0;
        for (int d = 0; d < topo_.numDirs(); ++d)
            sum += static_cast<std::uint32_t>(
                blocked_ewma_[inPortId(v, d)]);
        router_blocked_[v] = sum;
    }
}

void
Network::mergeCounters()
{
    NetworkCounters total;
    for (const Shard &sh : shards_) {
        const NetworkCounters &c = sh.counters;
        total.packets_generated += c.packets_generated;
        total.packets_delivered += c.packets_delivered;
        total.flits_generated += c.flits_generated;
        total.flits_delivered += c.flits_delivered;
        total.header_hops += c.header_hops;
        total.source_queue_flits += c.source_queue_flits;
        total.flits_in_network += c.flits_in_network;
        total.flit_moves += c.flit_moves;
    }
    counters_ = total;
}

void
Network::serialTail()
{
    // Per-shard counters are cumulative, so the merge is a plain sum
    // every cycle (a shard's flits_in_network delta may be negative —
    // it can eject more than it injects — but unsigned addition is
    // modular, so the merged totals are exact).
    mergeCounters();
    moved_this_cycle_ = false;
    for (Shard &sh : shards_) {
        if (sh.moved)
            moved_this_cycle_ = true;
        if (!sh.completions.empty()) {
            completions_.insert(completions_.end(),
                                sh.completions.begin(),
                                sh.completions.end());
            sh.completions.clear();
        }
    }

    if (chan_stats_)
        chan_stats_->tick();

    // Deadlock watchdog: packets in the network but nothing moved.
    if (!moved_this_cycle_ && counters_.flits_in_network > 0)
        ++stall_cycles_;
    else
        stall_cycles_ = 0;
    // The per-packet progress scan is amortized: a real deadlock
    // only has to be noticed, not noticed instantly.
    if ((cycle_ & 0x3ff) == 0) {
        packet_stall_flag_ = packet_stall_flag_
            || oldestPacketStall() >= config_.deadlock_threshold;
    }
    ++cycle_;
}

void
Network::setGenerationEnabled(bool enabled)
{
    if (generate_ == enabled)
        return;
    generate_ = enabled;
    // The due-time cache answers "when can this source emit?", which
    // depends on the mode: with generation off only pending replies
    // count, and turning it back on must re-expose the arrival clock.
    for (NodeId v = 0; v < topo_.numNodes(); ++v)
        arrival_due_[v] = sources_[v].nextDue(generate_);
}

PacketId
Network::post(NodeId src, NodeId dest, std::uint32_t length)
{
    TM_ASSERT(src < topo_.numNodes() && dest < topo_.numNodes(),
              "post() endpoints out of range");
    TM_ASSERT(src != dest, "post() requires distinct endpoints");
    TM_ASSERT(length >= 1, "a packet has at least one flit");
    const std::uint32_t s = plan_.shardOfNode(src);
    const PacketSlot slot = packets_.allocate(s);
    if (slot >= progress_.size())
        progress_.resize(slot + 1);
    PacketState &pkt = packets_[slot];
    pkt.id = next_packet_id_++;
    pkt.src = src;
    pkt.dest = dest;
    pkt.length = length;
    pkt.created = static_cast<double>(cycle_);
    progress_[slot] = cycle_;
    source_queues_[src].push_back(slot);
    source_pending_[src] = 1;
    NetworkCounters &c = shards_[s].counters;
    ++c.packets_generated;
    c.flits_generated += length;
    c.source_queue_flits += length;
    if (inj_log_)
        inj_log_->append({cycle_, src, dest, length});
    mergeCounters();   // Keep the merged view current between steps.
    return pkt.id;
}

std::vector<Completion>
Network::drainCompletions()
{
    std::vector<Completion> out;
    out.swap(completions_);
    std::sort(out.begin(), out.end(),
              [](const Completion &a, const Completion &b) {
                  return a.id < b.id;
              });
    return out;
}

void
Network::drainCompletions(std::vector<Completion> &out)
{
    out.clear();
    out.swap(completions_);
    // Completions are recorded in delivery-scan order, which depends
    // on the shard layout; ascending id order is the canonical,
    // shard-count-invariant presentation.
    std::sort(out.begin(), out.end(),
              [](const Completion &a, const Completion &b) {
                  return a.id < b.id;
              });
}

bool
Network::deadlockDetected() const
{
    return stall_cycles_ >= config_.deadlock_threshold
        || packet_stall_flag_;
}

std::vector<PacketId>
Network::stuckPackets(std::uint64_t age) const
{
    std::vector<PacketId> stuck;
    packets_.forEachLive([&](PacketSlot slot, const PacketState &pkt) {
        if (pkt.flits_injected == 0)
            return;
        if (cycle_ - progress_[slot] >= age)
            stuck.push_back(pkt.id);
    });
    // Slot order is allocation order, which recycling (and the arena
    // interleave) scrambles; report victims in ascending id order so
    // the list is stable against storage details.
    std::sort(stuck.begin(), stuck.end());
    return stuck;
}

std::uint64_t
Network::oldestPacketStall() const
{
    std::uint64_t oldest = 0;
    packets_.forEachLive([&](PacketSlot slot, const PacketState &pkt) {
        if (pkt.flits_injected == 0)
            return;
        oldest = std::max(oldest, cycle_ - progress_[slot]);
    });
    return oldest;
}

std::uint64_t
Network::sourceQueuePackets() const
{
    std::uint64_t total = 0;
    for (const auto &q : source_queues_)
        total += q.size();
    return total;
}

void
Network::fillObsReport(ObsReport &report) const
{
    if (chan_stats_) {
        report.observed_cycles = chan_stats_->observedCycles();
        const double cycles =
            static_cast<double>(chan_stats_->observedCycles());
        const auto row_for = [&](NodeId v, std::uint32_t out,
                                 std::string dir,
                                 std::uint32_t peak) {
            ChannelUtilRow row;
            row.node = v;
            row.coords = topo_.coords(v);
            row.dir = std::move(dir);
            row.flits_forwarded = chan_stats_->flitsForwarded(out);
            row.busy_cycles = chan_stats_->busyCycles(out);
            row.blocked_cycles = chan_stats_->blockedCycles(out);
            row.peak_occupancy = peak;
            row.utilization = cycles > 0.0
                ? static_cast<double>(row.flits_forwarded) / cycles
                : 0.0;
            return row;
        };
        for (NodeId v = 0; v < topo_.numNodes(); ++v) {
            for (Direction d : allDirections(topo_.numDims())) {
                if (!topo_.neighbor(v, d))
                    continue;
                const std::uint32_t out = inPortId(v, d.id());
                const std::int32_t down = out_to_in_[out];
                report.channels.push_back(row_for(
                    v, out, directionName(d),
                    chan_stats_->peakOccupancy(
                        static_cast<std::uint32_t>(down))));
            }
            // The local delivery channel: consumed immediately, so
            // it has no downstream buffer to peak-track.
            report.channels.push_back(
                row_for(v, inPortId(v, localPort()), "eject", 0));
        }
    }
    if (trace_sink_) {
        report.trace = trace_sink_->chronological();
        report.trace_dropped = trace_sink_->dropped();
    }
}

} // namespace turnmodel
