#include "sim/network.hpp"

#include <algorithm>

#include "obs/report.hpp"
#include "util/logging.hpp"

namespace turnmodel {

Network::Network(const RoutingAlgorithm &routing,
                 const TrafficPattern &pattern, const SimConfig &config)
    : routing_(routing), decider_(&routing), topo_(routing.topology()),
      pattern_(pattern), config_(config),
      router_rng_(Rng::forStream(config.seed, 0xabcdef))
{
    TM_ASSERT(config_.buffer_depth >= 1, "buffers hold at least one flit");
    if (config_.compiled_routing &&
        dynamic_cast<const CompiledRoutingTable *>(&routing) == nullptr) {
        compiled_.emplace(routing);
        decider_ = &*compiled_;
    }
    if (config_.switching == Switching::StoreAndForward) {
        TM_ASSERT(config_.buffer_depth >= config_.lengths.maxLength(),
                  "store-and-forward buffers must fit a whole packet");
    }
    ports_per_router_ = topo_.numDirs() + 1;
    const std::size_t total_ports =
        static_cast<std::size_t>(topo_.numNodes()) *
        static_cast<std::size_t>(ports_per_router_);
    in_ports_.resize(total_ports);
    out_ports_.resize(total_ports);
    out_to_in_.assign(total_ports, -1);
    move_state_.assign(total_ports, 0);
    move_stamp_.assign(total_ports, ~0ULL);
    is_active_.assign(total_ports, false);

    // Wire each output channel to the matching downstream input port:
    // a packet leaving router v in direction d arrives at neighbor w
    // on w's input port for direction d.
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        for (Direction d : allDirections(topo_.numDims())) {
            const auto w = topo_.neighbor(v, d);
            if (!w)
                continue;
            out_to_in_[inPortId(v, d.id())] =
                static_cast<std::int32_t>(inPortId(*w, d.id()));
        }
    }

    if (config_.obs.networkEnabled()) {
        obs_ = std::make_unique<NetworkObserver>(config_.obs,
                                                 total_ports);
        chan_stats_ = obs_->channels();
        trace_sink_ = obs_->trace();
    }

    source_queues_.resize(topo_.numNodes());
    arrivals_.reserve(topo_.numNodes());
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        arrivals_.emplace_back(config_.injection_rate,
                               config_.lengths.mean(),
                               Rng::forStream(config_.seed, v + 1));
    }
}

std::uint32_t
Network::inPortId(NodeId router, int local) const
{
    return router * static_cast<std::uint32_t>(ports_per_router_)
        + static_cast<std::uint32_t>(local);
}

NodeId
Network::routerOf(std::uint32_t port) const
{
    return port / static_cast<std::uint32_t>(ports_per_router_);
}

int
Network::localOf(std::uint32_t port) const
{
    return static_cast<int>(
        port % static_cast<std::uint32_t>(ports_per_router_));
}

void
Network::markActive(std::uint32_t port)
{
    if (!is_active_[port]) {
        is_active_[port] = true;
        active_ports_.push_back(port);
    }
}

void
Network::step()
{
    moved_this_cycle_ = false;
    if (generate_)
        generateMessages();
    allocateOutputs();
    traverseFlits();
    injectFlits();

    if (chan_stats_) {
        // Busy/blocked accounting against this cycle's outcome: a
        // held channel either forwarded a flit this cycle or spent
        // the cycle blocked (downstream full or upstream bubble).
        chan_stats_->tick();
        const auto num_ports =
            static_cast<std::uint32_t>(out_ports_.size());
        for (std::uint32_t p = 0; p < num_ports; ++p) {
            if (out_ports_[p].owner != kNoPacket)
                chan_stats_->recordHeld(p, cycle_);
        }
    }

    // Deadlock watchdog: packets in the network but nothing moved.
    if (!moved_this_cycle_ && counters_.flits_in_network > 0)
        ++stall_cycles_;
    else
        stall_cycles_ = 0;
    // The per-packet progress scan is amortized: a real deadlock
    // only has to be noticed, not noticed instantly.
    if ((cycle_ & 0x3ff) == 0) {
        packet_stall_flag_ = packet_stall_flag_
            || oldestPacketStall() >= config_.deadlock_threshold;
    }
    ++cycle_;
}

void
Network::generateMessages()
{
    const double now = static_cast<double>(cycle_);
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        ArrivalProcess &proc = arrivals_[v];
        while (proc.due(now)) {
            proc.advance();
            const auto dest = pattern_.destination(v, proc.rng());
            if (!dest)
                continue;   // Self-directed; never enters the network.
            const std::uint32_t length =
                config_.lengths.sample(proc.rng());
            PacketState pkt;
            pkt.src = v;
            pkt.dest = *dest;
            pkt.length = length;
            pkt.created = now;
            const PacketId id = next_packet_id_++;
            packets_.emplace(id, pkt);
            source_queues_[v].push_back(id);
            ++counters_.packets_generated;
            counters_.flits_generated += length;
            counters_.source_queue_flits += length;
        }
    }
}

void
Network::allocateOutputs()
{
    // Gather, per output port, the requests of unrouted header flits.
    // One allocation round per cycle: each header bids for the single
    // output its output-selection policy prefers among the free
    // candidates; the input-selection policy then picks one winner
    // per output.
    struct Bid
    {
        std::uint32_t out_port;
        InputRequest request;
    };
    std::vector<Bid> bids;

    for (std::uint32_t port : active_ports_) {
        InPort &in = in_ports_[port];
        if (in.fifo.empty() || in.granted_out != -1)
            continue;
        const Flit &flit = in.fifo.front();
        if (!flit.head)
            continue;
        const PacketState &pkt = packets_.at(flit.packet);
        // Store-and-forward: the header may not request an output
        // until every flit of the packet sits in this buffer.
        if (config_.switching == Switching::StoreAndForward &&
            in.fifo.size() < pkt.length) {
            continue;
        }
        const NodeId here = routerOf(port);
        const int local = localOf(port);

        std::uint32_t preferred;
        if (pkt.dest == here) {
            // Eject through the local delivery channel.
            const std::uint32_t eject = inPortId(here, localPort());
            if (out_ports_[eject].owner != kNoPacket)
                continue;
            preferred = eject;
        } else {
            const std::optional<Direction> in_dir =
                local == localPort()
                    ? std::nullopt
                    : std::make_optional(
                          Direction::fromId(static_cast<DirId>(local)));
            DirectionSet candidates;
            for (Direction d : decider_->routeSet(here, in_dir,
                                                  pkt.dest)) {
                const std::uint32_t out = inPortId(here, d.id());
                if (out_ports_[out].owner == kNoPacket)
                    candidates.insert(d);
            }
            if (candidates.empty())
                continue;
            const Direction pick = selectOutput(
                config_.output_selection, candidates, in_dir,
                router_rng_);
            preferred = inPortId(here, pick.id());
        }
        bids.push_back({preferred, {port, in.header_arrival}});
    }

    // Group bids by output port and arbitrate. Bids arrive grouped by
    // router order; sorting keeps the pass deterministic.
    std::sort(bids.begin(), bids.end(),
              [](const Bid &a, const Bid &b) {
                  if (a.out_port != b.out_port)
                      return a.out_port < b.out_port;
                  return a.request.in_port < b.request.in_port;
              });
    std::size_t i = 0;
    std::vector<InputRequest> group;
    while (i < bids.size()) {
        group.clear();
        const std::uint32_t out = bids[i].out_port;
        while (i < bids.size() && bids[i].out_port == out)
            group.push_back(bids[i++].request);
        const std::size_t win =
            selectInput(config_.input_selection, group, router_rng_);
        const std::uint32_t in_port = group[win].in_port;
        InPort &in = in_ports_[in_port];
        const PacketId pkt = in.fifo.front().packet;
        out_ports_[out].owner = pkt;
        in.granted_out = localOf(out);
    }
}

bool
Network::headCanMove(std::uint32_t port)
{
    // Memoized per cycle; a dependency cycle (true deadlock among
    // the flits trying to move) resolves to "cannot move".
    if (move_stamp_[port] == cycle_) {
        if (move_state_[port] == 1)
            return false;   // On the recursion stack: cyclic wait.
        return move_state_[port] == 2;
    }
    move_stamp_[port] = cycle_;
    move_state_[port] = 1;

    bool result = false;
    const InPort &in = in_ports_[port];
    if (!in.fifo.empty() && in.granted_out != -1) {
        const NodeId here = routerOf(port);
        const std::uint32_t out = inPortId(here, in.granted_out);
        const std::int32_t target = out_to_in_[out];
        if (in.granted_out == localPort()) {
            // Ejection: the destination consumes immediately.
            result = true;
        } else {
            TM_ASSERT(target >= 0, "granted output has no downstream");
            const InPort &next =
                in_ports_[static_cast<std::uint32_t>(target)];
            const Flit &flit = in.fifo.front();
            if (next.fifo.size() <
                static_cast<std::size_t>(config_.buffer_depth)) {
                // Space available now. Buffers hold one packet at a
                // time, so a different packet may enter only an
                // empty, unbound buffer.
                result = next.cur_packet == kNoPacket
                    || next.cur_packet == flit.packet;
            } else if (headCanMove(static_cast<std::uint32_t>(target))) {
                // The slot freed this cycle can be used, subject to
                // the same single-packet rule.
                result = next.cur_packet == flit.packet
                    || next.fifo.size() == 1;
            }
        }
    }
    move_state_[port] = result ? 2 : 3;
    return result;
}

void
Network::traverseFlits()
{
    // Decide all moves against the cycle-start state, then apply.
    std::vector<Move> moves;
    for (std::uint32_t port : active_ports_) {
        if (!headCanMove(port))
            continue;
        const InPort &in = in_ports_[port];
        const NodeId here = routerOf(port);
        const std::uint32_t out = inPortId(here, in.granted_out);
        moves.push_back({port,
                         in.granted_out == localPort()
                             ? -1
                             : out_to_in_[out]});
    }

    if (topo_.hasSharedPhysicalChannels())
        arbitratePhysicalChannels(moves);

    // Pop all moving flits first so same-cycle chained refills see
    // consistent state, then push them downstream.
    struct InFlight
    {
        Flit flit;
        std::uint32_t from;
        std::int32_t to;
        std::uint32_t out;   ///< Output port the flit crossed.
    };
    std::vector<InFlight> in_flight;
    in_flight.reserve(moves.size());
    for (const Move &m : moves) {
        InPort &in = in_ports_[m.from];
        const Flit flit = in.fifo.front();
        in.fifo.pop_front();
        const NodeId here = routerOf(m.from);
        const std::uint32_t out = inPortId(here, in.granted_out);
        if (flit.tail) {
            // The tail releases the channel and the buffer binding.
            out_ports_[out].owner = kNoPacket;
            in.cur_packet = kNoPacket;
            in.granted_out = -1;
        }
        in_flight.push_back({flit, m.from, m.to, out});
    }

    for (const InFlight &f : in_flight) {
        moved_this_cycle_ = true;
        PacketState &pkt = packets_.at(f.flit.packet);
        pkt.last_progress = cycle_;
        if (chan_stats_)
            chan_stats_->recordForward(f.out, cycle_);
        if (f.to < 0) {
            // Consumed at the destination.
            ++pkt.flits_delivered;
            ++counters_.flits_delivered;
            --counters_.flits_in_network;
            if (f.flit.tail) {
                ++counters_.packets_delivered;
                if (trace_sink_)
                    trace_sink_->record({cycle_, f.flit.packet,
                                         pkt.dest, 0,
                                         TraceEventKind::Deliver});
                completions_.push_back({f.flit.packet, pkt.src, pkt.dest,
                                        pkt.length, pkt.hops, pkt.created,
                                        pkt.injected,
                                        static_cast<double>(cycle_)});
                packets_.erase(f.flit.packet);
            }
            continue;
        }
        const auto to = static_cast<std::uint32_t>(f.to);
        InPort &next = in_ports_[to];
        TM_ASSERT(next.fifo.size() <
                      static_cast<std::size_t>(config_.buffer_depth),
                  "flit pushed into a full buffer");
        TM_ASSERT(next.cur_packet == kNoPacket ||
                      next.cur_packet == f.flit.packet,
                  "two packets interleaved in one buffer");
        next.fifo.push_back(f.flit);
        if (chan_stats_)
            chan_stats_->recordOccupancy(to, next.fifo.size());
        if (f.flit.head) {
            next.cur_packet = f.flit.packet;
            next.header_arrival = cycle_;
            ++pkt.hops;
            ++counters_.header_hops;
            if (trace_sink_)
                trace_sink_->record({cycle_, f.flit.packet,
                                     routerOf(f.from),
                                     static_cast<DirId>(localOf(to)),
                                     TraceEventKind::Route});
        }
        markActive(to);
    }

    // Compact the active list: keep ports that still hold flits or
    // are bound to a packet mid-stream.
    std::size_t keep = 0;
    for (std::uint32_t port : active_ports_) {
        const InPort &in = in_ports_[port];
        if (!in.fifo.empty() || in.cur_packet != kNoPacket) {
            active_ports_[keep++] = port;
        } else {
            is_active_[port] = false;
        }
    }
    active_ports_.resize(keep);
}

void
Network::injectFlits()
{
    // Runs after traversal so a single-flit injection buffer sustains
    // one flit per cycle, the injection channel's full bandwidth.
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        auto &queue = source_queues_[v];
        if (queue.empty())
            continue;
        const std::uint32_t port = inPortId(v, localPort());
        InPort &in = in_ports_[port];
        if (in.fifo.size() >=
            static_cast<std::size_t>(config_.buffer_depth)) {
            continue;
        }
        const PacketId id = queue.front();
        PacketState &pkt = packets_.at(id);
        if (in.cur_packet != kNoPacket && in.cur_packet != id)
            continue;   // Previous packet's tail still in the buffer.
        Flit flit;
        flit.packet = id;
        flit.head = pkt.flits_injected == 0;
        flit.tail = pkt.flits_injected + 1 == pkt.length;
        in.fifo.push_back(flit);
        ++pkt.flits_injected;
        pkt.last_progress = cycle_;
        --counters_.source_queue_flits;
        ++counters_.flits_in_network;
        moved_this_cycle_ = true;
        if (flit.head) {
            in.cur_packet = id;
            in.header_arrival = cycle_;
            pkt.injected = static_cast<double>(cycle_);
            if (trace_sink_)
                trace_sink_->record({cycle_, id, v, 0,
                                     TraceEventKind::Inject});
        }
        if (flit.tail)
            queue.pop_front();
        markActive(port);
    }
}

void
Network::arbitratePhysicalChannels(std::vector<Move> &moves)
{
    // Virtual channels multiplex one physical wire: at most one flit
    // per (router, physical direction) per cycle. Conflicts keep the
    // move whose turn it is under a rotating priority; cancelling a
    // move also cancels, transitively, any move that was counting on
    // the slot it would have vacated.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < moves.size(); ++i) {
        const std::uint32_t from = moves[i].from;
        const int local = in_ports_[from].granted_out;
        if (local == localPort())
            continue;   // Delivery channels are not multiplexed.
        const NodeId here = routerOf(from);
        const std::uint64_t key =
            static_cast<std::uint64_t>(here) * 256u +
            topo_.physicalChannelGroup(static_cast<DirId>(local));
        groups[key].push_back(i);
    }

    std::vector<bool> cancelled(moves.size(), false);
    std::deque<std::size_t> to_propagate;
    for (auto &[key, members] : groups) {
        if (members.size() <= 1)
            continue;
        const std::size_t keep = static_cast<std::size_t>(
            cycle_ % members.size());
        for (std::size_t j = 0; j < members.size(); ++j) {
            if (j == keep)
                continue;
            cancelled[members[j]] = true;
            to_propagate.push_back(members[j]);
        }
    }

    if (to_propagate.empty())
        return;

    // Index moves by the buffer they leave, so cancellations can
    // chase the chain upstream.
    std::unordered_map<std::uint32_t, std::size_t> move_out_of;
    std::unordered_map<std::int32_t, std::size_t> move_into;
    for (std::size_t i = 0; i < moves.size(); ++i) {
        move_out_of[moves[i].from] = i;
        if (moves[i].to >= 0)
            move_into[moves[i].to] = i;
    }
    while (!to_propagate.empty()) {
        const std::size_t dead = to_propagate.front();
        to_propagate.pop_front();
        // The move entering the buffer `dead` was leaving needed its
        // slot only if that buffer was full at cycle start.
        const std::uint32_t buffer = moves[dead].from;
        const InPort &in = in_ports_[buffer];
        if (in.fifo.size() <
            static_cast<std::size_t>(config_.buffer_depth)) {
            continue;   // The incoming move still has room.
        }
        const auto it = move_into.find(static_cast<std::int32_t>(buffer));
        if (it == move_into.end() || cancelled[it->second])
            continue;
        cancelled[it->second] = true;
        to_propagate.push_back(it->second);
    }

    std::vector<Move> kept;
    kept.reserve(moves.size());
    for (std::size_t i = 0; i < moves.size(); ++i) {
        if (!cancelled[i])
            kept.push_back(moves[i]);
    }
    moves.swap(kept);
}

PacketId
Network::post(NodeId src, NodeId dest, std::uint32_t length)
{
    TM_ASSERT(src < topo_.numNodes() && dest < topo_.numNodes(),
              "post() endpoints out of range");
    TM_ASSERT(src != dest, "post() requires distinct endpoints");
    TM_ASSERT(length >= 1, "a packet has at least one flit");
    PacketState pkt;
    pkt.src = src;
    pkt.dest = dest;
    pkt.length = length;
    pkt.created = static_cast<double>(cycle_);
    pkt.last_progress = cycle_;
    const PacketId id = next_packet_id_++;
    packets_.emplace(id, pkt);
    source_queues_[src].push_back(id);
    ++counters_.packets_generated;
    counters_.flits_generated += length;
    counters_.source_queue_flits += length;
    return id;
}

std::vector<Completion>
Network::drainCompletions()
{
    std::vector<Completion> out;
    out.swap(completions_);
    return out;
}

bool
Network::deadlockDetected() const
{
    return stall_cycles_ >= config_.deadlock_threshold
        || packet_stall_flag_;
}

std::vector<PacketId>
Network::stuckPackets(std::uint64_t age) const
{
    std::vector<PacketId> stuck;
    for (const auto &[id, pkt] : packets_) {
        if (pkt.flits_injected == 0)
            continue;
        if (cycle_ - pkt.last_progress >= age)
            stuck.push_back(id);
    }
    return stuck;
}

std::uint64_t
Network::oldestPacketStall() const
{
    std::uint64_t oldest = 0;
    for (const auto &[id, pkt] : packets_) {
        if (pkt.flits_injected == 0)
            continue;
        oldest = std::max(oldest, cycle_ - pkt.last_progress);
    }
    return oldest;
}

std::uint64_t
Network::sourceQueuePackets() const
{
    std::uint64_t total = 0;
    for (const auto &q : source_queues_)
        total += q.size();
    return total;
}

void
Network::fillObsReport(ObsReport &report) const
{
    if (chan_stats_) {
        report.observed_cycles = chan_stats_->observedCycles();
        const double cycles =
            static_cast<double>(chan_stats_->observedCycles());
        const auto row_for = [&](NodeId v, std::uint32_t out,
                                 std::string dir,
                                 std::uint32_t peak) {
            ChannelUtilRow row;
            row.node = v;
            row.coords = topo_.coords(v);
            row.dir = std::move(dir);
            row.flits_forwarded = chan_stats_->flitsForwarded(out);
            row.busy_cycles = chan_stats_->busyCycles(out);
            row.blocked_cycles = chan_stats_->blockedCycles(out);
            row.peak_occupancy = peak;
            row.utilization = cycles > 0.0
                ? static_cast<double>(row.flits_forwarded) / cycles
                : 0.0;
            return row;
        };
        for (NodeId v = 0; v < topo_.numNodes(); ++v) {
            for (Direction d : allDirections(topo_.numDims())) {
                if (!topo_.neighbor(v, d))
                    continue;
                const std::uint32_t out = inPortId(v, d.id());
                const std::int32_t down = out_to_in_[out];
                report.channels.push_back(row_for(
                    v, out, directionName(d),
                    chan_stats_->peakOccupancy(
                        static_cast<std::uint32_t>(down))));
            }
            // The local delivery channel: consumed immediately, so
            // it has no downstream buffer to peak-track.
            report.channels.push_back(
                row_for(v, inPortId(v, localPort()), "eject", 0));
        }
    }
    if (trace_sink_) {
        report.trace = trace_sink_->chronological();
        report.trace_dropped = trace_sink_->dropped();
    }
}

} // namespace turnmodel
