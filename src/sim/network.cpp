#include "sim/network.hpp"

#include <algorithm>

#include "obs/report.hpp"
#include "util/logging.hpp"

namespace turnmodel {

Network::Network(const RoutingAlgorithm &routing,
                 const TrafficPattern &pattern, const SimConfig &config)
    : routing_(routing), decider_(&routing), topo_(routing.topology()),
      pattern_(pattern), config_(config),
      router_rng_(Rng::forStream(config.seed, 0xabcdef))
{
    TM_ASSERT(config_.buffer_depth >= 1, "buffers hold at least one flit");
    if (config_.compiled_routing &&
        dynamic_cast<const CompiledRoutingTable *>(&routing) == nullptr) {
        compiled_.emplace(routing);
        decider_ = &*compiled_;
    }
    if (config_.switching == Switching::StoreAndForward) {
        TM_ASSERT(config_.buffer_depth >= config_.lengths.maxLength(),
                  "store-and-forward buffers must fit a whole packet");
    }
    ports_per_router_ = topo_.numDirs() + 1;
    buffer_depth_ = config_.buffer_depth;
    const std::size_t total_ports =
        static_cast<std::size_t>(topo_.numNodes()) *
        static_cast<std::size_t>(ports_per_router_);
    in_ports_.resize(total_ports);
    out_ports_.resize(total_ports);
    flit_slab_.resize(total_ports * buffer_depth_);
    out_to_in_.assign(total_ports, -1);
    move_memo_.assign(total_ports, ~0ULL);
    is_active_.assign(total_ports, 0);
    head_waiting_.assign(total_ports, 0);
    waiting_pos_.assign(total_ports, 0);
    granted_.assign(total_ports, 0);
    granted_out_port_.assign(total_ports, 0);
    granted_target_.assign(total_ports, -1);
    maybe_free_.assign(total_ports, 0);
    bid_blocked_at_.assign(total_ports, 0);
    out_freed_at_.assign(topo_.numNodes(), 0);
    arb_move_into_.assign(total_ports, -1);
    ordered_bid_scan_ =
        config_.output_selection == OutputSelection::Random;

    port_router_.resize(total_ports);
    port_local_.resize(total_ports);
    for (std::uint32_t p = 0; p < total_ports; ++p) {
        port_router_[p] =
            p / static_cast<std::uint32_t>(ports_per_router_);
        port_local_[p] = static_cast<std::uint8_t>(
            p % static_cast<std::uint32_t>(ports_per_router_));
    }

    // Wire each output channel to the matching downstream input port:
    // a packet leaving router v in direction d arrives at neighbor w
    // on w's input port for direction d.
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        for (Direction d : allDirections(topo_.numDims())) {
            const auto w = topo_.neighbor(v, d);
            if (!w)
                continue;
            out_to_in_[inPortId(v, d.id())] =
                static_cast<std::int32_t>(inPortId(*w, d.id()));
        }
    }

    if (topo_.hasSharedPhysicalChannels()) {
        arb_key_.resize(total_ports);
        for (std::uint32_t p = 0; p < total_ports; ++p) {
            const int local = localOf(p);
            if (local == localPort())
                continue;   // Delivery channels are not multiplexed.
            arb_key_[p] =
                static_cast<std::uint64_t>(routerOf(p)) * 256u +
                topo_.physicalChannelGroup(static_cast<DirId>(local));
        }
    }

    if (config_.obs.networkEnabled()) {
        obs_ = std::make_unique<NetworkObserver>(config_.obs,
                                                 total_ports);
        chan_stats_ = obs_->channels();
        trace_sink_ = obs_->trace();
    }

    source_queues_.resize(topo_.numNodes());
    source_pending_.assign(topo_.numNodes(), 0);
    arrivals_.reserve(topo_.numNodes());
    arrival_due_.reserve(topo_.numNodes());
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        arrivals_.emplace_back(config_.injection_rate,
                               config_.lengths.mean(),
                               Rng::forStream(config_.seed, v + 1));
        arrival_due_.push_back(arrivals_.back().nextDue());
    }
}

std::uint32_t
Network::inPortId(NodeId router, int local) const
{
    return router * static_cast<std::uint32_t>(ports_per_router_)
        + static_cast<std::uint32_t>(local);
}

void
Network::fifoPush(std::uint32_t port, const Flit &flit)
{
    InPort &in = in_ports_[port];
    std::uint32_t idx = in.fifo_head + in.fifo_size;
    if (idx >= buffer_depth_)
        idx -= buffer_depth_;
    flit_slab_[port * buffer_depth_ + idx] = flit;
    ++in.fifo_size;
    // A header only ever enters an empty, unbound buffer (one packet
    // per buffer), so it is at the front and unrouted right now.
    if (flit.head) {
        head_waiting_[port] = 1;
        waiting_pos_[port] =
            static_cast<std::uint32_t>(waiting_list_.size());
        waiting_list_.push_back(port);
    }
}

Flit
Network::fifoPop(std::uint32_t port)
{
    InPort &in = in_ports_[port];
    const Flit flit = flit_slab_[port * buffer_depth_ + in.fifo_head];
    ++in.fifo_head;
    if (in.fifo_head >= buffer_depth_)
        in.fifo_head = 0;
    --in.fifo_size;
    return flit;
}

void
Network::markActive(std::uint32_t port)
{
    if (!is_active_[port]) {
        is_active_[port] = 1;
        active_ports_.push_back(port);
    }
}

void
Network::step()
{
    moved_this_cycle_ = false;
    if (generate_)
        generateMessages();
    allocateOutputs();
    traverseFlits();
    injectFlits();

    if (chan_stats_) {
        // Busy/blocked accounting against this cycle's outcome: a
        // held channel either forwarded a flit this cycle or spent
        // the cycle blocked (downstream full or upstream bubble).
        chan_stats_->tick();
        const auto num_ports =
            static_cast<std::uint32_t>(out_ports_.size());
        for (std::uint32_t p = 0; p < num_ports; ++p) {
            if (out_ports_[p].owner != kNoSlot)
                chan_stats_->recordHeld(p, cycle_);
        }
    }

    // Deadlock watchdog: packets in the network but nothing moved.
    if (!moved_this_cycle_ && counters_.flits_in_network > 0)
        ++stall_cycles_;
    else
        stall_cycles_ = 0;
    // The per-packet progress scan is amortized: a real deadlock
    // only has to be noticed, not noticed instantly.
    if ((cycle_ & 0x3ff) == 0) {
        packet_stall_flag_ = packet_stall_flag_
            || oldestPacketStall() >= config_.deadlock_threshold;
    }
    ++cycle_;
}

void
Network::generateMessages()
{
    const double now = static_cast<double>(cycle_);
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        // The flat due-time mirror keeps the every-cycle scan off
        // the (much larger) ArrivalProcess records.
        if (arrival_due_[v] > now)
            continue;
        ArrivalProcess &proc = arrivals_[v];
        do {
            proc.advance();
            const auto dest = pattern_.destination(v, proc.rng());
            if (!dest)
                continue;   // Self-directed; never enters the network.
            const std::uint32_t length =
                config_.lengths.sample(proc.rng());
            const PacketSlot slot = packets_.allocate();
            if (slot >= progress_.size())
                progress_.resize(slot + 1);
            PacketState &pkt = packets_[slot];
            pkt.id = next_packet_id_++;
            pkt.src = v;
            pkt.dest = *dest;
            pkt.length = length;
            pkt.created = now;
            source_queues_[v].push_back(slot);
            source_pending_[v] = 1;
            ++counters_.packets_generated;
            counters_.flits_generated += length;
            counters_.source_queue_flits += length;
        } while (proc.due(now));
        arrival_due_[v] = proc.nextDue();
    }
}

void
Network::gatherBid(std::uint32_t port)
{
    const InPort &in = in_ports_[port];
    const Flit &flit = fifoFront(port);
    TM_ASSERT(in.fifo_size > 0 && in.granted_out == -1 && flit.head,
              "head_waiting_ flag out of sync");
    const PacketState &pkt = packets_[flit.slot];
    // Store-and-forward: the header may not request an output
    // until every flit of the packet sits in this buffer.
    if (config_.switching == Switching::StoreAndForward &&
        in.fifo_size < pkt.length) {
        return;
    }
    const NodeId here = routerOf(port);
    const int local = localOf(port);

    std::uint32_t preferred;
    if (pkt.dest == here) {
        // Eject through the local delivery channel.
        const std::uint32_t eject = inPortId(here, localPort());
        if (out_ports_[eject].owner != kNoSlot) {
            bid_blocked_at_[port] = cycle_ + 1;
            return;
        }
        preferred = eject;
    } else {
        const std::optional<Direction> in_dir =
            local == localPort()
                ? std::nullopt
                : std::make_optional(
                      Direction::fromId(static_cast<DirId>(local)));
        DirectionSet candidates;
        for (Direction d : decider_->routeSet(here, in_dir,
                                              pkt.dest)) {
            const std::uint32_t out = inPortId(here, d.id());
            if (out_ports_[out].owner == kNoSlot)
                candidates.insert(d);
        }
        if (candidates.empty()) {
            bid_blocked_at_[port] = cycle_ + 1;
            return;
        }
        const Direction pick = selectOutput(
            config_.output_selection, candidates, in_dir,
            router_rng_);
        preferred = inPortId(here, pick.id());
    }
    bids_.push_back({preferred, {port, in.header_arrival}});
}

void
Network::allocateOutputs()
{
    // Gather, per output port, the requests of unrouted header flits.
    // One allocation round per cycle: each header bids for the single
    // output its output-selection policy prefers among the free
    // candidates; the input-selection policy then picks one winner
    // per output.
    // A header whose last attempt found every usable output busy is
    // skipped until an output channel at its router is released.
    const auto worthTrying = [this](std::uint32_t port) {
        return out_freed_at_[port_router_[port]] >=
            bid_blocked_at_[port];
    };
    bids_.clear();
    if (ordered_bid_scan_) {
        // Random output selection draws from router_rng_ per bid, so
        // the gather must walk ports in the canonical active order.
        for (std::uint32_t port : active_ports_) {
            if (head_waiting_[port] && worthTrying(port))
                gatherBid(port);
        }
    } else {
        // Deterministic policies consume no randomness while
        // gathering, and bids_ is sorted before anything reads it,
        // so the compact waiting list's order is unobservable.
        for (std::uint32_t port : waiting_list_) {
            if (worthTrying(port))
                gatherBid(port);
        }
    }

    // Group bids by output port and arbitrate. Bids arrive grouped by
    // router order; sorting keeps the pass deterministic.
    std::sort(bids_.begin(), bids_.end(),
              [](const Bid &a, const Bid &b) {
                  if (a.out_port != b.out_port)
                      return a.out_port < b.out_port;
                  return a.request.in_port < b.request.in_port;
              });
    std::size_t i = 0;
    while (i < bids_.size()) {
        bid_group_.clear();
        const std::uint32_t out = bids_[i].out_port;
        while (i < bids_.size() && bids_[i].out_port == out)
            bid_group_.push_back(bids_[i++].request);
        const std::size_t win =
            selectInput(config_.input_selection, bid_group_,
                        router_rng_);
        const std::uint32_t in_port = bid_group_[win].in_port;
        InPort &in = in_ports_[in_port];
        out_ports_[out].owner = fifoFront(in_port).slot;
        in.granted_out = localOf(out);
        granted_[in_port] = 1;
        granted_out_port_[in_port] = out;
        granted_target_[in_port] = out_to_in_[out];
        head_waiting_[in_port] = 0;
        const std::uint32_t pos = waiting_pos_[in_port];
        const std::uint32_t last = waiting_list_.back();
        waiting_list_[pos] = last;
        waiting_pos_[last] = pos;
        waiting_list_.pop_back();
    }
}

bool
Network::headCanMoveCompute(std::uint32_t port)
{
    // A dependency cycle (true deadlock among the flits trying to
    // move) resolves to "cannot move": a port found on the recursion
    // stack (state 1) reads as "no" through the inline memo check.
    move_memo_[port] = (cycle_ << 2) | 1;

    bool result = false;
    const InPort &in = in_ports_[port];
    if (in.fifo_size > 0 && in.granted_out != -1) {
        const std::int32_t target = granted_target_[port];
        if (target < 0) {
            // Ejection: the destination consumes immediately.
            result = true;
        } else {
            const auto target_port = static_cast<std::uint32_t>(target);
            const InPort &next = in_ports_[target_port];
            const Flit &flit = fifoFront(port);
            if (next.fifo_size < buffer_depth_) {
                // Space available now. Buffers hold one packet at a
                // time, so a different packet may enter only an
                // empty, unbound buffer.
                result = next.cur_slot == kNoSlot
                    || next.cur_slot == flit.slot;
            } else if (headCanMove(target_port)) {
                // The slot freed this cycle can be used, subject to
                // the same single-packet rule.
                result = next.cur_slot == flit.slot
                    || next.fifo_size == 1;
            }
        }
    }
    move_memo_[port] = (cycle_ << 2) | (result ? 2u : 3u);
    return result;
}

void
Network::traverseFlits()
{
    // Decide all moves against the cycle-start state, then apply.
    moves_.clear();
    for (std::uint32_t port : active_ports_) {
        // Ports without a grant can never move; one byte skips them
        // without touching their InPort record or the (always-false)
        // memo bookkeeping. A chained refill that needs an ungranted
        // port's answer still computes it inside its own recursion.
        if (!granted_[port])
            continue;
        if (!headCanMove(port))
            continue;
        moves_.push_back({port, granted_target_[port],
                          granted_out_port_[port]});
    }

    if (topo_.hasSharedPhysicalChannels())
        arbitratePhysicalChannels();

    // Pop all moving flits first so same-cycle chained refills see
    // consistent state, then push them downstream.
    in_flight_.clear();
    freed_candidates_ = 0;
    for (const Move &m : moves_) {
        InPort &in = in_ports_[m.from];
        const Flit flit = fifoPop(m.from);
        if (flit.tail) {
            // The tail releases the channel and the buffer binding.
            out_ports_[m.out].owner = kNoSlot;
            in.cur_slot = kNoSlot;
            in.granted_out = -1;
            granted_[m.from] = 0;
            out_freed_at_[routerOf(m.from)] = cycle_ + 1;
            // Only a departing tail can leave a port empty and
            // unbound; remember the candidates so the active-list
            // compaction below can skip everything else. (A chained
            // refill may still re-fill this port before then.)
            if (in.fifo_size == 0 && !maybe_free_[m.from]) {
                maybe_free_[m.from] = 1;
                ++freed_candidates_;
            }
        }
        in_flight_.push_back({flit, m.from, m.to, m.out});
    }

    for (const InFlight &f : in_flight_) {
        moved_this_cycle_ = true;
        ++counters_.flit_moves;
        progress_[f.flit.slot] = cycle_;
        if (chan_stats_)
            chan_stats_->recordForward(f.out, cycle_);
        if (f.to < 0) {
            // Consumed at the destination.
            PacketState &pkt = packets_[f.flit.slot];
            ++pkt.flits_delivered;
            ++counters_.flits_delivered;
            --counters_.flits_in_network;
            if (f.flit.tail) {
                ++counters_.packets_delivered;
                if (trace_sink_)
                    trace_sink_->record({cycle_, pkt.id,
                                         pkt.dest, 0,
                                         TraceEventKind::Deliver});
                completions_.push_back({pkt.id, pkt.src, pkt.dest,
                                        pkt.length, pkt.hops, pkt.created,
                                        pkt.injected,
                                        static_cast<double>(cycle_)});
                packets_.release(f.flit.slot);
            }
            continue;
        }
        const auto to = static_cast<std::uint32_t>(f.to);
        InPort &next = in_ports_[to];
        TM_ASSERT(next.fifo_size < buffer_depth_,
                  "flit pushed into a full buffer");
        TM_ASSERT(next.cur_slot == kNoSlot ||
                      next.cur_slot == f.flit.slot,
                  "two packets interleaved in one buffer");
        fifoPush(to, f.flit);
        if (chan_stats_)
            chan_stats_->recordOccupancy(to, next.fifo_size);
        if (f.flit.head) {
            PacketState &pkt = packets_[f.flit.slot];
            next.cur_slot = f.flit.slot;
            next.header_arrival = cycle_;
            ++pkt.hops;
            ++counters_.header_hops;
            if (trace_sink_)
                trace_sink_->record({cycle_, pkt.id,
                                     routerOf(f.from),
                                     static_cast<DirId>(localOf(to)),
                                     TraceEventKind::Route});
        }
        markActive(to);
    }

    // Compact the active list: keep ports that still hold flits or
    // are bound to a packet mid-stream. Every port was in one of
    // those states at cycle start, so only the tail-departure
    // candidates recorded above can drop out; most cycles the scan
    // is a byte sweep (or nothing at all).
    if (freed_candidates_ > 0) {
        std::size_t keep = 0;
        for (std::uint32_t port : active_ports_) {
            if (!maybe_free_[port]) {
                active_ports_[keep++] = port;
                continue;
            }
            maybe_free_[port] = 0;
            const InPort &in = in_ports_[port];
            if (in.fifo_size > 0 || in.cur_slot != kNoSlot) {
                active_ports_[keep++] = port;
            } else {
                is_active_[port] = 0;
            }
        }
        active_ports_.resize(keep);
    }
}

void
Network::injectFlits()
{
    // Runs after traversal so a single-flit injection buffer sustains
    // one flit per cycle, the injection channel's full bandwidth.
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        if (!source_pending_[v])
            continue;
        auto &queue = source_queues_[v];
        const std::uint32_t port = inPortId(v, localPort());
        InPort &in = in_ports_[port];
        if (in.fifo_size >= buffer_depth_)
            continue;
        const PacketSlot slot = queue.front();
        PacketState &pkt = packets_[slot];
        if (in.cur_slot != kNoSlot && in.cur_slot != slot)
            continue;   // Previous packet's tail still in the buffer.
        Flit flit;
        flit.slot = slot;
        flit.head = pkt.flits_injected == 0;
        flit.tail = pkt.flits_injected + 1 == pkt.length;
        fifoPush(port, flit);
        ++pkt.flits_injected;
        progress_[slot] = cycle_;
        --counters_.source_queue_flits;
        ++counters_.flits_in_network;
        ++counters_.flit_moves;
        moved_this_cycle_ = true;
        if (flit.head) {
            in.cur_slot = slot;
            in.header_arrival = cycle_;
            pkt.injected = static_cast<double>(cycle_);
            if (trace_sink_)
                trace_sink_->record({cycle_, pkt.id, v, 0,
                                     TraceEventKind::Inject});
        }
        if (flit.tail) {
            queue.pop_front();
            if (queue.empty())
                source_pending_[v] = 0;
        }
        markActive(port);
    }
}

void
Network::arbitratePhysicalChannels()
{
    // Virtual channels multiplex one physical wire: at most one flit
    // per (router, physical direction) per cycle. Conflicts keep the
    // move whose turn it is under a rotating priority; cancelling a
    // move also cancels, transitively, any move that was counting on
    // the slot it would have vacated.
    arb_groups_.clear();
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(moves_.size()); ++i) {
        if (moves_[i].to < 0)
            continue;   // Delivery channels are not multiplexed.
        arb_groups_.emplace_back(arb_key_[moves_[i].out], i);
    }
    // Sorting by (key, move index) forms the per-wire groups with
    // members in move order, exactly as hash-grouping insertion
    // order would.
    std::sort(arb_groups_.begin(), arb_groups_.end());

    arb_cancelled_.assign(moves_.size(), 0);
    arb_worklist_.clear();
    std::size_t i = 0;
    while (i < arb_groups_.size()) {
        std::size_t j = i;
        while (j < arb_groups_.size() &&
               arb_groups_[j].first == arb_groups_[i].first) {
            ++j;
        }
        const std::size_t members = j - i;
        if (members > 1) {
            const std::size_t keep =
                static_cast<std::size_t>(cycle_ % members);
            for (std::size_t k = 0; k < members; ++k) {
                if (k == keep)
                    continue;
                arb_cancelled_[arb_groups_[i + k].second] = 1;
                arb_worklist_.push_back(arb_groups_[i + k].second);
            }
        }
        i = j;
    }

    if (!arb_worklist_.empty()) {
        // Index moves by the buffer they enter, so cancellations can
        // chase the chain upstream. The flat index is reset after
        // use, so its cost is O(moves), not O(ports).
        for (const Move &m : moves_) {
            if (m.to >= 0)
                arb_move_into_[m.to] = static_cast<std::int32_t>(
                    &m - moves_.data());
        }
        for (std::size_t head = 0; head < arb_worklist_.size();
             ++head) {
            const std::uint32_t dead = arb_worklist_[head];
            // The move entering the buffer `dead` was leaving needed
            // its slot only if that buffer was full at cycle start.
            const std::uint32_t buffer = moves_[dead].from;
            if (in_ports_[buffer].fifo_size < buffer_depth_)
                continue;   // The incoming move still has room.
            const std::int32_t feeder = arb_move_into_[buffer];
            if (feeder < 0 || arb_cancelled_[feeder])
                continue;
            arb_cancelled_[feeder] = 1;
            arb_worklist_.push_back(
                static_cast<std::uint32_t>(feeder));
        }
        for (const Move &m : moves_) {
            if (m.to >= 0)
                arb_move_into_[m.to] = -1;
        }

        std::size_t keep = 0;
        for (std::size_t m = 0; m < moves_.size(); ++m) {
            if (!arb_cancelled_[m])
                moves_[keep++] = moves_[m];
        }
        moves_.resize(keep);
    }
}

PacketId
Network::post(NodeId src, NodeId dest, std::uint32_t length)
{
    TM_ASSERT(src < topo_.numNodes() && dest < topo_.numNodes(),
              "post() endpoints out of range");
    TM_ASSERT(src != dest, "post() requires distinct endpoints");
    TM_ASSERT(length >= 1, "a packet has at least one flit");
    const PacketSlot slot = packets_.allocate();
    if (slot >= progress_.size())
        progress_.resize(slot + 1);
    PacketState &pkt = packets_[slot];
    pkt.id = next_packet_id_++;
    pkt.src = src;
    pkt.dest = dest;
    pkt.length = length;
    pkt.created = static_cast<double>(cycle_);
    progress_[slot] = cycle_;
    source_queues_[src].push_back(slot);
    source_pending_[src] = 1;
    ++counters_.packets_generated;
    counters_.flits_generated += length;
    counters_.source_queue_flits += length;
    return pkt.id;
}

std::vector<Completion>
Network::drainCompletions()
{
    std::vector<Completion> out;
    out.swap(completions_);
    return out;
}

void
Network::drainCompletions(std::vector<Completion> &out)
{
    out.clear();
    out.swap(completions_);
}

bool
Network::deadlockDetected() const
{
    return stall_cycles_ >= config_.deadlock_threshold
        || packet_stall_flag_;
}

std::vector<PacketId>
Network::stuckPackets(std::uint64_t age) const
{
    std::vector<PacketId> stuck;
    packets_.forEachLive([&](PacketSlot slot, const PacketState &pkt) {
        if (pkt.flits_injected == 0)
            return;
        if (cycle_ - progress_[slot] >= age)
            stuck.push_back(pkt.id);
    });
    // Slot order is allocation order, which recycling scrambles;
    // report victims in ascending id order so the list is stable
    // against storage details.
    std::sort(stuck.begin(), stuck.end());
    return stuck;
}

std::uint64_t
Network::oldestPacketStall() const
{
    std::uint64_t oldest = 0;
    packets_.forEachLive([&](PacketSlot slot, const PacketState &pkt) {
        if (pkt.flits_injected == 0)
            return;
        oldest = std::max(oldest, cycle_ - progress_[slot]);
    });
    return oldest;
}

std::uint64_t
Network::sourceQueuePackets() const
{
    std::uint64_t total = 0;
    for (const auto &q : source_queues_)
        total += q.size();
    return total;
}

void
Network::fillObsReport(ObsReport &report) const
{
    if (chan_stats_) {
        report.observed_cycles = chan_stats_->observedCycles();
        const double cycles =
            static_cast<double>(chan_stats_->observedCycles());
        const auto row_for = [&](NodeId v, std::uint32_t out,
                                 std::string dir,
                                 std::uint32_t peak) {
            ChannelUtilRow row;
            row.node = v;
            row.coords = topo_.coords(v);
            row.dir = std::move(dir);
            row.flits_forwarded = chan_stats_->flitsForwarded(out);
            row.busy_cycles = chan_stats_->busyCycles(out);
            row.blocked_cycles = chan_stats_->blockedCycles(out);
            row.peak_occupancy = peak;
            row.utilization = cycles > 0.0
                ? static_cast<double>(row.flits_forwarded) / cycles
                : 0.0;
            return row;
        };
        for (NodeId v = 0; v < topo_.numNodes(); ++v) {
            for (Direction d : allDirections(topo_.numDims())) {
                if (!topo_.neighbor(v, d))
                    continue;
                const std::uint32_t out = inPortId(v, d.id());
                const std::int32_t down = out_to_in_[out];
                report.channels.push_back(row_for(
                    v, out, directionName(d),
                    chan_stats_->peakOccupancy(
                        static_cast<std::uint32_t>(down))));
            }
            // The local delivery channel: consumed immediately, so
            // it has no downstream buffer to peak-track.
            report.channels.push_back(
                row_for(v, inPortId(v, localPort()), "eject", 0));
        }
    }
    if (trace_sink_) {
        report.trace = trace_sink_->chronological();
        report.trace_dropped = trace_sink_->dropped();
    }
}

} // namespace turnmodel
