#include "router/arbiter.hpp"

namespace turnmodel {

std::uint32_t
RoundRobinArbiter::select(const std::uint32_t *candidates,
                          std::size_t n) const
{
    std::uint32_t best = candidates[0];
    std::uint32_t best_dist = best >= next_
        ? best - next_
        : best + universe_ - next_;
    for (std::size_t i = 1; i < n; ++i) {
        const std::uint32_t c = candidates[i];
        const std::uint32_t dist = c >= next_
            ? c - next_
            : c + universe_ - next_;
        if (dist < best_dist) {
            best = c;
            best_dist = dist;
        }
    }
    return best;
}

} // namespace turnmodel
