/**
 * @file
 * Engine factory: the one place that knows every cycle-accurate
 * router model. Lives in the router library (above turnmodel_sim in
 * the layering) so the simulator can construct whichever engine the
 * configuration selects without depending on the VC router's
 * internals.
 */

#include "sim/engine.hpp"

#include "router/vc_network.hpp"
#include "sim/network.hpp"
#include "util/logging.hpp"

namespace turnmodel {

std::unique_ptr<NetworkEngine>
makeEngine(const RoutingAlgorithm &routing,
           const TrafficPattern &pattern, const SimConfig &config)
{
    switch (config.router_model) {
    case RouterModel::Classic:
        return std::make_unique<Network>(routing, pattern, config);
    case RouterModel::VcCredit:
        return std::make_unique<VcNetwork>(routing, pattern, config);
    }
    TM_FATAL("unknown router model");
}

} // namespace turnmodel
