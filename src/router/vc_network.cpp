#include "router/vc_network.hpp"

#include <algorithm>

#include "obs/report.hpp"
#include "util/logging.hpp"

namespace turnmodel {

VcNetwork::VcNetwork(const RoutingAlgorithm &routing,
                     const TrafficPattern &pattern,
                     const SimConfig &config)
    : routing_(routing), decider_(&routing), topo_(routing.topology()),
      pattern_(pattern), config_(config),
      ideal_(config.vc_router.ideal_credits),
      pipelined_(config.vc_router.pipelined),
      credit_delay_(config.vc_router.credit_delay),
      sa_arbiter_(config.vc_router.arbiter),
      router_rng_(Rng::forStream(config.seed, 0xabcdef))
{
    TM_ASSERT(config_.buffer_depth >= 1, "buffers hold at least one flit");
    TM_ASSERT(config_.switching == Switching::Wormhole,
              "the VC router models wormhole switching only");
    TM_ASSERT(credit_delay_ >= 1,
              "credit return takes at least one cycle");
    if (config_.compiled_routing &&
        dynamic_cast<const CompiledRoutingTable *>(&routing) == nullptr) {
        compiled_.emplace(routing);
        decider_ = &*compiled_;
    }
    ports_per_router_ = topo_.numDirs() + 1;
    buffer_depth_ = config_.buffer_depth;
    const std::size_t total_ports =
        static_cast<std::size_t>(topo_.numNodes()) *
        static_cast<std::size_t>(ports_per_router_);
    in_ports_.resize(total_ports);
    out_ports_.resize(total_ports);
    flit_slab_.resize(total_ports * buffer_depth_);
    out_to_in_.assign(total_ports, -1);
    in_to_out_.assign(total_ports, -1);
    move_memo_.assign(total_ports, ~0ULL);
    is_active_.assign(total_ports, 0);
    head_waiting_.assign(total_ports, 0);
    waiting_pos_.assign(total_ports, 0);
    granted_.assign(total_ports, 0);
    granted_out_port_.assign(total_ports, 0);
    granted_target_.assign(total_ports, -1);
    maybe_free_.assign(total_ports, 0);
    arb_move_into_.assign(total_ports, -1);
    va_ready_at_.assign(total_ports, 0);
    sa_ready_at_.assign(total_ports, 0);
    credits_.assign(total_ports,
                    static_cast<std::int64_t>(buffer_depth_));
    credit_ring_.resize(credit_delay_ + 1);
    credit_stall_.assign(total_ports, 0);

    port_router_.resize(total_ports);
    port_local_.resize(total_ports);
    for (std::uint32_t p = 0; p < total_ports; ++p) {
        port_router_[p] =
            p / static_cast<std::uint32_t>(ports_per_router_);
        port_local_[p] = static_cast<std::uint8_t>(
            p % static_cast<std::uint32_t>(ports_per_router_));
    }

    // Wire each output VC to the matching downstream input VC, and
    // remember the inverse for credit returns: popping a flit from an
    // input buffer sends a credit to the upstream output VC.
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        for (Direction d : allDirections(topo_.numDims())) {
            const auto w = topo_.neighbor(v, d);
            if (!w)
                continue;
            const std::uint32_t out = inPortId(v, d.id());
            const std::uint32_t in = inPortId(*w, d.id());
            out_to_in_[out] = static_cast<std::int32_t>(in);
            in_to_out_[in] = static_cast<std::int32_t>(out);
        }
    }

    // Crossbar resources: virtual channels of one physical wire share
    // one crossbar input (arriving side) and one output wire
    // (departing side); the local injection/ejection port is its own
    // resource. Identity mapping on plain topologies.
    const int num_dirs = topo_.numDirs();
    std::vector<std::uint32_t> wire_of_dir(
        static_cast<std::size_t>(num_dirs));
    std::uint32_t wires = 0;
    for (int d = 0; d < num_dirs; ++d) {
        wire_of_dir[static_cast<std::size_t>(d)] =
            topo_.physicalChannelGroup(static_cast<DirId>(d));
        wires = std::max(
            wires, wire_of_dir[static_cast<std::size_t>(d)] + 1u);
    }
    const std::uint32_t resources_per_router = wires + 1;
    in_group_.resize(total_ports);
    out_wire_.resize(total_ports);
    port_vc_.assign(total_ports, 0);
    for (std::uint32_t p = 0; p < total_ports; ++p) {
        const int local = localOf(p);
        const std::uint32_t res = local == localPort()
            ? wires
            : wire_of_dir[static_cast<std::size_t>(local)];
        const std::uint32_t id =
            routerOf(p) * resources_per_router + res;
        in_group_[p] = id;
        out_wire_[p] = id;
        if (local != localPort()) {
            std::uint8_t vc = 0;
            for (int d = 0; d < local; ++d) {
                if (wire_of_dir[static_cast<std::size_t>(d)] ==
                    wire_of_dir[static_cast<std::size_t>(local)])
                    ++vc;
            }
            port_vc_[p] = vc;
        }
    }
    const std::size_t num_resources =
        static_cast<std::size_t>(topo_.numNodes()) *
        static_cast<std::size_t>(resources_per_router);
    in_arb_.assign(num_resources, RoundRobinArbiter(
        static_cast<std::uint32_t>(total_ports)));
    out_arb_.assign(num_resources, RoundRobinArbiter(
        static_cast<std::uint32_t>(total_ports)));

    if (topo_.hasSharedPhysicalChannels()) {
        arb_key_.resize(total_ports);
        for (std::uint32_t p = 0; p < total_ports; ++p) {
            const int local = localOf(p);
            if (local == localPort())
                continue;   // Delivery channels are not multiplexed.
            arb_key_[p] =
                static_cast<std::uint64_t>(routerOf(p)) * 256u +
                topo_.physicalChannelGroup(static_cast<DirId>(local));
        }
    }

    if (config_.obs.networkEnabled()) {
        obs_ = std::make_unique<NetworkObserver>(config_.obs,
                                                 total_ports);
        chan_stats_ = obs_->channels();
        trace_sink_ = obs_->trace();
    }

    source_queues_.resize(topo_.numNodes());
    source_pending_.assign(topo_.numNodes(), 0);
    arrivals_.reserve(topo_.numNodes());
    arrival_due_.reserve(topo_.numNodes());
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        arrivals_.emplace_back(config_.injection_rate,
                               config_.lengths.mean(),
                               Rng::forStream(config_.seed, v + 1));
        arrival_due_.push_back(arrivals_.back().nextDue());
    }
}

void
VcNetwork::fifoPush(std::uint32_t port, const Flit &flit)
{
    InPort &in = in_ports_[port];
    std::uint32_t idx = in.fifo_head + in.fifo_size;
    if (idx >= buffer_depth_)
        idx -= buffer_depth_;
    flit_slab_[port * buffer_depth_ + idx] = flit;
    ++in.fifo_size;
    // A header only ever enters an empty, unbound VC buffer (one
    // packet per VC), so it is at the front and unrouted right now.
    if (flit.head) {
        head_waiting_[port] = 1;
        waiting_pos_[port] =
            static_cast<std::uint32_t>(waiting_list_.size());
        waiting_list_.push_back(port);
    }
}

Flit
VcNetwork::fifoPop(std::uint32_t port)
{
    InPort &in = in_ports_[port];
    const Flit flit = flit_slab_[port * buffer_depth_ + in.fifo_head];
    ++in.fifo_head;
    if (in.fifo_head >= buffer_depth_)
        in.fifo_head = 0;
    --in.fifo_size;
    return flit;
}

void
VcNetwork::markActive(std::uint32_t port)
{
    if (!is_active_[port]) {
        is_active_[port] = 1;
        active_ports_.push_back(port);
    }
}

void
VcNetwork::step()
{
    moved_this_cycle_ = false;
    if (generate_)
        generateMessages();
    if (!ideal_)
        applyCreditReturns();
    allocateVcs();
    traverseFlits();
    injectFlits();

    if (chan_stats_) {
        chan_stats_->tick();
        const auto num_ports =
            static_cast<std::uint32_t>(out_ports_.size());
        for (std::uint32_t p = 0; p < num_ports; ++p) {
            if (out_ports_[p].owner != kNoSlot)
                chan_stats_->recordHeld(p, cycle_);
        }
    }

    // Deadlock watchdog: packets in the network but nothing moved.
    if (!moved_this_cycle_ && counters_.flits_in_network > 0)
        ++stall_cycles_;
    else
        stall_cycles_ = 0;
    if ((cycle_ & 0x3ff) == 0) {
        packet_stall_flag_ = packet_stall_flag_
            || oldestPacketStall() >= config_.deadlock_threshold;
    }
    ++cycle_;
}

void
VcNetwork::generateMessages()
{
    const double now = static_cast<double>(cycle_);
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        if (arrival_due_[v] > now)
            continue;
        ArrivalProcess &proc = arrivals_[v];
        do {
            proc.advance();
            const auto dest = pattern_.destination(v, proc.rng());
            if (!dest)
                continue;   // Self-directed; never enters the network.
            const std::uint32_t length =
                config_.lengths.sample(proc.rng());
            const PacketSlot slot = packets_.allocate();
            if (slot >= progress_.size())
                progress_.resize(slot + 1);
            PacketState &pkt = packets_[slot];
            pkt.id = next_packet_id_++;
            pkt.src = v;
            pkt.dest = *dest;
            pkt.length = length;
            pkt.created = now;
            source_queues_[v].push_back(slot);
            source_pending_[v] = 1;
            ++counters_.packets_generated;
            counters_.flits_generated += length;
            counters_.source_queue_flits += length;
        } while (proc.due(now));
        arrival_due_[v] = proc.nextDue();
    }
}

void
VcNetwork::applyCreditReturns()
{
    auto &bucket = credit_ring_[cycle_ % credit_ring_.size()];
    for (const CreditEvent &e : bucket) {
        ++credits_[e.out_port];
        TM_ASSERT(credits_[e.out_port] <=
                      static_cast<std::int64_t>(buffer_depth_),
                  "credit counter above downstream buffer depth");
        // The tail flit's credit doubles as the VC-free signal: the
        // output VC returns to the allocatable pool only once the
        // downstream buffer holds none of the departing packet.
        if (e.vc_free)
            out_ports_[e.out_port].owner = kNoSlot;
    }
    bucket.clear();
}

void
VcNetwork::scheduleCredit(std::uint32_t out_port, bool vc_free)
{
    credit_ring_[(cycle_ + credit_delay_) % credit_ring_.size()]
        .push_back({out_port, static_cast<std::uint8_t>(vc_free)});
}

void
VcNetwork::gatherBid(std::uint32_t port)
{
    const InPort &in = in_ports_[port];
    const Flit &flit = fifoFront(port);
    TM_ASSERT(in.fifo_size > 0 && in.granted_out == -1 && flit.head,
              "head_waiting_ flag out of sync");
    const PacketState &pkt = packets_[flit.slot];
    const NodeId here = routerOf(port);
    const int local = localOf(port);

    std::uint32_t preferred;
    if (pkt.dest == here) {
        // Eject through the local delivery channel.
        const std::uint32_t eject = inPortId(here, localPort());
        if (out_ports_[eject].owner != kNoSlot)
            return;
        preferred = eject;
    } else {
        const std::optional<Direction> in_dir =
            local == localPort()
                ? std::nullopt
                : std::make_optional(
                      Direction::fromId(static_cast<DirId>(local)));
        DirectionSet candidates;
        for (Direction d : decider_->routeSet(here, in_dir,
                                              pkt.dest)) {
            const std::uint32_t out = inPortId(here, d.id());
            if (out_ports_[out].owner == kNoSlot)
                candidates.insert(d);
        }
        if (candidates.empty())
            return;
        const Direction pick = selectOutput(
            config_.output_selection, candidates, in_dir,
            router_rng_);
        preferred = inPortId(here, pick.id());
    }
    bids_.push_back({preferred, {port, in.header_arrival}});
}

void
VcNetwork::allocateVcs()
{
    // VC allocation: every route-computed header bids for the single
    // free output VC its output-selection policy prefers; the
    // input-selection policy picks one winner per output VC. Bids are
    // sorted before use, so the compact waiting list's order is
    // unobservable under deterministic policies (Random policies
    // consume router_rng_ in list order, which is still a pure
    // function of the configuration and seed).
    bids_.clear();
    for (std::uint32_t port : waiting_list_) {
        if (cycle_ >= va_ready_at_[port])
            gatherBid(port);
    }

    std::sort(bids_.begin(), bids_.end(),
              [](const Bid &a, const Bid &b) {
                  if (a.out_port != b.out_port)
                      return a.out_port < b.out_port;
                  return a.request.in_port < b.request.in_port;
              });
    std::size_t i = 0;
    while (i < bids_.size()) {
        bid_group_.clear();
        const std::uint32_t out = bids_[i].out_port;
        while (i < bids_.size() && bids_[i].out_port == out)
            bid_group_.push_back(bids_[i++].request);
        const std::size_t win =
            selectInput(config_.input_selection, bid_group_,
                        router_rng_);
        const std::uint32_t in_port = bid_group_[win].in_port;
        InPort &in = in_ports_[in_port];
        out_ports_[out].owner = fifoFront(in_port).slot;
        in.granted_out = localOf(out);
        granted_[in_port] = 1;
        granted_out_port_[in_port] = out;
        granted_target_[in_port] = out_to_in_[out];
        // Charge the VA stage: the winner may compete in switch
        // allocation from the next cycle when pipelined, immediately
        // (classic timing) otherwise.
        sa_ready_at_[in_port] = cycle_ + (pipelined_ ? 1 : 0);
        head_waiting_[in_port] = 0;
        const std::uint32_t pos = waiting_pos_[in_port];
        const std::uint32_t last = waiting_list_.back();
        waiting_list_[pos] = last;
        waiting_pos_[last] = pos;
        waiting_list_.pop_back();
    }
}

bool
VcNetwork::headCanMoveCompute(std::uint32_t port)
{
    // Ideal-credit movability, replicated from the classic engine so
    // the degenerate configuration is semantics-identical: instant
    // occupancy checks with same-cycle chained refills, and a
    // dependency cycle resolving to "cannot move" through the
    // on-stack memo state.
    move_memo_[port] = (cycle_ << 2) | 1;

    bool result = false;
    const InPort &in = in_ports_[port];
    if (in.fifo_size > 0 && in.granted_out != -1 &&
        cycle_ >= sa_ready_at_[port]) {
        const std::int32_t target = granted_target_[port];
        if (target < 0) {
            // Ejection: the destination consumes immediately.
            result = true;
        } else {
            const auto target_port = static_cast<std::uint32_t>(target);
            const InPort &next = in_ports_[target_port];
            const Flit &flit = fifoFront(port);
            if (next.fifo_size < buffer_depth_) {
                result = next.cur_slot == kNoSlot
                    || next.cur_slot == flit.slot;
            } else if (headCanMove(target_port)) {
                result = next.cur_slot == flit.slot
                    || next.fifo_size == 1;
            }
        }
    }
    move_memo_[port] = (cycle_ << 2) | (result ? 2u : 3u);
    return result;
}

void
VcNetwork::decideMovesIdeal()
{
    for (std::uint32_t port : active_ports_) {
        if (!granted_[port])
            continue;
        if (!headCanMove(port))
            continue;
        moves_.push_back({port, granted_target_[port],
                          granted_out_port_[port]});
    }
    if (topo_.hasSharedPhysicalChannels())
        arbitratePhysicalChannels();
}

void
VcNetwork::decideMovesCredit()
{
    // Gather switch-allocation requests: granted VCs with a buffered
    // flit, past their VA pipeline stage, holding a credit (ejection
    // needs none — the destination consumes immediately). A flit-ready
    // VC without a credit charges the credit-stall counter, the
    // backpressure signal the per-VC observability exports.
    sa_reqs_.clear();
    for (std::uint32_t port : active_ports_) {
        if (!granted_[port])
            continue;
        const InPort &in = in_ports_[port];
        if (in.fifo_size == 0)
            continue;
        if (cycle_ < sa_ready_at_[port])
            continue;
        const std::uint32_t out = granted_out_port_[port];
        if (granted_target_[port] >= 0 && credits_[out] <= 0) {
            ++credit_stall_[out];
            continue;
        }
        sa_reqs_.push_back({port, out});
    }
    if (sa_reqs_.empty())
        return;

    // Separable two-stage allocation. Each stage keeps one request
    // per crossbar resource under that resource's round-robin
    // arbiter; a request must survive both stages. Requests are
    // unique per input VC (one granted output each) and per output VC
    // (one owner each), so a stage winner is unambiguous.
    const auto filterStage = [this](std::vector<SaRequest> &from,
                                    std::vector<SaRequest> &to,
                                    bool by_input) {
        const auto key = [this, by_input](const SaRequest &r) {
            return by_input ? in_group_[r.in_port]
                            : out_wire_[r.out_port];
        };
        const auto member = [by_input](const SaRequest &r) {
            return by_input ? r.in_port : r.out_port;
        };
        std::sort(from.begin(), from.end(),
                  [&](const SaRequest &a, const SaRequest &b) {
                      if (key(a) != key(b))
                          return key(a) < key(b);
                      return member(a) < member(b);
                  });
        to.clear();
        std::size_t i = 0;
        while (i < from.size()) {
            const std::uint32_t k = key(from[i]);
            std::size_t j = i;
            sa_members_.clear();
            while (j < from.size() && key(from[j]) == k) {
                sa_members_.push_back(member(from[j]));
                ++j;
            }
            if (j - i == 1) {
                to.push_back(from[i]);
            } else {
                const RoundRobinArbiter &arb =
                    by_input ? in_arb_[k] : out_arb_[k];
                const std::uint32_t w = arb.select(
                    sa_members_.data(), sa_members_.size());
                for (std::size_t m = i; m < j; ++m) {
                    if (member(from[m]) == w) {
                        to.push_back(from[m]);
                        break;
                    }
                }
            }
            i = j;
        }
    };

    if (sa_arbiter_ == SwitchArbiter::InputFirst) {
        filterStage(sa_reqs_, sa_stage_, true);
        filterStage(sa_stage_, sa_reqs_, false);
    } else {
        filterStage(sa_reqs_, sa_stage_, false);
        filterStage(sa_stage_, sa_reqs_, true);
    }

    // Priority pointers advance only on confirmed grants, so a stage
    // winner that loses the other stage keeps its priority.
    for (const SaRequest &r : sa_reqs_) {
        in_arb_[in_group_[r.in_port]].confirm(r.in_port);
        out_arb_[out_wire_[r.out_port]].confirm(r.out_port);
        moves_.push_back({r.in_port, granted_target_[r.in_port],
                          r.out_port});
    }
}

void
VcNetwork::traverseFlits()
{
    // Decide all moves against the cycle-start state, then apply.
    moves_.clear();
    if (ideal_)
        decideMovesIdeal();
    else
        decideMovesCredit();

    // Pop all moving flits first so same-cycle chained refills (ideal
    // mode) see consistent state, then push them downstream.
    in_flight_.clear();
    freed_candidates_ = 0;
    for (const Move &m : moves_) {
        InPort &in = in_ports_[m.from];
        const Flit flit = fifoPop(m.from);
        if (!ideal_) {
            if (m.to >= 0) {
                TM_ASSERT(credits_[m.out] > 0,
                          "flit sent without a credit");
                --credits_[m.out];
            }
            // This pop freed one slot of m.from's buffer: return a
            // credit to the upstream output VC feeding it (none for
            // the injection port — its upstream is the source queue).
            const std::int32_t up = in_to_out_[m.from];
            if (up >= 0)
                scheduleCredit(static_cast<std::uint32_t>(up),
                               flit.tail);
        }
        if (flit.tail) {
            // The tail releases the buffer binding; the output VC is
            // released now under ideal credits (and for ejection,
            // which has no downstream buffer), otherwise by the
            // downstream tail pop's VC-free signal.
            if (ideal_ || m.to < 0)
                out_ports_[m.out].owner = kNoSlot;
            in.cur_slot = kNoSlot;
            in.granted_out = -1;
            granted_[m.from] = 0;
            if (in.fifo_size == 0 && !maybe_free_[m.from]) {
                maybe_free_[m.from] = 1;
                ++freed_candidates_;
            }
        }
        in_flight_.push_back({flit, m.from, m.to, m.out});
    }

    for (const InFlight &f : in_flight_) {
        moved_this_cycle_ = true;
        ++counters_.flit_moves;
        progress_[f.flit.slot] = cycle_;
        if (chan_stats_)
            chan_stats_->recordForward(f.out, cycle_);
        if (f.to < 0) {
            // Consumed at the destination.
            PacketState &pkt = packets_[f.flit.slot];
            ++pkt.flits_delivered;
            ++counters_.flits_delivered;
            --counters_.flits_in_network;
            if (f.flit.tail) {
                ++counters_.packets_delivered;
                if (trace_sink_)
                    trace_sink_->record({cycle_, pkt.id,
                                         pkt.dest, 0,
                                         TraceEventKind::Deliver});
                completions_.push_back({pkt.id, pkt.src, pkt.dest,
                                        pkt.length, pkt.hops, pkt.created,
                                        pkt.injected,
                                        static_cast<double>(cycle_)});
                packets_.release(f.flit.slot);
            }
            continue;
        }
        const auto to = static_cast<std::uint32_t>(f.to);
        InPort &next = in_ports_[to];
        TM_ASSERT(next.fifo_size < buffer_depth_,
                  "flit pushed into a full buffer");
        TM_ASSERT(next.cur_slot == kNoSlot ||
                      next.cur_slot == f.flit.slot,
                  "two packets interleaved in one VC buffer");
        fifoPush(to, f.flit);
        if (chan_stats_)
            chan_stats_->recordOccupancy(to, next.fifo_size);
        if (f.flit.head) {
            PacketState &pkt = packets_[f.flit.slot];
            next.cur_slot = f.flit.slot;
            next.header_arrival = cycle_;
            // Charge the route-compute stage: the header may bid in
            // VA the cycle after arrival (classic timing), one later
            // when pipelined.
            va_ready_at_[to] = cycle_ + 1 + (pipelined_ ? 1 : 0);
            ++pkt.hops;
            ++counters_.header_hops;
            if (trace_sink_)
                trace_sink_->record({cycle_, pkt.id,
                                     routerOf(f.from),
                                     static_cast<DirId>(localOf(to)),
                                     TraceEventKind::Route});
        }
        markActive(to);
    }

    // Compact the active list (identical to the classic engine).
    if (freed_candidates_ > 0) {
        std::size_t keep = 0;
        for (std::uint32_t port : active_ports_) {
            if (!maybe_free_[port]) {
                active_ports_[keep++] = port;
                continue;
            }
            maybe_free_[port] = 0;
            const InPort &in = in_ports_[port];
            if (in.fifo_size > 0 || in.cur_slot != kNoSlot) {
                active_ports_[keep++] = port;
            } else {
                is_active_[port] = 0;
            }
        }
        active_ports_.resize(keep);
    }
}

void
VcNetwork::injectFlits()
{
    // Runs after traversal so a single-flit injection buffer sustains
    // one flit per cycle, the injection channel's full bandwidth.
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        if (!source_pending_[v])
            continue;
        auto &queue = source_queues_[v];
        const std::uint32_t port = inPortId(v, localPort());
        InPort &in = in_ports_[port];
        if (in.fifo_size >= buffer_depth_)
            continue;
        const PacketSlot slot = queue.front();
        PacketState &pkt = packets_[slot];
        if (in.cur_slot != kNoSlot && in.cur_slot != slot)
            continue;   // Previous packet's tail still in the buffer.
        Flit flit;
        flit.slot = slot;
        flit.head = pkt.flits_injected == 0;
        flit.tail = pkt.flits_injected + 1 == pkt.length;
        fifoPush(port, flit);
        ++pkt.flits_injected;
        progress_[slot] = cycle_;
        --counters_.source_queue_flits;
        ++counters_.flits_in_network;
        ++counters_.flit_moves;
        moved_this_cycle_ = true;
        if (flit.head) {
            in.cur_slot = slot;
            in.header_arrival = cycle_;
            va_ready_at_[port] = cycle_ + 1 + (pipelined_ ? 1 : 0);
            pkt.injected = static_cast<double>(cycle_);
            if (trace_sink_)
                trace_sink_->record({cycle_, pkt.id, v, 0,
                                     TraceEventKind::Inject});
        }
        if (flit.tail) {
            queue.pop_front();
            if (queue.empty())
                source_pending_[v] = 0;
        }
        markActive(port);
    }
}

void
VcNetwork::arbitratePhysicalChannels()
{
    // Ideal-credit mode on shared wires: identical to the classic
    // engine's rotating-priority wire arbitration with transitive
    // cancellation of dependent chained refills. (Credit mode routes
    // wire contention through the separable switch allocator instead.)
    arb_groups_.clear();
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(moves_.size()); ++i) {
        if (moves_[i].to < 0)
            continue;   // Delivery channels are not multiplexed.
        arb_groups_.emplace_back(arb_key_[moves_[i].out], i);
    }
    std::sort(arb_groups_.begin(), arb_groups_.end());

    arb_cancelled_.assign(moves_.size(), 0);
    arb_worklist_.clear();
    std::size_t i = 0;
    while (i < arb_groups_.size()) {
        std::size_t j = i;
        while (j < arb_groups_.size() &&
               arb_groups_[j].first == arb_groups_[i].first) {
            ++j;
        }
        const std::size_t members = j - i;
        if (members > 1) {
            const std::size_t keep =
                static_cast<std::size_t>(cycle_ % members);
            for (std::size_t k = 0; k < members; ++k) {
                if (k == keep)
                    continue;
                arb_cancelled_[arb_groups_[i + k].second] = 1;
                arb_worklist_.push_back(arb_groups_[i + k].second);
            }
        }
        i = j;
    }

    if (!arb_worklist_.empty()) {
        for (const Move &m : moves_) {
            if (m.to >= 0)
                arb_move_into_[m.to] = static_cast<std::int32_t>(
                    &m - moves_.data());
        }
        for (std::size_t head = 0; head < arb_worklist_.size();
             ++head) {
            const std::uint32_t dead = arb_worklist_[head];
            const std::uint32_t buffer = moves_[dead].from;
            if (in_ports_[buffer].fifo_size < buffer_depth_)
                continue;   // The incoming move still has room.
            const std::int32_t feeder = arb_move_into_[buffer];
            if (feeder < 0 || arb_cancelled_[feeder])
                continue;
            arb_cancelled_[feeder] = 1;
            arb_worklist_.push_back(
                static_cast<std::uint32_t>(feeder));
        }
        for (const Move &m : moves_) {
            if (m.to >= 0)
                arb_move_into_[m.to] = -1;
        }

        std::size_t keep = 0;
        for (std::size_t m = 0; m < moves_.size(); ++m) {
            if (!arb_cancelled_[m])
                moves_[keep++] = moves_[m];
        }
        moves_.resize(keep);
    }
}

PacketId
VcNetwork::post(NodeId src, NodeId dest, std::uint32_t length)
{
    TM_ASSERT(src < topo_.numNodes() && dest < topo_.numNodes(),
              "post() endpoints out of range");
    TM_ASSERT(src != dest, "post() requires distinct endpoints");
    TM_ASSERT(length >= 1, "a packet has at least one flit");
    const PacketSlot slot = packets_.allocate();
    if (slot >= progress_.size())
        progress_.resize(slot + 1);
    PacketState &pkt = packets_[slot];
    pkt.id = next_packet_id_++;
    pkt.src = src;
    pkt.dest = dest;
    pkt.length = length;
    pkt.created = static_cast<double>(cycle_);
    progress_[slot] = cycle_;
    source_queues_[src].push_back(slot);
    source_pending_[src] = 1;
    ++counters_.packets_generated;
    counters_.flits_generated += length;
    counters_.source_queue_flits += length;
    return pkt.id;
}

void
VcNetwork::drainCompletions(std::vector<Completion> &out)
{
    out.clear();
    out.swap(completions_);
}

bool
VcNetwork::deadlockDetected() const
{
    return stall_cycles_ >= config_.deadlock_threshold
        || packet_stall_flag_;
}

std::vector<PacketId>
VcNetwork::stuckPackets(std::uint64_t age) const
{
    std::vector<PacketId> stuck;
    packets_.forEachLive([&](PacketSlot slot, const PacketState &pkt) {
        if (pkt.flits_injected == 0)
            return;
        if (cycle_ - progress_[slot] >= age)
            stuck.push_back(pkt.id);
    });
    std::sort(stuck.begin(), stuck.end());
    return stuck;
}

std::uint64_t
VcNetwork::oldestPacketStall() const
{
    std::uint64_t oldest = 0;
    packets_.forEachLive([&](PacketSlot slot, const PacketState &pkt) {
        if (pkt.flits_injected == 0)
            return;
        oldest = std::max(oldest, cycle_ - progress_[slot]);
    });
    return oldest;
}

std::uint64_t
VcNetwork::sourceQueuePackets() const
{
    std::uint64_t total = 0;
    for (const auto &q : source_queues_)
        total += q.size();
    return total;
}

bool
VcNetwork::auditCredits() const
{
    if (ideal_)
        return true;
    std::vector<std::int64_t> pending(credits_.size(), 0);
    for (const auto &bucket : credit_ring_) {
        for (const CreditEvent &e : bucket)
            ++pending[e.out_port];
    }
    for (std::uint32_t out = 0;
         out < static_cast<std::uint32_t>(credits_.size()); ++out) {
        const std::int32_t down = out_to_in_[out];
        if (down < 0)
            continue;   // Ejection: no credit loop.
        if (credits_[out] < 0)
            return false;
        const std::int64_t round_trip = credits_[out] + pending[out]
            + in_ports_[static_cast<std::uint32_t>(down)].fifo_size;
        if (round_trip != static_cast<std::int64_t>(buffer_depth_))
            return false;
    }
    return true;
}

std::uint64_t
VcNetwork::creditStallCycles() const
{
    std::uint64_t total = 0;
    for (std::uint64_t s : credit_stall_)
        total += s;
    return total;
}

void
VcNetwork::fillObsReport(ObsReport &report) const
{
    report.schema_version = 2;
    if (chan_stats_) {
        report.observed_cycles = chan_stats_->observedCycles();
        const double cycles =
            static_cast<double>(chan_stats_->observedCycles());
        const auto row_for = [&](NodeId v, std::uint32_t out,
                                 std::string dir, int vc,
                                 std::uint32_t peak) {
            ChannelUtilRow row;
            row.node = v;
            row.coords = topo_.coords(v);
            row.dir = std::move(dir);
            row.vc = vc;
            row.flits_forwarded = chan_stats_->flitsForwarded(out);
            row.busy_cycles = chan_stats_->busyCycles(out);
            row.blocked_cycles = chan_stats_->blockedCycles(out);
            row.peak_occupancy = peak;
            row.credit_stall_cycles = credit_stall_[out];
            row.utilization = cycles > 0.0
                ? static_cast<double>(row.flits_forwarded) / cycles
                : 0.0;
            return row;
        };
        for (NodeId v = 0; v < topo_.numNodes(); ++v) {
            for (Direction d : allDirections(topo_.numDims())) {
                if (!topo_.neighbor(v, d))
                    continue;
                const std::uint32_t out = inPortId(v, d.id());
                const std::int32_t down = out_to_in_[out];
                // Rows are keyed by the physical direction plus the
                // VC index, so heatmaps of virtualized meshes stay in
                // the physical vocabulary.
                const Direction phys = Direction::fromId(
                    topo_.physicalChannelGroup(d.id()));
                report.channels.push_back(row_for(
                    v, out, directionName(phys), port_vc_[out],
                    chan_stats_->peakOccupancy(
                        static_cast<std::uint32_t>(down))));
            }
            report.channels.push_back(row_for(
                v, inPortId(v, localPort()), "eject", -1, 0));
        }
    }
    if (trace_sink_) {
        report.trace = trace_sink_->chronological();
        report.trace_dropped = trace_sink_->dropped();
    }
}

} // namespace turnmodel
